"""Unit tests for the wiring/circuit area models (Fig 11, Tables 1–2)."""

import pytest

from repro.analysis import (
    fig11_series,
    link_area,
    table1,
    table2,
    wire_area_um2,
)
from repro.tech import st012


class TestWireArea:
    def test_paper_32_wire_point(self):
        # L=1000: 32·0.44 + 33·0.46 = 29.26 µm pitch → 29 260 µm²
        assert wire_area_um2(32, 1000, st012()) == pytest.approx(29_260.0)

    def test_paper_8_wire_point(self):
        assert wire_area_um2(8, 1000, st012()) == pytest.approx(7_660.0)

    def test_linear_in_length(self):
        tech = st012()
        a1 = wire_area_um2(8, 1000, tech)
        a3 = wire_area_um2(8, 3000, tech)
        assert a3 == pytest.approx(3 * a1)

    def test_zero_length_zero_area(self):
        assert wire_area_um2(32, 0, st012()) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            wire_area_um2(0, 100, st012())
        with pytest.raises(ValueError):
            wire_area_um2(8, -1, st012())

    def test_n_plus_one_gaps(self):
        """One wire still needs two gaps to its neighbours."""
        tech = st012()
        assert wire_area_um2(1, 1000, tech) == pytest.approx(
            1000 * (0.44 + 2 * 0.46)
        )


class TestFig11Series:
    def test_two_curves(self):
        series = fig11_series(st012())
        assert set(series) == {"I1-Synch", "I2 & I3-Asynch (proposed)"}

    def test_sync_grows_faster(self):
        series = fig11_series(st012(), lengths_um=(1000, 2000))
        sync_growth = series["I1-Synch"][1][1] - series["I1-Synch"][0][1]
        async_growth = (
            series["I2 & I3-Asynch (proposed)"][1][1]
            - series["I2 & I3-Asynch (proposed)"][0][1]
        )
        assert sync_growth > 3 * async_growth

    def test_ratio_near_four(self):
        """32 vs 8 wires → area ratio slightly under 4 (shared gap)."""
        series = fig11_series(st012(), lengths_um=(1000,))
        ratio = (
            series["I1-Synch"][0][1]
            / series["I2 & I3-Asynch (proposed)"][0][1]
        )
        assert 3.5 < ratio < 4.0


class TestLinkArea:
    def test_table1_totals(self):
        areas = table1(st012())
        assert areas["Synchronous (I1)"] == pytest.approx(15_864.0)
        assert areas["Asynchronous per-transfer ack. (I2)"] == pytest.approx(
            19_193.0
        )
        assert areas["Asynchronous per-word ack. (I3)"] == pytest.approx(
            18_396.0
        )

    def test_table2_breakdown_matches_paper(self):
        breakdown = table2(st012())
        assert breakdown.modules["Synch to Asynch interface"] == 9408.0
        assert breakdown.modules["Asynch 32 to 8 serializer"] == 869.0
        assert breakdown.modules["Asynch 8 wire buffer"] == 294.0
        assert breakdown.quantities["Asynch 8 wire buffer"] == 4
        assert breakdown.total_um2 == pytest.approx(19_193.0)

    def test_area_overhead_about_20_percent(self):
        areas = table1(st012())
        overhead = (
            areas["Asynchronous per-transfer ack. (I2)"]
            / areas["Synchronous (I1)"]
        )
        assert overhead == pytest.approx(1.21, abs=0.02)

    def test_area_scales_with_buffers(self):
        tech = st012()
        a4 = link_area(tech, "I1", 4).total_um2
        a8 = link_area(tech, "I1", 8).total_um2
        assert a8 == pytest.approx(2 * a4)

    def test_i2_buffers_scale(self):
        tech = st012()
        a2 = link_area(tech, "I2", 2).total_um2
        a8 = link_area(tech, "I2", 8).total_um2
        assert a8 - a2 == pytest.approx(6 * 294.0)

    def test_rows_format(self):
        rows = table2(st012()).rows()
        assert len(rows) == 5
        assert rows[0][0] == "Synch to Asynch interface"

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            link_area(st012(), "I5")
