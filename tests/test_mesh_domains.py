"""Edge cases of MeshDesign clock-domain bookkeeping.

The lint CDC rule is driven entirely by ``assign_domains()`` and
``cross_domain_links()``; these tests pin the corner cases the rule
depends on (no assignment, single domain, per-node maps with holes,
degraded links crossing the wall, re-assignment).
"""

from repro.design.mesh import MeshDesign
from repro.noc.topology import Port as NocPort
from repro.noc.topology import Topology


class TestAssignDomains:
    def test_default_is_one_default_domain(self):
        mesh = MeshDesign(Topology(2, 2))
        assert all(
            node.domain == "default"
            for node in (mesh.node_at((x, y))
                         for x in range(2) for y in range(2))
        )
        assert mesh.cross_domain_links() == []

    def test_empty_classifier_map_keeps_default(self):
        mesh = MeshDesign(Topology(2, 2))
        domain_map = {}  # a per-coord map with no entries
        counts = mesh.assign_domains(
            lambda node: domain_map.get(node.coord, "default")
        )
        assert counts == {"default": 4}
        assert mesh.cross_domain_links() == []

    def test_partial_map_creates_crossings_at_the_holes(self):
        mesh = MeshDesign(Topology(2, 1))
        domain_map = {(0, 0): "fast"}  # (1, 0) falls through
        counts = mesh.assign_domains(
            lambda node: domain_map.get(node.coord, "default")
        )
        assert counts == {"fast": 1, "default": 1}
        crossing = mesh.cross_domain_links()
        assert {link.name for link in crossing} == {"east", "west"}

    def test_all_one_domain_has_no_crossings(self):
        mesh = MeshDesign(Topology(4, 4))
        counts = mesh.assign_domains(lambda node: "core")
        assert counts == {"core": 16}
        assert mesh.cross_domain_links() == []

    def test_counts_sum_to_node_count(self):
        mesh = MeshDesign(Topology(3, 2))
        counts = mesh.assign_domains(
            lambda node: f"col{node.x}"
        )
        assert sum(counts.values()) == 6
        assert counts == {"col0": 2, "col1": 2, "col2": 2}

    def test_reassignment_overwrites_previous_domains(self):
        mesh = MeshDesign(Topology(2, 1))
        mesh.assign_domains(
            lambda node: "fast" if node.x == 0 else "slow"
        )
        assert len(mesh.cross_domain_links()) == 2
        mesh.assign_domains(lambda node: "merged")
        assert mesh.cross_domain_links() == []

    def test_single_node_mesh_has_no_links_at_all(self):
        mesh = MeshDesign(Topology(1, 1))
        counts = mesh.assign_domains(lambda node: "only")
        assert counts == {"only": 1}
        assert mesh.cross_domain_links() == []


class TestCrossDomainLinks:
    def _wall(self):
        mesh = MeshDesign(Topology(2, 2))
        mesh.assign_domains(
            lambda node: "fast" if node.x == 0 else "slow"
        )
        return mesh

    def test_both_directions_reported(self):
        mesh = self._wall()
        crossing = mesh.cross_domain_links()
        pairs = {(link.src, link.dst) for link in crossing}
        # each row crosses the wall in both directions
        assert ((0, 0), (1, 0)) in pairs
        assert ((1, 0), (0, 0)) in pairs
        assert len(crossing) == 4

    def test_degraded_link_across_domains_still_crossing(self):
        mesh = self._wall()
        marker = object()
        path = mesh.link_path((0, 0), NocPort.EAST)
        mesh.degrade(path, marker, tag="cross-domain")
        crossing = mesh.cross_domain_links()
        degraded = [link for link in crossing if link.params is marker]
        assert len(degraded) == 1
        assert degraded[0].tag == "cross-domain"
        # degradation does not remove the link from the crossing set
        assert len(crossing) == 4

    def test_crossing_set_consistent_with_lint_cdc_rule(self):
        from repro.design.design import Design
        from repro.lint.rules import CdcRule, LintContext

        mesh = self._wall()
        findings = list(
            CdcRule().check(LintContext.for_design(Design(mesh)))
        )
        assert len(findings) == len(mesh.cross_domain_links())
        for link in mesh.cross_domain_links():
            link.params = object()
        findings = list(
            CdcRule().check(LintContext.for_design(Design(mesh)))
        )
        assert findings == []
