"""Unit tests for the wormhole switch."""

import pytest

from repro.link.behavioral import BehavioralLinkParams, TokenLink
from repro.noc import Flit, FlitKind, Packet, Port, Switch, Topology, next_hop
from repro.noc.switch import InputQueue


def make_switch(position=(1, 1), topo=None, fifo_depth=4):
    topo = topo or Topology(3, 3)
    sw = Switch(position, lambda cur, dest: next_hop(cur, dest, topo),
                fifo_depth)
    params = BehavioralLinkParams("T", 1, 1.0, 8, 10, 300.0)
    for port in (Port.NORTH, Port.SOUTH, Port.EAST, Port.WEST):
        sw.out_links[port] = TokenLink(params)
    return sw


def head(dest, pid=1):
    return Flit(packet_id=pid, kind=FlitKind.HEAD, src=(1, 1), dest=dest)


def body(pid=1, seq=1):
    return Flit(packet_id=pid, kind=FlitKind.BODY, src=(1, 1), dest=(9, 9),
                seq=seq)


def tail(pid=1, seq=2):
    return Flit(packet_id=pid, kind=FlitKind.TAIL, src=(1, 1), dest=(9, 9),
                seq=seq)


class TestInputQueue:
    def test_fifo_order(self):
        q = InputQueue(4)
        q.push("a")
        q.push("b")
        assert q.pop() == "a"
        assert q.pop() == "b"

    def test_full(self):
        q = InputQueue(2)
        q.push(1)
        q.push(2)
        assert q.full
        with pytest.raises(RuntimeError):
            q.push(3)

    def test_bad_depth(self):
        with pytest.raises(ValueError):
            InputQueue(0)


class TestSwitchRouting:
    def test_local_ejection(self):
        sw = make_switch(position=(1, 1))
        ejected = []
        sw.accept(Port.WEST, head(dest=(1, 1)))
        sw.arbitrate_and_send(0, ejected.append)
        assert len(ejected) == 1

    def test_forwards_east(self):
        sw = make_switch(position=(1, 1))
        sw.accept(Port.LOCAL, head(dest=(2, 1)))
        link = sw.out_links[Port.EAST]
        link.begin_cycle()
        sw.arbitrate_and_send(0, lambda f: None)
        assert link.flits_sent == 1

    def test_xy_goes_x_first(self):
        sw = make_switch(position=(1, 1))
        sw.accept(Port.LOCAL, head(dest=(2, 2)))
        east = sw.out_links[Port.EAST]
        north = sw.out_links[Port.NORTH]
        for link in sw.out_links.values():
            link.begin_cycle()
        sw.arbitrate_and_send(0, lambda f: None)
        assert east.flits_sent == 1
        assert north.flits_sent == 0


class TestWormhole:
    def test_body_follows_head_route(self):
        sw = make_switch(position=(1, 1))
        east = sw.out_links[Port.EAST]
        sw.accept(Port.LOCAL, head(dest=(2, 1), pid=7))
        sw.accept(Port.LOCAL, body(pid=7))
        sw.accept(Port.LOCAL, tail(pid=7))
        for cycle in range(3):
            for link in sw.out_links.values():
                link.begin_cycle()
            sw.arbitrate_and_send(cycle, lambda f: None)
        assert east.flits_sent == 3

    def test_output_locked_against_other_packet(self):
        sw = make_switch(position=(1, 1))
        east = sw.out_links[Port.EAST]
        # cycle 0: packet A's head is the only candidate → locks EAST
        sw.accept(Port.LOCAL, head(dest=(2, 1), pid=1))
        for link in sw.out_links.values():
            link.begin_cycle()
        sw.arbitrate_and_send(0, lambda f: None)
        assert sw.output_owner[(Port.EAST, 0)] == (Port.LOCAL, 0)
        # now a competing head arrives while A's body still flows
        sw.accept(Port.LOCAL, body(pid=1))
        sw.accept(Port.WEST, head(dest=(2, 1), pid=2))
        for link in sw.out_links.values():
            link.begin_cycle()
        sw.arbitrate_and_send(1, lambda f: None)
        # only packet A's flits have crossed; B's head is still queued
        assert east.flits_sent == 2
        assert not sw.queue(Port.WEST).empty

    def test_tail_releases_lock(self):
        sw = make_switch(position=(1, 1))
        east = sw.out_links[Port.EAST]
        sw.accept(Port.LOCAL, head(dest=(2, 1), pid=1))
        for link in sw.out_links.values():
            link.begin_cycle()
        sw.arbitrate_and_send(0, lambda f: None)  # A locks EAST
        sw.accept(Port.LOCAL, tail(pid=1, seq=1))
        sw.accept(Port.WEST, head(dest=(2, 1), pid=2))
        for cycle in range(1, 3):
            for link in sw.out_links.values():
                link.begin_cycle()
            sw.arbitrate_and_send(cycle, lambda f: None)
        assert east.flits_sent == 3  # A head, A tail, then B head
        assert sw.output_owner[(Port.EAST, 0)] == (Port.WEST, 0)

    def test_single_flit_packet_does_not_leave_lock(self):
        sw = make_switch(position=(1, 1))
        flit = Flit(packet_id=5, kind=FlitKind.HEAD_TAIL, src=(0, 0),
                    dest=(2, 1))
        sw.accept(Port.LOCAL, flit)
        for link in sw.out_links.values():
            link.begin_cycle()
        sw.arbitrate_and_send(0, lambda f: None)
        assert sw.output_owner[(Port.EAST, 0)] is None


class TestArbitration:
    def test_round_robin_alternates(self):
        sw = make_switch(position=(1, 1))
        east = sw.out_links[Port.EAST]
        # two single-flit streams competing for EAST
        for i in range(2):
            sw.accept(Port.WEST, Flit(packet_id=10 + i,
                                      kind=FlitKind.HEAD_TAIL,
                                      src=(0, 1), dest=(2, 1)))
            sw.accept(Port.SOUTH, Flit(packet_id=20 + i,
                                       kind=FlitKind.HEAD_TAIL,
                                       src=(1, 0), dest=(2, 1)))
        winners = []
        for cycle in range(4):
            for link in sw.out_links.values():
                link.begin_cycle()
            before = east.flits_sent
            sw.arbitrate_and_send(cycle, lambda f: None)
            if east.flits_sent > before:
                winners.append(east._in_flight[-1][1].packet_id // 10)
        assert sorted(winners) == [1, 1, 2, 2]
        assert winners[0] != winners[1]  # alternation, not starvation

    def test_conflict_counter(self):
        sw = make_switch(position=(1, 1))
        sw.accept(Port.WEST, Flit(packet_id=1, kind=FlitKind.HEAD_TAIL,
                                  src=(0, 1), dest=(2, 1)))
        sw.accept(Port.SOUTH, Flit(packet_id=2, kind=FlitKind.HEAD_TAIL,
                                   src=(1, 0), dest=(2, 1)))
        for link in sw.out_links.values():
            link.begin_cycle()
        sw.arbitrate_and_send(0, lambda f: None)
        assert sw.arbitration_conflicts == 1


class TestBackpressure:
    def test_flit_stays_when_link_full(self):
        sw = make_switch(position=(1, 1))
        east = sw.out_links[Port.EAST]
        # saturate the link (capacity 8)
        east.begin_cycle()
        for i in range(8):
            east.begin_cycle()
            east.try_send(f"x{i}", 0)
        sw.accept(Port.LOCAL, head(dest=(2, 1)))
        east.begin_cycle()
        sw.arbitrate_and_send(0, lambda f: None)
        assert not sw.queue(Port.LOCAL).empty  # still waiting

    def test_missing_link_raises(self):
        topo = Topology(3, 3)
        sw = Switch((1, 1), lambda c, d: next_hop(c, d, topo))
        sw.accept(Port.LOCAL, head(dest=(2, 1)))
        with pytest.raises(RuntimeError):
            sw.arbitrate_and_send(0, lambda f: None)
