"""Tests for the paper-experiment modules: every check must pass.

These are the reproduction's acceptance tests — each experiment compares
its regenerated rows against the numbers printed in the paper and the
assertions here fail if any drifts outside its documented tolerance.
"""

import pytest

from repro.experiments import (
    ablation,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    run_all,
    table1,
    table2,
    throughput,
)
from repro.experiments.common import Check, ExperimentResult


class TestCheck:
    def test_two_sided(self):
        assert Check("x", 100, 100, 0.01).ok
        assert Check("x", 100.5, 100, 0.01).ok
        assert not Check("x", 105, 100, 0.01).ok

    def test_at_least_mode(self):
        assert Check("x", 2.0, 1.05, 0.0, mode="at_least").ok
        assert not Check("x", 1.0, 1.05, 0.0, mode="at_least").ok

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            Check("x", 1, 1, 0.1, mode="roughly")

    def test_row_rendering(self):
        row = Check("thing", 1.0, 2.0, 0.1).row()
        assert row[0] == "thing"
        assert row[-1] == "FAIL"


class TestAnalyticalExperiments:
    """Fast (no gate-level simulation) experiments."""

    @pytest.mark.parametrize(
        "module", [fig10, fig11, fig12, fig13, table1, table2]
    )
    def test_all_checks_pass(self, module):
        result = module.run()
        assert result.all_ok, [c.row() for c in result.failures()]

    def test_fig14_analytical(self):
        result = fig14.run(with_activity=False)
        assert result.all_ok, [c.row() for c in result.failures()]

    def test_throughput_analytic_only(self):
        result = throughput.run(simulate=False)
        assert result.all_ok, [c.row() for c in result.failures()]

    def test_wirelength_analytic_only(self):
        from repro.experiments import wirelength

        result = wirelength.run(simulate=False)
        assert result.all_ok, [c.row() for c in result.failures()]

    def test_render_contains_table(self):
        result = fig12.run()
        text = result.render()
        assert "Fig 12" in text
        assert "paper-vs-measured" in text

    def test_results_expose_rows(self):
        result = fig10.run()
        assert isinstance(result, ExperimentResult)
        assert len(result.rows) > 0
        assert len(result.headers) == len(result.rows[0])


class TestSimulatedExperiments:
    """Gate-level simulation experiments (slower)."""

    def test_throughput_with_simulation(self):
        result = throughput.run(simulate=True)
        assert result.all_ok, [c.row() for c in result.failures()]

    def test_wirelength_with_simulation(self):
        from repro.experiments import wirelength

        result = wirelength.run(simulate=True, n_flits=12,
                                segment_delays_ps=(0, 150))
        assert result.all_ok, [c.row() for c in result.failures()]

    def test_ablation_buffer_count(self):
        result = ablation.buffer_count_study()
        assert result.all_ok

    def test_ablation_serialization_sweep(self):
        result = ablation.serialization_sweep()
        assert result.all_ok
        assert len(result.rows) == 5

    def test_ablation_early_ack(self):
        result = ablation.early_ack_study(n_flits=12)
        assert result.all_ok, [c.row() for c in result.failures()]


class TestRunAll:
    def test_fast_mode_covers_every_artifact(self):
        results = run_all(simulate=False)
        assert set(results) == {
            "fig10", "fig11", "fig12", "fig13", "fig14",
            "table1", "table2", "throughput", "wirelength",
        }
        for key, result in results.items():
            assert result.all_ok, (key, [c.row() for c in result.failures()])
