"""Unit tests for the power models (Figs 12–14)."""

import pytest

from repro.analysis import (
    buffer_sweep,
    link_power_uw,
    measure_link_activity,
    power_breakdown,
    power_saving_percent,
)
from repro.tech import st012


class TestAnalyticalPowerAnchors:
    """Every power number the paper publishes, within 2 %."""

    @pytest.mark.parametrize(
        "kind,n,freq,paper",
        [
            ("I1", 2, 100, 372.0),
            ("I1", 8, 100, 1498.0),
            ("I1", 8, 300, 3229.0),
            ("I2", 2, 100, 589.0),
            ("I2", 8, 100, 712.0),
            ("I3", 2, 100, 623.0),
            ("I3", 8, 100, 637.0),
            ("I3", 8, 300, 1110.0),
        ],
    )
    def test_published_point(self, kind, n, freq, paper):
        value = link_power_uw(st012(), kind, n, freq, usage=0.5)
        assert value == pytest.approx(paper, rel=0.02)

    def test_headline_65_percent_saving(self):
        saving = power_saving_percent(st012())
        assert saving == pytest.approx(65.0, abs=2.0)

    def test_i1_growth_300_percent(self):
        tech = st012()
        growth = (
            link_power_uw(tech, "I1", 8, 100) / link_power_uw(tech, "I1", 2, 100)
        )
        assert growth == pytest.approx(4.0, rel=0.03)  # +300 %

    def test_i2_growth_20_percent(self):
        tech = st012()
        growth = (
            link_power_uw(tech, "I2", 8, 100) / link_power_uw(tech, "I2", 2, 100)
        )
        assert growth == pytest.approx(1.20, abs=0.03)

    def test_i3_growth_2_percent(self):
        tech = st012()
        growth = (
            link_power_uw(tech, "I3", 8, 100) / link_power_uw(tech, "I3", 2, 100)
        )
        assert growth == pytest.approx(1.02, abs=0.01)


class TestPowerShape:
    def test_sync_crossover_at_small_buffer_count(self):
        """With few buffers the synchronous link is cheaper (paper text)."""
        tech = st012()
        assert (link_power_uw(tech, "I1", 2, 100)
                < link_power_uw(tech, "I2", 2, 100))
        assert (link_power_uw(tech, "I1", 8, 100)
                > link_power_uw(tech, "I2", 8, 100))

    def test_sync_power_scales_with_frequency(self):
        tech = st012()
        assert (link_power_uw(tech, "I1", 4, 300)
                > 2 * link_power_uw(tech, "I1", 4, 100))

    def test_usage_increases_power(self):
        tech = st012()
        assert (link_power_uw(tech, "I3", 4, 100, usage=1.0)
                > link_power_uw(tech, "I3", 4, 100, usage=0.25))

    def test_validation(self):
        tech = st012()
        with pytest.raises(ValueError):
            link_power_uw(tech, "I3", 4, 100, usage=1.5)
        with pytest.raises(ValueError):
            link_power_uw(tech, "I3", 0, 100)
        with pytest.raises(ValueError):
            link_power_uw(tech, "I9", 4, 100)


class TestBreakdown:
    def test_fig14_buffer_bars(self):
        tech = st012()
        i2 = power_breakdown(tech, "I2", 4, 100, 0.5)
        i3 = power_breakdown(tech, "I3", 4, 100, 0.5)
        assert i2["Buffers"] == pytest.approx(82.0, rel=0.02)
        assert i3["Buffers"] == pytest.approx(9.0, rel=0.05)

    def test_conversion_dominates_async_links(self):
        tech = st012()
        for kind in ("I2", "I3"):
            bars = power_breakdown(tech, kind, 4, 100, 0.5)
            conv = bars["Asynch Synch Conv."]
            assert conv > bars["Ser/Des"]
            assert conv > bars["Buffers"]

    def test_i3_serdes_exceeds_i2_serdes(self):
        """Shift-register deserializer clocks all registers per slice."""
        tech = st012()
        i2 = power_breakdown(tech, "I2", 4, 100, 0.5)["Ser/Des"]
        i3 = power_breakdown(tech, "I3", 4, 100, 0.5)["Ser/Des"]
        assert i3 > i2

    def test_i1_power_is_all_buffers(self):
        bars = power_breakdown(st012(), "I1", 4, 100, 0.5)
        assert bars["Ser/Des"] == 0.0
        assert bars["Asynch Synch Conv."] == 0.0
        assert bars["Buffers"] > 0

    def test_i2_i3_totals_similar(self):
        """Paper: 'overall power used is similar' at 4 buffers."""
        tech = st012()
        i2 = sum(power_breakdown(tech, "I2", 4, 100, 0.5).values())
        i3 = sum(power_breakdown(tech, "I3", 4, 100, 0.5).values())
        assert i2 == pytest.approx(i3, rel=0.05)


class TestBufferSweep:
    def test_curve_labels(self):
        curves = buffer_sweep(st012(), 100)
        assert set(curves) == {"I1-Synch", "I2-Asynch", "I3-Asynch"}

    def test_points_are_pairs(self):
        curves = buffer_sweep(st012(), 100, buffer_counts=(2, 8))
        assert curves["I1-Synch"][0][0] == 2
        assert curves["I1-Synch"][1][0] == 8


class TestActivityMeasurement:
    """Gate-level shape checks (the non-analytical power path)."""

    def test_i2_buffers_switch_much_more_than_i3(self):
        i2 = measure_link_activity("I2", n_flits=12)
        i3 = measure_link_activity("I3", n_flits=12)
        assert i2.per_flit("buffers") > 3 * i3.per_flit("buffers")

    def test_i1_buffer_activity_grows_with_count(self):
        a2 = measure_link_activity("I1", n_buffers=2, n_flits=12)
        a8 = measure_link_activity("I1", n_buffers=8, n_flits=12)
        assert a8.per_flit("buffers") > 2 * a2.per_flit("buffers")

    def test_async_buffer_activity_flat_with_count(self):
        """I3's repeater activity per flit grows only mildly with
        stations (wire capacitance), unlike I1's register stages."""
        a2 = measure_link_activity("I3", n_buffers=2, n_flits=12)
        a8 = measure_link_activity("I3", n_buffers=8, n_flits=12)
        i1_2 = measure_link_activity("I1", n_buffers=2, n_flits=12)
        i1_8 = measure_link_activity("I1", n_buffers=8, n_flits=12)
        i3_growth = a8.total_per_flit / a2.total_per_flit
        i1_growth = i1_8.total_per_flit / i1_2.total_per_flit
        assert i3_growth < i1_growth

    def test_report_fields(self):
        report = measure_link_activity("I3", n_flits=8)
        assert report.kind == "I3"
        assert report.flits == 8
        assert report.total_per_flit > 0
        assert set(report.transitions_by_group) == set(
            report.switched_by_group
        )
