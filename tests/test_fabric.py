"""Tests for the distributed sweep fabric.

Covers the four layers separately and then together: the
capacity-limited dispatcher (pure threading), the file-lease protocol
(claim / renew / stale takeover / idempotent publish), the journal
merge-and-rewrite primitives the fabric's byte-identity contract rests
on, and the coordinator + worker loop end to end — including the case
the fabric exists for: a worker SIGKILLed mid-lease, its item
re-leased, and the finished sweep still byte-identical to a serial
run.
"""

import json
import os
import signal
import sys
import threading
import time

import pytest

from repro.fabric import (
    CapacityDispatcher,
    FabricError,
    FileTransport,
    LeaseRecord,
    plan_fabric,
    run_fabric_sweep,
    run_worker,
)
from repro.fabric.coordinator import _worker_env
from repro.fabric.transport import item_id
from repro.obs import analyze as obs_analyze
from repro.runner import engine, registry
from repro.store import codec
from repro.store import journal as journal_mod
from repro.store.journal import Journal
from repro.store.store import request_key


@pytest.fixture(autouse=True)
def _builtin():
    registry.load_builtin()


def _grid(n):
    """``n`` points of the no-op scenario (16-lane batch items)."""
    return [
        engine.RunRequest.create("sweep-noop", {"point": i})
        for i in range(n)
    ]


def _canonical(outcomes):
    return [
        json.dumps(
            codec.strip_volatile(codec.outcome_to_record(o)),
            sort_keys=True,
        )
        for o in outcomes
    ]


# ----------------------------------------------------------------------
class TestCapacityDispatcher:
    def test_result_and_exception_pass_through(self):
        dispatcher = CapacityDispatcher(capacity=2)
        ok = dispatcher.submit(lambda: 41 + 1)
        assert ok.result(timeout=5.0) == 42

        def boom():
            raise ValueError("no")

        bad = dispatcher.submit(boom)
        with pytest.raises(ValueError, match="no"):
            bad.result(timeout=5.0)
        assert isinstance(bad.exception, ValueError)
        dispatcher.drain(timeout=5.0)

    def test_unfinished_result_times_out(self):
        dispatcher = CapacityDispatcher(capacity=1)
        gate = threading.Event()
        handle = dispatcher.submit(gate.wait)
        with pytest.raises(TimeoutError):
            handle.result(timeout=0.05)
        gate.set()
        assert handle.result(timeout=5.0) is True
        dispatcher.drain(timeout=5.0)

    def test_at_most_capacity_run_concurrently(self):
        dispatcher = CapacityDispatcher(capacity=2)
        lock = threading.Lock()
        running = [0]
        peak = [0]
        release = threading.Event()

        def task():
            with lock:
                running[0] += 1
                peak[0] = max(peak[0], running[0])
            release.wait(5.0)
            with lock:
                running[0] -= 1

        handles = [dispatcher.submit(task) for _ in range(5)]
        time.sleep(0.1)  # let the first wave start
        assert peak[0] <= 2
        release.set()
        for handle in handles:
            handle.result(timeout=5.0)
        assert peak[0] == 2
        dispatcher.drain(timeout=5.0)

    def test_failures_in_submission_order(self):
        dispatcher = CapacityDispatcher(capacity=2)

        def boom(msg):
            def inner():
                raise ValueError(msg)
            return inner

        first = dispatcher.submit(boom("first"))
        ok = dispatcher.submit(lambda: 42)
        second = dispatcher.submit(boom("second"))
        dispatcher.drain(timeout=5.0)
        failed = dispatcher.failures()
        assert failed == [first, second]
        assert ok not in failed
        assert str(failed[0].exception) == "first"

    def test_done_callback_fires(self):
        dispatcher = CapacityDispatcher(capacity=1)
        seen = []
        handle = dispatcher.submit(lambda: "x")
        handle.result(timeout=5.0)
        handle.add_done_callback(seen.append)  # already done: immediate
        assert seen == [handle]
        dispatcher.drain(timeout=5.0)


# ----------------------------------------------------------------------
class TestLeaseProtocol:
    def test_claim_is_exclusive(self, tmp_path):
        transport = FileTransport(tmp_path)
        lease = transport.try_claim("item-000000", "wk-a", ttl=30.0)
        assert lease is not None and lease.attempt == 1
        assert transport.try_claim("item-000000", "wk-b", ttl=30.0) is None

    def test_renew_requires_ownership(self, tmp_path):
        transport = FileTransport(tmp_path)
        transport.try_claim("item-000000", "wk-a", ttl=30.0)
        assert transport.renew("item-000000", "wk-a", ttl=30.0) is True
        assert transport.renew("item-000000", "wk-b", ttl=30.0) is False

    def test_release_by_stranger_keeps_lease(self, tmp_path):
        transport = FileTransport(tmp_path)
        transport.try_claim("item-000000", "wk-a", ttl=30.0)
        transport.release("item-000000", "wk-b")
        assert transport.lease("item-000000").owner == "wk-a"
        transport.release("item-000000", "wk-a")
        assert transport.lease("item-000000") is None

    def test_stale_lease_takeover(self, tmp_path):
        transport = FileTransport(tmp_path)
        # a worker that died long ago: deadline safely past the grace
        dead = LeaseRecord(
            item="item-000000", owner="wk-dead",
            deadline=time.time() - 60.0, attempt=1,
        )
        transport._write_atomic(
            transport._lease_path("item-000000"), dead.to_json()
        )
        taken = transport.try_claim("item-000000", "wk-b", ttl=30.0)
        assert taken is not None
        assert taken.owner == "wk-b"
        assert taken.attempt == 2
        assert transport.lease("item-000000").owner == "wk-b"

    def test_live_lease_not_taken_over(self, tmp_path):
        transport = FileTransport(tmp_path)
        transport.try_claim("item-000000", "wk-a", ttl=30.0)
        assert transport.try_claim("item-000000", "wk-b", ttl=1.0) is None

    def test_publish_is_idempotent_first_wins(self, tmp_path):
        transport = FileTransport(tmp_path)
        assert transport.publish_result(7, {"who": "first"}) is True
        assert transport.publish_result(7, {"who": "second"}) is False
        assert transport.read_result(7) == {"who": "first"}
        assert transport.result_indices() == {7}

    def test_corrupt_lease_reads_as_absent(self, tmp_path):
        transport = FileTransport(tmp_path)
        path = transport._lease_path("item-000000")
        path.parent.mkdir(parents=True)
        path.write_text("not json{")
        assert transport.lease("item-000000") is None
        # and the slot is claimable despite the debris
        assert transport.try_claim(
            "item-000000", "wk-a", ttl=30.0
        ) is not None


# ----------------------------------------------------------------------
class TestPlan:
    def test_plan_roundtrip_and_reuse(self, tmp_path):
        transport = FileTransport(tmp_path)
        requests = _grid(20)
        plan = plan_fabric(transport, "sweep-noop", requests)
        # 20 points, 16 lanes: one full batch and one remainder
        assert [len(i["indices"]) for i in plan["items"]] == [16, 4]
        again = plan_fabric(transport, "sweep-noop", requests)
        assert again == plan

    def test_different_grid_rejected(self, tmp_path):
        transport = FileTransport(tmp_path)
        plan_fabric(transport, "sweep-noop", _grid(4))
        with pytest.raises(FabricError, match="different plan"):
            plan_fabric(transport, "sweep-noop", _grid(5))


# ----------------------------------------------------------------------
class TestJournalPrimitives:
    def _outcomes(self, n=3):
        return engine.execute(_grid(n), jobs=1)

    def test_rewrite_matches_incremental_append(self, tmp_path):
        outcomes = self._outcomes()
        appended = Journal(tmp_path / "a.jsonl")
        appended.start("sweep-noop", "fp")
        for outcome in outcomes:
            appended.append(outcome)
        rewritten = Journal(tmp_path / "b.jsonl")
        rewritten.rewrite("sweep-noop", outcomes, "fp")
        assert (
            appended.path.read_bytes() == rewritten.path.read_bytes()
        )

    def test_merge_segments_first_segment_wins(self, tmp_path):
        outcomes = self._outcomes(3)
        seg_a = Journal(tmp_path / "a" / "journal.jsonl")
        seg_a.path.parent.mkdir(parents=True)
        seg_a.start("sweep-noop", "fp")
        seg_a.append(outcomes[0])
        seg_a.append(outcomes[1])
        seg_b = Journal(tmp_path / "b" / "journal.jsonl")
        seg_b.path.parent.mkdir(parents=True)
        seg_b.start("sweep-noop", "fp")
        seg_b.append(outcomes[1])  # duplicate of a's point
        seg_b.append(outcomes[2])
        merged = journal_mod.merge_segments(
            [seg_a.path, seg_b.path]
        )
        assert len(merged) == 3
        keys = {request_key(o.request) for o in outcomes}
        assert set(merged) == keys

    def test_merge_skips_unreadable_segment(self, tmp_path):
        outcomes = self._outcomes(2)
        good = Journal(tmp_path / "good" / "journal.jsonl")
        good.path.parent.mkdir(parents=True)
        good.start("sweep-noop", "fp")
        for outcome in outcomes:
            good.append(outcome)
        bad = tmp_path / "bad" / "journal.jsonl"
        bad.parent.mkdir(parents=True)
        bad.write_text("torn garbage\n")
        merged = journal_mod.merge_segments([bad, good.path])
        assert len(merged) == 2


# ----------------------------------------------------------------------
class TestFabricSweep:
    def _worker_thread(self, transport, wid, **kwargs):
        kwargs.setdefault("lease_ttl", 10.0)
        kwargs.setdefault("poll_s", 0.01)
        kwargs.setdefault("plan_timeout", 30.0)
        thread = threading.Thread(
            target=run_worker,
            args=(transport,),
            kwargs=dict(worker_id=wid, **kwargs),
            daemon=True,
        )
        thread.start()
        return thread

    def test_two_workers_match_serial_engine(self, tmp_path):
        requests = _grid(40)
        serial = engine.execute(requests, jobs=1)
        transport = FileTransport(tmp_path)
        threads = [
            self._worker_thread(transport, f"wk-t{i}") for i in range(2)
        ]
        seen = []
        result = run_fabric_sweep(
            transport, "sweep-noop", requests,
            workers=0, poll_s=0.01, timeout=60.0,
            on_outcome=seen.append,
        )
        for thread in threads:
            thread.join(timeout=10.0)
        # return order is request order; callback saw each point once
        assert _canonical(result.outcomes) == _canonical(serial)
        assert sorted(_canonical(seen)) == sorted(_canonical(serial))
        # both workers left journal + telemetry segments behind
        assert len(transport.segment_journals()) == 2
        assert len(transport.segment_streams()) == 2

    def test_worker_takes_over_expired_lease(self, tmp_path):
        requests = _grid(4)  # one batch item
        transport = FileTransport(tmp_path)
        plan_fabric(transport, "sweep-noop", requests)
        dead = LeaseRecord(
            item=item_id(0), owner="wk-dead",
            deadline=time.time() - 60.0, attempt=1,
        )
        transport._write_atomic(
            transport._lease_path(item_id(0)), dead.to_json()
        )
        stats = run_worker(
            transport, worker_id="wk-live", once=True, lease_ttl=10.0
        )
        assert stats.claimed == 1
        assert stats.takeovers == 1
        assert stats.executed_points == 4
        assert transport.result_indices() == {0, 1, 2, 3}

    def test_coordinator_salvages_journaled_work(self, tmp_path):
        requests = _grid(4)  # one batch item
        outcomes = engine.execute(requests, jobs=1)
        transport = FileTransport(tmp_path)
        plan_fabric(transport, "sweep-noop", requests)
        # the "dead" worker journaled everything but only published
        # points 1-3 before dying mid-lease
        segment = Journal(
            transport.worker_dir("wk-dead") / "journal.jsonl"
        )
        segment.start("sweep-noop", "fp")
        for outcome in outcomes:
            segment.append(outcome)
        for index in (1, 2, 3):
            record = codec.outcome_to_record(outcomes[index])
            record["key"] = request_key(outcomes[index].request)
            transport.publish_result(index, record)
        dead = LeaseRecord(
            item=item_id(0), owner="wk-dead",
            deadline=time.time() - 60.0, attempt=1,
        )
        transport._write_atomic(
            transport._lease_path(item_id(0)), dead.to_json()
        )
        result = run_fabric_sweep(
            transport, "sweep-noop", requests,
            workers=0, poll_s=0.01, timeout=30.0,
        )
        assert result.salvaged == 1
        assert result.expired_leases == 1
        assert _canonical(result.outcomes) == _canonical(outcomes)
        assert transport.lease(item_id(0)) is None

    def test_duplicate_execution_publishes_once(self, tmp_path):
        # one batch item covering indices 0-3; index 0 was already
        # published (a racing worker got there first), so the item is
        # still "missing" and gets re-executed — but the re-publish of
        # index 0 must lose to the existing record
        requests = _grid(4)
        transport = FileTransport(tmp_path)
        plan_fabric(transport, "sweep-noop", requests)
        outcome = engine.execute(requests[:1], jobs=1)[0]
        record = codec.outcome_to_record(outcome)
        record["key"] = request_key(outcome.request)
        record["worker"] = "wk-first"
        transport.publish_result(0, record)
        stats = run_worker(transport, worker_id="wk-b", once=True)
        assert stats.executed_points == 4
        assert stats.published == 3
        assert stats.duplicate_results == 1
        assert transport.read_result(0)["worker"] == "wk-first"
        assert transport.result_indices() == {0, 1, 2, 3}

    def test_telemetry_aggregates_worker_segments(self, tmp_path):
        requests = _grid(20)  # two items: one per worker (mostly)
        transport = FileTransport(tmp_path)
        threads = [
            self._worker_thread(transport, f"wk-t{i}") for i in range(2)
        ]
        run_fabric_sweep(
            transport, "sweep-noop", requests,
            workers=0, poll_s=0.01, timeout=60.0,
        )
        for thread in threads:
            thread.join(timeout=30.0)
            # a straggler would keep appending to its telemetry
            # segment while summarize() reads it — fail loudly instead
            assert not thread.is_alive(), "worker thread never exited"
        report = obs_analyze.summarize(tmp_path)
        assert report.total == 20
        assert report.jobs == len(report.worker_rows)
        assert sum(r["points"] for r in report.worker_rows) == 20
        assert "workers" in report.to_json()
        assert report.to_csv().splitlines()[0].endswith(",worker")


# ----------------------------------------------------------------------
_CRASH_ONCE_WORKER = """\
import os, signal, sys, time

sys.path.insert(0, sys.argv[3])
from repro.fabric.transport import FileTransport, item_id
from repro.fabric.worker import run_worker

root, marker = sys.argv[1], sys.argv[2]
if os.path.exists(marker):
    # the respawn: behave like a normal worker and finish the plan
    run_worker(root, lease_ttl=5.0, poll_s=0.05, plan_timeout=30.0)
    sys.exit(0)
with open(marker, "w") as fh:
    fh.write("crashed\\n")
transport = FileTransport(root)
while transport.read_plan() is None:
    time.sleep(0.05)
# die holding a short lease: the classic mid-item worker death
transport.try_claim(item_id(0), "wk-doomed", 0.2)
os.kill(os.getpid(), signal.SIGKILL)
"""


class TestWorkerDeathRecovery:
    def test_sigkilled_worker_is_replaced_and_item_releases(
        self, tmp_path
    ):
        """SIGKILL a worker holding a lease: the supervisor respawns
        the slot, the coordinator expires and breaks the dead lease,
        and the finished sweep matches a serial run exactly."""
        import subprocess

        script = tmp_path / "crash_once_worker.py"
        script.write_text(_CRASH_ONCE_WORKER)
        marker = tmp_path / "crashed.marker"
        fabric_dir = tmp_path / "fabric"
        fabric_dir.mkdir()
        from pathlib import Path

        src_root = str(Path(engine.__file__).resolve().parents[2])
        env = _worker_env()

        def spawn(index):
            return subprocess.Popen(
                [
                    sys.executable, str(script), str(fabric_dir),
                    str(marker), src_root,
                ],
                env=env,
                stdout=subprocess.DEVNULL,
            )

        requests = _grid(20)
        serial = engine.execute(requests, jobs=1)
        result = run_fabric_sweep(
            fabric_dir, "sweep-noop", requests,
            workers=1, lease_ttl=0.5, poll_s=0.05, timeout=120.0,
            spawn=spawn,
        )
        assert marker.exists()  # the first incarnation really died
        assert result.worker_restarts >= 1
        # the dead worker's lease was recovered by whichever side won
        # the race — the coordinator breaking it or the respawned
        # worker taking it over (both paths have deterministic unit
        # tests above); either way nothing is left leased and the
        # doomed worker published nothing
        transport = FileTransport(fabric_dir)
        assert transport.leases() == {}
        record = transport.read_result(0)
        assert record["worker"] != "wk-doomed"
        assert _canonical(result.outcomes) == _canonical(serial)
