"""Packet-integrity tests: payloads, ordering, and cross-layer composition.

The statistics module counts flits; these tests check the *contents*:
every packet's flits arrive complete, in order, with untouched payloads
— both through the behavioural NoC and through the gate-level link
(composing the two layers of the reproduction).
"""

from collections import defaultdict

import pytest

from repro.link import LinkConfig, LinkTestbench, build_i3
from repro.link.behavioral import derive_link_params
from repro.noc import (
    Flit,
    Network,
    Packet,
    Topology,
    TrafficConfig,
    TrafficGenerator,
    reset_packet_ids,
)
from repro.sim import Clock, Simulator
from repro.tech import st012


@pytest.fixture(autouse=True)
def fresh_ids():
    reset_packet_ids()


def eject_spy(net):
    """Capture every ejected flit grouped by packet."""
    captured = defaultdict(list)
    original = net._eject

    def spy(flit: Flit) -> None:
        captured[flit.packet_id].append(flit)
        original(flit)

    net._eject = spy
    return captured


class TestPayloadIntegrityInMesh:
    def test_flits_arrive_in_sequence_order(self):
        topo = Topology(4, 4)
        net = Network(topo, derive_link_params(st012(), "I3", 300))
        packets = [
            Packet(src=(0, 0), dest=(3, 3), length_flits=5, payload_base=100),
            Packet(src=(3, 3), dest=(0, 0), length_flits=5, payload_base=200),
            Packet(src=(0, 3), dest=(3, 0), length_flits=5, payload_base=300),
        ]
        captured = eject_spy(net)
        for p in packets:
            net.offer_packet(p)
        net.drain()
        for p in packets:
            flits = captured[p.packet_id]
            assert [f.seq for f in flits] == [0, 1, 2, 3, 4]
            assert [f.payload for f in flits] == [
                p.payload_base + i for i in range(5)
            ]

    def test_no_cross_packet_mixing_under_contention(self):
        """Heavy uniform traffic: per-packet flit order is preserved even
        when many packets interleave in the switches."""
        topo = Topology(4, 4)
        net = Network(topo, derive_link_params(st012(), "I2", 300))
        captured = eject_spy(net)
        traffic = TrafficGenerator(
            topo,
            TrafficConfig(injection_rate=0.3, packet_length=6, seed=21),
        )
        net.run(600, traffic)
        net.drain(max_cycles=200_000)
        assert len(captured) > 20
        for pid, flits in captured.items():
            assert [f.seq for f in flits] == sorted(f.seq for f in flits)
            assert len(flits) == 6

    def test_destinations_correct(self):
        topo = Topology(4, 4)
        net = Network(topo, derive_link_params(st012(), "I1", 300))
        dest_seen = {}
        original = net._eject

        def spy(flit):
            dest_seen[flit.packet_id] = flit.dest
            original(flit)

        net._eject = spy
        traffic = TrafficGenerator(
            topo, TrafficConfig(injection_rate=0.1, seed=31)
        )
        net.run(400, traffic)
        net.drain()
        # every flit must have been ejected at its destination switch:
        # since _eject is only called by the destination's LOCAL port,
        # verify via the network's switches — any misroute would have
        # left the flit circulating and drain() would hang instead.
        assert dest_seen  # some traffic flowed


class TestGateLevelPacketTransport:
    def test_packet_flits_survive_gate_level_i3(self):
        """Compose the layers: encode a 3-packet wormhole stream as raw
        32-bit flit words, push them through the *gate-level* I3 link,
        and rebuild the packets on the far side."""
        packets = [
            Packet(src=(0, 0), dest=(1, 0), length_flits=4,
                   payload_base=0x1000 * (i + 1))
            for i in range(3)
        ]
        words = []
        for p in packets:
            for f in p.flits():
                # [pid:8 | seq:8 | payload:16] — a toy wire encoding
                words.append(
                    ((p.packet_id & 0xFF) << 24)
                    | ((f.seq & 0xFF) << 16)
                    | (f.payload & 0xFFFF)
                )
        sim = Simulator()
        clock = Clock.from_mhz(sim, 300)
        link = build_i3(sim, clock.signal, LinkConfig())
        bench = LinkTestbench(sim, clock, link)
        m = bench.run(words, timeout_ns=1e6)
        assert m.received_values == words
        # decode and regroup
        regrouped = defaultdict(list)
        for word in m.received_values:
            regrouped[word >> 24].append((word >> 16) & 0xFF)
        for p in packets:
            assert regrouped[p.packet_id & 0xFF] == [0, 1, 2, 3]
