"""Unit tests for signals and buses."""

import pytest

from repro.sim import Bus, Signal, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestSignal:
    def test_initial_value(self, sim):
        assert Signal(sim, "s").value == 0
        assert Signal(sim, "s", init=1).value == 1

    def test_rejects_bad_init(self, sim):
        with pytest.raises(ValueError):
            Signal(sim, "s", init=2)

    def test_set_changes_value(self, sim):
        sig = Signal(sim, "s")
        sig.set(1)
        assert sig.value == 1
        sig.set(0)
        assert sig.value == 0

    def test_set_normalizes_truthy(self, sim):
        sig = Signal(sim, "s")
        sig.set(5)
        assert sig.value == 1

    def test_transition_counting(self, sim):
        sig = Signal(sim, "s")
        sig.set(1)
        sig.set(0)
        sig.set(1)
        assert sig.rising == 2
        assert sig.falling == 1
        assert sig.transitions == 3

    def test_redundant_set_does_not_count(self, sim):
        sig = Signal(sim, "s")
        sig.set(0)
        sig.set(0)
        assert sig.transitions == 0

    def test_reset_activity(self, sim):
        sig = Signal(sim, "s")
        sig.set(1)
        sig.reset_activity()
        assert sig.transitions == 0

    def test_listener_called_on_change(self, sim):
        sig = Signal(sim, "s")
        calls = []
        sig.on_change(lambda s: calls.append(s.value))
        sig.set(1)
        sig.set(1)  # no change, no call
        sig.set(0)
        assert calls == [1, 0]

    def test_remove_listener(self, sim):
        sig = Signal(sim, "s")
        calls = []
        listener = lambda s: calls.append(s.value)  # noqa: E731
        sig.on_change(listener)
        sig.set(1)
        sig.remove_listener(listener)
        sig.set(0)
        assert calls == [1]

    def test_drive_with_delay(self, sim):
        sig = Signal(sim, "s")
        sig.drive(1, delay=100)
        assert sig.value == 0
        sim.run()
        assert sig.value == 1
        assert sim.now == 100

    def test_inertial_drive_cancels_pending(self, sim):
        sig = Signal(sim, "s")
        sig.drive(1, delay=100, inertial=True)
        sig.drive(0, delay=50, inertial=True)  # cancels the first
        sim.run()
        assert sig.value == 0
        assert sig.rising == 0  # the 1-pulse never appeared

    def test_transport_drive_keeps_all_events(self, sim):
        sig = Signal(sim, "s")
        sig.drive(1, delay=50, inertial=False)
        sig.drive(0, delay=100, inertial=False)
        sim.run()
        assert sig.value == 0
        assert sig.rising == 1
        assert sig.falling == 1

    def test_pulse(self, sim):
        sig = Signal(sim, "s")
        sig.pulse(width=30, delay=10)
        edges = []
        sig.on_change(lambda s: edges.append((sim.now, s.value)))
        sim.run()
        assert edges == [(10, 1), (40, 0)]

    def test_trace_records_changes(self, sim):
        sig = Signal(sim, "s")
        sig.enable_trace()
        sig.set(1)
        sig.drive(0, delay=20)
        sim.run()
        assert sig.trace == [(0, 0), (0, 1), (20, 0)]

    def test_listeners_may_add_listeners(self, sim):
        """A gate constructed inside a callback must not break iteration."""
        sig = Signal(sim, "s")
        calls = []

        def adder(s):
            calls.append("outer")
            sig.on_change(lambda s2: calls.append("inner"))

        sig.on_change(adder)
        sig.set(1)  # must not raise
        assert calls == ["outer"]


class TestBus:
    def test_width_and_value(self, sim):
        bus = Bus(sim, 8, "b", init=0xA5)
        assert len(bus) == 8
        assert bus.value == 0xA5

    def test_rejects_bad_width(self, sim):
        with pytest.raises(ValueError):
            Bus(sim, 0, "b")

    def test_rejects_init_overflow(self, sim):
        with pytest.raises(ValueError):
            Bus(sim, 4, "b", init=16)

    def test_set_value(self, sim):
        bus = Bus(sim, 32, "b")
        bus.set(0xDEADBEEF)
        assert bus.value == 0xDEADBEEF

    def test_set_rejects_overflow(self, sim):
        bus = Bus(sim, 8, "b")
        with pytest.raises(ValueError):
            bus.set(256)
        with pytest.raises(ValueError):
            bus.set(-1)

    def test_drive_with_delay(self, sim):
        bus = Bus(sim, 8, "b")
        bus.drive(0xFF, delay=10)
        sim.run()
        assert bus.value == 0xFF

    def test_bit_indexing_is_lsb_first(self, sim):
        bus = Bus(sim, 8, "b", init=0x01)
        assert bus[0].value == 1
        assert bus[7].value == 0

    def test_slice_matches_paper_notation(self, sim):
        """bus.slice(8, 15) is the paper's DIN(15:8)."""
        bus = Bus(sim, 32, "b", init=0x00A50000)
        byte2 = bus.slice(16, 23)
        value = sum(sig.value << i for i, sig in enumerate(byte2))
        assert value == 0xA5

    def test_slice_out_of_range(self, sim):
        bus = Bus(sim, 8, "b")
        with pytest.raises(ValueError):
            bus.slice(4, 8)
        with pytest.raises(ValueError):
            bus.slice(5, 4)

    def test_transitions_accumulate_over_bits(self, sim):
        bus = Bus(sim, 8, "b")
        bus.set(0xFF)  # 8 rising
        bus.set(0x00)  # 8 falling
        assert bus.transitions == 16

    def test_reset_activity(self, sim):
        bus = Bus(sim, 4, "b")
        bus.set(0xF)
        bus.reset_activity()
        assert bus.transitions == 0

    def test_worst_case_pattern_toggles_every_bit(self, sim):
        bus = Bus(sim, 32, "b")
        bus.set(0xA5A5A5A5)
        before = bus.transitions
        bus.set(0x5A5A5A5A)
        assert bus.transitions - before == 32

    def test_on_change_fires_per_bit(self, sim):
        bus = Bus(sim, 4, "b")
        calls = []
        bus.on_change(lambda s: calls.append(s.name))
        bus.set(0b0101)
        assert len(calls) == 2

    def test_from_signals_view(self, sim):
        bus = Bus(sim, 16, "b", init=0xBEEF)
        view = Bus.from_signals(sim, bus.slice(8, 15), "hi")
        assert view.width == 8
        assert view.value == 0xBE
        # the view aliases, so writes are visible through the parent
        view.set(0x12)
        assert bus.value == 0x12EF

    def test_from_signals_rejects_empty(self, sim):
        with pytest.raises(ValueError):
            Bus.from_signals(sim, [], "empty")


class TestForce:
    """Stuck-at fault injection / testbench overrides."""

    def test_force_pins_value(self, sim):
        sig = Signal(sim, "s")
        sig.force(1)
        sig.set(0)
        assert sig.value == 1
        assert sig.is_forced

    def test_drive_ignored_while_forced(self, sim):
        sig = Signal(sim, "s")
        sig.force(0)
        sig.drive(1, delay=50)
        sim.run()
        assert sig.value == 0

    def test_release_restores_drivers(self, sim):
        sig = Signal(sim, "s")
        sig.force(1)
        sig.release()
        sig.set(0)
        assert sig.value == 0
        assert not sig.is_forced

    def test_force_notifies_listeners(self, sim):
        sig = Signal(sim, "s")
        calls = []
        sig.on_change(lambda s: calls.append(s.value))
        sig.force(1)
        assert calls == [1]

    def test_force_same_value_is_silent(self, sim):
        sig = Signal(sim, "s", init=1)
        calls = []
        sig.on_change(lambda s: calls.append(s.value))
        sig.force(1)
        assert calls == []

    def test_force_is_atomic_to_listeners(self, sim):
        """Satellite regression: the seed cleared the force flag while
        notifying, so listeners observed a glitch ordering (an unforced
        net mid-force).  Listeners must see the force already applied."""
        sig = Signal(sim, "s")
        observed = []

        def listener(s):
            observed.append((s.value, s.is_forced))
            # a driver reacting inside the notification must not be able
            # to flip the net back mid-force
            s.set(0)

        sig.on_change(listener)
        sig.force(1)
        assert observed == [(1, True)]
        assert sig.value == 1

    def test_pending_drive_blocked_while_forced(self, sim):
        sig = Signal(sim, "s")
        sig.drive(1, delay=100, inertial=True)
        sig.force(0)
        sim.run()
        assert sig.value == 0  # the apply matured but was force-blocked

    def test_pending_drive_survives_force_released_before_maturity(self, sim):
        """Seed semantics: a drive in flight when the net is forced must
        still apply if the force is released before it matures."""
        sig = Signal(sim, "s")
        sig.drive(1, delay=100, inertial=True)
        sim.run(until=10)
        sig.force(0)
        sim.run(until=50)
        sig.release()
        sim.run()
        assert sig.value == 1

    def test_stuck_at_fault_through_gate_chain(self, sim):
        """Stuck-at fault injection: forcing a mid-chain net pins the
        chain output regardless of input activity; releasing restores
        normal propagation."""
        from repro.elements.gates import Inverter

        a = Signal(sim, "a")
        inv1 = Inverter(sim, a, name="inv1")
        inv2 = Inverter(sim, inv1.output, name="inv2")
        inv3 = Inverter(sim, inv2.output, name="inv3")
        sim.run()
        assert inv3.output.value == 1  # three inversions of 0

        inv2.output.force(0)  # stuck-at-0 on the middle net
        a.set(1)
        sim.run()
        assert inv2.output.value == 0
        assert inv3.output.value == 1  # follows the stuck net, not a

        a.set(0)
        sim.run()
        a.set(1)
        sim.run()
        assert inv3.output.value == 1  # still pinned

        inv2.output.release()
        a.set(0)
        sim.run()
        a.set(1)
        sim.run()
        # normal propagation again: inv2 = not(not 1) = 1 → inv3 = 0
        assert inv2.output.value == 1
        assert inv3.output.value == 0


class TestInertialCancellation:
    """Superseded inertial drives are cancelled at kernel level."""

    def test_superseded_drive_leaves_no_pending_event(self, sim):
        sig = Signal(sim, "s")
        sig.drive(1, delay=100, inertial=True)
        sig.drive(0, delay=50, inertial=True)
        assert sim.pending_events == 1  # the superseded event is gone
        sim.run()
        assert sim.events_executed == 1
        assert sim.events_cancelled == 1

    def test_zero_delay_inertial_cancels_pending(self, sim):
        sig = Signal(sim, "s")
        sig.drive(1, delay=100, inertial=True)
        sig.drive(0, delay=0, inertial=True)  # applies now, kills pending
        assert sim.pending_events == 0
        sim.run()
        assert sig.value == 0
        assert sig.rising == 0

    def test_transport_drives_not_cancelled_by_inertial(self, sim):
        sig = Signal(sim, "s")
        sig.drive(1, delay=50, inertial=False)
        sig.drive(0, delay=100, inertial=True)
        assert sim.pending_events == 2
        sim.run()
        assert sig.rising == 1
        assert sig.falling == 1

    def test_pulse_storm_executes_single_event(self, sim):
        sig = Signal(sim, "s")
        for i in range(500):
            sig.drive(i & 1, delay=80, inertial=True)
        assert sim.pending_events == 1
        sim.run(max_events=3)  # only the surviving drive counts
        assert sig.value == 1
        assert sig.transitions == 1
