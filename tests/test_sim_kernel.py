"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import SimulationError, Simulator, mhz_period_ps, ns, to_ns


class TestTimeHelpers:
    def test_ns_converts_to_picoseconds(self):
        assert ns(1.0) == 1000
        assert ns(0.011) == 11
        assert ns(3.333) == 3333

    def test_ns_rounds_to_nearest(self):
        assert ns(0.0114) == 11
        assert ns(0.0116) == 12

    def test_ns_rejects_negative(self):
        with pytest.raises(ValueError):
            ns(-1.0)

    def test_to_ns_roundtrip(self):
        assert to_ns(ns(2.5)) == pytest.approx(2.5)

    def test_mhz_period_100(self):
        assert mhz_period_ps(100) == 10_000

    def test_mhz_period_300(self):
        assert mhz_period_ps(300) == 3333

    def test_mhz_period_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            mhz_period_ps(0)
        with pytest.raises(ValueError):
            mhz_period_ps(-5)


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30, lambda: order.append("c"))
        sim.schedule(10, lambda: order.append("a"))
        sim.schedule(20, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_fifo(self):
        sim = Simulator()
        order = []
        for tag in "abcde":
            sim.schedule(5, lambda t=tag: order.append(t))
        sim.run()
        assert order == list("abcde")

    def test_now_advances_with_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(100, lambda: seen.append(sim.now))
        sim.schedule(250, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [100, 250]

    def test_schedule_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_call_at_past_raises(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(50, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append(sim.now)
            sim.schedule(50, lambda: seen.append(sim.now))

        sim.schedule(10, first)
        sim.run()
        assert seen == [10, 60]

    def test_zero_delay_event_runs_at_same_time(self):
        sim = Simulator()
        times = []
        sim.schedule(10, lambda: sim.schedule(0, lambda: times.append(sim.now)))
        sim.run()
        assert times == [10]


class TestRun:
    def test_run_until_stops_before_horizon_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(100, lambda: seen.append(100))
        sim.schedule(200, lambda: seen.append(200))
        sim.run(until=150)
        assert seen == [100]
        assert sim.now == 150

    def test_run_until_excludes_boundary_event(self):
        sim = Simulator()
        seen = []
        sim.schedule(150, lambda: seen.append(150))
        sim.run(until=150)
        assert seen == []
        # the event is still pending and fires on the next run
        sim.run()
        assert seen == [150]

    def test_run_advances_to_horizon_with_empty_queue(self):
        sim = Simulator()
        sim.run(until=500)
        assert sim.now == 500

    def test_run_returns_executed_count(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(i + 1, lambda: None)
        assert sim.run() == 5

    def test_max_events_budget_raises_on_livelock(self):
        sim = Simulator()

        def spin():
            sim.schedule(1, spin)

        sim.schedule(1, spin)
        with pytest.raises(SimulationError, match="budget"):
            sim.run(max_events=100)

    def test_stop_halts_run(self):
        sim = Simulator()
        seen = []

        def first_then_stop():
            seen.append(1)
            sim.stop()

        sim.schedule(10, first_then_stop)
        sim.schedule(20, lambda: seen.append(2))
        sim.run()
        assert seen == [1]
        # the second event remains queued
        assert sim.pending_events == 1

    def test_run_not_reentrant(self):
        sim = Simulator()
        errors = []

        def recurse():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1, recurse)
        sim.run()
        assert len(errors) == 1

    def test_step_executes_single_event(self):
        sim = Simulator()
        seen = []
        sim.schedule(10, lambda: seen.append("a"))
        sim.schedule(20, lambda: seen.append("b"))
        assert sim.step() is True
        assert seen == ["a"]
        assert sim.step() is True
        assert sim.step() is False

    def test_step_not_reentrant(self):
        """step() honours the same guard as run(): a callback may not
        re-enter the kernel on its own simulator."""
        sim = Simulator()
        errors = []

        def recurse():
            try:
                sim.step()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1, recurse)
        assert sim.step() is True
        assert len(errors) == 1

    def test_run_inside_step_rejected(self):
        sim = Simulator()
        errors = []

        def recurse():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1, recurse)
        sim.step()
        assert len(errors) == 1

    def test_step_clears_stale_stop_flag(self):
        """Like run(), step() starts a fresh (one-event) execution: a
        stop() from an earlier run must not leak into it."""
        sim = Simulator()
        seen = []

        def first_then_stop():
            seen.append(1)
            sim.stop()

        sim.schedule(10, first_then_stop)
        sim.schedule(20, lambda: seen.append(2))
        sim.run()
        assert seen == [1]
        assert sim.step() is True
        assert seen == [1, 2]

    def test_step_releases_guard_after_callback_raises(self):
        sim = Simulator()

        def boom():
            raise RuntimeError("callback failed")

        sim.schedule(1, boom)
        with pytest.raises(RuntimeError):
            sim.step()
        # the guard must not stay latched
        sim.schedule(1, lambda: None)
        assert sim.step() is True

    def test_run_ns_horizon(self):
        sim = Simulator()
        sim.run_ns(2.5)
        assert sim.now == 2500

    def test_events_executed_accumulates(self):
        sim = Simulator()
        sim.schedule(1, lambda: None)
        sim.schedule(2, lambda: None)
        sim.run()
        assert sim.events_executed == 2

    def test_drain_empties_queue(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(i + 1, lambda: None)
        sim.drain()
        assert sim.pending_events == 0
