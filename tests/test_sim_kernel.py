"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import SimulationError, Simulator, mhz_period_ps, ns, to_ns


class TestTimeHelpers:
    def test_ns_converts_to_picoseconds(self):
        assert ns(1.0) == 1000
        assert ns(0.011) == 11
        assert ns(3.333) == 3333

    def test_ns_rounds_to_nearest(self):
        assert ns(0.0114) == 11
        assert ns(0.0116) == 12

    def test_ns_rejects_negative(self):
        with pytest.raises(ValueError):
            ns(-1.0)

    def test_to_ns_roundtrip(self):
        assert to_ns(ns(2.5)) == pytest.approx(2.5)

    def test_mhz_period_100(self):
        assert mhz_period_ps(100) == 10_000

    def test_mhz_period_300(self):
        assert mhz_period_ps(300) == 3333

    def test_mhz_period_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            mhz_period_ps(0)
        with pytest.raises(ValueError):
            mhz_period_ps(-5)


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30, lambda: order.append("c"))
        sim.schedule(10, lambda: order.append("a"))
        sim.schedule(20, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_fifo(self):
        sim = Simulator()
        order = []
        for tag in "abcde":
            sim.schedule(5, lambda t=tag: order.append(t))
        sim.run()
        assert order == list("abcde")

    def test_now_advances_with_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(100, lambda: seen.append(sim.now))
        sim.schedule(250, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [100, 250]

    def test_schedule_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_call_at_past_raises(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(50, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append(sim.now)
            sim.schedule(50, lambda: seen.append(sim.now))

        sim.schedule(10, first)
        sim.run()
        assert seen == [10, 60]

    def test_zero_delay_event_runs_at_same_time(self):
        sim = Simulator()
        times = []
        sim.schedule(10, lambda: sim.schedule(0, lambda: times.append(sim.now)))
        sim.run()
        assert times == [10]


class TestRun:
    def test_run_until_stops_before_horizon_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(100, lambda: seen.append(100))
        sim.schedule(200, lambda: seen.append(200))
        sim.run(until=150)
        assert seen == [100]
        assert sim.now == 150

    def test_run_until_excludes_boundary_event(self):
        sim = Simulator()
        seen = []
        sim.schedule(150, lambda: seen.append(150))
        sim.run(until=150)
        assert seen == []
        # the event is still pending and fires on the next run
        sim.run()
        assert seen == [150]

    def test_run_advances_to_horizon_with_empty_queue(self):
        sim = Simulator()
        sim.run(until=500)
        assert sim.now == 500

    def test_run_returns_executed_count(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(i + 1, lambda: None)
        assert sim.run() == 5

    def test_max_events_budget_raises_on_livelock(self):
        sim = Simulator()

        def spin():
            sim.schedule(1, spin)

        sim.schedule(1, spin)
        with pytest.raises(SimulationError, match="budget"):
            sim.run(max_events=100)

    def test_stop_halts_run(self):
        sim = Simulator()
        seen = []

        def first_then_stop():
            seen.append(1)
            sim.stop()

        sim.schedule(10, first_then_stop)
        sim.schedule(20, lambda: seen.append(2))
        sim.run()
        assert seen == [1]
        # the second event remains queued
        assert sim.pending_events == 1

    def test_run_not_reentrant(self):
        sim = Simulator()
        errors = []

        def recurse():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1, recurse)
        sim.run()
        assert len(errors) == 1

    def test_step_executes_single_event(self):
        sim = Simulator()
        seen = []
        sim.schedule(10, lambda: seen.append("a"))
        sim.schedule(20, lambda: seen.append("b"))
        assert sim.step() is True
        assert seen == ["a"]
        assert sim.step() is True
        assert sim.step() is False

    def test_step_not_reentrant(self):
        """step() honours the same guard as run(): a callback may not
        re-enter the kernel on its own simulator."""
        sim = Simulator()
        errors = []

        def recurse():
            try:
                sim.step()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1, recurse)
        assert sim.step() is True
        assert len(errors) == 1

    def test_run_inside_step_rejected(self):
        sim = Simulator()
        errors = []

        def recurse():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1, recurse)
        sim.step()
        assert len(errors) == 1

    def test_step_clears_stale_stop_flag(self):
        """Like run(), step() starts a fresh (one-event) execution: a
        stop() from an earlier run must not leak into it."""
        sim = Simulator()
        seen = []

        def first_then_stop():
            seen.append(1)
            sim.stop()

        sim.schedule(10, first_then_stop)
        sim.schedule(20, lambda: seen.append(2))
        sim.run()
        assert seen == [1]
        assert sim.step() is True
        assert seen == [1, 2]

    def test_step_releases_guard_after_callback_raises(self):
        sim = Simulator()

        def boom():
            raise RuntimeError("callback failed")

        sim.schedule(1, boom)
        with pytest.raises(RuntimeError):
            sim.step()
        # the guard must not stay latched
        sim.schedule(1, lambda: None)
        assert sim.step() is True

    def test_run_ns_horizon(self):
        sim = Simulator()
        sim.run_ns(2.5)
        assert sim.now == 2500

    def test_events_executed_accumulates(self):
        sim = Simulator()
        sim.schedule(1, lambda: None)
        sim.schedule(2, lambda: None)
        sim.run()
        assert sim.events_executed == 2

    def test_drain_empties_queue(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(i + 1, lambda: None)
        sim.drain()
        assert sim.pending_events == 0


class TestCancellation:
    """True event cancellation (used by inertial drives)."""

    def test_cancelled_event_never_executes(self):
        sim = Simulator()
        seen = []
        handle = sim.schedule(10, lambda: seen.append("dead"))
        sim.schedule(20, lambda: seen.append("live"))
        assert sim.cancel(handle) is True
        assert sim.run() == 1
        assert seen == ["live"]
        assert sim.events_executed == 1
        assert sim.events_cancelled == 1

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(10, lambda: None)
        assert sim.cancel(handle) is True
        assert sim.cancel(handle) is False
        assert sim.cancel(None) is False
        assert sim.pending_events == 0

    def test_cancel_after_execution_is_a_noop(self):
        sim = Simulator()
        handle = sim.schedule(10, lambda: None)
        sim.run()
        assert sim.cancel(handle) is False
        assert sim.events_cancelled == 0

    def test_pending_events_counts_live_only(self):
        sim = Simulator()
        handles = [sim.schedule(10 * (i + 1), lambda: None) for i in range(5)]
        assert sim.pending_events == 5
        sim.cancel(handles[0])
        sim.cancel(handles[3])
        assert sim.pending_events == 3

    def test_step_skips_cancelled_and_reports_empty(self):
        sim = Simulator()
        seen = []
        dead = sim.schedule(10, lambda: seen.append("dead"))
        sim.schedule(10, lambda: seen.append("live"))
        sim.cancel(dead)
        assert sim.step() is True
        assert seen == ["live"]
        assert sim.step() is False

    def test_zero_or_negative_budget_trips_on_first_event(self):
        """max_events=0 must stay a (degenerate) budget, not turn into
        'unlimited' — seed raised after the first executed event."""
        for budget in (0, -3):
            sim = Simulator()
            sim.schedule(1, lambda: None)
            sim.schedule(2, lambda: None)
            with pytest.raises(SimulationError, match="budget"):
                sim.run(max_events=budget)
            assert sim.events_executed == 1

    def test_budget_ignores_cancelled_events(self):
        """Satellite regression: a pulse-heavy net superseding hundreds
        of drives must not spuriously trip the livelock guard."""
        sim = Simulator()
        seen = []
        stale = [sim.schedule(50, lambda: seen.append("stale"))
                 for _ in range(200)]
        for handle in stale:
            sim.cancel(handle)
        sim.schedule(50, lambda: seen.append("fresh"))
        # budget of 2 would be exhausted instantly if dead events counted
        assert sim.run(max_events=2) == 1
        assert seen == ["fresh"]

    def test_far_band_cancellation(self):
        sim = Simulator()
        seen = []
        far_delay = Simulator.NEAR_WINDOW * 3 + 17
        handle = sim.schedule(far_delay, lambda: seen.append("far-dead"))
        sim.schedule(far_delay + 1, lambda: seen.append("far-live"))
        sim.cancel(handle)
        sim.run()
        assert seen == ["far-live"]
        assert sim.now == far_delay + 1


class TestTwoLevelScheduler:
    """The near-calendar / far-heap split must be invisible."""

    def test_order_preserved_across_the_horizon(self):
        sim = Simulator()
        order = []
        window = Simulator.NEAR_WINDOW
        times = [window - 2, window - 1, window, window + 1,
                 3 * window + 5, 2 * window]
        for t in times:
            sim.call_at(t, lambda t=t: order.append(t))
        sim.run()
        assert order == sorted(times)

    def test_same_timestamp_fifo_in_far_band(self):
        sim = Simulator()
        order = []
        when = Simulator.NEAR_WINDOW * 2 + 100
        for tag in "abcde":
            sim.call_at(when, lambda t=tag: order.append(t))
        sim.run()
        assert order == list("abcde")

    def test_callbacks_scheduling_into_far_band(self):
        sim = Simulator()
        seen = []

        def hop():
            seen.append(sim.now)
            if len(seen) < 5:
                sim.schedule(Simulator.NEAR_WINDOW + 3, hop)

        sim.schedule(1, hop)
        sim.run()
        assert seen == [1 + i * (Simulator.NEAR_WINDOW + 3)
                        for i in range(5)]

    def test_run_until_with_only_far_events(self):
        sim = Simulator()
        seen = []
        when = Simulator.NEAR_WINDOW * 4
        sim.call_at(when, lambda: seen.append(when))
        sim.run(until=1000)
        assert sim.now == 1000
        assert seen == []
        sim.run()
        assert seen == [when]


class TestStepTimeAdvancement:
    def test_step_advances_time_through_trailing_cancelled_events(self):
        """run() advances sim.now through dead buckets; step()-draining
        the same queue must end at the same final time."""
        def build():
            sim = Simulator()
            sim.schedule(100, lambda: None)
            dead = sim.schedule(150, lambda: None)
            sim.cancel(dead)
            return sim

        ran = build()
        ran.run()
        stepped = build()
        while stepped.step():
            pass
        assert ran.now == stepped.now == 150

    def test_step_advances_time_through_dead_multi_bucket(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        dead = [sim.schedule(90, lambda: None) for _ in range(3)]
        for handle in dead:
            sim.cancel(handle)
        assert sim.step() is True
        assert sim.step() is False
        assert sim.now == 90
