"""Unit tests for technology scaling (extension feature)."""

import pytest

from repro.tech import scale_technology, st012


class TestScaleTechnology:
    def test_identity_scale(self):
        tech = st012()
        same = scale_technology(tech, 120)
        assert same.gates.inv == tech.gates.inv
        assert same.metal.met_w_um == pytest.approx(tech.metal.met_w_um)

    def test_downscale_to_65nm(self):
        tech = st012()
        scaled = scale_technology(tech, 65)
        factor = 65 / 120
        assert scaled.feature_nm == 65
        assert scaled.gates.inv == max(1, round(11 * factor))
        assert scaled.metal.met_w_um == pytest.approx(0.44 * factor)
        assert scaled.areas.sync_buffer == pytest.approx(
            3966.0 * factor * factor
        )

    def test_power_exponent(self):
        tech = st012()
        lin = scale_technology(tech, 60, power_exponent=1.0)
        cub = scale_technology(tech, 60, power_exponent=3.0)
        assert cub.power.conv_static < lin.power.conv_static

    def test_metal_factor_override(self):
        """Global metal layers often scale slower than the feature size."""
        tech = st012()
        scaled = scale_technology(tech, 65, metal_factor=0.8)
        assert scaled.metal.met_w_um == pytest.approx(0.44 * 0.8)

    def test_handshake_constants_scale(self):
        tech = st012()
        scaled = scale_technology(tech, 60)
        assert scaled.handshake.t_burst == round(1100 * 0.5)
        assert scaled.handshake.t_inv == round(11 * 0.5)

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError):
            scale_technology(st012(), 0)

    def test_provenance_notes_derivation(self):
        scaled = scale_technology(st012(), 90)
        assert "scaling" in scaled.provenance
        assert "[derived]" in scaled.provenance["scaling"]

    def test_upscale(self):
        scaled = scale_technology(st012(), 240)
        assert scaled.gates.inv == 22

    def test_scaled_technology_still_runs_experiments(self):
        """The wire model must keep working at other nodes."""
        from repro.analysis import wire_area_um2

        scaled = scale_technology(st012(), 65)
        area_scaled = wire_area_um2(8, 1000.0, scaled)
        area_orig = wire_area_um2(8, 1000.0, st012())
        assert area_scaled < area_orig
