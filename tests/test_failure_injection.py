"""Failure-injection tests: broken wires, stuck handshakes, livelocks.

A reproduction that only exercises happy paths proves little about the
robustness of its protocol models.  These tests break the links in
controlled ways and assert that the failure surfaces *loudly* (timeout
or budget exception), never as silent data loss or corruption.
"""

import pytest

from repro.link import (
    Channel,
    LinkConfig,
    LinkTestbench,
    Serializer,
    build_i2,
    build_i3,
)
from repro.link.channel import source_process
from repro.sim import Clock, SimulationError, Signal, Simulator, spawn


class TestBrokenHandshakes:
    def test_unacknowledged_serializer_stalls_cleanly(self):
        """No receiver on the slice channel: the serializer must block
        on its first REQOUT forever — no spin, no spurious word acks."""
        sim = Simulator()
        in_ch = Channel(sim, 32, "in")
        ser = Serializer(sim, in_ch, slice_width=8)
        spawn(sim, source_process(in_ch, [0xDEADBEEF]))
        sim.run(until=10_000_000, max_events=100_000)
        assert ser.out_ch.req.value == 1  # waiting on ack
        assert in_ch.ack.value == 0  # the word was never acknowledged
        assert ser.words_serialized == 0

    def test_stuck_ack_wire_times_out(self):
        """Force the wire-buffer chain's ack permanently high (a stuck-at
        fault): the link deadlocks and the testbench reports a timeout."""
        sim = Simulator()
        clock = Clock.from_mhz(sim, 300)
        link = build_i2(sim, clock.signal, LinkConfig())
        # stuck-at-1 fault on the deserializer-side ack
        def stick(sig: Signal) -> None:
            if sig.value == 0:
                sig.set(1)

        link.chain.ack_in.set(1)
        link.chain.ack_in.on_change(stick)
        bench = LinkTestbench(sim, clock, link)
        with pytest.raises(TimeoutError):
            bench.run([1, 2, 3], timeout_ns=50_000.0)

    def test_severed_valid_wire_times_out(self):
        """Force the I3 VALID wire low after two flits (severed wire):
        the receiver never completes another word → timeout, and the
        flits that did arrive are intact."""
        from repro.sim import Delay, spawn as spawn_proc

        sim = Simulator()
        clock = Clock.from_mhz(sim, 300)
        link = build_i3(sim, clock.signal, LinkConfig())
        delivered_before_fault = 2

        def fault_process():
            while link.flits_delivered() < delivered_before_fault:
                yield Delay(1000)
            link.deserializer.in_ch.valid.force(0)

        spawn_proc(sim, fault_process(), "fault")
        bench = LinkTestbench(sim, clock, link)
        with pytest.raises(TimeoutError):
            bench.run([0xA5A5A5A5] * 6, timeout_ns=50_000.0)
        # partial delivery is visible and uncorrupted
        assert bench.measurement.flits_received >= delivered_before_fault
        assert all(v == 0xA5A5A5A5
                   for v in bench.measurement.received_values)


class TestLivelockDetection:
    def test_event_budget_catches_oscillator_runaway(self):
        """A combinational loop (single-inverter ring) must trip the
        event budget, not hang the process.  The loop has no stable
        point: a = NOT a after one gate delay, forever."""
        from repro.elements import Inverter

        sim = Simulator()
        a = Signal(sim, "a")
        inv = Inverter(sim, a)
        inv.output.on_change(lambda s: a.drive(s.value, 11, inertial=False))
        with pytest.raises(SimulationError, match="budget"):
            sim.run(max_events=10_000)

    def test_timeout_reports_progress(self):
        sim = Simulator()
        clock = Clock.from_mhz(sim, 300)
        link = build_i3(sim, clock.signal, LinkConfig())
        link.stall_in.set(1)  # receiver never accepts
        bench = LinkTestbench(sim, clock, link)
        with pytest.raises(TimeoutError, match="0/4|[0-9]+/4"):
            bench.run([1, 2, 3, 4], timeout_ns=20_000.0)


class TestBackpressureSafety:
    @pytest.mark.parametrize("builder", [build_i2, build_i3])
    def test_fifo_never_overflows_under_permanent_stall(self, builder):
        """With the receiving switch stalled, at most 2×depth flits are
        absorbed (the paper's 8 'spaces'), and none are dropped once the
        stall lifts."""
        sim = Simulator()
        clock = Clock.from_mhz(sim, 300)
        link = builder(sim, clock.signal, LinkConfig(fifo_depth=4))
        link.stall_in.set(1)
        flits = list(range(0x500, 0x510))
        bench = LinkTestbench(sim, clock, link)
        import threading  # noqa: F401  (documentation: single-threaded)

        # run manually: source only, bounded time
        spawn(sim, bench._source(flits))
        sim.run(until=200_000, max_events=2_000_000)
        absorbed = link.flits_accepted()
        assert absorbed <= 2 * 4 + 1  # two FIFOs + at most one in flight
        # release and finish normally
        link.stall_in.set(0)
        spawn(sim, bench._sink(len(flits), None))
        horizon = sim.now + 1_000_000_000
        while not bench._done and sim.now < horizon:
            sim.run(until=sim.now + 1_000_000, max_events=5_000_000)
        assert bench.measurement.received_values == flits
