"""Integration tests for the full I1/I2/I3 link assemblies (Fig 9)."""

import pytest

from repro.link import (
    LinkConfig,
    LinkTestbench,
    WORST_CASE_PATTERN,
    build_i1,
    build_i2,
    build_i3,
    build_link,
    measure_throughput,
)
from repro.sim import Clock, Simulator
from repro.tech import st012


def make(kind, mhz=300, **cfg):
    sim = Simulator()
    clock = Clock.from_mhz(sim, mhz)
    link = build_link(sim, clock.signal, kind, LinkConfig(**cfg))
    return sim, clock, link


class TestLinkConfig:
    def test_defaults_match_paper(self):
        cfg = LinkConfig()
        assert cfg.width == 32
        assert cfg.slice_width == 8
        assert cfg.n_buffers == 4
        assert cfg.fifo_depth == 4

    def test_slice_must_divide_width(self):
        with pytest.raises(ValueError):
            LinkConfig(width=32, slice_width=5)

    def test_buffers_positive(self):
        with pytest.raises(ValueError):
            LinkConfig(n_buffers=0)


class TestWireCounts:
    def test_i1_uses_full_width(self):
        _, _, link = make("I1")
        assert link.wire_count == 32

    def test_i2_i3_use_slice_plus_handshake(self):
        for kind in ("I2", "I3"):
            _, _, link = make(kind)
            assert link.wire_count == 10  # 8 data + req/valid + ack

    def test_wire_reduction_is_75_percent_on_data(self):
        _, _, i1 = make("I1")
        _, _, i3 = make("I3")
        data_reduction = 1 - (i3.wire_count - 2) / i1.wire_count
        assert data_reduction == pytest.approx(0.75)

    def test_wider_slice_config(self):
        _, _, link = make("I3", slice_width=16)
        assert link.wire_count == 18


class TestBuildLink:
    def test_kind_dispatch(self):
        sim = Simulator()
        clock = Clock.from_mhz(sim, 100)
        assert build_link(sim, clock.signal, "i1").kind == "I1"

    def test_unknown_kind(self):
        sim = Simulator()
        clock = Clock.from_mhz(sim, 100)
        with pytest.raises(ValueError):
            build_link(sim, clock.signal, "I4")


@pytest.mark.parametrize("kind", ["I1", "I2", "I3"])
class TestDataIntegrity:
    def test_worst_case_stream(self, kind):
        sim, clock, link = make(kind)
        m = measure_throughput(sim, clock, link, n_flits=12)
        expected = [WORST_CASE_PATTERN[i % 4] for i in range(12)]
        assert m.received_values == expected

    def test_distinct_values_in_order(self, kind):
        sim, clock, link = make(kind)
        flits = [0x1000 + i for i in range(10)]
        bench = LinkTestbench(sim, clock, link)
        m = bench.run(flits, timeout_ns=1e6)
        assert m.received_values == flits

    def test_counters_consistent(self, kind):
        sim, clock, link = make(kind)
        m = measure_throughput(sim, clock, link, n_flits=8)
        assert link.flits_accepted() == 8
        assert link.flits_delivered() == 8
        assert m.flits_received == 8


class TestThroughputAtPaperOperatingPoint:
    def test_i1_and_i3_sustain_300mflits_at_300mhz(self):
        """The headline claim: the proposed word-level link (I3) matches
        the synchronous link's flit rate at a 300 MHz switch clock."""
        for kind in ("I1", "I3"):
            sim, clock, link = make(kind, mhz=300)
            m = measure_throughput(sim, clock, link, n_flits=24)
            assert m.throughput_mflits == pytest.approx(300.0, rel=0.02), kind

    def test_i2_limited_by_per_transfer_ceiling_at_300mhz(self):
        """Per-transfer acknowledgement cannot quite keep up at 300 MHz —
        the Section IV motivation for word-level acknowledgement."""
        sim, clock, link = make("I2", mhz=300)
        m = measure_throughput(sim, clock, link, n_flits=24)
        assert 275.0 <= m.throughput_mflits < 298.0

    def test_i3_ceiling_near_paper_upper_bound(self):
        sim, clock, link = make("I3", mhz=1000)
        m = measure_throughput(sim, clock, link, n_flits=24)
        # analytic bound 304 MFlit/s; paper quotes ~311
        assert 290 <= m.throughput_mflits <= 315

    def test_i2_ceiling_matches_per_transfer_equation(self):
        from repro.analysis import per_transfer_cycle_delay

        sim, clock, link = make("I2", mhz=1000)
        m = measure_throughput(sim, clock, link, n_flits=24)
        analytic = per_transfer_cycle_delay(st012().handshake).mflits
        assert m.throughput_mflits == pytest.approx(analytic, rel=0.05)

    def test_async_throughput_independent_of_clock_below_ceiling(self):
        """Fig 10's core property: the serial link's wire count and rate
        capability do not depend on the switch clock."""
        rates = {}
        for mhz in (100, 200):
            sim, clock, link = make("I3", mhz=mhz)
            m = measure_throughput(sim, clock, link, n_flits=16)
            rates[mhz] = m.throughput_mflits
        # delivered rate tracks the switch clock (injection-limited)
        assert rates[100] == pytest.approx(100.0, rel=0.02)
        assert rates[200] == pytest.approx(200.0, rel=0.02)


class TestActivityGroups:
    def test_monitor_has_fig14_groups(self):
        for kind in ("I2", "I3"):
            _, _, link = make(kind)
            groups = set(link.monitor.groups)
            assert {"sync_to_async", "serializer", "buffers",
                    "deserializer", "async_to_sync"} <= groups

    def test_i1_monitor_has_buffers_group(self):
        _, _, link = make("I1")
        assert "buffers" in link.monitor.groups

    def test_activity_recorded_during_transfer(self):
        sim, clock, link = make("I3")
        link.monitor.snapshot()
        measure_throughput(sim, clock, link, n_flits=8)
        assert link.monitor.transitions("serializer") > 0
        assert link.monitor.transitions("buffers") > 0


class TestBackpressure:
    @pytest.mark.parametrize("kind", ["I1", "I2", "I3"])
    def test_stalling_sink_loses_no_flits(self, kind):
        sim, clock, link = make(kind)
        flits = [0x2000 + i for i in range(10)]
        bench = LinkTestbench(sim, clock, link)
        # stall 2 of every 3 cycles
        m = bench.run(flits, timeout_ns=1e6, stall_pattern=[1, 1, 0])
        assert m.received_values == flits
