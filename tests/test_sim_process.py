"""Unit tests for the generator-process framework."""

import pytest

from repro.sim import (
    Delay,
    Edge,
    FallingEdge,
    RisingEdge,
    Signal,
    Simulator,
    WaitValue,
    spawn,
)


@pytest.fixture
def sim():
    return Simulator()


class TestDelay:
    def test_process_resumes_after_delay(self, sim):
        times = []

        def proc():
            times.append(sim.now)
            yield Delay(100)
            times.append(sim.now)
            yield Delay(50)
            times.append(sim.now)

        spawn(sim, proc())
        sim.run()
        assert times == [0, 100, 150]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Delay(-1)

    def test_zero_delay_is_allowed(self, sim):
        steps = []

        def proc():
            steps.append("a")
            yield Delay(0)
            steps.append("b")

        spawn(sim, proc())
        sim.run()
        assert steps == ["a", "b"]


class TestEdges:
    def test_rising_edge(self, sim):
        sig = Signal(sim, "s")
        seen = []

        def proc():
            yield RisingEdge(sig)
            seen.append(sim.now)

        spawn(sim, proc())
        sig.drive(1, delay=70)
        sim.run()
        assert seen == [70]

    def test_falling_edge_ignores_rise(self, sim):
        sig = Signal(sim, "s")
        seen = []

        def proc():
            yield FallingEdge(sig)
            seen.append(sim.now)

        spawn(sim, proc())
        sig.drive(1, delay=10, inertial=False)
        sig.drive(0, delay=90, inertial=False)
        sim.run()
        assert seen == [90]

    def test_any_edge(self, sim):
        sig = Signal(sim, "s")
        seen = []

        def proc():
            while True:
                yield Edge(sig)
                seen.append((sim.now, sig.value))

        spawn(sim, proc())
        sig.drive(1, delay=10, inertial=False)
        sig.drive(0, delay=20, inertial=False)
        sig.drive(1, delay=30, inertial=False)
        sim.run(until=100)
        assert seen == [(10, 1), (20, 0), (30, 1)]

    def test_edge_kind_validation(self, sim):
        sig = Signal(sim, "s")
        with pytest.raises(ValueError):
            Edge(sig, "sideways")


class TestWaitValue:
    def test_waits_for_future_value(self, sim):
        sig = Signal(sim, "s")
        seen = []

        def proc():
            yield WaitValue(sig, 1)
            seen.append(sim.now)

        spawn(sim, proc())
        sig.drive(1, delay=42)
        sim.run()
        assert seen == [42]

    def test_immediate_if_already_at_value(self, sim):
        sig = Signal(sim, "s", init=1)
        seen = []

        def proc():
            yield WaitValue(sig, 1)
            seen.append(sim.now)

        spawn(sim, proc())
        sim.run()
        assert seen == [0]

    def test_wait_for_zero(self, sim):
        sig = Signal(sim, "s", init=1)
        seen = []

        def proc():
            yield WaitValue(sig, 0)
            seen.append(sim.now)

        spawn(sim, proc())
        sig.drive(0, delay=33)
        sim.run()
        assert seen == [33]


class TestProcessLifecycle:
    def test_process_finishes(self, sim):
        def proc():
            yield Delay(1)

        p = spawn(sim, proc())
        sim.run()
        assert p.finished

    def test_kill_stops_process(self, sim):
        seen = []

        def proc():
            yield Delay(10)
            seen.append("should not happen")

        p = spawn(sim, proc())
        p.kill()
        sim.run()
        assert seen == []
        assert p.finished

    def test_exception_propagates_out_of_run(self, sim):
        def proc():
            yield Delay(5)
            raise RuntimeError("boom")

        spawn(sim, proc())
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()

    def test_two_processes_interleave(self, sim):
        log = []

        def ping(sig_a, sig_b):
            for _ in range(3):
                yield WaitValue(sig_a, 1)
                sig_a.set(0)
                log.append(("ping", sim.now))
                sig_b.set(1)

        def pong(sig_a, sig_b):
            for _ in range(3):
                yield WaitValue(sig_b, 1)
                sig_b.set(0)
                log.append(("pong", sim.now))
                yield Delay(10)
                sig_a.set(1)

        a = Signal(sim, "a", init=1)
        b = Signal(sim, "b")
        spawn(sim, ping(a, b))
        spawn(sim, pong(a, b))
        sim.run()
        assert [name for name, _ in log] == [
            "ping", "pong", "ping", "pong", "ping", "pong",
        ]

    def test_invalid_yield_raises(self, sim):
        def proc():
            yield "not a condition"

        spawn(sim, proc())
        with pytest.raises(TypeError):
            sim.run()
