"""Unit tests for the synch→asynch and asynch→synch interfaces (Figs 4–5)."""

import pytest

from repro.link import AsyncToSyncInterface, SyncToAsyncInterface
from repro.link.channel import sink_process, source_process
from repro.sim import Clock, Delay, RisingEdge, Simulator, spawn


@pytest.fixture
def sim():
    return Simulator()


def make_clock(sim, mhz=100):
    return Clock.from_mhz(sim, mhz)


class TestSyncToAsync:
    def _drive_flits(self, sim, clock, iface, flits):
        """Switch-side source: hold data+valid until accepted."""

        def source():
            for value in flits:
                iface.flit_in.set(value)
                iface.valid.set(1)
                before = iface.flits_written
                while iface.flits_written == before:
                    yield RisingEdge(clock.signal)
                    yield Delay(1)
            iface.valid.set(0)

        return spawn(sim, source())

    def test_single_flit_crosses_domain(self, sim):
        clock = make_clock(sim)
        iface = SyncToAsyncInterface(sim, clock.signal)
        self._drive_flits(sim, clock, iface, [0xA5A5A5A5])
        out = []
        spawn(sim, sink_process(iface.out_ch, out, count=1))
        sim.run(until=2_000_000, max_events=1_000_000)
        assert out == [0xA5A5A5A5]

    def test_stream_order_preserved(self, sim):
        clock = make_clock(sim)
        iface = SyncToAsyncInterface(sim, clock.signal)
        flits = [0x11111111, 0x22222222, 0x33333333, 0x44444444,
                 0x55555555, 0x66666666]
        self._drive_flits(sim, clock, iface, flits)
        out = []
        spawn(sim, sink_process(iface.out_ch, out, count=len(flits)))
        sim.run(until=5_000_000, max_events=2_000_000)
        assert out == flits

    def test_stall_asserted_when_reader_blocked(self, sim):
        """With no asynchronous reader, 4 writes fill the FIFO and STALL
        rises."""
        clock = make_clock(sim)
        iface = SyncToAsyncInterface(sim, clock.signal, depth=4)
        self._drive_flits(sim, clock, iface,
                          [1, 2, 3, 4, 5])  # the 5th cannot enter
        sim.run(until=1_000_000, max_events=1_000_000)
        assert iface.flits_written == 4
        assert iface.stall.value == 1
        assert iface.occupancy == 4

    def test_drain_clears_stall(self, sim):
        clock = make_clock(sim)
        iface = SyncToAsyncInterface(sim, clock.signal, depth=4)
        self._drive_flits(sim, clock, iface, [1, 2, 3, 4, 5, 6])
        out = []
        spawn(sim, sink_process(iface.out_ch, out, count=6))
        sim.run(until=5_000_000, max_events=2_000_000)
        assert out == [1, 2, 3, 4, 5, 6]
        assert iface.stall.value == 0

    def test_depth_validation(self, sim):
        clock = make_clock(sim)
        with pytest.raises(ValueError):
            SyncToAsyncInterface(sim, clock.signal, depth=1)


class TestAsyncToSync:
    def _sync_sink(self, sim, clock, iface, out, count):
        def sink():
            sample_delay = 120
            while len(out) < count:
                yield RisingEdge(clock.signal)
                yield Delay(sample_delay)
                if iface.valid.value:
                    out.append(iface.flit_out.value)

        return spawn(sim, sink())

    def test_single_flit(self, sim):
        clock = make_clock(sim)
        iface = AsyncToSyncInterface(sim, clock.signal)
        spawn(sim, source_process(iface.in_ch, [0xDEADBEEF]))
        out = []
        self._sync_sink(sim, clock, iface, out, 1)
        sim.run(until=2_000_000, max_events=1_000_000)
        assert out == [0xDEADBEEF]

    def test_stream_order(self, sim):
        clock = make_clock(sim)
        iface = AsyncToSyncInterface(sim, clock.signal)
        flits = [0xA, 0xB, 0xC, 0xD, 0xE, 0xF]
        spawn(sim, source_process(iface.in_ch, flits))
        out = []
        self._sync_sink(sim, clock, iface, out, len(flits))
        sim.run(until=5_000_000, max_events=2_000_000)
        assert out == flits

    def test_backpressure_via_stall(self, sim):
        """With the switch stalling, flits pile up in the FIFO and the
        handshake side eventually blocks."""
        clock = make_clock(sim)
        iface = AsyncToSyncInterface(sim, clock.signal, depth=4)
        iface.stall.set(1)
        spawn(sim, source_process(iface.in_ch, [1, 2, 3, 4, 5, 6]))
        # sink listens from the start (a real switch always samples)
        out = []
        self._sync_sink(sim, clock, iface, out, 6)
        sim.run(until=2_000_500, max_events=1_000_000)
        assert iface.flits_written == 4  # FIFO full, writer blocked
        assert iface.valid.value == 0  # nothing offered while stalled
        assert out == []
        # release mid-cycle: the rest flows
        iface.stall.set(0)
        sim.run(until=6_000_000, max_events=2_000_000)
        assert out == [1, 2, 3, 4, 5, 6]

    def test_valid_deasserts_when_empty(self, sim):
        clock = make_clock(sim)
        iface = AsyncToSyncInterface(sim, clock.signal)
        spawn(sim, source_process(iface.in_ch, [0x42]))
        out = []
        self._sync_sink(sim, clock, iface, out, 1)
        sim.run(until=2_000_000, max_events=1_000_000)
        # several cycles later VALID must be low again
        sim.run(until=sim.now + 100_000, max_events=1_000_000)
        assert iface.valid.value == 0

    def test_depth_validation(self, sim):
        clock = make_clock(sim)
        with pytest.raises(ValueError):
            AsyncToSyncInterface(sim, clock.signal, depth=0)


class TestBackToBackInterfaces:
    def test_full_domain_crossing_pipeline(self, sim):
        """synch→asynch feeding asynch→synch directly (no serializer):
        the 8-deep composite FIFO of the paper."""
        from repro.link.wiring import wire, wire_bus

        clock = make_clock(sim)
        s2a = SyncToAsyncInterface(sim, clock.signal)
        a2s = AsyncToSyncInterface(sim, clock.signal)
        wire_bus(s2a.out_ch.data, a2s.in_ch.data, 0)
        wire(s2a.out_ch.req, a2s.in_ch.req, 0)
        wire(a2s.in_ch.ack, s2a.out_ch.ack, 0)

        flits = list(range(1, 13))

        def source():
            for value in flits:
                s2a.flit_in.set(value)
                s2a.valid.set(1)
                before = s2a.flits_written
                while s2a.flits_written == before:
                    yield RisingEdge(clock.signal)
                    yield Delay(1)
            s2a.valid.set(0)

        out = []

        def sink():
            while len(out) < len(flits):
                yield RisingEdge(clock.signal)
                yield Delay(120)
                if a2s.valid.value:
                    out.append(a2s.flit_out.value)

        spawn(sim, source())
        spawn(sim, sink())
        sim.run(until=10_000_000, max_events=5_000_000)
        assert out == flits
