"""Equivalence suite: optimized cycle kernel vs frozen seed kernel.

The activity-driven kernel in ``repro.noc.network``/``switch`` and the
batched-credit ``TokenLink`` must be *decision-identical* to the seed
kernel preserved in ``repro.noc.reference`` — not approximately equal,
bit-identical.  These tests drive both kernels with identical seeded
traffic over {xy, west_first} routing x {1, 2} VCs x {uniform, hotspot,
transpose, bit-complement} patterns x mesh sizes 2-6 and compare

* the full statistics (counters and the exact packet-latency list),
* per-link sent/delivered counters and in-flight contents,
* per-switch routed/conflict counters and buffered occupancy,
* traced routes (``trace_routes=True`` on both).

The networks run a fixed cycle budget (traffic phase + settle phase)
rather than draining to empty: west-first adaptive routing with
multiple VCs can deadlock under hotspot traffic (a protocol property
the seed kernel exhibits identically — see the lockstep state
comparison, which must agree even about the deadlock), and a fixed
budget compares those states too instead of hanging.
"""

import pytest

from repro.link.behavioral import derive_link_params
from repro.noc import (
    Network,
    Topology,
    TrafficConfig,
    TrafficGenerator,
    reset_packet_ids,
    run_mesh_point,
)
from repro.noc.reference import (
    ReferenceNetwork,
    reference_mesh_point,
)
from repro.tech import st012

ROUTINGS = ("xy", "west_first")
VCS = (1, 2)
PATTERNS = ("uniform", "hotspot", "transpose", "bit_complement")
MESH_SIZES = (2, 3, 4, 5, 6)


def _link_state(network):
    """Observable per-link state: counters + in-flight flit identities."""
    return {
        key: (
            link.flits_sent,
            link.flits_delivered,
            tuple(
                (ready, flit.packet_id, flit.seq, flit.kind, flit.vc)
                for ready, flit in link._in_flight
            ),
        )
        for key, link in network.links.items()
    }


def _switch_state(network):
    return {
        node: (
            switch.flits_routed,
            switch.arbitration_conflicts,
            switch.buffered_flits,
        )
        for node, switch in network.switches.items()
    }


def _run_lockstep(cls, size, routing, n_vcs, pattern, cycles, settle,
                  rate=0.2, seed=2008):
    reset_packet_ids()
    topology = Topology(size, size)
    params = derive_link_params(st012(), "I3", 300)
    network = cls(topology, params, n_vcs=n_vcs, routing=routing)
    network.trace_routes = True
    hotspot = (topology.cols // 2, topology.rows // 2)
    traffic = TrafficGenerator(
        topology,
        TrafficConfig(
            pattern=pattern,
            injection_rate=rate,
            seed=seed,
            hotspot=hotspot if pattern == "hotspot" else None,
            n_vcs=n_vcs,
        ),
    )
    network.run(cycles, traffic)
    network.run(settle, None)
    return network


def _assert_equivalent(opt, ref, context):
    assert opt.stats.summary() == ref.stats.summary(), context
    assert opt.stats.packet_latencies == ref.stats.packet_latencies, context
    assert opt.stats.flits_injected == ref.stats.flits_injected, context
    assert _link_state(opt) == _link_state(ref), context
    assert _switch_state(opt) == _switch_state(ref), context
    assert opt.routes == ref.routes, context
    assert opt.link_utilization() == ref.link_utilization(), context
    # the optimized kernel's own bookkeeping must agree with the truth
    for node, switch in opt.switches.items():
        assert switch._buffered == switch.buffered_flits, (context, node)


class TestKernelEquivalence:
    """Optimized vs seed kernel over the full configuration grid."""

    @pytest.mark.parametrize("routing", ROUTINGS)
    @pytest.mark.parametrize("n_vcs", VCS)
    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("size", MESH_SIZES)
    def test_lockstep_grid(self, size, pattern, n_vcs, routing):
        cycles, settle = 100, 80
        opt = _run_lockstep(Network, size, routing, n_vcs, pattern,
                            cycles, settle)
        ref = _run_lockstep(ReferenceNetwork, size, routing, n_vcs,
                            pattern, cycles, settle)
        _assert_equivalent(
            opt, ref, f"{size}x{size}/{pattern}/vc{n_vcs}/{routing}"
        )


class TestDrainedPointEquivalence:
    """Full run-and-drain equivalence through the shared entry points.

    ``run_mesh_point`` (optimized) and ``reference_mesh_point`` (seed)
    must return identical result dictionaries — this is the same path
    the mesh-design-space sweep artifacts and the committed baselines
    in ``tests/baselines/`` are produced from, so equality here is what
    keeps ``repro diff`` clean across the kernel swap.
    """

    @pytest.mark.parametrize("kind", ("I1", "I2", "I3"))
    @pytest.mark.parametrize("pattern",
                             ("uniform", "hotspot", "transpose"))
    def test_drained_equality(self, kind, pattern):
        topology = Topology(4, 4)
        params = derive_link_params(st012(), kind, 300)
        kwargs = dict(
            injection_rate=0.15, pattern=pattern, cycles=300,
            drain_max_cycles=100_000,
        )
        assert run_mesh_point(topology, params, **kwargs) \
            == reference_mesh_point(topology, params, **kwargs)

    def test_drained_equality_with_vcs_and_adaptive_routing(self):
        topology = Topology(5, 5)
        params = derive_link_params(st012(), "I3", 300)
        kwargs = dict(
            injection_rate=0.12, pattern="uniform", cycles=300,
            routing="west_first", n_vcs=2, drain_max_cycles=100_000,
        )
        assert run_mesh_point(topology, params, **kwargs) \
            == reference_mesh_point(topology, params, **kwargs)


class TestCreditAccrualEquivalence:
    """Batched lazy accrual must replay per-cycle accrual exactly."""

    @pytest.mark.parametrize("rate", (1.0, 0.9523, 0.5, 0.3, 0.07))
    def test_accrue_to_matches_begin_cycle_sequence(self, rate):
        from repro.link.behavioral import BehavioralLinkParams, TokenLink
        from repro.noc.reference import ReferenceTokenLink

        params = BehavioralLinkParams("T", 2, rate, 8, 10, 300.0)
        stepped = ReferenceTokenLink(params)
        batched = TokenLink(params)
        # interleave sends so credit leaves the clamp repeatedly
        send_at = {3, 4, 17, 18, 19, 40}
        for cycle in range(60):
            stepped.begin_cycle()
            batched.accrue_to(cycle + 1)
            if cycle in send_at:
                assert stepped.can_send() == batched.can_send(), cycle
                assert stepped.try_send("f", cycle) \
                    == batched.try_send("f", cycle), cycle
            assert stepped._rate_credit == batched._rate_credit, cycle

    def test_accrue_to_is_idempotent_and_monotonic(self):
        from repro.link.behavioral import BehavioralLinkParams, TokenLink

        params = BehavioralLinkParams("T", 1, 0.4, 8, 10, 300.0)
        link = TokenLink(params)
        link.accrue_to(10)
        credit = link._rate_credit
        link.accrue_to(10)
        link.accrue_to(5)  # going backwards is a no-op
        assert link._rate_credit == credit
        assert link._accruals == 10

    def test_long_idle_link_saturates_in_bounded_steps(self):
        from repro.link.behavioral import BehavioralLinkParams, TokenLink

        params = BehavioralLinkParams("T", 1, 0.25, 8, 10, 300.0)
        link = TokenLink(params)
        link.accrue_to(1_000_000)  # must not loop a million times
        assert link._rate_credit == 1.0 + 0.25
        assert link._accruals == 1_000_000
