"""Tests for the west-first adaptive routing extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.link.behavioral import derive_link_params
from repro.noc import (
    Network,
    Packet,
    Port,
    Topology,
    TrafficConfig,
    TrafficGenerator,
    reset_packet_ids,
    west_first_permitted,
)
from repro.tech import st012


@pytest.fixture(autouse=True)
def fresh_ids():
    reset_packet_ids()


class TestWestFirstPermitted:
    def test_west_destination_forces_west(self):
        topo = Topology(4, 4)
        assert west_first_permitted((3, 1), (0, 2), topo) == [Port.WEST]

    def test_adaptive_choice_east_north(self):
        topo = Topology(4, 4)
        ports = west_first_permitted((0, 0), (2, 2), topo)
        assert set(ports) == {Port.EAST, Port.NORTH}

    def test_adaptive_choice_east_south(self):
        topo = Topology(4, 4)
        ports = west_first_permitted((0, 3), (2, 0), topo)
        assert set(ports) == {Port.EAST, Port.SOUTH}

    def test_pure_vertical(self):
        topo = Topology(4, 4)
        assert west_first_permitted((1, 0), (1, 3), topo) == [Port.NORTH]

    def test_arrived(self):
        topo = Topology(4, 4)
        assert west_first_permitted((2, 2), (2, 2), topo) == [Port.LOCAL]

    def test_torus_rejected(self):
        with pytest.raises(ValueError):
            west_first_permitted((0, 0), (1, 1), Topology(3, 3, torus=True))

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            west_first_permitted((0, 0), (9, 9), Topology(4, 4))

    @given(
        cols=st.integers(2, 6), rows=st.integers(2, 6), data=st.data()
    )
    @settings(deadline=None, max_examples=80)
    def test_no_turn_into_west(self, cols, rows, data):
        """The turn-model invariant: WEST is only ever permitted alone
        (a packet never turns *into* the west direction)."""
        topo = Topology(cols, rows)
        src = data.draw(st.tuples(st.integers(0, cols - 1),
                                  st.integers(0, rows - 1)))
        dest = data.draw(st.tuples(st.integers(0, cols - 1),
                                   st.integers(0, rows - 1)))
        ports = west_first_permitted(src, dest, topo)
        if Port.WEST in ports:
            assert ports == [Port.WEST]

    @given(cols=st.integers(2, 6), rows=st.integers(2, 6), data=st.data())
    @settings(deadline=None, max_examples=80)
    def test_every_permitted_port_is_productive(self, cols, rows, data):
        """Any permitted port strictly reduces the Manhattan distance."""
        topo = Topology(cols, rows)
        src = data.draw(st.tuples(st.integers(0, cols - 1),
                                  st.integers(0, rows - 1)))
        dest = data.draw(st.tuples(st.integers(0, cols - 1),
                                   st.integers(0, rows - 1)))
        before = abs(src[0] - dest[0]) + abs(src[1] - dest[1])
        for port in west_first_permitted(src, dest, topo):
            if port == Port.LOCAL:
                assert src == dest
                continue
            nxt = topo.neighbor(src, port)
            assert nxt is not None
            after = abs(nxt[0] - dest[0]) + abs(nxt[1] - dest[1])
            assert after == before - 1


class TestAdaptiveNetwork:
    def _run(self, routing, rate=0.2, seed=17, cycles=1200):
        topo = Topology(4, 4)
        net = Network(
            topo, derive_link_params(st012(), "I3", 300), routing=routing
        )
        traffic = TrafficGenerator(
            topo, TrafficConfig(injection_rate=rate, seed=seed)
        )
        net.run(cycles, traffic)
        net.drain(max_cycles=300_000)
        return net

    def test_unknown_routing_rejected(self):
        with pytest.raises(ValueError):
            Network(Topology(2, 2), derive_link_params(st012(), "I1", 300),
                    routing="zigzag")

    def test_lossless_delivery(self):
        net = self._run("west_first")
        assert net.stats.flits_ejected == net.stats.flits_injected

    def test_single_packet_shortest_path(self):
        topo = Topology(4, 4)
        net = Network(topo, derive_link_params(st012(), "I1", 300),
                      routing="west_first")
        net.offer_packet(Packet(src=(0, 0), dest=(3, 3), length_flits=2))
        net.drain()
        # hops = Manhattan distance → total link traversals = 6 per flit
        total = sum(link.flits_delivered for link in net.links.values())
        assert total == 2 * 6

    def test_adaptive_spreads_load(self):
        """Many same-pair packets: the adaptive mesh uses more distinct
        links than dimension-ordered XY."""
        def used_links(routing):
            topo = Topology(4, 4)
            net = Network(topo, derive_link_params(st012(), "I1", 300),
                          routing=routing)
            for i in range(10):
                net.offer_packet(
                    Packet(src=(0, 0), dest=(3, 3), length_flits=4)
                )
            net.drain(max_cycles=100_000)
            return sum(
                1 for link in net.links.values() if link.flits_delivered
            )

        reset_packet_ids()
        xy_links = used_links("xy")
        reset_packet_ids()
        adaptive_links = used_links("west_first")
        assert adaptive_links >= xy_links

    def test_comparable_latency_to_xy(self):
        xy = self._run("xy")
        wf = self._run("west_first")
        assert wf.stats.mean_packet_latency == pytest.approx(
            xy.stats.mean_packet_latency, rel=0.35
        )

    def test_hotspot_benefits_from_adaptivity(self):
        """Around a hotspot, adaptive routing must not be (much) worse."""
        def run(routing):
            reset_packet_ids()
            topo = Topology(4, 4)
            net = Network(topo, derive_link_params(st012(), "I3", 300),
                          routing=routing)
            traffic = TrafficGenerator(
                topo,
                TrafficConfig(pattern="hotspot", hotspot=(2, 2),
                              hotspot_fraction=0.5, injection_rate=0.15,
                              seed=23),
            )
            net.run(1200, traffic)
            net.drain(max_cycles=300_000)
            return net.stats.mean_packet_latency

        assert run("west_first") <= run("xy") * 1.2
