"""Integration tests for the mesh network simulator."""

import pytest

from repro.link.behavioral import derive_link_params
from repro.noc import (
    Network,
    Packet,
    Topology,
    TrafficConfig,
    TrafficGenerator,
    message_sequence,
    reset_packet_ids,
)
from repro.tech import st012


@pytest.fixture(autouse=True)
def fresh_ids():
    reset_packet_ids()


def make_network(kind="I1", mhz=300, cols=4, rows=4, torus=False):
    topo = Topology(cols, rows, torus=torus)
    params = derive_link_params(st012(), kind, mhz)
    return Network(topo, params), topo


class TestSinglePacket:
    def test_corner_to_corner(self):
        net, topo = make_network()
        packet = Packet(src=(0, 0), dest=(3, 3), length_flits=4)
        net.offer_packet(packet)
        net.drain()
        assert net.stats.flits_ejected == 4
        assert net.stats.packets_ejected == 1

    def test_neighbor_delivery_latency(self):
        """One hop: local->switch, switch traversal, link, eject."""
        net, topo = make_network(kind="I1")
        packet = Packet(src=(0, 0), dest=(1, 0), length_flits=1)
        net.offer_packet(packet)
        net.drain()
        lat = net.stats.packet_latencies[0]
        # at least the 5-cycle link latency, plus bounded switching time
        assert 5 <= lat <= 12

    def test_self_is_never_routed(self):
        """XY routing ejects immediately at the destination switch."""
        net, topo = make_network()
        packet = Packet(src=(2, 2), dest=(2, 2), length_flits=1)
        net.offer_packet(packet)
        net.drain()
        assert net.stats.flits_ejected == 1
        # no inter-switch link carried it
        assert all(link.flits_sent == 0 for link in net.links.values())

    def test_unknown_source_rejected(self):
        net, topo = make_network()
        with pytest.raises(ValueError):
            net.offer_packet(Packet(src=(9, 9), dest=(0, 0), length_flits=1))


class TestManyPackets:
    def test_all_pairs_single_flit(self):
        net, topo = make_network(cols=3, rows=3)
        pairs = [
            (src, dst)
            for src in topo.nodes()
            for dst in topo.nodes()
            if src != dst
        ]
        for packet in message_sequence(topo, pairs, packet_length=1):
            net.offer_packet(packet)
        net.drain()
        assert net.stats.packets_ejected == len(pairs)

    def test_wormhole_packets_arrive_intact(self):
        net, topo = make_network()
        packets = [
            Packet(src=(0, 0), dest=(3, 3), length_flits=6),
            Packet(src=(3, 0), dest=(0, 3), length_flits=6),
            Packet(src=(0, 3), dest=(3, 0), length_flits=6),
        ]
        for p in packets:
            net.offer_packet(p)
        net.drain()
        assert net.stats.packets_ejected == 3
        assert net.stats.flits_ejected == 18

    @pytest.mark.parametrize("kind", ["I1", "I2", "I3"])
    def test_uniform_traffic_all_delivered(self, kind):
        net, topo = make_network(kind=kind)
        traffic = TrafficGenerator(
            topo, TrafficConfig(injection_rate=0.1, seed=11)
        )
        net.run(800, traffic)
        net.drain()
        assert net.stats.flits_injected > 0
        assert net.stats.flits_ejected == net.stats.flits_injected

    def test_torus_delivery(self):
        net, topo = make_network(torus=True)
        packet = Packet(src=(0, 0), dest=(3, 0), length_flits=2)
        net.offer_packet(packet)
        net.drain()
        assert net.stats.packets_ejected == 1
        # wrap link used (0,0)->WEST->(3,0)
        west = net.links[((0, 0), __import__(
            "repro.noc.topology", fromlist=["Port"]).Port.WEST)]
        assert west.flits_sent == 2


class TestWireAccounting:
    def test_total_wires_scale_with_link_kind(self):
        net_i1, _ = make_network(kind="I1")
        net_i3, _ = make_network(kind="I3")
        assert net_i1.total_wires == 32 * 48
        assert net_i3.total_wires == 10 * 48
        reduction = 1 - net_i3.total_wires / net_i1.total_wires
        assert reduction == pytest.approx(0.6875)  # 75 % on data wires


class TestLatencyVsLoad:
    def test_latency_grows_with_load(self):
        from repro.noc import latency_vs_load

        topo = Topology(4, 4)
        params = derive_link_params(st012(), "I1", 300)
        sweep = latency_vs_load(
            topo, params, injection_rates=[0.02, 0.35],
            warmup_cycles=200, measure_cycles=800,
        )
        assert sweep[1]["mean_latency"] > sweep[0]["mean_latency"]

    def test_throughput_tracks_offered_load_below_saturation(self):
        from repro.noc import latency_vs_load

        topo = Topology(4, 4)
        params = derive_link_params(st012(), "I3", 300)
        sweep = latency_vs_load(
            topo, params, injection_rates=[0.05],
            warmup_cycles=200, measure_cycles=1500,
        )
        assert sweep[0]["throughput"] == pytest.approx(0.05, rel=0.25)


class TestDrainTimeout:
    def test_drain_raises_when_stuck(self):
        net, topo = make_network()
        # congest one destination artificially by never stepping... instead
        # check timeout machinery with an absurd bound
        packet = Packet(src=(0, 0), dest=(3, 3), length_flits=2)
        net.offer_packet(packet)
        with pytest.raises(TimeoutError):
            net.drain(max_cycles=1)
