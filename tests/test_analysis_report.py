"""Unit tests for the report formatting helpers."""

import pytest

from repro.analysis import format_series, format_table, relative_error, within


class TestFormatTable:
    def test_basic_table(self):
        text = format_table(("a", "b"), [(1, 2), (3, 4)])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "1" in lines[2]

    def test_title(self):
        text = format_table(("x",), [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_column_alignment(self):
        text = format_table(("name", "v"), [("long-name-here", 1)])
        lines = text.splitlines()
        assert len(lines[1]) >= len("long-name-here")

    def test_none_rendered_as_dash(self):
        text = format_table(("a",), [(None,)])
        assert "-" in text.splitlines()[-1]

    def test_float_formatting(self):
        text = format_table(("v",), [(1234.5,), (0.123456,)])
        assert "1,234" in text or "1,235" in text
        assert "0.123" in text


class TestFormatSeries:
    def test_series_blocks(self):
        text = format_series(
            {"curve1": [(1, 10), (2, 20)]}, x_label="x", y_label="y"
        )
        assert "[curve1]" in text
        assert "x=" in text and "y=" in text

    def test_title(self):
        text = format_series({}, "x", "y", title="T")
        assert text == "T"


class TestErrorHelpers:
    def test_relative_error_signed(self):
        assert relative_error(110, 100) == pytest.approx(0.10)
        assert relative_error(90, 100) == pytest.approx(-0.10)

    def test_relative_error_zero_reference(self):
        with pytest.raises(ValueError):
            relative_error(1, 0)

    def test_within(self):
        assert within(102, 100, 0.05)
        assert not within(110, 100, 0.05)
