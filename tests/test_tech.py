"""Unit tests for the technology model and 0.12 µm calibration."""

import pytest

from repro.tech import (
    GateDelays,
    HandshakeTimings,
    MetalGeometry,
    Technology,
    st012,
)


class TestGateDelays:
    def test_defaults_are_positive(self):
        delays = GateDelays()
        for name in delays.__dataclass_fields__:
            assert getattr(delays, name) > 0

    def test_scaled_multiplies_all(self):
        delays = GateDelays()
        scaled = delays.scaled(2.0)
        assert scaled.inv == 2 * delays.inv
        assert scaled.dff_clk_q == 2 * delays.dff_clk_q

    def test_scaled_floors_at_one(self):
        delays = GateDelays(inv=1)
        assert delays.scaled(0.01).inv == 1

    def test_frozen(self):
        delays = GateDelays()
        with pytest.raises(AttributeError):
            delays.inv = 5  # type: ignore[misc]


class TestMetalGeometry:
    def test_paper_metal6_values(self):
        met = st012().metal
        assert met.met_w_um == pytest.approx(0.44)
        assert met.met_g_um == pytest.approx(0.46)

    def test_pitch(self):
        met = MetalGeometry(met_w_um=0.4, met_g_um=0.6)
        assert met.pitch_um == pytest.approx(1.0)


class TestSt012:
    def test_feature_size(self):
        assert st012().feature_nm == 120

    def test_paper_inverter_delay(self):
        """Tinv = 0.011 ns from the ST CORE9GPLL datasheet."""
        tech = st012()
        assert tech.gates.inv == 11
        assert tech.handshake.t_inv == 11

    def test_paper_i3_handshake_constants(self):
        hs = st012().handshake
        assert hs.t_validwordack == 700
        assert hs.t_ackout_i3 == 1400
        assert hs.t_burst == 1100
        assert hs.t_p_per_segment == 0

    def test_paper_table2_areas(self):
        areas = st012().areas
        assert areas.sync_to_async == 9408.0
        assert areas.serializer_i2 == 869.0
        assert areas.wire_buffer_i2 == 294.0
        assert areas.deserializer_i2 == 1030.0
        assert areas.async_to_sync == 6710.0

    def test_table1_totals_recoverable(self):
        areas = st012().areas
        i2_total = (
            areas.sync_to_async
            + areas.serializer_i2
            + 4 * areas.wire_buffer_i2
            + areas.deserializer_i2
            + areas.async_to_sync
        )
        assert i2_total == pytest.approx(19_193.0)
        i3_total = (
            areas.sync_to_async
            + areas.serializer_i3
            + 4 * areas.wire_buffer_i3
            + areas.deserializer_i3
            + areas.async_to_sync
        )
        assert i3_total == pytest.approx(18_396.0)
        assert 4 * areas.sync_buffer == pytest.approx(15_864.0)

    def test_provenance_is_annotated(self):
        tech = st012()
        assert any("[paper]" in v for v in tech.provenance.values())
        assert any("[fit" in v for v in tech.provenance.values())
        assert any("[est]" in v for v in tech.provenance.values())

    def test_instances_are_independent(self):
        a = st012()
        b = st012()
        assert a is not b
        assert a.areas == b.areas


class TestTechnologyHelpers:
    def test_wire_delay(self):
        tech = st012()
        assert tech.wire_delay_ps(1000.0) == 60  # 60 ps/mm default
        assert tech.wire_delay_ps(0.0) == 0

    def test_wire_delay_rejects_negative(self):
        with pytest.raises(ValueError):
            st012().wire_delay_ps(-1.0)

    def test_with_gates_replaces(self):
        tech = st012()
        slow = tech.with_gates(tech.gates.scaled(3.0))
        assert slow.gates.inv == 33
        assert tech.gates.inv == 11  # original untouched

    def test_with_handshake_replaces(self):
        tech = st012()
        from dataclasses import replace

        fast = tech.with_handshake(replace(tech.handshake, t_burst=550))
        assert fast.handshake.t_burst == 550
        assert tech.handshake.t_burst == 1100

    def test_default_technology_construction(self):
        tech = Technology(name="generic", feature_nm=90)
        assert tech.gates.inv > 0
        assert isinstance(tech.handshake, HandshakeTimings)
