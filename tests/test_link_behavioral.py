"""Unit tests for behavioural link parameters and the token link."""

import pytest

from repro.link import LinkConfig
from repro.link.behavioral import (
    BehavioralLinkParams,
    TokenLink,
    derive_link_params,
)
from repro.tech import st012


class TestDeriveLinkParams:
    def test_i1_latency_is_pipeline_depth(self):
        p = derive_link_params(st012(), "I1", 300, LinkConfig(n_buffers=4))
        assert p.latency_cycles == 5
        assert p.rate_flits_per_cycle == 1.0
        assert p.wire_count == 32

    def test_i3_rate_saturates_at_one_below_ceiling(self):
        p = derive_link_params(st012(), "I3", 100)
        assert p.rate_flits_per_cycle == 1.0  # 304 MF/s >> 100 MHz

    def test_i2_rate_limited_at_300mhz(self):
        p = derive_link_params(st012(), "I2", 300)
        assert p.rate_flits_per_cycle == pytest.approx(285.7 / 300, rel=0.01)

    def test_async_capacity_is_two_fifos(self):
        p = derive_link_params(st012(), "I3", 300)
        assert p.capacity_flits == 8  # the paper's 8 spaces

    def test_wire_counts(self):
        assert derive_link_params(st012(), "I2", 300).wire_count == 10
        assert derive_link_params(st012(), "I3", 300).wire_count == 10

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            derive_link_params(st012(), "I9", 300)

    def test_serial_ceiling_recorded(self):
        p = derive_link_params(st012(), "I3", 300)
        assert p.serial_ceiling_mflits == pytest.approx(304.1, rel=0.01)

    def test_params_validated(self):
        with pytest.raises(ValueError):
            BehavioralLinkParams("X", 0, 1.0, 8, 10, 300.0)
        with pytest.raises(ValueError):
            BehavioralLinkParams("X", 1, 1.5, 8, 10, 300.0)
        with pytest.raises(ValueError):
            BehavioralLinkParams("X", 1, 1.0, 0, 10, 300.0)


class TestTokenLink:
    def _params(self, rate=1.0, latency=3, capacity=4):
        return BehavioralLinkParams("T", latency, rate, capacity, 10, 300.0)

    def test_flit_arrives_after_latency(self):
        link = TokenLink(self._params(latency=3))
        link.begin_cycle()
        assert link.try_send("flit", now_cycle=0)
        assert not link.deliverable(2)
        assert link.deliverable(3)
        assert link.pop(3) == "flit"

    def test_capacity_bound(self):
        link = TokenLink(self._params(capacity=2))
        for cycle in range(2):
            link.begin_cycle()
            assert link.try_send(cycle, cycle)
        link.begin_cycle()
        assert not link.try_send(99, 2)  # full

    def test_rate_limits_injection(self):
        link = TokenLink(self._params(rate=0.5, capacity=100))
        sent = 0
        for cycle in range(10):
            link.begin_cycle()
            if link.try_send(cycle, cycle):
                sent += 1
        assert sent == 5  # half-rate link

    def test_full_rate_sends_every_cycle(self):
        link = TokenLink(self._params(rate=1.0, capacity=100, latency=1))
        sent = 0
        for cycle in range(10):
            link.begin_cycle()
            if link.try_send(cycle, cycle):
                sent += 1
            if link.deliverable(cycle):
                link.pop(cycle)
        assert sent == 10

    def test_pop_without_deliverable_raises(self):
        link = TokenLink(self._params())
        with pytest.raises(RuntimeError):
            link.pop(0)

    def test_fifo_order(self):
        link = TokenLink(self._params(latency=1, capacity=10))
        for cycle in range(3):
            link.begin_cycle()
            link.try_send(f"f{cycle}", cycle)
        out = []
        for cycle in range(1, 5):
            while link.deliverable(cycle):
                out.append(link.pop(cycle))
        assert out == ["f0", "f1", "f2"]

    def test_counters(self):
        link = TokenLink(self._params(latency=1))
        link.begin_cycle()
        link.try_send("a", 0)
        link.pop(1)
        assert link.flits_sent == 1
        assert link.flits_delivered == 1
        assert link.occupancy == 0


class TestBehavioralMatchesGateLevel:
    """The behavioural parameters must agree with gate-level measurement."""

    @pytest.mark.parametrize("kind", ["I2", "I3"])
    def test_ceiling_agreement(self, kind):
        from repro.experiments.throughput import simulate_ceiling_mflits

        tech = st012()
        params = derive_link_params(tech, kind, 1000)
        measured = simulate_ceiling_mflits(kind, tech, n_flits=24)
        assert measured == pytest.approx(params.serial_ceiling_mflits,
                                         rel=0.06)

    def test_i1_latency_agreement(self):
        from repro.link import LinkTestbench, build_i1
        from repro.sim import Clock, Simulator

        tech = st012()
        params = derive_link_params(tech, "I1", 100)
        sim = Simulator()
        clock = Clock.from_mhz(sim, 100)
        link = build_i1(sim, clock.signal, LinkConfig())
        bench = LinkTestbench(sim, clock, link)
        m = bench.run([1, 2, 3, 4], timeout_ns=1e6)
        measured_cycles = m.mean_latency_ns / 10.0
        assert measured_cycles == pytest.approx(params.latency_cycles, abs=1.0)
