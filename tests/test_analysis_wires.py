"""Unit tests for the Fig 10 wires-vs-bandwidth model."""

import pytest

from repro.analysis import (
    async_wires_needed,
    fig10_series,
    sync_wires_needed,
)
from repro.tech import st012


class TestSyncWires:
    def test_paper_anchor_points(self):
        assert sync_wires_needed(300, 300) == 32
        assert sync_wires_needed(300, 100) == 96
        assert sync_wires_needed(100, 100) == 32

    def test_rounds_up_to_whole_wires(self):
        assert sync_wires_needed(150, 100) == 48
        assert sync_wires_needed(101, 100) == 33

    def test_control_wires_optional(self):
        assert sync_wires_needed(300, 300, count_control=True) == 34

    def test_validation(self):
        with pytest.raises(ValueError):
            sync_wires_needed(0, 100)
        with pytest.raises(ValueError):
            sync_wires_needed(100, 0)


class TestAsyncWires:
    def test_constant_below_ceiling(self):
        tech = st012()
        for bandwidth in (100, 200, 300):
            assert async_wires_needed(bandwidth, tech) == 8

    def test_none_beyond_ceiling(self):
        assert async_wires_needed(350, st012()) is None

    def test_control_wires_optional(self):
        assert async_wires_needed(100, st012(), count_control=True) == 10

    def test_wider_slices_raise_ceiling(self):
        tech = st012()
        assert async_wires_needed(350, tech, slice_width=16) == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            async_wires_needed(-1, st012())


class TestFig10Series:
    def test_series_labels(self):
        series = fig10_series(st012())
        assert set(series) == {
            "I1-Synch@100", "I1-Synch@200", "I1-Synch@300",
            "I3-Async (proposed)",
        }

    def test_sync_curves_grow_async_flat(self):
        series = fig10_series(st012())
        sync_wires = [p.wires for p in series["I1-Synch@100"]]
        async_wires = [
            p.wires for p in series["I3-Async (proposed)"]
            if p.wires is not None
        ]
        assert sync_wires == sorted(sync_wires)
        assert sync_wires[-1] > sync_wires[0]
        assert len(set(async_wires)) == 1

    def test_slower_clock_needs_more_wires(self):
        series = fig10_series(st012())
        for p100, p300 in zip(series["I1-Synch@100"], series["I1-Synch@300"]):
            assert p100.wires > p300.wires

    def test_bandwidth_axis_matches_input(self):
        series = fig10_series(st012(), bandwidths_mflits=(100, 200))
        assert [p.bandwidth_mflits for p in series["I1-Synch@100"]] == [100, 200]
