"""The ``tools/check_hotpath.py`` AST lint: contract + seeded bugs.

The checker must accept every guard idiom the hot paths actually use
(plain ``if _OBS.enabled``, conditional expressions, compound tests,
``_obs_*`` bulk-publish helpers) and reject the regressions it exists
to prevent: unguarded metric calls, unguarded helper call sites, and
``snapshot()``/``reset()`` anywhere in a hot-path module.
"""

import importlib.util
import subprocess
import sys
import textwrap
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_hotpath", REPO / "tools" / "check_hotpath.py")
check_hotpath = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_hotpath)


def _violations(source):
    return check_hotpath.check_source(textwrap.dedent(source))


class TestGuardIdioms:
    def test_plain_if_guard_accepted(self):
        assert _violations("""
            if _OBS.enabled:
                _OBS.counter("events").inc()
        """) == []

    def test_conditional_expression_guard_accepted(self):
        assert _violations("""
            base = self._obs_totals() if _OBS.enabled else None
        """) == []

    def test_compound_test_guard_accepted(self):
        assert _violations("""
            if base is not None and _OBS.enabled:
                self._obs_publish(base)
        """) == []

    def test_helper_body_exempt(self):
        assert _violations("""
            class Net:
                def _obs_publish(self, base):
                    _OBS.counter("noc.flits").inc(self.flits)
                    _OBS.gauge("noc.depth").set(self.depth)
                    self._obs_totals()
        """) == []

    def test_nested_function_inside_guard_stays_guarded(self):
        assert _violations("""
            if _OBS.enabled:
                for name in names:
                    _OBS.counter(name).inc()
        """) == []


class TestSeededViolations:
    def test_unguarded_counter_flagged(self):
        bad = _violations("""
            def step(self):
                _OBS.counter("events").inc()
        """)
        assert len(bad) == 1
        assert "outside an `if _OBS.enabled` guard" in bad[0][2]

    def test_else_branch_is_not_guarded(self):
        bad = _violations("""
            if _OBS.enabled:
                pass
            else:
                _OBS.counter("events").inc()
        """)
        assert len(bad) == 1

    def test_conditional_expression_orelse_not_guarded(self):
        bad = _violations("""
            x = 0 if _OBS.enabled else _OBS.counter("n").inc()
        """)
        assert len(bad) == 1

    def test_wrong_guard_attribute_rejected(self):
        bad = _violations("""
            if _OBS.verbose:
                _OBS.counter("events").inc()
        """)
        assert len(bad) == 1

    def test_unguarded_helper_call_site_flagged(self):
        bad = _violations("""
            def run(self):
                self._obs_publish(base)
        """)
        assert len(bad) == 1
        assert "_obs_publish" in bad[0][2]

    def test_snapshot_forbidden_even_when_guarded(self):
        bad = _violations("""
            if _OBS.enabled:
                data = _OBS.snapshot()
        """)
        assert len(bad) == 1
        assert "forbidden" in bad[0][2]

    def test_reset_forbidden_inside_helper(self):
        bad = _violations("""
            def _obs_publish(self):
                _OBS.reset()
        """)
        assert len(bad) == 1
        assert "forbidden" in bad[0][2]

    def test_violation_carries_line_number(self):
        bad = _violations("""
            x = 1
            _OBS.gauge("depth").set(x)
        """)
        assert bad[0][1] == 3  # dedented source keeps its blank line


class TestRepoTree:
    def test_current_tree_is_clean(self):
        assert check_hotpath.check_tree(REPO) == []

    def test_cli_exit_codes(self, tmp_path):
        clean = subprocess.run(
            [sys.executable, "tools/check_hotpath.py"],
            cwd=REPO, capture_output=True, text=True)
        assert clean.returncode == 0
        assert "contract holds" in clean.stdout

        bad_root = tmp_path / "r"
        for pkg in check_hotpath.HOT_PACKAGES:
            (bad_root / pkg).mkdir(parents=True)
        (bad_root / "src/repro/sim/kernel.py").write_text(
            '_OBS.counter("events").inc()\n')
        broken = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_hotpath.py"),
             str(bad_root)],
            capture_output=True, text=True)
        assert broken.returncode == 1
        assert "src/repro/sim/kernel.py:1" in broken.stderr

    def test_missing_packages_reported(self, tmp_path):
        result = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_hotpath.py"),
             str(tmp_path)],
            capture_output=True, text=True)
        assert result.returncode == 2
        assert "repository root" in result.stderr
