"""GALS extension tests: transmit and receive switches on different clocks.

The paper's link never clocks the wire, so nothing in it requires the
two switch domains to share a frequency or phase — serializing in the
asynchronous domain buys plesiochronous operation for free.  These
tests drive the gate-level links with independent, even mutually prime,
clock periods and assert lossless in-order delivery and rate matching.
"""

import pytest

from repro.link import LinkConfig, LinkTestbench, build_i2, build_i3
from repro.sim import Clock, Simulator


def run_gals(builder, tx_mhz, rx_mhz, flits, start_delay_ps=0, **cfg):
    sim = Simulator()
    tx_clock = Clock.from_mhz(sim, tx_mhz, name="txclk")
    rx_clock = Clock.from_mhz(sim, rx_mhz, name="rxclk",
                              start_delay_ps=start_delay_ps)
    link = builder(sim, tx_clock.signal, LinkConfig(**cfg),
                   rx_clk=rx_clock.signal)
    bench = LinkTestbench(sim, tx_clock, link, rx_clock=rx_clock)
    return bench.run(flits, timeout_ns=1e6)


@pytest.mark.parametrize("builder", [build_i2, build_i3])
class TestGalsDelivery:
    def test_fast_tx_slow_rx(self, builder):
        """300 MHz sender into a 100 MHz receiver: the receiver's clock
        limits throughput; backpressure protects the FIFOs."""
        flits = [0xA5A5A5A5, 0x5A5A5A5A] * 6
        m = run_gals(builder, 300, 100, flits)
        assert m.received_values == flits
        assert m.throughput_mflits == pytest.approx(100.0, rel=0.05)

    def test_slow_tx_fast_rx(self, builder):
        """100 MHz sender into a 300 MHz receiver: source-limited."""
        flits = [0x11111111 * i for i in range(1, 9)]
        m = run_gals(builder, 100, 300, flits)
        assert m.received_values == flits
        assert m.throughput_mflits == pytest.approx(100.0, rel=0.05)

    def test_mutually_prime_periods(self, builder):
        """Periods with no common factor (10000 ps vs 7001... use
        142.857 MHz → 7000 ps and 100 MHz → 10000 ps): every phase
        relation occurs; delivery must still be exact."""
        flits = list(range(0x40, 0x50))
        m = run_gals(builder, 142.857, 100, flits)
        assert m.received_values == flits

    def test_phase_offset_between_domains(self, builder):
        """A deliberately skewed receive clock (third of a period)."""
        flits = [0xDEADBEEF, 0xCAFEBABE, 0x01234567, 0x89ABCDEF]
        m = run_gals(builder, 300, 300, flits, start_delay_ps=1111)
        assert m.received_values == flits

    def test_extreme_ratio(self, builder):
        """600 MHz sender, 50 MHz receiver — 12× mismatch."""
        flits = [0xF0F0F0F0, 0x0F0F0F0F] * 3
        m = run_gals(builder, 600, 50, flits)
        assert m.received_values == flits
        assert m.throughput_mflits == pytest.approx(50.0, rel=0.06)


class TestGalsDefaults:
    def test_rx_clk_defaults_to_shared_clock(self):
        sim = Simulator()
        clock = Clock.from_mhz(sim, 300)
        link = build_i3(sim, clock.signal, LinkConfig())
        assert link.a2s.clk is clock.signal

    def test_distinct_clock_objects_bound(self):
        sim = Simulator()
        tx = Clock.from_mhz(sim, 300)
        rx = Clock.from_mhz(sim, 100)
        link = build_i3(sim, tx.signal, LinkConfig(), rx_clk=rx.signal)
        assert link.s2a.clk is tx.signal
        assert link.a2s.clk is rx.signal


class TestGalsProperty:
    """Property: any clock pair delivers losslessly and in order."""

    def test_random_clock_pairs(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(
            tx_mhz=st.floats(40.0, 600.0),
            rx_mhz=st.floats(40.0, 600.0),
            phase=st.integers(0, 9999),
        )
        @settings(deadline=None, max_examples=15)
        def check(tx_mhz, rx_mhz, phase):
            flits = [0xA5A5A5A5, 0x5A5A5A5A, 0x0F0F0F0F, 0xF0F0F0F0]
            m = run_gals(build_i3, tx_mhz, rx_mhz, flits,
                         start_delay_ps=phase)
            assert m.received_values == flits

        check()
