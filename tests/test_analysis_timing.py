"""Unit tests for the Section V delay equations."""

import pytest

from repro.analysis import (
    link_upper_bound_mflits,
    per_transfer_cycle_delay,
    per_word_cycle_delay,
    sync_link_throughput,
)
from repro.tech import HandshakeTimings, st012


class TestPerWordEquation:
    def test_paper_worked_example(self):
        """Tp=0, Tinv=0.011, Tburst=1.1, Tvwa=0.7, Tao=1.4 →
        D = 8·0.011 + 0.7 + 1.4 + 1.1 = 3.288 ns (paper prints 3.21)."""
        est = per_word_cycle_delay(st012().handshake)
        assert est.cycle_delay_ns == pytest.approx(3.288, abs=0.001)
        assert est.mflits == pytest.approx(304.1, rel=0.001)

    def test_matches_published_value_within_3_percent(self):
        est = per_word_cycle_delay(st012().handshake)
        assert est.cycle_delay_ns == pytest.approx(3.21, rel=0.03)
        assert est.mflits == pytest.approx(311.0, rel=0.03)

    def test_segment_count_generalizes(self):
        """k buffers → 2(k+1) Tp terms; k=4 recovers the paper's 10."""
        timings = HandshakeTimings(t_p_per_segment=100, t_inv=0,
                                   t_validwordack=0, t_ackout_i3=0, t_burst=0)
        est = per_word_cycle_delay(timings, n_buffers=4)
        assert est.cycle_delay_ps == 10 * 100

    def test_inverter_count_generalizes(self):
        """k stations × 2 inverters; k=4 recovers the paper's 8 Tinv."""
        timings = HandshakeTimings(t_p_per_segment=0, t_inv=11,
                                   t_validwordack=0, t_ackout_i3=0, t_burst=0)
        est = per_word_cycle_delay(timings, n_buffers=4)
        assert est.cycle_delay_ps == 8 * 11

    def test_wire_delay_hurts_once_per_word(self):
        base = per_word_cycle_delay(st012().handshake)
        slow = per_word_cycle_delay(
            HandshakeTimings(t_p_per_segment=100), n_buffers=4
        )
        fast = per_word_cycle_delay(
            HandshakeTimings(t_p_per_segment=0), n_buffers=4
        )
        assert slow.cycle_delay_ps - fast.cycle_delay_ps == 1000
        assert base.mflits > 0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            per_word_cycle_delay(st012().handshake, n_slices=0)


class TestPerTransferEquation:
    def test_default_constants(self):
        """4 slices × (Treqreq+Treqack+Tackack+Tackout) + Tnextflit."""
        est = per_transfer_cycle_delay(st012().handshake)
        assert est.cycle_delay_ps == 4 * (150 + 200 + 150 + 250) + 500
        assert est.mflits == pytest.approx(285.7, rel=0.001)

    def test_wire_delay_hurts_once_per_slice(self):
        slow = per_transfer_cycle_delay(
            HandshakeTimings(t_p_per_segment=100), n_slices=4, n_buffers=4
        )
        fast = per_transfer_cycle_delay(
            HandshakeTimings(t_p_per_segment=0), n_slices=4, n_buffers=4
        )
        # 4 slices × 4 segments × 100 ps
        assert slow.cycle_delay_ps - fast.cycle_delay_ps == 1600

    def test_more_slices_cost_linearly(self):
        t = st012().handshake
        d4 = per_transfer_cycle_delay(t, n_slices=4).cycle_delay_ps
        d8 = per_transfer_cycle_delay(t, n_slices=8).cycle_delay_ps
        per_slice = 150 + 200 + 150 + 250
        assert d8 - d4 == 4 * per_slice

    def test_input_validation(self):
        with pytest.raises(ValueError):
            per_transfer_cycle_delay(st012().handshake, n_buffers=0)


class TestCrossoverProperties:
    def test_per_word_beats_per_transfer_with_long_wires(self):
        """Section IV motivation: per-transfer acks pay the wire four
        times per word, word-level acks only twice in total."""
        timings = HandshakeTimings(t_p_per_segment=500)
        i2 = per_transfer_cycle_delay(timings)
        i3 = per_word_cycle_delay(timings)
        assert i3.mflits > i2.mflits

    def test_per_word_beats_per_transfer_at_default_constants(self):
        t = st012().handshake
        assert (per_word_cycle_delay(t).mflits
                > per_transfer_cycle_delay(t).mflits)


class TestSyncThroughput:
    def test_one_flit_per_cycle(self):
        assert sync_link_throughput(300.0).mflits == 300.0
        assert sync_link_throughput(100.0).cycle_delay_ps == pytest.approx(
            10_000
        )

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            sync_link_throughput(0)


class TestUpperBound:
    def test_i1_is_clock_limited(self):
        assert link_upper_bound_mflits(st012(), "I1", 250.0) == 250.0

    def test_i3_clock_limited_below_ceiling(self):
        assert link_upper_bound_mflits(st012(), "I3", 100.0) == 100.0

    def test_i3_serial_limited_above_ceiling(self):
        bound = link_upper_bound_mflits(st012(), "I3", 500.0)
        assert bound == pytest.approx(304.1, rel=0.001)

    def test_i2_serial_limited_at_300(self):
        bound = link_upper_bound_mflits(st012(), "I2", 300.0)
        assert bound == pytest.approx(285.7, rel=0.001)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            link_upper_bound_mflits(st012(), "I7", 100.0)
