"""Unit tests for the mesh-level cost model."""

import pytest

from repro.analysis import MeshCost, mesh_cost, mesh_cost_comparison
from repro.noc import Topology
from repro.tech import st012


class TestMeshCost:
    def test_link_count_4x4(self):
        cost = mesh_cost(st012(), Topology(4, 4), "I1")
        assert cost.n_links == 48
        assert cost.total_wires == 48 * 32

    def test_i3_wire_tally_includes_control(self):
        cost = mesh_cost(st012(), Topology(4, 4), "I3")
        assert cost.wires_per_link == 10
        data_only = mesh_cost(
            st012(), Topology(4, 4), "I3", count_control=False
        )
        assert data_only.wires_per_link == 8

    def test_circuit_area_uses_table1(self):
        cost = mesh_cost(st012(), Topology(2, 2), "I2")
        assert cost.circuit_area_um2 == pytest.approx(8 * 19_193.0)

    def test_wiring_area_scales_with_length(self):
        short = mesh_cost(st012(), Topology(4, 4), "I1", link_length_um=500)
        long = mesh_cost(st012(), Topology(4, 4), "I1", link_length_um=2000)
        assert long.wiring_area_um2 == pytest.approx(4 * short.wiring_area_um2)

    def test_power_uses_fig12_model(self):
        from repro.analysis import link_power_uw

        cost = mesh_cost(st012(), Topology(2, 2), "I3",
                         n_buffers=8, freq_mhz=300.0)
        per_link = link_power_uw(st012(), "I3", 8, 300.0, 0.5)
        assert cost.link_power_uw == pytest.approx(8 * per_link)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            mesh_cost(st012(), Topology(2, 2), "I9")

    def test_totals(self):
        cost = mesh_cost(st012(), Topology(2, 2), "I1")
        assert cost.total_area_um2 == pytest.approx(
            cost.wiring_area_um2 + cost.circuit_area_um2
        )
        assert cost.total_power_mw == pytest.approx(
            cost.link_power_uw / 1000.0
        )


class TestComparison:
    def test_all_three_kinds(self):
        comparison = mesh_cost_comparison(st012(), Topology(4, 4))
        assert set(comparison) == {"I1", "I2", "I3"}

    def test_paper_tradeoff_holds_at_mesh_scale(self):
        """The serial links win wires/wiring-area/power, lose circuit
        area at the paper's 4-buffer point — Table 1 + Fig 10/13 summed
        over 48 links.  (At 8 buffers even the circuit area flips: each
        synchronous buffer costs 3966 µm² vs 40 µm² per repeater.)"""
        at4 = mesh_cost_comparison(st012(), Topology(4, 4),
                                   n_buffers=4, freq_mhz=300.0)
        assert at4["I3"].total_wires < at4["I1"].total_wires / 3
        assert at4["I3"].wiring_area_um2 < at4["I1"].wiring_area_um2 / 2
        assert at4["I3"].circuit_area_um2 > at4["I1"].circuit_area_um2
        at8 = mesh_cost_comparison(st012(), Topology(4, 4),
                                   n_buffers=8, freq_mhz=300.0)
        assert at8["I3"].link_power_uw < 0.4 * at8["I1"].link_power_uw
        assert at8["I3"].circuit_area_um2 < at8["I1"].circuit_area_um2

    def test_crossover_wiring_dominates_at_length(self):
        """Beyond some wire length, the serial link's *total* area
        (wiring + circuit overhead) undercuts the synchronous link —
        the Fig 11 message."""
        tech = st012()
        topo = Topology(4, 4)
        short = mesh_cost_comparison(tech, topo, link_length_um=100)
        long = mesh_cost_comparison(tech, topo, link_length_um=3000)
        # at 100 µm the +20 % circuit area dominates: I1 is smaller
        assert short["I1"].total_area_um2 < short["I3"].total_area_um2
        # at 3 mm the 4× wiring area dominates: I3 is smaller
        assert long["I3"].total_area_um2 < long["I1"].total_area_um2


class TestHeterogeneousMesh:
    def test_per_link_override(self):
        """Long east-west rows get I3 links, the rest stay I1."""
        from repro.link.behavioral import derive_link_params
        from repro.noc import Network, Port

        tech = st012()
        i1 = derive_link_params(tech, "I1", 300)
        i3 = derive_link_params(tech, "I3", 300)

        def chooser(src, port, dst):
            return i3 if port in (Port.EAST, Port.WEST) else None

        net = Network(Topology(4, 4), i1, link_params_for=chooser)
        east_west = sum(
            1 for (src, port), link in net.links.items()
            if link.params.kind == "I3"
        )
        assert east_west == 24  # 2 × 3 × 4 horizontal directed links
        uniform = Network(Topology(4, 4), i1)
        assert net.total_wires < uniform.total_wires

    def test_heterogeneous_mesh_delivers(self):
        from repro.link.behavioral import derive_link_params
        from repro.noc import (
            Network,
            Port,
            TrafficConfig,
            TrafficGenerator,
            reset_packet_ids,
        )

        reset_packet_ids()
        tech = st012()
        i1 = derive_link_params(tech, "I1", 300)
        i2 = derive_link_params(tech, "I2", 300)
        topo = Topology(4, 4)
        net = Network(
            topo, i1,
            link_params_for=lambda s, p, d: i2 if p == Port.NORTH else None,
        )
        traffic = TrafficGenerator(
            topo, TrafficConfig(injection_rate=0.1, seed=13)
        )
        net.run(800, traffic)
        net.drain()
        assert net.stats.flits_ejected == net.stats.flits_injected

    def test_link_utilization_map(self):
        from repro.link.behavioral import derive_link_params
        from repro.noc import Network, Packet, reset_packet_ids

        reset_packet_ids()
        net = Network(Topology(2, 2), derive_link_params(st012(), "I1", 300))
        net.offer_packet(Packet(src=(0, 0), dest=(1, 0), length_flits=4))
        net.drain()
        util = net.link_utilization()
        used = [u for u in util.values() if u > 0]
        assert len(used) == 1  # only the (0,0)->EAST link carried flits
