"""Unit tests for the word-level serializer/de-serializer (Fig 8)."""

import pytest

from repro.link import (
    Channel,
    EarlyAckDeserializer,
    WordDeserializer,
    WordSerializer,
)
from repro.link.channel import sink_process, source_process
from repro.link.wiring import wire, wire_bus
from repro.sim import Simulator, spawn


@pytest.fixture
def sim():
    return Simulator()


def connect_word_pair(sim, wser, wdes):
    """Wire the serializer's ValidChannel to the deserializer and the
    word-level acknowledge back."""
    wire_bus(wser.out_ch.data, wdes.in_ch.data, 0)
    wire(wser.out_ch.valid, wdes.in_ch.valid, 0)
    wire(wdes.ack_to_tx, wser.out_ch.ack, 0)


class TestWordSerializer:
    def test_burst_has_one_valid_per_slice(self, sim):
        in_ch = Channel(sim, 32, "in")
        wser = WordSerializer(sim, in_ch, slice_width=8)
        valid_rises = []
        wser.out_ch.valid.on_change(
            lambda s: valid_rises.append(sim.now) if s.value else None
        )
        spawn(sim, source_process(in_ch, [0x01020304]))
        # fake the word-level ack once 4 pulses have gone by
        def acker(s):
            if len(valid_rises) == 4 and not s.value:
                wser.out_ch.ack.set(1)
        wser.out_ch.valid.on_change(acker)
        sim.run(until=10_000_000, max_events=1_000_000)
        assert len(valid_rises) == 4

    def test_burst_spacing_matches_tburst(self, sim):
        """Four slices span ~Tburst (1.1 ns for the default timings)."""
        in_ch = Channel(sim, 32, "in")
        wser = WordSerializer(sim, in_ch, slice_width=8)
        valid_rises = []
        wser.out_ch.valid.on_change(
            lambda s: valid_rises.append(sim.now) if s.value else None
        )
        spawn(sim, source_process(in_ch, [0xFFFFFFFF]))
        sim.run(until=5_000_000, max_events=1_000_000)
        spacing = valid_rises[-1] - valid_rises[0]
        expected = 3 * wser.slice_interval
        assert spacing == expected

    def test_ring_oscillator_runs_during_burst_only(self, sim):
        in_ch = Channel(sim, 32, "in")
        wser = WordSerializer(sim, in_ch, slice_width=8)
        spawn(sim, source_process(in_ch, [0xA5A5A5A5]))
        sim.run(until=5_000_000, max_events=1_000_000)
        transitions_after_burst = wser.osc.out.transitions
        sim.run(until=10_000_000, max_events=1_000_000)
        assert wser.osc.out.transitions == transitions_after_burst


class TestWordPairRoundTrip:
    def _roundtrip(self, sim, words, slice_width=8, early_by=0):
        in_ch = Channel(sim, 32, "in")
        wser = WordSerializer(sim, in_ch, slice_width=slice_width)
        from repro.link.channel import ValidChannel

        rx = ValidChannel(sim, slice_width, "rx")
        if early_by:
            wdes = EarlyAckDeserializer(sim, rx, 32, early_by=early_by)
        else:
            wdes = WordDeserializer(sim, rx, 32)
        wire_bus(wser.out_ch.data, rx.data, 0)
        wire(wser.out_ch.valid, rx.valid, 0)
        wire(wdes.ack_to_tx, wser.out_ch.ack, 0)
        received = []
        spawn(sim, source_process(in_ch, words))
        spawn(sim, sink_process(wdes.out_ch, received, count=len(words)))
        sim.run(max_events=5_000_000)
        return received, wser, wdes

    def test_single_word(self, sim):
        received, _, wdes = self._roundtrip(sim, [0xDEADBEEF])
        assert received == [0xDEADBEEF]
        assert wdes.words_deserialized == 1

    def test_worst_case_stream(self, sim):
        words = [0xA5A5A5A5, 0x5A5A5A5A] * 3
        received, wser, _ = self._roundtrip(sim, words)
        assert received == words
        assert wser.words_serialized == len(words)

    def test_sixteen_bit_slices(self, sim):
        words = [0x12345678, 0x9ABCDEF0]
        received, _, _ = self._roundtrip(sim, words, slice_width=16)
        assert received == words

    def test_early_ack_roundtrip_preserves_data(self, sim):
        words = [0xCAFEBABE, 0x00FF00FF, 0xFF00FF00]
        received, _, _ = self._roundtrip(sim, words, early_by=1)
        assert received == words

    def test_early_ack_is_faster(self, sim):
        words = [0xA5A5A5A5, 0x5A5A5A5A] * 4
        sim1 = Simulator()
        self_received, _, _ = self._roundtrip(sim1, words)
        baseline_time = sim1.now
        sim2 = Simulator()
        received, _, _ = self._roundtrip(sim2, words, early_by=1)
        assert received == words
        assert sim2.now < baseline_time

    def test_early_by_bounds(self, sim):
        from repro.link.channel import ValidChannel

        rx = ValidChannel(sim, 8, "rx")
        with pytest.raises(ValueError):
            EarlyAckDeserializer(sim, rx, 32, early_by=4)  # only 4 slices
        with pytest.raises(ValueError):
            EarlyAckDeserializer(sim, rx, 32, early_by=0)


class TestWordDeserializer:
    def test_shift_register_activity_exceeds_mux_design(self, sim):
        """All four slice registers clock on every VALID — the power
        effect the paper attributes to the shift-register design."""
        from repro.link.channel import ValidChannel

        rx = ValidChannel(sim, 8, "rx")
        wdes = WordDeserializer(sim, rx, 32)
        # drive 4 slices with alternating data
        def driver():
            from repro.sim import Delay

            for value in (0xFF, 0x00, 0xFF, 0x00):
                rx.data.set(value)
                yield Delay(50)
                rx.valid.set(1)
                yield Delay(100)
                rx.valid.set(0)
                yield Delay(100)

        spawn(sim, driver())
        sim.run(until=2_000_000, max_events=1_000_000)
        total = sum(stage.transitions for stage in wdes.slices.stages)
        # a mux-based design would touch one 8-bit register per slice
        # (≤ 4 × 8 = 32 edge counts); the shift register re-latches the
        # pipeline every pulse, so activity must exceed that bound
        assert total > 32
