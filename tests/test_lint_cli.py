"""CLI behavior of ``repro lint``, ``sweep --lint`` and ``inspect``.

The committed registry + waiver file must pass the gate, a
seeded-error design must be refused by the sweep pre-flight *before
any point executes*, and every output format must round-trip.
"""

import json
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.design.component import Component
from repro.design.design import Design
from repro.runner import registry
from repro.runner.registry import ParamSpec, scenario

WAIVER_FILE = str(Path(__file__).resolve().parent.parent
                  / "lint-waivers.toml")


def _floating_design(tech=None, **_params):
    top = Component("top")
    child = Component("c")
    child.port_in("a")
    top.add("c", child)
    return Design(top)


class TestLintCommand:
    def test_committed_registry_passes_error_gate(self, capsys):
        code = main(["lint", "--all", "--fail-on", "error",
                     "--waivers", WAIVER_FILE])
        out = capsys.readouterr().out
        assert code == 0
        assert "total:" in out
        # scenarios without design hooks are named, not hidden
        assert "skipped (scenario exposes no design tree)" in out

    def test_committed_waivers_all_used(self, capsys):
        code = main(["lint", "--all", "--fail-on", "warning",
                     "--waivers", WAIVER_FILE])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "unused-waiver" not in out

    def test_single_scenario_lints_clean(self, capsys):
        assert main(["lint", "gals-mesh", "--set", "mesh_size=2",
                     "--waivers", WAIVER_FILE]) == 0
        assert "gals-mesh: clean" in capsys.readouterr().out

    def test_requires_selection(self, capsys):
        with pytest.raises(SystemExit):
            main(["lint"])
        assert "--all" in capsys.readouterr().err

    def test_unknown_scenario_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["lint", "no-such-thing"])
        assert "unknown scenario" in capsys.readouterr().err

    def test_unknown_set_param_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["lint", "gals-mesh", "--set", "bogus=1"])
        assert "bogus" in capsys.readouterr().err

    def test_json_format_round_trips(self, capsys):
        assert main(["lint", "--all", "--format", "json",
                     "--waivers", WAIVER_FILE]) == 0
        doc = json.loads(capsys.readouterr().out)
        by_id = {r["scenario"]: r for r in doc["reports"]}
        assert by_id["gals-mesh"]["findings"] == []
        waived = by_id["throughput"]["findings"]
        assert all(f["waived"] for f in waived)

    def test_sarif_format_is_valid_2_1_0(self, capsys):
        assert main(["lint", "--all", "--format", "sarif",
                     "--waivers", WAIVER_FILE]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "comb-loop" in rule_ids and "unused-waiver" in rule_ids
        for result in run["results"]:
            assert result["ruleId"] in rule_ids
            logical = result["locations"][0]["logicalLocations"][0]
            assert logical["fullyQualifiedName"]

    def test_missing_explicit_waiver_file_rejected(self, capsys,
                                                   tmp_path):
        with pytest.raises(SystemExit):
            main(["lint", "gals-mesh",
                  "--waivers", str(tmp_path / "none.toml")])
        assert "cannot read waiver file" in capsys.readouterr().err

    def test_fail_on_gate_trips_on_seeded_error(self, capsys, tmp_path):
        @scenario("lint-broken-test", description="seeded violation",
                  design=_floating_design)
        def _run(tech=None):  # pragma: no cover - never executed
            raise AssertionError("must not run")

        try:
            empty = tmp_path / "w.toml"
            empty.write_text("")
            code = main(["lint", "lint-broken-test",
                         "--waivers", str(empty)])
        finally:
            registry.unregister("lint-broken-test")
        captured = capsys.readouterr()
        assert code == 1
        assert "undriven-input" in captured.out
        assert "top.c.a" in captured.out
        assert "lint gate" in captured.err


class TestSweepPreflight:
    def test_seeded_error_design_refused_before_execution(
            self, capsys):
        executed = []

        @scenario("lint-refused-sweep", description="seeded violation",
                  params=(ParamSpec("n", int, 1, sweep=(1, 2)),),
                  design=_floating_design)
        def _run(tech=None, n=1):
            executed.append(n)

        try:
            code = main(["sweep", "lint-refused-sweep", "--lint"])
        finally:
            registry.unregister("lint-refused-sweep")
        captured = capsys.readouterr()
        assert code == 1
        assert executed == []  # refused before any point ran
        assert "refusing to dispatch" in captured.err
        assert "undriven-input" in captured.err

    def test_clean_design_sweeps_normally(self, capsys, monkeypatch,
                                          tmp_path):
        monkeypatch.chdir(tmp_path)  # no waiver file in cwd
        code = main(["sweep", "sweep-noop", "--lint",
                     "--param", "point=1,2"])
        captured = capsys.readouterr()
        assert code == 0
        assert "exposes no design tree" in captured.out

    def test_clean_compiled_design_preflight_passes(self, capsys):
        code = main(["sweep", "compiled-fault-campaign", "--lint",
                     "--fast", "--param", "seed=1",
                     "--set", "vectors=2"])
        captured = capsys.readouterr()
        assert code == 0
        assert "clean at error level" in captured.out


class TestInspectSurfacing:
    def test_inspect_reports_clean_lint(self, capsys):
        assert main(["inspect", "gals-mesh",
                     "--set", "mesh_size=2"]) == 0
        assert "lint: clean" in capsys.readouterr().out

    def test_inspect_lists_findings(self, capsys):
        @scenario("lint-inspect-test", description="seeded violation",
                  design=_floating_design)
        def _run(tech=None):  # pragma: no cover - never executed
            raise AssertionError("must not run")

        try:
            assert main(["inspect", "lint-inspect-test"]) == 0
        finally:
            registry.unregister("lint-inspect-test")
        out = capsys.readouterr().out
        assert "lint: 1 error" in out
        assert "undriven-input" in out
        assert "top.c.a" in out
