"""Unit tests for wires, repeaters and the I2 wire-buffer chain."""

import pytest

from repro.link import AsyncWireBufferChain, RepeatedWire, RepeatedWireBus
from repro.link.wiring import wire, wire_bus
from repro.sim import Bus, Signal, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestWire:
    def test_forwards_transitions(self, sim):
        a, b = Signal(sim, "a"), Signal(sim, "b")
        wire(a, b, delay_ps=100)
        a.set(1)
        sim.run()
        assert b.value == 1

    def test_transport_delay(self, sim):
        a, b = Signal(sim, "a"), Signal(sim, "b")
        wire(a, b, delay_ps=100)
        times = []
        b.on_change(lambda s: times.append(sim.now))
        a.set(1)
        sim.run()
        assert times == [100]

    def test_wire_never_swallows_pulses(self, sim):
        """Transport semantics: a narrow pulse survives a long wire."""
        a, b = Signal(sim, "a"), Signal(sim, "b")
        wire(a, b, delay_ps=500)
        a.pulse(width=10)
        sim.run()
        assert b.rising == 1
        assert b.falling == 1

    def test_initial_value_mismatch_resolves(self, sim):
        a = Signal(sim, "a", init=1)
        b = Signal(sim, "b", init=0)
        wire(a, b, delay_ps=10)
        sim.run()
        assert b.value == 1

    def test_wire_bus_width_checked(self, sim):
        with pytest.raises(ValueError):
            wire_bus(Bus(sim, 8, "a"), Bus(sim, 4, "b"))

    def test_wire_bus_forwards_words(self, sim):
        a, b = Bus(sim, 8, "a"), Bus(sim, 8, "b")
        wire_bus(a, b, delay_ps=30)
        a.set(0xA5)
        sim.run()
        assert b.value == 0xA5


class TestRepeatedWire:
    def test_delay_is_inverter_count_times_tinv(self, sim):
        src = Signal(sim, "src")
        rep = RepeatedWire(sim, src, n_inverters=2, t_inv_ps=11)
        times = []
        rep.out.on_change(lambda s: times.append(sim.now))
        src.set(1)
        sim.run()
        assert times == [22]

    def test_odd_inverter_count_rejected(self, sim):
        with pytest.raises(ValueError):
            RepeatedWire(sim, Signal(sim, "s"), n_inverters=3)

    def test_bus_variant(self, sim):
        src = Bus(sim, 8, "src")
        rep = RepeatedWireBus(sim, src, n_inverters=4, t_inv_ps=11)
        src.set(0x3C)
        sim.run()
        assert rep.out.value == 0x3C
        assert rep.delay_ps == 44

    def test_cap_weight_reflects_repeater_nodes(self, sim):
        """Repeater nodes add a small fraction of the wire capacitance
        per inverter — far less than a latching stage's enables."""
        src = Bus(sim, 8, "src")
        rep = RepeatedWireBus(sim, src, n_inverters=2)
        expected = 1.0 + 2 * RepeatedWireBus.INVERTER_NODE_CAP
        assert all(s.cap_ff == pytest.approx(expected) for s in rep.out)
        assert expected < 4.0  # below the latched stage's data weight

    def test_zero_inverters_is_plain_wire(self, sim):
        src = Signal(sim, "s")
        rep = RepeatedWire(sim, src, n_inverters=0)
        src.set(1)
        sim.run()
        assert rep.out.value == 1
        assert rep.delay_ps == 0


class TestAsyncWireBufferChain:
    def _handshake_once(self, sim, chain, data_in, req_in, value):
        """Push one token through the chain, acking at the far end.

        The sender honours the bundled-data constraint: data settles a
        setup margin before REQ rises (the latch D→Q path is slower than
        the controller's C-element, so simultaneous data+req violates
        bundling — exactly as in real hardware).
        """
        from repro.sim import Delay, WaitValue, spawn

        received = []

        def sender():
            data_in.set(value)
            yield Delay(100)  # bundling setup margin
            yield WaitValue(chain.ack_out, 0)
            req_in.set(1)
            yield WaitValue(chain.ack_out, 1)
            req_in.set(0)
            yield WaitValue(chain.ack_out, 0)

        def receiver():
            yield WaitValue(chain.req_out, 1)
            received.append(chain.data_out.value)
            chain.ack_in.set(1)
            yield WaitValue(chain.req_out, 0)
            chain.ack_in.set(0)

        spawn(sim, sender())
        spawn(sim, receiver())
        sim.run(max_events=1_000_000)
        return received

    def test_single_stage_transport(self, sim):
        data_in = Bus(sim, 8, "d")
        req_in = Signal(sim, "r")
        chain = AsyncWireBufferChain(sim, data_in, req_in, n_buffers=1)
        assert self._handshake_once(sim, chain, data_in, req_in, 0x7B) == [0x7B]

    def test_four_stage_transport(self, sim):
        data_in = Bus(sim, 8, "d")
        req_in = Signal(sim, "r")
        chain = AsyncWireBufferChain(sim, data_in, req_in, n_buffers=4)
        assert self._handshake_once(sim, chain, data_in, req_in, 0xE1) == [0xE1]

    def test_chain_length_checked(self, sim):
        with pytest.raises(ValueError):
            AsyncWireBufferChain(sim, Bus(sim, 8, "d"), Signal(sim, "r"), 0)

    def test_stage_count(self, sim):
        chain = AsyncWireBufferChain(
            sim, Bus(sim, 8, "d"), Signal(sim, "r"), n_buffers=6
        )
        assert len(chain.stages) == 6

    def test_wire_segments_add_delay(self, sim):
        data_in = Bus(sim, 8, "d")
        req_in = Signal(sim, "r")
        fast = AsyncWireBufferChain(sim, data_in, req_in, 2, t_p_ps=0)
        t0 = sim.now
        self._handshake_once(sim, fast, data_in, req_in, 0x01)
        fast_time = sim.now - t0

        sim2 = Simulator()
        data2 = Bus(sim2, 8, "d")
        req2 = Signal(sim2, "r")
        slow = AsyncWireBufferChain(sim2, data2, req2, 2, t_p_ps=200)
        self._handshake_once(sim2, slow, data2, req2, 0x01)
        assert sim2.now > fast_time
