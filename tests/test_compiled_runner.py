"""Engine-level tests for batched (bit-parallel) scenario execution.

The contract: a scenario's ``batch`` hook is an *invisible* optimization
— outcomes, ordering, store keys and error capture must be
indistinguishable from solo execution of the same requests.
"""

import pytest

import repro.experiments  # noqa: F401  (registers the scenarios)
from repro import store as run_store_pkg
from repro.experiments.common import ExperimentResult
from repro.runner import engine, registry

SCENARIO = "compiled-fault-campaign"


def _requests(seeds, kind="i3"):
    return [
        engine.RunRequest.create(
            SCENARIO, {"seed": s, "kind": kind}, fast=True
        )
        for s in seeds
    ]


def _solo(requests):
    sc = registry.get(SCENARIO)
    return [
        sc.run(overrides=r.params_dict(), fast=r.fast) for r in requests
    ]


class TestPlanning:
    def test_contiguous_seed_sweep_packs_into_one_group(self):
        items = engine._plan(_requests(range(1, 7)))
        assert [kind for kind, _ in items] == ["batch"]
        assert len(items[0][1]) == 6

    def test_groups_split_where_other_params_change(self):
        requests = (_requests([1, 2]) + _requests([1, 2], kind="i1")
                    + _requests([3]))
        items = engine._plan(requests)
        assert [kind for kind, _ in items] == ["batch", "batch", "one"]

    def test_group_size_capped_at_batch_lanes(self):
        cap = registry.get(SCENARIO).batch_lanes
        items = engine._plan(_requests(range(1, cap + 4)))
        assert [kind for kind, _ in items] == ["batch", "batch"]
        assert len(items[0][1]) == cap
        assert len(items[1][1]) == 3

    def test_scenarios_without_batch_stay_solo(self):
        requests = [
            engine.RunRequest.create("fig12", fast=True)
            for _ in range(3)
        ]
        assert [k for k, _ in engine._plan(requests)] == ["one"] * 3


class TestBatchedOutcomes:
    def test_batched_results_identical_to_solo(self):
        requests = _requests([1, 2, 3, 4])
        outcomes = engine.execute(requests, jobs=1)
        for outcome, solo in zip(outcomes, _solo(requests)):
            assert not outcome.error
            assert outcome.result.rows == solo.rows
            assert outcome.result.description == solo.description
            assert outcome.result.checks == solo.checks
            assert outcome.result.all_ok

    def test_request_order_preserved(self):
        requests = _requests([4, 1, 3, 2])
        outcomes = engine.execute(requests, jobs=1)
        assert [o.request for o in outcomes] == requests

    def test_jobs_do_not_change_results(self):
        requests = _requests([1, 2, 3]) + _requests([1, 2], kind="i1")
        serial = engine.execute(requests, jobs=1)
        parallel = engine.execute(requests, jobs=2)
        for a, b in zip(serial, parallel):
            assert a.request == b.request
            assert a.result.rows == b.result.rows
            assert a.result.description == b.result.description

    def test_on_outcome_streams_in_request_order(self):
        requests = _requests([1, 2, 3])
        seen = []
        engine.execute(requests, jobs=1,
                       on_outcome=lambda o: seen.append(o.request))
        assert seen == requests

    def test_store_keys_unchanged_by_batching(self, tmp_path):
        """Content-addressed cache entries written from a batched run
        must be retrievable per individual request."""
        requests = _requests([1, 2, 3])
        cache = run_store_pkg.RunStore(
            tmp_path, fingerprint=run_store_pkg.code_fingerprint()
        )
        engine.execute(requests, jobs=1,
                       on_outcome=lambda o: cache.put(o))
        for request, solo in zip(requests, _solo(requests)):
            hit = cache.get(request)
            assert hit is not None
            assert hit.result.rows == solo.rows


class TestBatchFailureCapture:
    @pytest.fixture
    def broken_batch(self):
        def run(tech=None, seed=1):
            return ExperimentResult(
                experiment_id="x", description="solo",
                headers=("a",), rows=[[seed]], checks=[],
            )

        def batch(tech=None, param_sets=()):
            raise RuntimeError("lane packing exploded")

        registry.scenario(
            "broken-batch-test",
            description="test fixture",
            params=(registry.ParamSpec("seed", int, 1),),
            batch=batch,
        )(run)
        yield
        registry.unregister("broken-batch-test")

    @pytest.fixture
    def miscounting_batch(self):
        def run(tech=None, seed=1):
            return ExperimentResult(
                experiment_id="x", description="solo",
                headers=("a",), rows=[[seed]], checks=[],
            )

        def batch(tech=None, param_sets=()):
            return []  # wrong cardinality

        registry.scenario(
            "miscounting-batch-test",
            description="test fixture",
            params=(registry.ParamSpec("seed", int, 1),),
            batch=batch,
        )(run)
        yield
        registry.unregister("miscounting-batch-test")

    def test_raising_hook_fails_every_group_member(self, broken_batch):
        requests = [
            engine.RunRequest.create("broken-batch-test", {"seed": s})
            for s in (1, 2, 3)
        ]
        outcomes = engine.execute(requests, jobs=1)
        assert len(outcomes) == 3
        for outcome in outcomes:
            assert "lane packing exploded" in outcome.error
            assert outcome.result is None

    def test_wrong_result_count_reported(self, miscounting_batch):
        requests = [
            engine.RunRequest.create(
                "miscounting-batch-test", {"seed": s}
            )
            for s in (1, 2)
        ]
        outcomes = engine.execute(requests, jobs=1)
        for outcome in outcomes:
            assert "returned 0 results for 2 requests" in outcome.error

    def test_single_request_skips_the_batch_hook(self, broken_batch):
        # a lone request takes the solo path, so the broken hook is
        # never consulted
        outcome = engine.execute(
            [engine.RunRequest.create("broken-batch-test", {"seed": 5})],
            jobs=1,
        )[0]
        assert not outcome.error
        assert outcome.result.rows == [[5]]
