"""Cross-module integration tests: full links under adverse conditions."""

import pytest

from repro.link import (
    LinkConfig,
    LinkTestbench,
    build_i1,
    build_i2,
    build_i3,
    build_link,
    measure_throughput,
)
from repro.sim import Clock, Simulator
from repro.tech import scale_technology, st012


def run_link(kind, flits, mhz=300, timeout_ns=1e6, tech=None, **cfg):
    sim = Simulator()
    clock = Clock.from_mhz(sim, mhz)
    link = build_link(sim, clock.signal, kind, LinkConfig(**cfg), tech)
    bench = LinkTestbench(sim, clock, link)
    return bench.run(flits, timeout_ns=timeout_ns), link


@pytest.mark.parametrize("kind", ["I1", "I2", "I3"])
class TestDataPatterns:
    def test_walking_ones(self, kind):
        flits = [1 << i for i in range(32)]
        m, _ = run_link(kind, flits)
        assert m.received_values == flits

    def test_random_stream(self, kind):
        import random

        rng = random.Random(2008)
        flits = [rng.getrandbits(32) for _ in range(24)]
        m, _ = run_link(kind, flits)
        assert m.received_values == flits

    def test_constant_stream_no_data_transitions(self, kind):
        flits = [0x77777777] * 10
        m, _ = run_link(kind, flits)
        assert m.received_values == flits

    def test_single_flit(self, kind):
        m, _ = run_link(kind, [0x13579BDF])
        assert m.received_values == [0x13579BDF]


@pytest.mark.parametrize("kind", ["I1", "I2", "I3"])
class TestBufferCounts:
    @pytest.mark.parametrize("n_buffers", [1, 2, 6, 8])
    def test_delivery_across_depths(self, kind, n_buffers):
        flits = [0xA5A5A5A5, 0x5A5A5A5A] * 3
        m, _ = run_link(kind, flits, n_buffers=n_buffers)
        assert m.received_values == flits


class TestClockSweep:
    @pytest.mark.parametrize("mhz", [50, 100, 200, 300])
    def test_i3_delivers_at_any_switch_clock(self, mhz):
        flits = [0xDEADBEEF, 0xCAFEBABE] * 4
        m, _ = run_link("I3", flits, mhz=mhz)
        assert m.received_values == flits
        assert m.throughput_mflits == pytest.approx(mhz, rel=0.05)

    def test_clock_mismatch_is_impossible_by_construction(self):
        """Both ends share CLK A — the whole point of async serialization
        is that no second clock exists to mismatch.  Verify a single
        clock drives both interfaces."""
        sim = Simulator()
        clock = Clock.from_mhz(sim, 100)
        link = build_i3(sim, clock.signal, LinkConfig())
        assert link.s2a.clk is clock.signal
        assert link.a2s.clk is clock.signal


class TestStallPatterns:
    @pytest.mark.parametrize("kind", ["I1", "I2", "I3"])
    def test_heavy_backpressure(self, kind):
        flits = list(range(0x100, 0x108))
        sim = Simulator()
        clock = Clock.from_mhz(sim, 300)
        link = build_link(sim, clock.signal, kind, LinkConfig())
        bench = LinkTestbench(sim, clock, link)
        m = bench.run(flits, timeout_ns=1e6, stall_pattern=[1, 1, 1, 0])
        assert m.received_values == flits

    def test_backpressure_throttles_throughput(self):
        flits = [0xA5A5A5A5] * 16
        sim = Simulator()
        clock = Clock.from_mhz(sim, 300)
        link = build_i3(sim, clock.signal, LinkConfig())
        bench = LinkTestbench(sim, clock, link)
        m = bench.run(flits, timeout_ns=1e6, stall_pattern=[1, 0])
        assert m.throughput_mflits == pytest.approx(150.0, rel=0.1)


class TestScaledTechnology:
    def test_i3_link_works_at_65nm(self):
        """The gate-level circuits must still function after scaling."""
        tech = scale_technology(st012(), 65)
        flits = [0xA5A5A5A5, 0x5A5A5A5A] * 2
        m, _ = run_link("I3", flits, mhz=300, tech=tech)
        assert m.received_values == flits

    def test_scaled_link_is_faster(self):
        from repro.experiments.throughput import simulate_ceiling_mflits

        base = simulate_ceiling_mflits("I3", st012(), n_flits=16)
        scaled = simulate_ceiling_mflits(
            "I3", scale_technology(st012(), 65), n_flits=16
        )
        assert scaled > base


class TestEndToEndConsistency:
    def test_throughput_and_counter_agreement(self):
        m, link = run_link("I2", [0xF0F0F0F0] * 12, mhz=300)
        assert link.flits_accepted() == link.flits_delivered() == 12
        assert len(m.delivery_times_ps) == 12

    def test_activity_only_during_traffic(self):
        sim = Simulator()
        clock = Clock.from_mhz(sim, 300)
        link = build_i2(sim, clock.signal, LinkConfig())
        sim.run(until=100_000, max_events=2_000_000)  # idle network
        link.monitor.snapshot()
        sim.run(until=200_000, max_events=2_000_000)
        # no flits → the asynchronous side is perfectly quiet
        assert link.monitor.transitions("serializer") == 0
        assert link.monitor.transitions("buffers") == 0

    def test_i1_vs_i3_latency_tradeoff(self):
        """I3 pays serialization latency; I1 pays one cycle per buffer.
        At 100 MHz with 4 buffers, I1's pipeline (5 cycles = 50 ns) is
        slower end-to-end than I3's serialize-transfer-sync path."""
        m_i1, _ = run_link("I1", [1, 2, 3], mhz=100)
        m_i3, _ = run_link("I3", [1, 2, 3], mhz=100)
        assert m_i1.mean_latency_ns > 35.0  # ≥4 pipeline cycles of 10 ns
        assert m_i3.mean_latency_ns < m_i1.mean_latency_ns
