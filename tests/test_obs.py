"""Observability layer: registry, telemetry stream, progress, analytics.

Covers the obs contract end to end: metric primitives and deterministic
snapshots, the no-op guarantee when collection is disabled (the kernels
must leave the registry untouched), telemetry stream round-trips with
journal-grade torn-tail recovery, the progress renderer under an
injected clock, the ``repro telemetry`` analytics, and the CLI-level
invariant that ``--progress`` changes no artifact byte.
"""

import io
import json
import os

import pytest

from repro.__main__ import main
from repro.obs import analyze, metrics, progress, telemetry
from repro.runner import engine, registry
from repro.store import codec, journal


@pytest.fixture(autouse=True)
def _pristine_registry():
    """Each test sees a disabled, empty registry and leaves one behind."""
    prior = metrics.REGISTRY.enabled
    metrics.REGISTRY.reset()
    metrics.REGISTRY.enabled = False
    os.environ.pop(metrics.ENV_FLAG, None)
    yield
    metrics.REGISTRY.reset()
    metrics.REGISTRY.enabled = prior
    os.environ.pop(metrics.ENV_FLAG, None)


class _AllOk:
    """Minimal stand-in for a passing ExperimentResult (``outcome.ok``
    reads only ``all_ok``)."""

    all_ok = True


def _outcome(params=(), error="", duration=None, t_mono=None,
             obs_metrics=None, scenario="table1", result="default"):
    request = engine.RunRequest(scenario_id=scenario, params=tuple(params))
    out = engine.RunOutcome(request=request, error=error)
    if result == "default":
        result = None if error else _AllOk()
    out.result = result
    out.duration_s = duration
    out.t_mono = t_mono
    out.metrics = dict(obs_metrics or {})
    return out


# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_gauge_timer_histogram(self):
        reg = metrics.MetricsRegistry(enabled=True)
        reg.counter("a").inc()
        reg.counter("a").inc(4)
        reg.gauge("g").set(7)
        reg.timer("t").observe(0.5)
        reg.timer("t").observe(1.5)
        hist = reg.histogram("h", (1, 4, 8))
        for value in (0, 1, 2, 9):
            hist.observe(value)
        snap = reg.snapshot()
        assert snap["counter:a"] == 5
        assert snap["gauge:g"] == 7
        assert snap["timer:t"] == [2, 2.0, 0.5, 1.5]
        assert snap["hist:h"] == [[1, 4, 8], [2, 1, 0, 1]]

    def test_snapshot_keys_sorted_and_json_stable(self):
        reg = metrics.MetricsRegistry(enabled=True)
        reg.counter("z").inc()
        reg.counter("a").inc()
        reg.gauge("m").set(1)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        assert json.dumps(snap, sort_keys=True) == json.dumps(
            reg.snapshot(), sort_keys=True
        )

    def test_histogram_bounds_fixed_at_creation(self):
        reg = metrics.MetricsRegistry(enabled=True)
        reg.histogram("h", (1, 2))
        reg.histogram("h", (1, 2))  # same bounds: fine
        with pytest.raises(ValueError, match="already exists"):
            reg.histogram("h", (1, 2, 3))
        with pytest.raises(ValueError, match="ascending"):
            reg.histogram("bad", (2, 1))

    def test_snapshot_delta_semantics(self):
        reg = metrics.MetricsRegistry(enabled=True)
        reg.counter("c").inc(3)
        reg.gauge("g").set(10)
        reg.timer("t").observe(1.0)
        before = reg.snapshot()
        reg.counter("c").inc(2)
        reg.gauge("g").set(4)
        reg.timer("t").observe(3.0)
        after = reg.snapshot()
        delta = metrics.snapshot_delta(before, after)
        assert delta["counter:c"] == 2           # counters subtract
        assert delta["gauge:g"] == 4             # gauges report levels
        assert delta["timer:t"][0] == 1          # observation count delta
        assert delta["timer:t"][1] == pytest.approx(3.0)

    def test_snapshot_delta_omits_unchanged(self):
        reg = metrics.MetricsRegistry(enabled=True)
        reg.counter("touched").inc()
        reg.counter("untouched").inc(5)
        before = reg.snapshot()
        reg.counter("touched").inc()
        delta = metrics.snapshot_delta(before, reg.snapshot())
        assert "counter:untouched" not in delta
        assert delta == {"counter:touched": 1}

    def test_reset_and_is_empty(self):
        reg = metrics.MetricsRegistry(enabled=True)
        assert reg.is_empty()
        reg.counter("c").inc()
        assert not reg.is_empty()
        reg.reset()
        assert reg.is_empty()
        assert reg.enabled  # reset leaves the flag alone

    def test_enable_exports_env_flag_for_spawned_workers(self):
        metrics.enable()
        assert metrics.REGISTRY.enabled
        assert os.environ[metrics.ENV_FLAG] == "1"
        metrics.disable()
        assert not metrics.REGISTRY.enabled
        assert metrics.ENV_FLAG not in os.environ

    def test_collecting_restores_prior_state(self):
        assert not metrics.REGISTRY.enabled
        with metrics.collecting(reset=True) as reg:
            assert reg is metrics.REGISTRY
            assert reg.enabled
            reg.counter("c").inc()
        assert not metrics.REGISTRY.enabled
        # contents survive; only the flag is restored
        assert metrics.REGISTRY.counters() == {"c": 1}


# ----------------------------------------------------------------------
class TestKernelsNoOpWhenDisabled:
    """The disabled registry must stay byte-for-byte untouched: any
    metric object created here means an instrumentation site dropped
    its ``if _OBS.enabled`` guard."""

    def test_event_kernel(self):
        from repro.sim import Simulator

        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 200:
                sim.schedule(1, tick)

        sim.schedule(1, tick)
        sim.run()
        assert count == 200
        assert metrics.REGISTRY.is_empty()

    def test_noc_kernel(self):
        from repro import bench as bench_mod
        from repro.noc import Network

        point = bench_mod.BenchPoint(
            mesh_size=2, injection_rate=0.2, cycles=40
        )
        network, traffic = bench_mod._build(point, Network)
        network.run(point.cycles, traffic)
        assert metrics.REGISTRY.is_empty()

    def test_compiled_backend(self):
        from repro.compiled import MASK, compile_component
        from repro.elements.ringosc import RingOscillator
        from repro.sim import Simulator

        sim = Simulator()
        enable = sim.signal("en")
        osc = RingOscillator(sim, enable, stages=5)
        circuit = compile_component(osc)
        circuit.poke(enable, MASK)
        circuit.settle()
        circuit.tick(16)
        assert metrics.REGISTRY.is_empty()


class TestKernelsCountWhenEnabled:
    def test_event_kernel_counters(self):
        from repro.sim import Simulator

        with metrics.collecting(reset=True) as reg:
            sim = Simulator()
            count = 0

            def tick():
                nonlocal count
                count += 1
                if count < 300:
                    sim.schedule(5, tick)

            sim.schedule(5, tick)
            sim.run()
            counters = reg.counters()
        assert counters["sim.events_executed"] >= 300
        # the very first schedule() predates run(), so it is part of
        # the entry live-set, not of the scheduled-during-run delta
        assert counters["sim.events_scheduled"] >= 299

    def test_noc_kernel_counters(self):
        from repro import bench as bench_mod
        from repro.noc import Network

        point = bench_mod.BenchPoint(
            mesh_size=2, injection_rate=0.2, cycles=60
        )
        with metrics.collecting(reset=True) as reg:
            network, traffic = bench_mod._build(point, Network)
            network.run(point.cycles, traffic)
            counters = reg.counters()
        assert counters["noc.cycles"] == 60
        assert counters["noc.flits_routed"] > 0
        assert counters["noc.credit_accruals"] > 0

    def test_compiled_backend_counters(self):
        from repro.compiled import MASK, compile_component
        from repro.elements.ringosc import RingOscillator
        from repro.sim import Simulator

        with metrics.collecting(reset=True) as reg:
            sim = Simulator()
            enable = sim.signal("en")
            osc = RingOscillator(sim, enable, stages=5)
            circuit = compile_component(osc)
            circuit.poke(enable, MASK)
            circuit.settle()
            circuit.tick(16)
            counters = reg.counters()
            snap = reg.snapshot()
        assert counters["compiled.circuits"] == 1
        assert counters["compiled.settles"] >= 17  # settle + 16 ticks
        assert counters["compiled.settle_rounds"] >= counters[
            "compiled.settles"
        ]
        assert snap["gauge:compiled.lanes"] == 64


# ----------------------------------------------------------------------
class TestTelemetryStream:
    def _start(self, tmp_path, **kwargs):
        writer = telemetry.TelemetryWriter(telemetry.stream_path(tmp_path))
        writer.start("table1", fingerprint="f00d", **kwargs)
        return writer

    def test_round_trip(self, tmp_path):
        writer = self._start(tmp_path, jobs=2, total_points=2)
        writer.append_point(
            _outcome(params=(("a", 1),), duration=0.25, t_mono=10.0)
        )
        writer.append_point(
            _outcome(params=(("a", 2),), duration=0.5, t_mono=11.0),
            store_hit=True,
        )
        writer.finish({"points": 2})
        header, records = telemetry.read_stream(writer.path)
        assert header["scenario"] == "table1"
        assert header["jobs"] == 2
        points = [r for r in records if r["kind"] == "point"]
        assert [p["params"] for p in points] == [[["a", 1]], [["a", 2]]]
        assert [p["store_hit"] for p in points] == [False, True]
        assert records[-1]["kind"] == "summary"

    def test_torn_tail_dropped_and_recovered(self, tmp_path):
        writer = self._start(tmp_path)
        writer.append_point(_outcome(duration=0.1))
        intact = writer.path.read_bytes()
        # a kill mid-append leaves an unterminated JSON fragment
        with writer.path.open("ab") as fh:
            fh.write(b'{"kind": "point", "trunc')
        _header, records = telemetry.read_stream(writer.path)
        assert len(records) == 1
        telemetry.recover_stream(writer.path)
        assert writer.path.read_bytes() == intact
        # appends after recovery continue a well-formed stream
        writer.append_point(_outcome(duration=0.2))
        _header, records = telemetry.read_stream(writer.path)
        assert len(records) == 2

    def test_garbage_line_truncates_everything_after(self, tmp_path):
        writer = self._start(tmp_path)
        writer.append_point(_outcome(duration=0.1))
        with writer.path.open("ab") as fh:
            fh.write(b"not json at all\n")
        writer.append_point(_outcome(duration=0.2))
        _header, records = telemetry.read_stream(writer.path)
        # the valid line *after* the damage is untrustworthy too
        assert len(records) == 1

    def test_headerless_stream_raises(self, tmp_path):
        path = telemetry.stream_path(tmp_path)
        path.write_text('{"kind": "point"}\n')
        with pytest.raises(telemetry.TelemetryError):
            telemetry.read_stream(path)
        path.write_text("")
        with pytest.raises(telemetry.TelemetryError):
            telemetry.read_stream(path)

    def test_point_record_error_cluster_line(self):
        error = (
            "Traceback (most recent call last):\n"
            '  File "x.py", line 1, in run\n'
            "ValueError: kaboom\n"
        )
        record = telemetry.point_record(_outcome(error=error))
        assert record["raised"] is True
        assert record["error"] == "ValueError: kaboom"

    def test_point_record_carries_metrics_delta(self):
        record = telemetry.point_record(
            _outcome(obs_metrics={"counter:sim.events_executed": 9})
        )
        assert record["metrics"] == {"counter:sim.events_executed": 9}
        assert "metrics" not in telemetry.point_record(_outcome())


# ----------------------------------------------------------------------
class _FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now


class _TtyStream(io.StringIO):
    def isatty(self):
        return True


class TestSweepProgress:
    def _bar(self, total, stream, clock, **kwargs):
        return progress.SweepProgress(
            total, stream=stream, clock=clock, heartbeat=False, **kwargs
        )

    def test_render_contents(self):
        clock = _FakeClock()
        bar = self._bar(84, io.StringIO(), clock)
        clock.now += 16.0
        for _ in range(37):
            bar.point_done()
        for _ in range(3):
            bar.point_done(ok=False)
        text = bar.render()
        assert "sweep 40/84 (47%)" in text
        assert "pt/s" in text
        assert "eta" in text
        assert "3 failed" in text

    def test_cached_points_reported(self):
        bar = self._bar(4, io.StringIO(), _FakeClock())
        bar.point_done(cached=True)
        bar.point_done()
        assert "1 cached" in bar.render()

    def test_non_tty_rate_limited_log_lines(self):
        clock = _FakeClock()
        stream = io.StringIO()
        bar = self._bar(10, stream, clock, log_interval=5.0)
        bar.point_done()                  # first emit goes out
        clock.now += 1.0
        bar.point_done()                  # suppressed: inside interval
        clock.now += 6.0
        bar.point_done()                  # emitted again
        bar.close()                       # final state always emitted
        lines = stream.getvalue().splitlines()
        assert len(lines) == 3
        assert all("\r" not in line for line in lines)
        assert lines[-1].startswith("sweep 3/10")
        assert "took" not in lines[-1]    # unfinished sweep has no total

    def test_tty_rewrites_one_line(self):
        clock = _FakeClock()
        stream = _TtyStream()
        bar = self._bar(2, stream, clock)
        bar.point_done()
        clock.now += 2.0
        bar.point_done()
        bar.close()
        raw = stream.getvalue()
        assert raw.count("\r") == 3       # every update redraws
        assert raw.endswith("\n")         # close terminates the line
        assert "took" in raw.splitlines()[-1]

    def test_display_failure_never_raises(self):
        class Broken(io.StringIO):
            def write(self, *_a):
                raise OSError("tty went away")

        bar = self._bar(1, Broken(), _FakeClock())
        bar.point_done()
        bar.close()  # swallowed: the sweep must not die for a display


# ----------------------------------------------------------------------
class TestAnalyze:
    def _stream(self, tmp_path, jobs=2):
        writer = telemetry.TelemetryWriter(telemetry.stream_path(tmp_path))
        writer.start("mesh-design-space", fingerprint="abcd", jobs=jobs,
                     total_points=4)
        writer.append_point(
            _outcome(params=(("m", 2),), duration=1.0, t_mono=101.0,
                     obs_metrics={"counter:noc.cycles": 10,
                                  "gauge:noc.links_in_flight": 3}),
        )
        writer.append_point(
            _outcome(params=(("m", 4),), duration=3.0, t_mono=104.0,
                     obs_metrics={"counter:noc.cycles": 32}),
        )
        writer.append_point(
            _outcome(params=(("m", 8),), duration=0.5, t_mono=104.5),
            store_hit=True,
        )
        writer.append_point(
            _outcome(params=(("m", 16),), error="Boom: x\nValueError: y",
                     duration=0.25, t_mono=104.75),
        )
        writer.finish({"points": 4, "failures": 1})
        return writer.path

    def test_report_from_stream(self, tmp_path):
        report = analyze.summarize(self._stream(tmp_path))
        assert report.scenario == "mesh-design-space"
        assert report.total == 4
        assert len(report.failed) == 1
        assert report.store_hits == 1
        assert report.store_hit_ratio == pytest.approx(0.25)
        assert report.total_duration_s == pytest.approx(4.75)
        # wall span: earliest start 100.0 (101 - 1), last end 104.75
        assert report.wall_span_s == pytest.approx(4.75)
        assert report.utilization == pytest.approx(0.5)
        assert report.slowest(2) == [("m=4", 3.0), ("m=2", 1.0)]
        assert report.failure_clusters() == [("ValueError: y", 1, "m=16")]
        assert report.counter_rollup() == {"noc.cycles": 42}

    def test_render_and_exports(self, tmp_path):
        report = analyze.summarize(self._stream(tmp_path))
        text = report.render()
        assert "4 total, 1 failed" in text
        assert "1/4 hits" in text
        assert "noc.cycles" in text
        doc = report.to_json()
        assert doc["points"] == 4
        assert doc["counters"] == {"noc.cycles": 42}
        csv_text = report.to_csv()
        assert csv_text.splitlines()[0] == (
            "scenario,point,ok,store_hit,duration_s"
        )
        assert len(csv_text.splitlines()) == 5

    def test_summarize_prefers_stream_over_journal(self, tmp_path):
        self._stream(tmp_path)
        jwriter = journal.Journal(journal.journal_path(tmp_path))
        jwriter.start("other-scenario", "beef")
        report = analyze.summarize(tmp_path)
        assert report.scenario == "mesh-design-space"
        assert report.has_store_info

    def test_journal_fallback_carries_durations(self, tmp_path):
        registry.load_builtin()
        jwriter = journal.Journal(journal.journal_path(tmp_path))
        jwriter.start("table1", "beef")
        jwriter.append(_outcome(duration=2.5, t_mono=50.0, result=None))
        report = analyze.summarize(tmp_path)
        assert not report.has_store_info
        assert report.store_hit_ratio is None
        assert report.total_duration_s == pytest.approx(2.5)
        assert "store:" not in report.render()

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            analyze.summarize(tmp_path)


# ----------------------------------------------------------------------
SWEEP_ARGS = [
    "sweep", "compiled-fault-campaign", "--fast",
    "--param", "seed=1,2,3",
]


def _deterministic_tree(base):
    """Artifact bytes under the deterministic contract: telemetry
    excluded (volatile by design), journal canonicalized."""
    tree = {}
    telemetry_names = {
        telemetry.STREAM_FILENAME, telemetry.SNAPSHOT_FILENAME,
    }
    for p in sorted(base.rglob("*")):
        if not p.is_file() or p.name in telemetry_names:
            continue
        rel = p.relative_to(base)
        if p.name == journal.FILENAME:
            tree[rel] = journal.canonical_bytes(p)
        else:
            tree[rel] = p.read_bytes()
    return tree


class TestCliTelemetry:
    def test_progress_leaves_artifacts_byte_identical(
        self, tmp_path, capsys
    ):
        plain = tmp_path / "plain"
        shown = tmp_path / "shown"
        assert main(SWEEP_ARGS + ["--out", str(plain)]) == 0
        assert main(
            SWEEP_ARGS + ["--out", str(shown), "--progress"]
        ) == 0
        capsys.readouterr()
        plain_tree = _deterministic_tree(plain)
        shown_tree = _deterministic_tree(shown)
        assert plain_tree.keys() == shown_tree.keys()
        assert plain_tree == shown_tree
        # telemetry exists in both runs; --progress only adds metrics
        for base in (plain, shown):
            assert telemetry.stream_path(base).exists()
            assert telemetry.snapshot_path(base).exists()

    def test_sweep_writes_stream_and_snapshot(self, tmp_path, capsys):
        out = tmp_path / "out"
        assert main(SWEEP_ARGS + ["--out", str(out), "--progress"]) == 0
        capsys.readouterr()
        header, records = telemetry.read_stream(telemetry.stream_path(out))
        assert header["total_points"] == 3
        points = [r for r in records if r["kind"] == "point"]
        assert len(points) == 3
        assert all(p["duration_s"] is not None for p in points)
        # --progress enabled metrics, so kernel counters reached a point
        assert any(p.get("metrics") for p in points)
        summary = [r for r in records if r["kind"] == "summary"][-1]
        assert summary["points"] == 3
        assert summary["counters"]["counter:compiled.settles"] > 0
        snapshot = json.loads(
            telemetry.snapshot_path(out).read_text()
        )
        assert snapshot["command"] == "sweep"
        assert snapshot["scenario"] == "compiled-fault-campaign"

    def test_telemetry_subcommand_renders(self, tmp_path, capsys):
        out = tmp_path / "out"
        assert main(SWEEP_ARGS + ["--out", str(out), "--progress"]) == 0
        capsys.readouterr()
        assert main(["telemetry", str(out)]) == 0
        text = capsys.readouterr().out
        assert "points:    3 total, 0 failed" in text
        assert "slowest points:" in text
        assert "compiled.settles" in text

    def test_telemetry_subcommand_json_and_csv(self, tmp_path, capsys):
        out = tmp_path / "out"
        assert main(SWEEP_ARGS + ["--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["telemetry", str(out), "--json", "-"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["points"] == 3
        csv_path = tmp_path / "points.csv"
        assert main(["telemetry", str(out), "--csv", str(csv_path)]) == 0
        rows = csv_path.read_text().splitlines()
        assert rows[0] == "scenario,point,ok,store_hit,duration_s"
        assert len(rows) == 4

    def test_telemetry_subcommand_missing_dir_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["telemetry", str(tmp_path / "nowhere")])

    def test_run_out_writes_snapshot(self, tmp_path, capsys):
        out = tmp_path / "run-out"
        assert main(["run", "table1", "--fast", "--out", str(out)]) == 0
        capsys.readouterr()
        doc = json.loads(telemetry.snapshot_path(out).read_text())
        assert doc["command"] == "run"
        assert len(doc["points"]) == 1
        assert doc["points"][0]["duration_s"] is not None

    def test_list_verbose_reports_capabilities(self, capsys):
        assert main(["list", "--verbose"]) == 0
        text = capsys.readouterr().out
        assert "batchable (seed x 16 lanes/word)" in text
        assert "compilable (depth" in text
        assert "not compilable" in text


# ----------------------------------------------------------------------
class TestEngineDurations:
    def test_outcomes_carry_wall_clock(self):
        registry.load_builtin()
        request = engine.RunRequest.create("table1", fast=True)
        outcome = engine.execute([request])[0]
        assert outcome.ok
        assert outcome.duration_s is not None and outcome.duration_s > 0
        assert outcome.t_mono is not None
        assert outcome.metrics == {}  # registry disabled: no delta

    def test_outcomes_carry_metrics_delta_when_enabled(self):
        registry.load_builtin()
        with metrics.collecting(reset=True):
            request = engine.RunRequest.create(
                "compiled-fault-campaign", {"seed": 1}, fast=True
            )
            outcome = engine.execute([request])[0]
        assert outcome.metrics
        assert outcome.metrics["counter:compiled.circuits"] >= 1

    def test_codec_round_trips_volatile_sideband(self):
        registry.load_builtin()
        outcome = _outcome(
            params=(("seed", 1),), duration=1.5, t_mono=9.0,
            obs_metrics={"counter:x": 3},
            scenario="compiled-fault-campaign", result=None,
        )
        back = codec.outcome_from_record(codec.outcome_to_record(outcome))
        assert back.duration_s == pytest.approx(1.5)
        assert back.t_mono == pytest.approx(9.0)
        assert back.metrics == {"counter:x": 3}

    def test_strip_volatile_removes_only_sideband(self):
        record = {"scenario": "s", "duration_s": 1.0, "t_mono": 2.0,
                  "metrics": {"counter:x": 1}, "fast": True}
        stripped = codec.strip_volatile(record)
        assert stripped == {"scenario": "s", "fast": True}
        assert "duration_s" in record  # original untouched

    def test_journal_canonical_bytes_identical_across_runs(self, tmp_path):
        registry.load_builtin()
        request = engine.RunRequest.create("table1", fast=True)
        paths = []
        for name in ("a", "b"):
            outcome = engine.execute([request])[0]
            path = journal.journal_path(tmp_path / name)
            writer = journal.Journal(path)
            writer.start("table1", "feed")
            writer.append(outcome)
            paths.append(path)
        raw_a, raw_b = (p.read_bytes() for p in paths)
        assert raw_a != raw_b or b"duration_s" in raw_a
        assert journal.canonical_bytes(paths[0]) == journal.canonical_bytes(
            paths[1]
        )
        assert b"duration_s" not in journal.canonical_bytes(paths[0])
