"""Tests for CSV export, route tracing, and public-API sanity."""

import csv
import io

import pytest

from repro.experiments import fig12, table1
from repro.link.behavioral import derive_link_params
from repro.noc import Network, Packet, Topology, reset_packet_ids, xy_route
from repro.tech import st012


@pytest.fixture(autouse=True)
def fresh_ids():
    reset_packet_ids()


class TestCsvExport:
    def test_rows_roundtrip_through_csv(self):
        result = fig12.run()
        parsed = list(csv.reader(io.StringIO(result.to_csv())))
        assert parsed[0] == list(result.headers)
        assert len(parsed) == 1 + len(result.rows)
        # buffer counts survive
        assert [row[0] for row in parsed[1:]] == ["2", "4", "6", "8"]

    def test_to_csv_writes_file(self, tmp_path):
        result = table1.run()
        path = tmp_path / "table1.csv"
        text = result.to_csv(path)
        assert path.read_text(encoding="utf-8") == text
        assert "Synchronous (I1)" in text

    def test_checks_csv(self):
        result = table1.run()
        parsed = list(csv.reader(io.StringIO(result.checks_csv())))
        assert parsed[0] == ["check", "measured", "paper", "error", "status"]
        assert all(row[-1] == "ok" for row in parsed[1:])


class TestRouteTracing:
    def test_route_matches_xy(self):
        topo = Topology(4, 4)
        net = Network(topo, derive_link_params(st012(), "I1", 300))
        net.trace_routes = True
        packet = Packet(src=(0, 0), dest=(2, 1), length_flits=2)
        net.offer_packet(packet)
        net.drain()
        route = net.routes[packet.packet_id]
        # reconstruct the expected switch sequence from the XY ports
        expected = [(0, 0)]
        pos = (0, 0)
        for port in xy_route((0, 0), (2, 1), topo):
            pos = topo.neighbor(pos, port)
            expected.append(pos)
        assert route == expected

    def test_tracing_off_by_default(self):
        topo = Topology(2, 2)
        net = Network(topo, derive_link_params(st012(), "I1", 300))
        net.offer_packet(Packet(src=(0, 0), dest=(1, 1), length_flits=1))
        net.drain()
        assert net.routes == {}

    def test_adaptive_route_stays_minimal(self):
        topo = Topology(4, 4)
        net = Network(topo, derive_link_params(st012(), "I1", 300),
                      routing="west_first")
        net.trace_routes = True
        packet = Packet(src=(0, 0), dest=(3, 3), length_flits=2)
        net.offer_packet(packet)
        net.drain()
        route = net.routes[packet.packet_id]
        assert len(route) == 7  # Manhattan distance 6 → 7 switches
        assert route[0] == (0, 0)
        assert route[-1] == (3, 3)


class TestPublicApi:
    @pytest.mark.parametrize(
        "module_name",
        ["repro.sim", "repro.tech", "repro.elements", "repro.link",
         "repro.noc", "repro.analysis", "repro.experiments"],
    )
    def test_all_exports_resolve(self, module_name):
        """Every name in __all__ must actually exist (no stale exports)."""
        import importlib

        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_top_level_namespace(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name)

    def test_public_functions_have_docstrings(self):
        """Every public callable in the analysis API is documented."""
        import repro.analysis as analysis

        for name in analysis.__all__:
            obj = getattr(analysis, name)
            if callable(obj):
                assert obj.__doc__, f"repro.analysis.{name} lacks a docstring"
