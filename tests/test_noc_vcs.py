"""Virtual-channel tests: per-VC FIFOs, locks, and interleaving."""

import pytest

from repro.link.behavioral import BehavioralLinkParams, TokenLink
from repro.link.behavioral import derive_link_params
from repro.noc import (
    Flit,
    FlitKind,
    Network,
    Packet,
    Port,
    Switch,
    Topology,
    TrafficConfig,
    TrafficGenerator,
    next_hop,
    reset_packet_ids,
)
from repro.tech import st012


@pytest.fixture(autouse=True)
def fresh_ids():
    reset_packet_ids()


def make_vc_switch(n_vcs=2, position=(1, 1)):
    topo = Topology(3, 3)
    sw = Switch(position, lambda c, d: next_hop(c, d, topo),
                fifo_depth=4, n_vcs=n_vcs)
    params = BehavioralLinkParams("T", 1, 1.0, 16, 10, 300.0)
    for port in (Port.NORTH, Port.SOUTH, Port.EAST, Port.WEST):
        sw.out_links[port] = TokenLink(params)
    return sw


def flit(pid, kind, vc, dest=(2, 1), seq=0):
    return Flit(packet_id=pid, kind=kind, src=(0, 1), dest=dest,
                seq=seq, vc=vc)


class TestVcStructure:
    def test_per_vc_fifos(self):
        sw = make_vc_switch(n_vcs=3)
        assert len(sw.inputs[Port.WEST]) == 3

    def test_vc_count_validated(self):
        topo = Topology(2, 2)
        with pytest.raises(ValueError):
            Switch((0, 0), lambda c, d: next_hop(c, d, topo), n_vcs=0)

    def test_accept_routes_to_vc_queue(self):
        sw = make_vc_switch(n_vcs=2)
        sw.accept(Port.WEST, flit(1, FlitKind.HEAD_TAIL, vc=1))
        assert sw.queue(Port.WEST, 0).empty
        assert not sw.queue(Port.WEST, 1).empty

    def test_out_of_range_vc_rejected(self):
        sw = make_vc_switch(n_vcs=2)
        with pytest.raises(ValueError):
            sw.accept(Port.WEST, flit(1, FlitKind.HEAD_TAIL, vc=5))

    def test_can_accept_per_vc(self):
        sw = make_vc_switch(n_vcs=2)
        for i in range(4):
            sw.accept(Port.WEST, flit(i, FlitKind.HEAD_TAIL, vc=0))
        assert not sw.can_accept(Port.WEST, 0)
        assert sw.can_accept(Port.WEST, 1)


class TestVcInterleaving:
    def test_two_packets_interleave_on_one_output(self):
        """Packets on different VCs share the EAST wire flit-by-flit —
        impossible with a single wormhole lane."""
        sw = make_vc_switch(n_vcs=2)
        east = sw.out_links[Port.EAST]
        # packet A on VC0 from WEST, packet B on VC1 from SOUTH
        for seq, kind in ((0, FlitKind.HEAD), (1, FlitKind.BODY),
                          (2, FlitKind.TAIL)):
            sw.accept(Port.WEST, flit(1, kind, vc=0, seq=seq))
            sw.accept(Port.SOUTH, flit(2, kind, vc=1, seq=seq))
        order = []
        for cycle in range(8):
            for link in sw.out_links.values():
                link.begin_cycle()
            before = east.flits_sent
            sw.arbitrate_and_send(cycle, lambda f: None)
            if east.flits_sent > before:
                order.append(east._in_flight[-1][1].packet_id)
        assert sorted(order) == [1, 1, 1, 2, 2, 2]
        # genuine interleaving: the two packets alternate
        assert order[:4] in ([1, 2, 1, 2], [2, 1, 2, 1])

    def test_single_vc_blocks_instead(self):
        """Same scenario with one VC: packet B waits for A's tail."""
        sw = make_vc_switch(n_vcs=1)
        east = sw.out_links[Port.EAST]
        for seq, kind in ((0, FlitKind.HEAD), (1, FlitKind.BODY),
                          (2, FlitKind.TAIL)):
            sw.accept(Port.WEST, flit(1, kind, vc=0, seq=seq))
            sw.accept(Port.SOUTH, flit(2, kind, vc=0, seq=seq))
        order = []
        for cycle in range(8):
            for link in sw.out_links.values():
                link.begin_cycle()
            before = east.flits_sent
            sw.arbitrate_and_send(cycle, lambda f: None)
            if east.flits_sent > before:
                order.append(east._in_flight[-1][1].packet_id)
        # one packet completes entirely before the other starts
        assert order[:3] in ([1, 1, 1], [2, 2, 2])

    def test_same_vc_still_locks(self):
        """Two packets on the SAME VC must not interleave even with
        multiple VCs configured."""
        sw = make_vc_switch(n_vcs=2)
        east = sw.out_links[Port.EAST]
        for seq, kind in ((0, FlitKind.HEAD), (1, FlitKind.TAIL)):
            sw.accept(Port.WEST, flit(1, kind, vc=1, seq=seq))
            sw.accept(Port.SOUTH, flit(2, kind, vc=1, seq=seq))
        order = []
        for cycle in range(6):
            for link in sw.out_links.values():
                link.begin_cycle()
            before = east.flits_sent
            sw.arbitrate_and_send(cycle, lambda f: None)
            if east.flits_sent > before:
                order.append(east._in_flight[-1][1].packet_id)
        assert order[:2] in ([1, 1], [2, 2])


class TestVcNetwork:
    def test_vc_mesh_lossless(self):
        topo = Topology(4, 4)
        net = Network(topo, derive_link_params(st012(), "I3", 300), n_vcs=2)
        traffic = TrafficGenerator(
            topo,
            TrafficConfig(injection_rate=0.2, seed=5, n_vcs=2),
        )
        net.run(1000, traffic)
        net.drain()
        assert net.stats.flits_ejected == net.stats.flits_injected

    def test_vcs_reduce_latency_under_load(self):
        """At high load, two VCs should not be worse than one (usually
        strictly better thanks to reduced HOL blocking)."""
        topo = Topology(4, 4)
        params = derive_link_params(st012(), "I1", 300)
        results = {}
        for n_vcs in (1, 2):
            reset_packet_ids()
            net = Network(topo, params, n_vcs=n_vcs)
            traffic = TrafficGenerator(
                topo,
                TrafficConfig(injection_rate=0.35, seed=9, n_vcs=n_vcs),
            )
            net.run(2500, traffic)
            net.drain(max_cycles=300_000)
            results[n_vcs] = net.stats.mean_packet_latency
        assert results[2] <= results[1] * 1.05

    def test_packet_vc_rides_through(self):
        topo = Topology(3, 3)
        net = Network(topo, derive_link_params(st012(), "I2", 300), n_vcs=4)
        delivered = []
        packet = Packet(src=(0, 0), dest=(2, 2), length_flits=3, vc=3)
        net.offer_packet(packet)
        # intercept ejections
        original = net._eject

        def spy(f):
            delivered.append(f.vc)
            original(f)

        net._eject = spy
        net.drain()
        assert delivered == [3, 3, 3]
