"""Tests for the scenario registry, sweep engine and artifact writer."""

import json
from collections import Counter

import pytest

from repro.experiments.common import ExperimentResult
from repro.runner import artifacts, engine, registry, sweep
from repro.runner.registry import ParamSpec, ScenarioError, scenario


@pytest.fixture(autouse=True)
def _builtin():
    registry.load_builtin()


class TestParamSpec:
    def test_coerce_types(self):
        assert ParamSpec("n", int, 1).coerce("7") == 7
        assert ParamSpec("r", float, 0.1).coerce("0.25") == 0.25
        assert ParamSpec("k", str, "I3").coerce("I1") == "I1"

    @pytest.mark.parametrize("raw,expected", [
        ("true", True), ("0", False), ("yes", True),
        ("off", False), (True, True),
    ])
    def test_coerce_bool(self, raw, expected):
        assert ParamSpec("b", bool, False).coerce(raw) is expected

    def test_bad_bool_rejected(self):
        with pytest.raises(ScenarioError):
            ParamSpec("b", bool, False).coerce("maybe")

    def test_bad_number_rejected(self):
        with pytest.raises(ScenarioError):
            ParamSpec("n", int, 1).coerce("seven")

    def test_choices_enforced(self):
        spec = ParamSpec("k", str, "I3", choices=("I1", "I2", "I3"))
        assert spec.coerce("I2") == "I2"
        with pytest.raises(ScenarioError):
            spec.coerce("I9")


class TestRegistry:
    def test_every_experiment_module_registers_exactly_once(self):
        """The registry replaces hand-enumeration: one scenario per
        module (the ablation module contributes its three studies)."""
        counts = Counter(
            sc.func.__module__ for sc in registry.all_scenarios()
            if sc.func.__module__.startswith("repro.experiments")
        )
        single = (
            "fig10", "fig11", "fig12", "fig13", "fig14",
            "table1", "table2", "throughput", "wirelength",
            "mesh_design_space", "gals_mesh", "fault_injection",
            "compiled_campaign", "noop",
        )
        for name in single:
            assert counts.pop(f"repro.experiments.{name}") == 1, name
        assert counts.pop("repro.experiments.ablation") == 3
        assert counts.pop("repro.experiments.traffic_patterns") == 3
        assert not counts, f"unexpected registrations: {counts}"

    def test_paper_tag_covers_every_artifact(self):
        assert {sc.id for sc in registry.find(tags=("paper",))} == {
            "fig10", "fig11", "fig12", "fig13", "fig14",
            "table1", "table2", "throughput", "wirelength",
        }

    def test_duplicate_id_rejected(self):
        with pytest.raises(ScenarioError, match="already registered"):
            scenario("fig12", description="clash")(lambda tech=None: None)

    def test_reimport_is_idempotent(self):
        import importlib

        import repro.experiments.fig12 as mod

        before = registry.get("fig12")
        importlib.reload(mod)
        after = registry.get("fig12")
        assert after.id == before.id
        registry.load_builtin()

    def test_unknown_id_raises(self):
        with pytest.raises(ScenarioError, match="unknown scenario"):
            registry.get("fig99")

    def test_unknown_param_raises(self):
        with pytest.raises(ScenarioError, match="no parameter"):
            registry.get("fig12").param("frequency")

    def test_find_requires_all_tags(self):
        simulated_paper = registry.find(tags=("paper", "simulated"))
        assert {sc.id for sc in simulated_paper} == {
            "fig14", "throughput", "wirelength",
        }

    def test_fast_params_resolution(self):
        sc = registry.get("throughput")
        assert sc.resolve_params()["simulate"] is True
        assert sc.resolve_params(fast=True)["simulate"] is False
        # explicit override wins over fast mode
        assert sc.resolve_params({"simulate": "true"}, fast=True)[
            "simulate"] is True


class TestSweep:
    def test_expand_grid_nested_loop_order(self):
        points = sweep.expand_grid({"a": [1, 2], "b": ["x", "y"]})
        assert points == [
            {"a": 1, "b": "x"}, {"a": 1, "b": "y"},
            {"a": 2, "b": "x"}, {"a": 2, "b": "y"},
        ]

    def test_expand_grid_empty(self):
        assert sweep.expand_grid({}) == [{}]

    def test_empty_axis_rejected(self):
        with pytest.raises(ScenarioError):
            sweep.expand_grid({"a": []})

    def test_default_grid_from_spec(self):
        grid = sweep.default_grid(registry.get("mesh-design-space"))
        assert grid["mesh_size"] == [2, 3, 4, 5, 6, 7, 8]
        assert grid["injection_rate"] == [0.05, 0.15, 0.25]

    def test_no_default_axes_rejected(self):
        with pytest.raises(ScenarioError, match="no default sweep axes"):
            sweep.build_requests(registry.get("fig12"))

    def test_parse_axis_coerces_and_validates(self):
        sc = registry.get("mesh-design-space")
        assert sweep.parse_axis(sc, "mesh_size", "2, 4") == [2, 4]
        with pytest.raises(ScenarioError):
            sweep.parse_axis(sc, "mesh_size", "17")

    def test_swept_and_fixed_conflict(self):
        sc = registry.get("mesh-design-space")
        with pytest.raises(ScenarioError, match="both swept and fixed"):
            sweep.build_requests(
                sc, axes={"mesh_size": [2]}, fixed={"mesh_size": 3}
            )

    def test_build_requests_fills_fixed(self):
        sc = registry.get("mesh-design-space")
        requests = sweep.build_requests(
            sc, axes={"mesh_size": [2, 3]}, fixed={"cycles": 100}
        )
        assert len(requests) == 2
        assert all(r.params_dict()["cycles"] == 100 for r in requests)


class TestEngine:
    def test_request_params_sorted_and_coerced(self):
        request = engine.RunRequest.create(
            "mesh-design-space",
            {"mesh_size": "3", "cycles": "100"},
        )
        assert request.params == (("cycles", 100), ("mesh_size", 3))

    def test_serial_execution_order(self):
        requests = [
            engine.RunRequest.create("table1"),
            engine.RunRequest.create("fig10"),
        ]
        outcomes = engine.execute(requests, jobs=1)
        assert [o.request.scenario_id for o in outcomes] == [
            "table1", "fig10",
        ]
        assert all(o.ok for o in outcomes)
        assert isinstance(outcomes[0].result, ExperimentResult)

    def test_unknown_scenario_fails_fast(self):
        with pytest.raises(ScenarioError):
            engine.execute([engine.RunRequest(scenario_id="fig99")])

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            engine.execute([], jobs=0)

    def test_scenario_exception_captured_not_raised(self):
        @scenario("broken-test-scenario", description="always raises")
        def _broken(tech=None):
            raise RuntimeError("kaboom")

        try:
            outcomes = engine.execute([
                engine.RunRequest.create("broken-test-scenario"),
                engine.RunRequest.create("table1"),
            ])
            assert not outcomes[0].ok
            assert "kaboom" in outcomes[0].error
            assert outcomes[1].ok
        finally:
            registry.unregister("broken-test-scenario")

    def test_parallel_matches_serial_byte_identical(self, tmp_path):
        """--jobs 4 must be indistinguishable from a serial run."""
        sc = registry.get("mesh-design-space")
        requests = sweep.build_requests(
            sc,
            axes={"mesh_size": [2, 3], "injection_rate": [0.05, 0.15]},
            fixed={"cycles": 200},
        )
        serial = engine.execute(requests, jobs=1)
        parallel = engine.execute(requests, jobs=4)
        artifacts.write_artifacts(serial, tmp_path / "serial")
        artifacts.write_artifacts(parallel, tmp_path / "parallel")
        serial_files = sorted(
            p.relative_to(tmp_path / "serial")
            for p in (tmp_path / "serial").rglob("*") if p.is_file()
        )
        parallel_files = sorted(
            p.relative_to(tmp_path / "parallel")
            for p in (tmp_path / "parallel").rglob("*") if p.is_file()
        )
        assert serial_files == parallel_files
        assert len(serial_files) == 2 * len(requests) + 1  # + summary.json
        for rel in serial_files:
            assert (tmp_path / "serial" / rel).read_bytes() == (
                tmp_path / "parallel" / rel
            ).read_bytes(), rel


class TestPointSlug:
    def _outcome(self, value):
        request = engine.RunRequest(
            scenario_id="slug-test", params=(("label", value),)
        )
        return engine.RunOutcome(request=request)

    def test_no_params_is_default(self):
        request = engine.RunRequest(scenario_id="slug-test")
        assert artifacts.point_slug(
            engine.RunOutcome(request=request)
        ) == "default"

    def test_sanitized_collisions_get_distinct_slugs(self):
        """'a b' and 'a-b' sanitize identically; the hash suffix must
        keep their artifact files apart."""
        slug_space = artifacts.point_slug(self._outcome("a b"))
        slug_dash = artifacts.point_slug(self._outcome("a-b"))
        assert slug_space != slug_dash
        assert slug_space.split("-")[:2] == slug_dash.split("-")[:2]

    def test_slug_is_stable(self):
        assert artifacts.point_slug(self._outcome("a b")) == \
            artifacts.point_slug(self._outcome("a b"))


class TestOutcomeCallback:
    def test_serial_callback_streams_in_request_order(self):
        seen = []
        requests = [
            engine.RunRequest.create("table1"),
            engine.RunRequest.create("fig10"),
        ]
        outcomes = engine.execute(
            requests, jobs=1,
            on_outcome=lambda o: seen.append(o.request.scenario_id),
        )
        assert seen == ["table1", "fig10"]
        assert [o.request.scenario_id for o in outcomes] == seen

    def test_parallel_callback_sees_every_outcome_once(self):
        # parallel callbacks fire in *completion* order (the engine no
        # longer holds finished points hostage to an unfinished earlier
        # one), so the callback contract is every-outcome-exactly-once;
        # the *returned* list is still in request order
        sc = registry.get("mesh-design-space")
        requests = sweep.build_requests(
            sc, axes={"mesh_size": [2, 3]}, fixed={"cycles": 100}
        )
        seen = []
        outcomes = engine.execute(requests, jobs=2, on_outcome=seen.append)
        assert sorted(o.request.params for o in seen) == sorted(
            r.params for r in requests
        )
        assert [o.request for o in outcomes] == list(requests)


class TestArtifacts:
    def test_layout_and_summary(self, tmp_path):
        outcomes = engine.execute([
            engine.RunRequest.create("fig12"),
            engine.RunRequest.create(
                "mesh-design-space", {"mesh_size": 2, "cycles": 100}
            ),
        ])
        summary_path = artifacts.write_artifacts(outcomes, tmp_path)
        assert (tmp_path / "fig12" / "default.rows.csv").exists()
        assert (tmp_path / "fig12" / "default.checks.csv").exists()
        mesh = tmp_path / "mesh-design-space"
        mesh_slug = artifacts.point_slug(outcomes[1])
        assert mesh_slug.startswith("cycles=100_mesh_size=2-")
        assert (mesh / f"{mesh_slug}.rows.csv").exists()

        summary = json.loads(summary_path.read_text())
        assert [r["scenario"] for r in summary["runs"]] == [
            "fig12", "mesh-design-space",
        ]
        fig12_run = summary["runs"][0]
        assert fig12_run["ok"] is True
        assert fig12_run["params"] == {}
        assert all(c["ok"] for c in fig12_run["checks"])
        mesh_run = summary["runs"][1]
        assert mesh_run["params"] == {"cycles": 100, "mesh_size": 2}

    def test_failed_outcome_recorded_without_csv(self, tmp_path):
        @scenario("broken-artifact-scenario", description="raises")
        def _broken(tech=None):
            raise ValueError("no result")

        try:
            outcomes = engine.execute([
                engine.RunRequest.create("broken-artifact-scenario"),
            ])
            summary_path = artifacts.write_artifacts(outcomes, tmp_path)
            summary = json.loads(summary_path.read_text())
            run = summary["runs"][0]
            assert run["ok"] is False
            assert "no result" in run["error"]
            assert not (tmp_path / "broken-artifact-scenario").exists()
        finally:
            registry.unregister("broken-artifact-scenario")
