"""Unit tests for the link testbench and measurement plumbing."""

import pytest

from repro.link import (
    LinkConfig,
    LinkMeasurement,
    LinkTestbench,
    WORST_CASE_PATTERN,
    build_i1,
)
from repro.sim import Clock, Simulator


class TestLinkMeasurement:
    def test_throughput_requires_two_flits(self):
        m = LinkMeasurement()
        assert m.throughput_mflits == 0.0
        m.flits_received = 1
        m.delivery_times_ps = [100]
        assert m.throughput_mflits == 0.0

    def test_throughput_steady_state_window(self):
        m = LinkMeasurement()
        m.flits_received = 4
        m.delivery_times_ps = [0, 1000, 2000, 3000]  # 1 flit/ns
        assert m.throughput_mflits == pytest.approx(1e6 / 1000)

    def test_mean_latency(self):
        m = LinkMeasurement()
        m.accept_times_ps = [0, 1000]
        m.delivery_times_ps = [5000, 6000]
        assert m.mean_latency_ns == pytest.approx(5.0)

    def test_mean_latency_empty(self):
        assert LinkMeasurement().mean_latency_ns == 0.0

    def test_worst_case_pattern_alternates(self):
        assert WORST_CASE_PATTERN[0] ^ WORST_CASE_PATTERN[1] == 0xFFFFFFFF


class TestLinkTestbench:
    def test_timeout_raises(self):
        sim = Simulator()
        clock = Clock.from_mhz(sim, 100)
        link = build_i1(sim, clock.signal, LinkConfig())
        # permanently stall the sink side: flits can never drain
        link.stall_in.set(1)
        bench = LinkTestbench(sim, clock, link)
        with pytest.raises(TimeoutError):
            bench.run([1, 2, 3], timeout_ns=1_000.0)

    def test_latency_counts_pipeline_depth(self):
        sim = Simulator()
        clock = Clock.from_mhz(sim, 100)
        link = build_i1(sim, clock.signal, LinkConfig(n_buffers=4))
        bench = LinkTestbench(sim, clock, link)
        m = bench.run([0xAB, 0xCD], timeout_ns=1e6)
        # 4 pipeline stages + output register ≈ 5 cycles of 10 ns
        assert 40.0 <= m.mean_latency_ns <= 60.0

    def test_accept_timestamps_monotonic(self):
        sim = Simulator()
        clock = Clock.from_mhz(sim, 100)
        link = build_i1(sim, clock.signal, LinkConfig())
        bench = LinkTestbench(sim, clock, link)
        m = bench.run(list(range(6)), timeout_ns=1e6)
        assert m.accept_times_ps == sorted(m.accept_times_ps)
        assert m.delivery_times_ps == sorted(m.delivery_times_ps)

    def test_more_buffers_increase_i1_latency(self):
        latencies = {}
        for n in (2, 8):
            sim = Simulator()
            clock = Clock.from_mhz(sim, 100)
            link = build_i1(sim, clock.signal, LinkConfig(n_buffers=n))
            bench = LinkTestbench(sim, clock, link)
            m = bench.run([1, 2, 3], timeout_ns=1e6)
            latencies[n] = m.mean_latency_ns
        assert latencies[8] > latencies[2]
