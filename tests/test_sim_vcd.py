"""Unit tests for the VCD waveform exporter."""

import io

import pytest

from repro.sim import Signal, Simulator, Tracer
from repro.sim.vcd import write_vcd


@pytest.fixture
def sim():
    return Simulator()


def traced_handshake(sim):
    req = Signal(sim, "req")
    ack = Signal(sim, "ack")
    tracer = Tracer()
    tracer.watch(req, ack)
    req.drive(1, delay=100, inertial=False)
    ack.drive(1, delay=200, inertial=False)
    req.drive(0, delay=300, inertial=False)
    ack.drive(0, delay=400, inertial=False)
    sim.run()
    return tracer


class TestWriteVcd:
    def test_header_sections(self, sim):
        tracer = traced_handshake(sim)
        buf = io.StringIO()
        write_vcd(tracer, buf)
        text = buf.getvalue()
        assert "$timescale 1 ps $end" in text
        assert "$var wire 1" in text
        assert "$enddefinitions $end" in text
        assert "$dumpvars" in text

    def test_change_count(self, sim):
        tracer = traced_handshake(sim)
        buf = io.StringIO()
        written = write_vcd(tracer, buf)
        assert written == 4  # two rises, two falls

    def test_timestamps_in_order(self, sim):
        tracer = traced_handshake(sim)
        buf = io.StringIO()
        write_vcd(tracer, buf)
        stamps = [
            int(line[1:])
            for line in buf.getvalue().splitlines()
            if line.startswith("#")
        ]
        assert stamps == sorted(stamps)
        assert stamps == [100, 200, 300, 400]

    def test_timescale_rescales(self, sim):
        tracer = traced_handshake(sim)
        buf = io.StringIO()
        write_vcd(tracer, buf, timescale_ps=100)
        stamps = [
            int(line[1:])
            for line in buf.getvalue().splitlines()
            if line.startswith("#")
        ]
        assert stamps == [1, 2, 3, 4]

    def test_file_output(self, sim, tmp_path):
        tracer = traced_handshake(sim)
        path = tmp_path / "wave.vcd"
        write_vcd(tracer, path)
        assert path.read_text().startswith("$comment")

    def test_signal_names_sanitized(self, sim):
        sig = Signal(sim, "my sig")
        tracer = Tracer()
        tracer.watch(sig)
        buf = io.StringIO()
        write_vcd(tracer, buf)
        assert "my_sig" in buf.getvalue()

    def test_empty_tracer_rejected(self, sim):
        with pytest.raises(ValueError):
            write_vcd(Tracer(), io.StringIO())

    def test_bad_timescale_rejected(self, sim):
        tracer = traced_handshake(sim)
        with pytest.raises(ValueError):
            write_vcd(tracer, io.StringIO(), timescale_ps=0)

    def test_identifiers_unique_for_many_signals(self, sim):
        tracer = Tracer()
        sigs = [Signal(sim, f"s{i}") for i in range(200)]
        tracer.watch(*sigs)
        buf = io.StringIO()
        write_vcd(tracer, buf)
        idents = [
            line.split()[3]
            for line in buf.getvalue().splitlines()
            if line.startswith("$var")
        ]
        assert len(set(idents)) == 200

    def test_duplicate_leaf_names_never_alias(self, sim):
        """Regression (satellite): two same-named nets must get distinct
        id codes AND distinct reference names, in both layouts."""
        a = Signal(sim, "req")
        b = Signal(sim, "req")
        tracer = Tracer()
        tracer.watch(a, b)
        for hierarchy in (True, False):
            buf = io.StringIO()
            write_vcd(tracer, buf, hierarchy=hierarchy)
            var_lines = [
                line.split()
                for line in buf.getvalue().splitlines()
                if line.startswith("$var")
            ]
            idents = [parts[3] for parts in var_lines]
            references = [parts[4] for parts in var_lines]
            assert len(var_lines) == 2
            assert len(set(idents)) == 2, "VCD id aliased"
            assert len(set(references)) == 2, "reference name aliased"
            assert references == ["req", "req$1"]

    def test_same_leaf_in_different_scopes_keeps_plain_names(self, sim):
        """Hierarchical scopes make same-named leaves unique without
        renaming: x.req and y.req each stay 'req' in their own scope."""
        a = Signal(sim, "x.req")
        b = Signal(sim, "y.req")
        tracer = Tracer()
        tracer.watch(a, b)
        buf = io.StringIO()
        write_vcd(tracer, buf)
        text = buf.getvalue()
        assert "$scope module x $end" in text
        assert "$scope module y $end" in text
        refs = [
            line.split()[4]
            for line in text.splitlines()
            if line.startswith("$var")
        ]
        assert refs == ["req", "req"]  # no $1 suffix needed

    def test_watching_a_signal_twice_reuses_one_identifier(self, sim):
        """Regression (satellite): a double-watched signal used to get
        two $var declarations through two enumerate slots; now the
        duplicate collapses to a single variable."""
        sig = Signal(sim, "req")
        tracer = Tracer()
        tracer.watch(sig, sig)
        buf = io.StringIO()
        write_vcd(tracer, buf)
        var_lines = [
            line for line in buf.getvalue().splitlines()
            if line.startswith("$var")
        ]
        assert len(var_lines) == 1

    def test_hierarchical_scopes_nest_by_path(self, sim):
        sig = Signal(sim, "i3.s2a.flag0.a")
        tracer = Tracer()
        tracer.watch(sig)
        buf = io.StringIO()
        write_vcd(tracer, buf, module="top")
        text = buf.getvalue()
        scopes = [
            line.split()[2]
            for line in text.splitlines()
            if line.startswith("$scope")
        ]
        assert scopes == ["top", "i3", "s2a", "flag0"]
        assert text.count("$upscope $end") == 4
        assert "$var wire 1" in text and " a $end" in text

    def test_flat_mode_uses_single_scope(self, sim):
        sig = Signal(sim, "i3.s2a.flag0.a")
        tracer = Tracer()
        tracer.watch(sig)
        buf = io.StringIO()
        write_vcd(tracer, buf, hierarchy=False)
        text = buf.getvalue()
        assert text.count("$scope") == 1
        assert "i3.s2a.flag0.a" in text

    def test_full_link_dump(self, sim):
        """Dump a real I3 transfer and check the VCD is non-trivial."""
        from repro.link import LinkConfig, build_i3, measure_throughput
        from repro.sim import Clock

        clock = Clock.from_mhz(sim, 300)
        link = build_i3(sim, clock.signal, LinkConfig())
        tracer = Tracer()
        tracer.watch(
            link.s2a.out_ch.req,
            link.s2a.out_ch.ack,
            link.serializer.out_ch.valid,
        )
        measure_throughput(sim, clock, link, n_flits=4)
        buf = io.StringIO()
        written = write_vcd(tracer, buf)
        assert written > 20  # four flits' worth of handshaking
