"""Unit tests for the VCD waveform exporter."""

import io

import pytest

from repro.sim import Signal, Simulator, Tracer
from repro.sim.vcd import write_vcd


@pytest.fixture
def sim():
    return Simulator()


def traced_handshake(sim):
    req = Signal(sim, "req")
    ack = Signal(sim, "ack")
    tracer = Tracer()
    tracer.watch(req, ack)
    req.drive(1, delay=100, inertial=False)
    ack.drive(1, delay=200, inertial=False)
    req.drive(0, delay=300, inertial=False)
    ack.drive(0, delay=400, inertial=False)
    sim.run()
    return tracer


class TestWriteVcd:
    def test_header_sections(self, sim):
        tracer = traced_handshake(sim)
        buf = io.StringIO()
        write_vcd(tracer, buf)
        text = buf.getvalue()
        assert "$timescale 1 ps $end" in text
        assert "$var wire 1" in text
        assert "$enddefinitions $end" in text
        assert "$dumpvars" in text

    def test_change_count(self, sim):
        tracer = traced_handshake(sim)
        buf = io.StringIO()
        written = write_vcd(tracer, buf)
        assert written == 4  # two rises, two falls

    def test_timestamps_in_order(self, sim):
        tracer = traced_handshake(sim)
        buf = io.StringIO()
        write_vcd(tracer, buf)
        stamps = [
            int(line[1:])
            for line in buf.getvalue().splitlines()
            if line.startswith("#")
        ]
        assert stamps == sorted(stamps)
        assert stamps == [100, 200, 300, 400]

    def test_timescale_rescales(self, sim):
        tracer = traced_handshake(sim)
        buf = io.StringIO()
        write_vcd(tracer, buf, timescale_ps=100)
        stamps = [
            int(line[1:])
            for line in buf.getvalue().splitlines()
            if line.startswith("#")
        ]
        assert stamps == [1, 2, 3, 4]

    def test_file_output(self, sim, tmp_path):
        tracer = traced_handshake(sim)
        path = tmp_path / "wave.vcd"
        write_vcd(tracer, path)
        assert path.read_text().startswith("$comment")

    def test_signal_names_sanitized(self, sim):
        sig = Signal(sim, "my sig")
        tracer = Tracer()
        tracer.watch(sig)
        buf = io.StringIO()
        write_vcd(tracer, buf)
        assert "my_sig" in buf.getvalue()

    def test_empty_tracer_rejected(self, sim):
        with pytest.raises(ValueError):
            write_vcd(Tracer(), io.StringIO())

    def test_bad_timescale_rejected(self, sim):
        tracer = traced_handshake(sim)
        with pytest.raises(ValueError):
            write_vcd(tracer, io.StringIO(), timescale_ps=0)

    def test_identifiers_unique_for_many_signals(self, sim):
        tracer = Tracer()
        sigs = [Signal(sim, f"s{i}") for i in range(200)]
        tracer.watch(*sigs)
        buf = io.StringIO()
        write_vcd(tracer, buf)
        idents = [
            line.split()[3]
            for line in buf.getvalue().splitlines()
            if line.startswith("$var")
        ]
        assert len(set(idents)) == 200

    def test_full_link_dump(self, sim):
        """Dump a real I3 transfer and check the VCD is non-trivial."""
        from repro.link import LinkConfig, build_i3, measure_throughput
        from repro.sim import Clock

        clock = Clock.from_mhz(sim, 300)
        link = build_i3(sim, clock.signal, LinkConfig())
        tracer = Tracer()
        tracer.watch(
            link.s2a.out_ch.req,
            link.s2a.out_ch.ack,
            link.serializer.out_ch.valid,
        )
        measure_throughput(sim, clock, link, n_flits=4)
        buf = io.StringIO()
        written = write_vcd(tracer, buf)
        assert written > 20  # four flits' worth of handshaking
