"""Unit tests for the word-level de-serializer shift registers (Fig 8b)."""

import pytest

from repro.elements import PulseShiftRegister, SliceShiftRegister
from repro.sim import Bus, Signal, Simulator


@pytest.fixture
def sim():
    return Simulator()


def settle(sim):
    sim.run(max_events=100_000)


def pulse(sim, sig):
    sig.set(1)
    settle(sim)
    sig.set(0)
    settle(sim)


class TestSliceShiftRegister:
    def test_assembles_word_lsb_first(self, sim):
        slice_in = Bus(sim, 8, "din")
        shift = Signal(sim, "valid")
        reg = SliceShiftRegister(sim, slice_in, shift, depth=4)
        for byte in (0xEF, 0xBE, 0xAD, 0xDE):  # LSB slice first
            slice_in.set(byte)
            pulse(sim, shift)
        assert reg.word == 0xDEADBEEF

    def test_pulse_counting(self, sim):
        slice_in = Bus(sim, 8, "din")
        shift = Signal(sim, "valid")
        reg = SliceShiftRegister(sim, slice_in, shift, depth=4)
        for _ in range(3):
            pulse(sim, shift)
        assert reg.pulses_seen == 3

    def test_every_stage_toggles_each_pulse(self, sim):
        """The power-relevant property: all registers clock on every
        VALID (the paper's explanation of the I3 de-serializer power)."""
        slice_in = Bus(sim, 8, "din")
        shift = Signal(sim, "valid")
        reg = SliceShiftRegister(sim, slice_in, shift, depth=4)
        slice_in.set(0xFF)
        pulse(sim, shift)
        slice_in.set(0x00)
        pulse(sim, shift)
        slice_in.set(0xFF)
        pulse(sim, shift)
        # stage 0 has toggled 8 bits three times; stage 1 twice; stage 2 once
        assert reg.stages[0].transitions == 24
        assert reg.stages[1].transitions == 16
        assert reg.stages[2].transitions == 8

    def test_depth_one(self, sim):
        slice_in = Bus(sim, 8, "din")
        shift = Signal(sim, "valid")
        reg = SliceShiftRegister(sim, slice_in, shift, depth=1)
        slice_in.set(0x7E)
        pulse(sim, shift)
        assert reg.word == 0x7E

    def test_rejects_bad_depth(self, sim):
        with pytest.raises(ValueError):
            SliceShiftRegister(sim, Bus(sim, 8, "d"), Signal(sim, "s"), 0)

    def test_two_word_back_to_back(self, sim):
        slice_in = Bus(sim, 8, "din")
        shift = Signal(sim, "valid")
        reg = SliceShiftRegister(sim, slice_in, shift, depth=2)
        for byte in (0x11, 0x22):
            slice_in.set(byte)
            pulse(sim, shift)
        assert reg.word == 0x2211
        for byte in (0x33, 0x44):
            slice_in.set(byte)
            pulse(sim, shift)
        assert reg.word == 0x4433


class TestPulseShiftRegister:
    def test_done_after_depth_pulses(self, sim):
        shift, clear = Signal(sim, "v"), Signal(sim, "c")
        reg = PulseShiftRegister(sim, shift, clear, depth=4)
        for i in range(3):
            pulse(sim, shift)
            assert reg.done.value == 0, f"done too early at pulse {i + 1}"
        pulse(sim, shift)
        assert reg.done.value == 1

    def test_clear_resets(self, sim):
        shift, clear = Signal(sim, "v"), Signal(sim, "c")
        reg = PulseShiftRegister(sim, shift, clear, depth=2)
        pulse(sim, shift)
        pulse(sim, shift)
        assert reg.done.value == 1
        pulse(sim, clear)
        assert reg.done.value == 0

    def test_counts_again_after_clear(self, sim):
        shift, clear = Signal(sim, "v"), Signal(sim, "c")
        reg = PulseShiftRegister(sim, shift, clear, depth=3)
        for _ in range(3):
            pulse(sim, shift)
        pulse(sim, clear)
        for i in range(2):
            pulse(sim, shift)
            assert reg.done.value == 0
        pulse(sim, shift)
        assert reg.done.value == 1

    def test_only_one_token_per_word(self, sim):
        """Exactly one token circulates per word: after ``depth`` pulses
        it sits in the last stage (driving ``done``), with no second
        token injected behind it."""
        shift, clear = Signal(sim, "v"), Signal(sim, "c")
        reg = PulseShiftRegister(sim, shift, clear, depth=3)
        for _ in range(3):
            pulse(sim, shift)
        assert reg.bits == [0, 0, 1]
        assert reg.done.value == 1

    def test_rejects_bad_depth(self, sim):
        with pytest.raises(ValueError):
            PulseShiftRegister(sim, Signal(sim, "v"), Signal(sim, "c"), 0)
