"""Tests for the result store, sweep journal and regression diffing."""

import json

import pytest

from repro.__main__ import main
from repro.obs import telemetry as obs_telemetry
from repro.runner import engine, registry, sweep
from repro.store import codec, diff, journal, store


@pytest.fixture(autouse=True)
def _builtin():
    registry.load_builtin()


def _mesh_requests(sizes=(2, 3), cycles=100):
    sc = registry.get("mesh-design-space")
    return sweep.build_requests(
        sc, axes={"mesh_size": list(sizes)}, fixed={"cycles": cycles}
    )


# ----------------------------------------------------------------------
class TestCodec:
    def test_success_roundtrip_is_loss_free(self):
        outcome = engine.execute(_mesh_requests(sizes=(2,)))[0]
        restored = codec.outcome_from_record(
            json.loads(json.dumps(codec.outcome_to_record(outcome)))
        )
        assert restored.request == outcome.request
        assert restored.ok == outcome.ok
        assert restored.resolved_params == outcome.resolved_params
        # byte-for-byte: the artifact writer cannot tell them apart
        assert restored.result.to_csv() == outcome.result.to_csv()
        assert restored.result.checks_csv() == outcome.result.checks_csv()
        assert restored.result.render() == outcome.result.render()

    def test_failure_roundtrip_keeps_traceback(self):
        request = engine.RunRequest(scenario_id="x")
        outcome = engine.RunOutcome(
            request=request, error="Traceback ...\nKaboom"
        )
        restored = codec.outcome_from_record(
            codec.outcome_to_record(outcome)
        )
        assert restored.error == outcome.error
        assert restored.result is None
        assert not restored.ok

    def test_non_result_payload_rejected(self):
        outcome = engine.RunOutcome(
            request=engine.RunRequest(scenario_id="x"), result=object()
        )
        with pytest.raises(TypeError, match="ExperimentResult"):
            codec.outcome_to_record(outcome)


# ----------------------------------------------------------------------
class TestRunStore:
    def test_put_get_roundtrip(self, tmp_path):
        outcome = engine.execute(_mesh_requests(sizes=(2,)))[0]
        cache = store.RunStore(tmp_path)
        assert outcome.request not in cache
        key = cache.put(outcome)
        assert outcome.request in cache
        assert len(cache) == 1
        restored = cache.get(outcome.request)
        assert restored.request == outcome.request
        assert restored.result.to_csv() == outcome.result.to_csv()
        record = next(iter(cache.records()))
        assert record["key"] == key
        assert record["point"].startswith("cycles=100_mesh_size=2-")

    def test_key_depends_on_code_fingerprint(self, tmp_path):
        request = _mesh_requests(sizes=(2,))[0]
        current = store.RunStore(tmp_path)
        other_code = store.RunStore(tmp_path, fingerprint="0123456789abcdef")
        assert current.key(request) != other_code.key(request)

    def test_stale_code_never_served(self, tmp_path):
        outcome = engine.execute(_mesh_requests(sizes=(2,)))[0]
        store.RunStore(tmp_path, fingerprint="aaaa").put(outcome)
        assert store.RunStore(
            tmp_path, fingerprint="bbbb"
        ).get(outcome.request) is None

    def test_key_depends_on_params_and_fast(self, tmp_path):
        cache = store.RunStore(tmp_path)
        a, b = _mesh_requests(sizes=(2, 3))
        assert cache.key(a) != cache.key(b)
        fast = engine.RunRequest(a.scenario_id, a.params, fast=True)
        assert cache.key(a) != cache.key(fast)

    def test_failed_outcome_rejected(self, tmp_path):
        bad = engine.RunOutcome(
            request=engine.RunRequest(scenario_id="x"), error="boom"
        )
        with pytest.raises(ValueError, match="refusing to store"):
            store.RunStore(tmp_path).put(bad)


# ----------------------------------------------------------------------
class TestJournal:
    def test_write_then_load(self, tmp_path):
        outcomes = engine.execute(_mesh_requests(sizes=(2, 3)))
        path = journal.journal_path(tmp_path)
        writer = journal.Journal(path)
        writer.start("mesh-design-space")
        for outcome in outcomes:
            writer.append(outcome)
        header, loaded = journal.load(path)
        assert header["scenario"] == "mesh-design-space"
        assert header["fingerprint"] == store.code_fingerprint()
        assert [o.request for o in loaded] == [
            o.request for o in outcomes
        ]
        assert all(o.ok for o in loaded)

    def test_torn_tail_dropped_and_truncated(self, tmp_path):
        outcomes = engine.execute(_mesh_requests(sizes=(2, 3)))
        path = journal.journal_path(tmp_path)
        writer = journal.Journal(path)
        writer.start("mesh-design-space")
        writer.append(outcomes[0])
        intact = path.read_bytes()
        with path.open("ab") as fh:
            fh.write(b'{"kind": "outcome", "scen')  # killed mid-write
        header, loaded = journal.recover(path)
        assert len(loaded) == 1
        assert path.read_bytes() == intact

    def test_headerless_journal_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"kind": "outcome"}\n')
        with pytest.raises(journal.JournalError, match="header"):
            journal.load(path)

    def test_empty_journal_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text("")
        with pytest.raises(journal.JournalError):
            journal.load(path)


# ----------------------------------------------------------------------
def _summary_tree(tmp_path, name, runs, tables=None):
    """Write a synthetic artifact tree for diff tests."""
    base = tmp_path / name
    base.mkdir(parents=True, exist_ok=True)
    (base / "summary.json").write_text(
        json.dumps({"runs": runs}, indent=2, sort_keys=True)
    )
    for rel, text in (tables or {}).items():
        path = base / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return base


def _run_record(point="p1", ok=True, measured=10.0, tolerance=0.05,
                rows_csv=None):
    record = {
        "scenario": "demo", "point": point, "params": {}, "fast": False,
        "ok": ok,
        "checks": [{
            "name": "throughput", "measured": measured, "paper": 10.0,
            "tolerance": tolerance, "mode": "two_sided",
            "error": 0.0, "ok": ok,
        }],
    }
    if rows_csv:
        record["rows_csv"] = rows_csv
    return record


class TestDiff:
    def test_identical_trees_not_regressed(self, tmp_path):
        old = _summary_tree(tmp_path, "old", [_run_record()])
        new = _summary_tree(tmp_path, "new", [_run_record()])
        report = diff.diff_trees(old, new)
        assert not report.regressed
        assert report.points_compared == 1
        assert "no regressions" in report.render()

    def test_new_failure_detected(self, tmp_path):
        old = _summary_tree(tmp_path, "old", [_run_record(ok=True)])
        new = _summary_tree(tmp_path, "new", [_run_record(ok=False)])
        report = diff.diff_trees(old, new)
        assert report.new_failures == [("demo", "p1")]
        assert report.regressed

    def test_fix_is_not_a_regression(self, tmp_path):
        old = _summary_tree(tmp_path, "old", [_run_record(ok=False)])
        new = _summary_tree(tmp_path, "new", [_run_record(ok=True)])
        report = diff.diff_trees(old, new)
        assert report.fixed == [("demo", "p1")]
        assert not report.regressed

    def test_removed_point_is_a_regression(self, tmp_path):
        old = _summary_tree(
            tmp_path, "old", [_run_record("p1"), _run_record("p2")]
        )
        new = _summary_tree(tmp_path, "new", [_run_record("p1")])
        report = diff.diff_trees(old, new)
        assert report.removed == [("demo", "p2")]
        assert report.regressed

    def test_added_point_is_informational(self, tmp_path):
        old = _summary_tree(tmp_path, "old", [_run_record("p1")])
        new = _summary_tree(
            tmp_path, "new", [_run_record("p1"), _run_record("p2")]
        )
        report = diff.diff_trees(old, new)
        assert report.added == [("demo", "p2")]
        assert not report.regressed

    def test_check_drift_beyond_tolerance(self, tmp_path):
        old = _summary_tree(tmp_path, "old", [_run_record(measured=10.0)])
        new = _summary_tree(tmp_path, "new", [_run_record(measured=12.0)])
        report = diff.diff_trees(old, new)
        assert len(report.check_drift) == 1
        drift = report.check_drift[0]
        assert drift.check == "throughput"
        assert drift.drift == pytest.approx(0.2)
        assert report.regressed

    def test_removed_check_is_a_regression(self, tmp_path):
        """Dropping a check from a scenario must not slip through the
        gate as silently reduced coverage."""
        old = _summary_tree(tmp_path, "old", [_run_record()])
        stripped = _run_record()
        stripped["checks"] = []
        new = _summary_tree(tmp_path, "new", [stripped])
        report = diff.diff_trees(old, new)
        assert report.removed_checks == [(("demo", "p1"), "throughput")]
        assert report.regressed
        assert "REMOVED CHECKS" in report.render()

    def test_drift_tolerance_override(self, tmp_path):
        old = _summary_tree(tmp_path, "old", [_run_record(measured=10.0)])
        new = _summary_tree(tmp_path, "new", [_run_record(measured=12.0)])
        report = diff.diff_trees(old, new, drift_tolerance=0.5)
        assert not report.check_drift
        assert not report.regressed

    def test_row_deltas_resolved_from_csvs(self, tmp_path):
        old = _summary_tree(
            tmp_path, "old",
            [_run_record(rows_csv="demo/p1.rows.csv")],
            tables={"demo/p1.rows.csv": "a,b\n1,2\n"},
        )
        new = _summary_tree(
            tmp_path, "new",
            [_run_record(rows_csv="demo/p1.rows.csv")],
            tables={"demo/p1.rows.csv": "a,b\n1,5\n"},
        )
        report = diff.diff_trees(old, new)
        assert len(report.row_deltas) == 1
        delta = report.row_deltas[0]
        assert (delta.column, delta.old, delta.new) == ("b", "2", "5")
        # table drift alone is informational; checks gate regressions
        assert not report.regressed

    def test_numerically_equal_cells_not_reported(self, tmp_path):
        old = _summary_tree(
            tmp_path, "old",
            [_run_record(rows_csv="demo/p1.rows.csv")],
            tables={"demo/p1.rows.csv": "a\n1.0\n"},
        )
        new = _summary_tree(
            tmp_path, "new",
            [_run_record(rows_csv="demo/p1.rows.csv")],
            tables={"demo/p1.rows.csv": "a\n1\n"},
        )
        assert diff.diff_trees(old, new).row_deltas == []

    def test_missing_summary_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            diff.load_summary(tmp_path / "nope")


# ----------------------------------------------------------------------
SWEEP_ARGS = [
    "sweep", "mesh-design-space",
    "--param", "mesh_size=2,3,4",
    "--set", "cycles=100",
]


def _tree(base):
    """Every file's bytes; journals are canonicalized first (their
    volatile duration/timestamp side-band differs between identical
    runs by design — the deterministic contract is the projection).
    Telemetry files are all side-band, so their *presence* is compared
    but their timing-laden bytes are not."""
    tree = {}
    telemetry_names = {
        obs_telemetry.STREAM_FILENAME, obs_telemetry.SNAPSHOT_FILENAME,
    }
    for p in base.rglob("*"):
        if not p.is_file():
            continue
        if p.name == journal.FILENAME:
            tree[p.relative_to(base)] = journal.canonical_bytes(p)
        elif p.name in telemetry_names:
            tree[p.relative_to(base)] = b"<telemetry>"
        else:
            tree[p.relative_to(base)] = p.read_bytes()
    return tree


class TestCliSweepDurability:
    def test_failure_traceback_reaches_summary_json(
        self, tmp_path, capsys
    ):
        """A raising grid point must surface in summary.json, not
        vanish: injection_rate=2.0 fails TrafficConfig validation
        inside the scenario."""
        out = tmp_path / "out"
        assert main(SWEEP_ARGS[:2] + [
            "--param", "injection_rate=0.1,2.0",
            "--set", "mesh_size=2", "--set", "cycles=50",
            "--out", str(out),
        ]) == 1
        summary = json.loads((out / "summary.json").read_text())
        by_ok = {run["ok"]: run for run in summary["runs"]}
        assert by_ok[True]["params"]["injection_rate"] == 0.1
        failed = by_ok[False]
        assert "Traceback" in failed["error"]
        assert "injection rate must be in [0, 1]" in failed["error"]
        # the journal carries the same traceback for resume
        _, journaled = journal.load(journal.journal_path(out))
        assert any("Traceback" in o.error for o in journaled)

    def test_kill_then_resume_byte_identical(
        self, tmp_path, capsys, monkeypatch
    ):
        full = tmp_path / "full"
        assert main(SWEEP_ARGS + ["--out", str(full)]) == 0

        # kill the sweep after two completed points
        killed = tmp_path / "killed"
        real = engine._execute_one
        calls = []

        def dying(request):
            if len(calls) == 2:
                raise KeyboardInterrupt
            calls.append(request)
            return real(request)

        monkeypatch.setattr(engine, "_execute_one", dying)
        with pytest.raises(KeyboardInterrupt):
            main(SWEEP_ARGS + ["--out", str(killed)])
        assert len(calls) == 2
        assert not (killed / "summary.json").exists()  # died mid-sweep

        # resume executes only the remaining point ...
        resumed = []
        monkeypatch.setattr(
            engine, "_execute_one",
            lambda request: (resumed.append(request), real(request))[1],
        )
        assert main(SWEEP_ARGS + ["--resume", str(killed)]) == 0
        assert [r.params_dict()["mesh_size"] for r in resumed] == [4]

        # ... and the artifact tree (journal included) is identical
        assert _tree(killed) == _tree(full)

    def test_resume_ignores_stale_journal(
        self, tmp_path, capsys, monkeypatch
    ):
        """A journal written by different code must not be trusted."""
        out = tmp_path / "out"
        assert main(SWEEP_ARGS + ["--out", str(out)]) == 0
        jpath = journal.journal_path(out)
        lines = jpath.read_text().splitlines()
        header = json.loads(lines[0])
        header["fingerprint"] = "0" * 16
        jpath.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")

        executed = []
        real = engine._execute_one
        monkeypatch.setattr(
            engine, "_execute_one",
            lambda request: (executed.append(request), real(request))[1],
        )
        assert main(SWEEP_ARGS + ["--resume", str(out)]) == 0
        assert len(executed) == 3  # every point re-ran
        err = capsys.readouterr().err
        assert "different scenario or code version" in err

    def test_resume_headerless_journal_reruns_all(
        self, tmp_path, capsys
    ):
        """A kill during Journal.start() leaves an empty journal; that
        is still a resumable state, not a usage error."""
        out = tmp_path / "out"
        out.mkdir()
        journal.journal_path(out).write_text("")
        assert main(SWEEP_ARGS[:2] + [
            "--param", "mesh_size=2", "--set", "cycles=50",
            "--resume", str(out),
        ]) == 0
        assert "no usable header" in capsys.readouterr().err
        assert (out / "summary.json").exists()
        header, loaded = journal.load(journal.journal_path(out))
        assert header["scenario"] == "mesh-design-space"
        assert len(loaded) == 1

    def test_resume_conflicting_out_rejected(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(SWEEP_ARGS + [
                "--resume", str(tmp_path / "a"),
                "--out", str(tmp_path / "b"),
            ])
        assert exc.value.code == 2

    def test_store_reuses_points_across_sweeps(
        self, tmp_path, capsys, monkeypatch
    ):
        cache_dir = tmp_path / "cache"
        first = tmp_path / "first"
        assert main(SWEEP_ARGS + [
            "--out", str(first), "--store", str(cache_dir),
        ]) == 0

        executed = []
        real = engine._execute_one
        monkeypatch.setattr(
            engine, "_execute_one",
            lambda request: (executed.append(request), real(request))[1],
        )
        second = tmp_path / "second"
        assert main(SWEEP_ARGS + [
            "--out", str(second), "--store", str(cache_dir),
        ]) == 0
        assert executed == []  # every point served from the store
        assert _tree(second) == _tree(first)


class TestCommittedBaseline:
    def test_fresh_sweep_matches_committed_baseline(self, tmp_path):
        """The regression-gate baseline in tests/baselines must track
        the code: when a change intentionally shifts sweep results,
        regenerate the baseline (see tests/baselines/README.md)."""
        from pathlib import Path

        from repro.runner import artifacts

        baseline = (
            Path(__file__).parent / "baselines" / "mesh-design-space"
        )
        outcomes = engine.execute(_mesh_requests(sizes=(2, 3), cycles=200))
        fresh = tmp_path / "fresh"
        artifacts.write_artifacts(outcomes, fresh)
        report = diff.diff_trees(baseline, fresh)
        assert not report.regressed, report.render()
        assert report.added == [] and report.row_deltas == []


class TestCliDiffAndHistory:
    def test_diff_identical_sweeps_exit_zero(self, tmp_path, capsys):
        a, b = tmp_path / "a", tmp_path / "b"
        small = SWEEP_ARGS[:2] + [
            "--param", "mesh_size=2", "--set", "cycles=50",
        ]
        assert main(small + ["--out", str(a)]) == 0
        assert main(small + ["--out", str(b)]) == 0
        assert main(["diff", str(a), str(b)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_diff_regression_exits_nonzero(self, tmp_path, capsys):
        old = _summary_tree(tmp_path, "old", [_run_record(measured=10.0)])
        new = _summary_tree(tmp_path, "new", [_run_record(measured=12.0)])
        assert main(["diff", str(old), str(new)]) == 1
        out = capsys.readouterr().out
        assert "check drift beyond tolerance" in out
        assert "REGRESSED" in out

    def test_diff_drift_tolerance_flag(self, tmp_path, capsys):
        old = _summary_tree(tmp_path, "old", [_run_record(measured=10.0)])
        new = _summary_tree(tmp_path, "new", [_run_record(measured=12.0)])
        assert main([
            "diff", str(old), str(new), "--drift-tolerance", "0.5",
        ]) == 0

    def test_diff_missing_tree_exits_2(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["diff", str(tmp_path / "a"), str(tmp_path / "b")])
        assert exc.value.code == 2

    def test_history_lists_stored_runs(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(SWEEP_ARGS[:2] + [
            "--param", "mesh_size=2,3", "--set", "cycles=50",
            "--store", str(cache_dir),
        ]) == 0
        capsys.readouterr()
        assert main(["history", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "2 stored run(s)" in out
        assert "mesh-design-space" in out
        assert store.code_fingerprint() in out

    def test_history_scenario_filter(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(SWEEP_ARGS[:2] + [
            "--param", "mesh_size=2", "--set", "cycles=50",
            "--store", str(cache_dir),
        ]) == 0
        capsys.readouterr()
        assert main([
            "history", str(cache_dir), "--scenario", "no-such-id",
        ]) == 0
        assert "0 stored run(s)" in capsys.readouterr().out

    def test_history_missing_store_exits_2(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["history", str(tmp_path / "nope")])
        assert exc.value.code == 2
