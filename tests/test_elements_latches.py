"""Unit tests for latches, flip-flops and the flag synchronizer (Fig 4)."""

import pytest

from repro.elements import (
    DFlipFlop,
    DLatch,
    FlagSynchronizer,
    LatchBus,
    RegisterBus,
)
from repro.sim import Bus, Clock, Signal, Simulator


@pytest.fixture
def sim():
    return Simulator()


def settle(sim, until=None):
    if until is None:
        sim.run(max_events=100_000)
    else:
        sim.run(until=until, max_events=1_000_000)


class TestDLatch:
    def test_transparent_when_open(self, sim):
        d, g = Signal(sim, "d"), Signal(sim, "g", init=1)
        latch = DLatch(sim, d, g)
        d.set(1)
        settle(sim)
        assert latch.q.value == 1
        d.set(0)
        settle(sim)
        assert latch.q.value == 0

    def test_holds_when_closed(self, sim):
        d, g = Signal(sim, "d"), Signal(sim, "g", init=1)
        latch = DLatch(sim, d, g)
        d.set(1)
        settle(sim)
        g.set(0)
        d.set(0)
        settle(sim)
        assert latch.q.value == 1

    def test_captures_on_open(self, sim):
        d, g = Signal(sim, "d", init=1), Signal(sim, "g")
        latch = DLatch(sim, d, g)
        settle(sim)
        assert latch.q.value == 0
        g.set(1)
        settle(sim)
        assert latch.q.value == 1


class TestLatchBus:
    def test_word_capture(self, sim):
        d = Bus(sim, 8, "d")
        g = Signal(sim, "g")
        lb = LatchBus(sim, d, g)
        d.set(0xC3)
        g.set(1)
        settle(sim)
        assert lb.q.value == 0xC3
        g.set(0)
        d.set(0x00)
        settle(sim)
        assert lb.q.value == 0xC3

    def test_width_mismatch_rejected(self, sim):
        d = Bus(sim, 8, "d")
        q = Bus(sim, 4, "q")
        with pytest.raises(ValueError):
            LatchBus(sim, d, Signal(sim, "g"), q)


class TestDFlipFlop:
    def test_captures_on_rising_edge_only(self, sim):
        d, clk = Signal(sim, "d"), Signal(sim, "clk")
        ff = DFlipFlop(sim, d, clk)
        d.set(1)
        settle(sim)
        assert ff.q.value == 0  # no edge yet
        clk.set(1)
        settle(sim)
        assert ff.q.value == 1
        d.set(0)
        clk.set(0)  # falling edge: no capture
        settle(sim)
        assert ff.q.value == 1

    def test_async_clear(self, sim):
        d, clk, clr = Signal(sim, "d", init=1), Signal(sim, "clk"), Signal(sim, "clr")
        ff = DFlipFlop(sim, d, clk, clear=clr)
        clk.set(1)
        settle(sim)
        assert ff.q.value == 1
        clr.set(1)
        settle(sim)
        assert ff.q.value == 0

    def test_clear_blocks_capture(self, sim):
        d, clk, clr = Signal(sim, "d", init=1), Signal(sim, "clk"), Signal(sim, "clr", init=1)
        ff = DFlipFlop(sim, d, clk, clear=clr)
        clk.set(1)
        settle(sim)
        assert ff.q.value == 0


class TestRegisterBus:
    def test_captures_with_enable(self, sim):
        d = Bus(sim, 32, "d")
        clk, en = Signal(sim, "clk"), Signal(sim, "en", init=1)
        reg = RegisterBus(sim, d, clk, en)
        d.set(0xA5A5A5A5)
        clk.set(1)
        settle(sim)
        assert reg.q.value == 0xA5A5A5A5

    def test_no_capture_without_enable(self, sim):
        d = Bus(sim, 8, "d")
        clk, en = Signal(sim, "clk"), Signal(sim, "en")
        reg = RegisterBus(sim, d, clk, en)
        d.set(0xFF)
        clk.set(1)
        settle(sim)
        assert reg.q.value == 0

    def test_width_mismatch_rejected(self, sim):
        d = Bus(sim, 8, "d")
        q = Bus(sim, 16, "q")
        with pytest.raises(ValueError):
            RegisterBus(sim, d, Signal(sim, "clk"), Signal(sim, "en"), q)


class TestFlagSynchronizer:
    """The two-FF flag of Fig 4: sync set, async clear."""

    def _clocked(self, sim):
        clock = Clock(sim, 1000, "clk")
        wr_en = Signal(sim, "wren")
        clear = Signal(sim, "clear")
        flag = FlagSynchronizer(sim, clock.signal, wr_en, clear)
        return clock, wr_en, clear, flag

    def test_set_on_write(self, sim):
        clock, wr_en, clear, flag = self._clocked(sim)
        wr_en.set(1)
        settle(sim, until=1500)
        assert flag.flag_a.value == 1
        assert flag.flag_s.value == 1

    def test_async_clear_drops_flag_a_quickly(self, sim):
        clock, wr_en, clear, flag = self._clocked(sim)
        wr_en.set(1)
        settle(sim, until=500)
        wr_en.set(0)
        clear.set(1)
        clear.set(0)
        settle(sim, until=700)
        assert flag.flag_a.value == 0

    def test_sync_side_sees_clear_two_edges_later(self, sim):
        """The 2-FF synchronizer delays the clear by two clock cycles."""
        clock, wr_en, clear, flag = self._clocked(sim)
        wr_en.set(1)
        settle(sim, until=400)
        wr_en.set(0)
        settle(sim, until=900)
        assert flag.flag_s.value == 1
        # clear asynchronously mid-cycle
        clear.set(1)
        clear.set(0)
        settle(sim, until=1500)   # one edge (t=1000) passed
        assert flag.flag_s.value == 1  # still pessimistically set
        settle(sim, until=2500)   # second edge (t=2000) passed
        assert flag.flag_s.value == 0

    def test_clear_blocks_synchronous_set(self, sim):
        clock, wr_en, clear, flag = self._clocked(sim)
        clear.set(1)
        wr_en.set(1)
        settle(sim, until=1500)
        assert flag.flag_a.value == 0
