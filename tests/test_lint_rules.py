"""Fixture designs proving every lint rule fires — and waives.

Each rule gets at least one seeded-violation design asserting the
finding's rule id, severity and anchor path, plus a waiver test
showing the same finding can be suppressed with a justification.
"""

import pytest

from repro.design.component import Component
from repro.design.design import Design
from repro.design.mesh import MeshDesign
from repro.elements.gates import Gate, Inverter, Nor2
from repro.elements.latches import DLatch
from repro.lint import (
    Finding,
    lint_design,
    parse_waivers,
    severity_rank,
    worst_severity,
)
from repro.lint.engine import lint_design as engine_lint_design
from repro.lint.rules import (
    CdcRule,
    CombLoopRule,
    CompileRejectedRule,
    DanglingOutputRule,
    DeadConeRule,
    HighFanoutRule,
    LatchFeedbackRule,
    LintContext,
    MultiDriverRule,
    UndrivenInputRule,
    WidthMismatchRule,
    default_rules,
    rule_table,
)
from repro.lint.waivers import (
    WaiverError,
    apply_waivers,
    unused_waiver_findings,
)
from repro.noc.topology import Topology
from repro.sim import Simulator


def _adopted(name, *components):
    root = Component(name)
    for comp in components:
        root.adopt(comp)
    return root


def _findings(design, rule):
    ctx = LintContext.for_design(design)
    return list(rule.check(ctx))


# ----------------------------------------------------------------------
# tree rules
# ----------------------------------------------------------------------
class TestUndrivenInput:
    def test_fires_on_floating_declarative_input(self):
        top = Component("top")
        child = Component("c")
        child.port_in("a")
        top.add("c", child)
        found = _findings(Design(top), UndrivenInputRule())
        assert len(found) == 1
        assert found[0].rule_id == "undriven-input"
        assert found[0].severity == "error"
        assert found[0].path == "top.c.a"

    def test_connected_input_is_clean(self):
        top = Component("top")
        src = Component("src")
        y = src.port_out("y")
        dst = Component("dst")
        a = dst.port_in("a")
        top.add("src", src)
        top.add("dst", dst)
        top.connect(y, a)
        assert _findings(Design(top), UndrivenInputRule()) == []

    def test_root_input_ports_are_external_pins(self):
        top = Component("top")
        top.port_in("clk")
        assert _findings(Design(top), UndrivenInputRule()) == []

    def test_input_fed_from_root_port_is_clean(self):
        top = Component("top")
        clk = top.port_in("clk")
        child = Component("c")
        a = child.port_in("a")
        top.add("c", child)
        top.connect(clk, a)
        assert _findings(Design(top), UndrivenInputRule()) == []


class TestDanglingOutput:
    def test_fires_on_unconnected_output(self):
        top = Component("top")
        child = Component("c")
        child.port_out("y")
        top.add("c", child)
        found = _findings(Design(top), DanglingOutputRule())
        assert [f.path for f in found] == ["top.c.y"]
        assert found[0].severity == "warning"

    def test_root_outputs_are_external_pins(self):
        top = Component("top")
        top.port_out("done")
        assert _findings(Design(top), DanglingOutputRule()) == []


class TestWidthMismatch:
    def test_fires_on_mixed_width_group(self):
        top = Component("top")
        a = Component("a")
        wide = a.port_out("y", width=4)
        b = Component("b")
        narrow = b.port_in("d", width=2)
        top.add("a", a)
        top.add("b", b)
        # connect() would refuse; merge directly to seed the violation
        wide.group.merge(narrow.group)
        found = _findings(Design(top), WidthMismatchRule())
        assert len(found) == 1
        assert found[0].severity == "error"
        assert "top.a.y" in found[0].span and "top.b.d" in found[0].span

    def test_consistent_group_is_clean(self):
        top = Component("top")
        a = Component("a")
        y = a.port_out("y", width=4)
        b = Component("b")
        d = b.port_in("d", width=4)
        top.add("a", a)
        top.add("b", b)
        top.connect(y, d)
        assert _findings(Design(top), WidthMismatchRule()) == []

    def test_fires_on_bound_net_width_mismatch(self):
        sim = Simulator()
        top = Component("top")
        child = Component("c")
        d = child.port_in("d", width=2)
        top.add("c", child)
        d.group.root().bound = sim.bus(4, "wide")
        found = _findings(Design(top), WidthMismatchRule())
        assert len(found) == 1
        assert "width 4" in found[0].message


# ----------------------------------------------------------------------
# netlist rules (need an elaborated design)
# ----------------------------------------------------------------------
class TestMultiDriver:
    def _contested(self):
        sim = Simulator()
        a, b = sim.signal("a"), sim.signal("b")
        shared = sim.signal("shared")
        root = _adopted(
            "md",
            Inverter(sim, a, out=shared, name="inv1"),
            Inverter(sim, b, out=shared, name="inv2"),
        )
        return Design(root, sim)

    def test_fires_with_both_drivers_in_span(self):
        found = _findings(self._contested(), MultiDriverRule())
        assert len(found) == 1
        assert found[0].severity == "error"
        assert found[0].path == "shared"
        assert set(found[0].span) == {"md.inv1", "md.inv2"}

    def test_strict_extraction_still_raises(self):
        from repro.compiled import CompileError, extract

        design = self._contested()
        with pytest.raises(CompileError, match="two structural drivers"):
            extract(design.top)


class TestCombLoop:
    def test_fires_once_per_independent_loop(self):
        sim = Simulator()
        s, r = sim.signal("s"), sim.signal("r")
        q, nq = sim.signal("q"), sim.signal("nq")
        q2, nq2 = sim.signal("q2"), sim.signal("nq2")
        root = _adopted(
            "sr",
            Nor2(sim, r, nq, out=q, name="n1"),
            Nor2(sim, s, q, out=nq, name="n2"),
            Nor2(sim, r, nq2, out=q2, name="m1"),
            Nor2(sim, s, q2, out=nq2, name="m2"),
        )
        found = _findings(Design(root, sim), CombLoopRule())
        assert len(found) == 2
        assert all(f.severity == "error" for f in found)
        spans = sorted(tuple(sorted(f.span)) for f in found)
        assert spans == [("sr.m1", "sr.m2"), ("sr.n1", "sr.n2")]

    def test_loop_free_design_is_clean(self):
        sim = Simulator()
        a = sim.signal("a")
        inv = Inverter(sim, a, name="inv")
        found = _findings(
            Design(_adopted("ok", inv), sim), CombLoopRule()
        )
        assert found == []


class TestDeadCone:
    def _two_chains(self):
        sim = Simulator()
        a, b = sim.signal("a"), sim.signal("b")
        live = Inverter(sim, a, name="live")
        dead = Inverter(sim, b, name="dead")
        root = _adopted("top", live, dead)
        return sim, live, root

    def test_fires_on_logic_missing_watched_roots(self):
        sim, live, root = self._two_chains()
        design = Design(root, sim, watched=[live.output.name])
        found = _findings(design, DeadConeRule())
        assert [f.path for f in found] == ["top.dead"]
        assert found[0].severity == "warning"

    def test_everything_watched_is_clean(self):
        sim, live, root = self._two_chains()
        design = Design(
            root, sim,
            watched=[s.name for s in sim.created_signals],
        )
        assert _findings(design, DeadConeRule()) == []

    def test_no_observability_anchor_stays_silent(self):
        sim, _live, root = self._two_chains()
        assert _findings(Design(root, sim), DeadConeRule()) == []

    def test_reports_cone_head_not_interior(self):
        sim = Simulator()
        a = sim.signal("a")
        first = Inverter(sim, a, name="first")
        second = Inverter(sim, first.output, name="second")
        watched = Inverter(sim, a, name="seen")
        root = _adopted("top", first, second, watched)
        design = Design(root, sim, watched=[watched.output.name])
        found = _findings(design, DeadConeRule())
        # 'second' is the head; 'first' only feeds dead logic
        assert [f.path for f in found] == ["top.second"]
        assert "1 element(s)" in found[0].message
        assert "top.first" in found[0].span


class TestHighFanout:
    def test_fires_above_threshold(self):
        sim = Simulator()
        hub = sim.signal("hub")
        taps = [
            Inverter(sim, hub, name=f"tap{i}") for i in range(3)
        ]
        design = Design(_adopted("fan", *taps), sim)
        found = _findings(design, HighFanoutRule(threshold=2))
        assert [f.path for f in found] == ["hub"]
        assert found[0].severity == "warning"
        assert len(found[0].span) == 3

    def test_at_threshold_is_clean(self):
        sim = Simulator()
        hub = sim.signal("hub")
        taps = [
            Inverter(sim, hub, name=f"tap{i}") for i in range(3)
        ]
        design = Design(_adopted("fan", *taps), sim)
        assert _findings(design, HighFanoutRule(threshold=3)) == []


class TestLatchFeedback:
    def test_fires_on_latch_loop_through_comb(self):
        sim = Simulator()
        g = sim.signal("g")
        d = sim.signal("d")
        latch = DLatch(sim, d, g, name="lat")
        inv = Inverter(sim, latch.q, out=d, name="inv")
        design = Design(_adopted("fb", latch, inv), sim)
        found = _findings(design, LatchFeedbackRule())
        assert [f.path for f in found] == ["fb.lat"]
        assert found[0].severity == "warning"
        assert "fb.inv" in found[0].span

    def test_dff_in_the_path_breaks_the_pattern(self):
        from repro.elements.latches import DFlipFlop

        sim = Simulator()
        g, d = sim.signal("g"), sim.signal("d")
        clk = sim.signal("clk")
        latch = DLatch(sim, d, g, name="lat")
        ff = DFlipFlop(sim, latch.q, clk, name="ff")
        inv = Inverter(sim, ff.q, out=d, name="inv")
        design = Design(_adopted("ok", latch, ff, inv), sim)
        assert _findings(design, LatchFeedbackRule()) == []


class TestCompileRejected:
    def test_info_on_event_kernel_only_constructs(self):
        sim = Simulator()
        a, out = sim.signal("a"), sim.signal("out")
        gate = Gate(sim, [a], out, lambda a: not a, delay=10,
                    name="odd")
        design = Design(_adopted("ek", gate), sim)
        found = _findings(design, CompileRejectedRule())
        assert [f.severity for f in found].count("info") >= 1
        assert any(f.path == "ek.odd" for f in found)

    def test_rejected_subtree_suppresses_dead_cone(self):
        sim = Simulator()
        a, out = sim.signal("a"), sim.signal("out")
        gate = Gate(sim, [a], out, lambda a: not a, delay=10,
                    name="odd")
        inv = Inverter(sim, a, name="inv")
        design = Design(
            _adopted("ek", gate, inv), sim, watched=[out.name]
        )
        ctx = LintContext.for_design(design)
        assert ctx.partial_netlist
        assert list(DeadConeRule().check(ctx)) == []


# ----------------------------------------------------------------------
# mesh rules
# ----------------------------------------------------------------------
class TestCdc:
    def _split_mesh(self):
        mesh = MeshDesign(Topology(2, 1))
        mesh.assign_domains(
            lambda node: "fast" if node.x == 0 else "slow"
        )
        return mesh

    def test_fires_on_unsynchronized_crossing(self):
        mesh = self._split_mesh()
        found = _findings(Design(mesh), CdcRule())
        assert len(found) == 2  # east and west crossings
        assert all(f.severity == "error" for f in found)
        assert {f.path for f in found} == {
            "mesh.node[0][0].east", "mesh.node[0][1].west",
        }
        assert "'fast' -> 'slow'" in "".join(
            f.message for f in found
        )

    def test_links_with_params_attached_are_clean(self):
        mesh = self._split_mesh()
        for link in mesh.cross_domain_links():
            link.params = object()
        assert _findings(Design(mesh), CdcRule()) == []

    def test_single_domain_mesh_is_clean(self):
        mesh = MeshDesign(Topology(2, 2))
        mesh.assign_domains(lambda node: "core")
        assert _findings(Design(mesh), CdcRule()) == []


# ----------------------------------------------------------------------
# waivers
# ----------------------------------------------------------------------
WAIVER_TEXT = '''
# fixture waivers
[[waiver]]
rule = "undriven-input"
path = "top.c.*"
reason = "stimulus attaches at runtime"
'''


class TestWaivers:
    def _floating(self):
        top = Component("top")
        child = Component("c")
        child.port_in("a")
        top.add("c", child)
        return Design(top)

    def test_each_rule_waivable(self):
        # every rule id in the table can be targeted by a waiver glob
        for rule_id, severity, _desc in rule_table():
            finding = Finding(rule_id, severity or "warning",
                              "x.y", "seeded")
            waivers = parse_waivers(
                f'[[waiver]]\nrule = "{rule_id}"\npath = "*"\n'
                f'reason = "intentional"\n'
            )
            apply_waivers([finding], waivers, scenario="any")
            assert finding.waived
            assert waivers[0].used

    def test_waived_finding_keeps_record_but_clears_gate(self):
        waivers = parse_waivers(WAIVER_TEXT)
        found = engine_lint_design(self._floating(), waivers=waivers)
        assert len(found) == 1
        assert found[0].waived
        assert found[0].waiver_reason == "stimulus attaches at runtime"
        assert worst_severity(found) == ""
        assert worst_severity(found, include_waived=True) == "error"

    def test_non_matching_waiver_left_unused(self):
        waivers = parse_waivers(WAIVER_TEXT.replace("top.c", "nope"))
        found = engine_lint_design(self._floating(), waivers=waivers)
        assert not found[0].waived
        unused = unused_waiver_findings(waivers)
        assert len(unused) == 1
        assert unused[0].rule_id == "unused-waiver"
        assert unused[0].severity == "warning"

    def test_scenario_glob_scopes_waivers(self):
        waivers = parse_waivers(
            '[[waiver]]\nrule = "*"\npath = "*"\n'
            'scenario = "gals-*"\nreason = "scoped"\n'
        )
        finding = Finding("undriven-input", "error", "p", "m")
        apply_waivers([finding], waivers, scenario="throughput")
        assert not finding.waived
        apply_waivers([finding], waivers, scenario="gals-mesh")
        assert finding.waived

    def test_reason_is_required(self):
        with pytest.raises(WaiverError, match="no reason"):
            parse_waivers('[[waiver]]\nrule = "x"\npath = "y"\n')

    def test_malformed_line_names_location(self):
        with pytest.raises(WaiverError, match="wv.toml:2"):
            parse_waivers("[[waiver]]\nbogus!\n", source="wv.toml")

    def test_key_outside_table_rejected(self):
        with pytest.raises(WaiverError, match="before any"):
            parse_waivers('rule = "x"\n')


# ----------------------------------------------------------------------
# engine-level behavior
# ----------------------------------------------------------------------
class TestEngine:
    def test_findings_sorted_worst_first(self):
        sim = Simulator()
        a, b = sim.signal("a"), sim.signal("b")
        shared = sim.signal("shared")
        root = _adopted(
            "md",
            Inverter(sim, a, out=shared, name="inv1"),
            Inverter(sim, b, out=shared, name="inv2"),
        )
        child = Component("c")
        child.port_out("y")
        root.add("c", child)
        found = lint_design(Design(root, sim))
        ranks = [severity_rank(f.severity) for f in found]
        assert ranks == sorted(ranks, reverse=True)
        assert found[0].rule_id == "multi-driver"

    def test_structural_design_skips_netlist_rules(self):
        mesh = MeshDesign(Topology(2, 2))
        ctx = LintContext.for_design(Design(mesh))
        assert ctx.netlist is None
        assert ctx.problems == []

    def test_default_rule_pack_size(self):
        ids = [rule.id for rule in default_rules()]
        assert len(ids) == len(set(ids)) == 10

    def test_metrics_counted_when_enabled(self):
        from repro.obs import metrics

        with metrics.collecting(reset=True) as reg:
            lint_design(self._floating_design())
            counters = reg.counters()
        assert counters.get("lint.designs") == 1
        assert counters.get("lint.findings.error") == 1

    @staticmethod
    def _floating_design():
        top = Component("top")
        child = Component("c")
        child.port_in("a")
        top.add("c", child)
        return Design(top)
