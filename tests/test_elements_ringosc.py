"""Unit tests for the ring oscillator (Fig 8a timing reference)."""

import pytest

from repro.elements import RingOscillator
from repro.sim import Signal, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestRingOscillator:
    def test_period_from_stages(self, sim):
        en = Signal(sim, "en")
        osc = RingOscillator(sim, en, stages=5, t_inv_ps=11)
        assert osc.half_period == 55
        assert osc.period_ps == 110

    def test_silent_until_enabled(self, sim):
        en = Signal(sim, "en")
        osc = RingOscillator(sim, en, stages=5)
        sim.run(until=1000)
        assert osc.out.transitions == 0

    def test_oscillates_when_enabled(self, sim):
        en = Signal(sim, "en")
        osc = RingOscillator(sim, en, stages=5, t_inv_ps=10)  # half=50
        en.set(1)
        sim.run(until=1000)
        # ~20 half periods → ~20 transitions (±1 for boundary)
        assert 18 <= osc.out.transitions <= 21

    def test_stops_when_disabled(self, sim):
        en = Signal(sim, "en")
        osc = RingOscillator(sim, en, stages=5, t_inv_ps=10)
        en.set(1)
        sim.run(until=500)
        en.set(0)
        sim.run(until=520)
        count = osc.out.transitions
        sim.run(until=2000)
        assert osc.out.transitions == count
        assert osc.out.value == 0  # parks low

    def test_edge_spacing_is_half_period(self, sim):
        en = Signal(sim, "en")
        osc = RingOscillator(sim, en, stages=3, t_inv_ps=20)  # half=60
        times = []
        osc.out.on_change(lambda s: times.append(sim.now))
        en.set(1)
        sim.run(until=500)
        deltas = [b - a for a, b in zip(times, times[1:])]
        assert all(d == 60 for d in deltas)

    def test_even_stage_count_rejected(self, sim):
        with pytest.raises(ValueError):
            RingOscillator(sim, Signal(sim, "en"), stages=4)

    def test_too_few_stages_rejected(self, sim):
        with pytest.raises(ValueError):
            RingOscillator(sim, Signal(sim, "en"), stages=1)

    def test_half_period_override(self, sim):
        """Sizing/loading the ring for a target frequency (paper allows)."""
        en = Signal(sim, "en")
        osc = RingOscillator(sim, en, stages=5, half_period_ps=137)
        assert osc.half_period == 137

    def test_half_period_override_must_be_positive(self, sim):
        with pytest.raises(ValueError):
            RingOscillator(sim, Signal(sim, "en"), stages=5, half_period_ps=0)

    def test_reenable_restarts(self, sim):
        en = Signal(sim, "en")
        osc = RingOscillator(sim, en, stages=5, t_inv_ps=10)
        en.set(1)
        sim.run(until=300)
        en.set(0)
        sim.run(until=400)
        before = osc.out.transitions
        en.set(1)
        sim.run(until=700)
        assert osc.out.transitions > before
