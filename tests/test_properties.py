"""Property-based tests (hypothesis) on core data structures and invariants."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import (
    per_transfer_cycle_delay,
    per_word_cycle_delay,
    sync_wires_needed,
    wire_area_um2,
)
from repro.noc import Port, Topology, next_hop, xy_route
from repro.sim import Bus, Simulator
from repro.tech import HandshakeTimings, st012

slow = settings(
    deadline=None,
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestBusProperties:
    @given(width=st.integers(1, 64), value=st.integers(0))
    @settings(deadline=None, max_examples=60)
    def test_set_get_roundtrip(self, width, value):
        value %= 1 << width
        sim = Simulator()
        bus = Bus(sim, width, "b")
        bus.set(value)
        assert bus.value == value

    @given(width=st.integers(1, 32), a=st.integers(0), b=st.integers(0))
    @settings(deadline=None, max_examples=60)
    def test_transitions_equal_hamming_distance(self, width, a, b):
        a %= 1 << width
        b %= 1 << width
        sim = Simulator()
        bus = Bus(sim, width, "b", init=a)
        bus.set(b)
        assert bus.transitions == bin(a ^ b).count("1")

    @given(width=st.integers(2, 32), lo=st.integers(0, 30), hi=st.integers(0, 31))
    @settings(deadline=None, max_examples=60)
    def test_slice_view_aliases(self, width, lo, hi):
        lo %= width
        hi %= width
        if lo > hi:
            lo, hi = hi, lo
        sim = Simulator()
        bus = Bus(sim, width, "b")
        bus.set((1 << width) - 1)
        view = Bus.from_signals(sim, bus.slice(lo, hi), "v")
        assert view.value == (1 << (hi - lo + 1)) - 1


class TestSerializerRoundTripProperty:
    @given(
        words=st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=4),
        slice_width=st.sampled_from([4, 8, 16, 32]),
    )
    @slow
    def test_i2_serdes_roundtrip(self, words, slice_width):
        """Any word stream survives serialize→deserialize at any ratio."""
        from repro.link import Channel, Deserializer, Serializer
        from repro.link.channel import sink_process, source_process
        from repro.link.wiring import wire, wire_bus
        from repro.sim import spawn

        sim = Simulator()
        in_ch = Channel(sim, 32, "in")
        ser = Serializer(sim, in_ch, slice_width=slice_width)
        des = Deserializer(sim, Channel(sim, slice_width, "mid"), 32)
        wire_bus(ser.out_ch.data, des.in_ch.data, 0)
        wire(ser.out_ch.req, des.in_ch.req, 0)
        wire(des.in_ch.ack, ser.out_ch.ack, 0)
        received = []
        spawn(sim, source_process(in_ch, words))
        spawn(sim, sink_process(des.out_ch, received, count=len(words)))
        sim.run(max_events=5_000_000)
        assert received == words

    @given(words=st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=3))
    @slow
    def test_i3_word_level_roundtrip(self, words):
        from repro.link import WordDeserializer, WordSerializer, Channel
        from repro.link.channel import ValidChannel, sink_process, source_process
        from repro.link.wiring import wire, wire_bus
        from repro.sim import spawn

        sim = Simulator()
        in_ch = Channel(sim, 32, "in")
        wser = WordSerializer(sim, in_ch, slice_width=8)
        rx = ValidChannel(sim, 8, "rx")
        wdes = WordDeserializer(sim, rx, 32)
        wire_bus(wser.out_ch.data, rx.data, 0)
        wire(wser.out_ch.valid, rx.valid, 0)
        wire(wdes.ack_to_tx, wser.out_ch.ack, 0)
        received = []
        spawn(sim, source_process(in_ch, words))
        spawn(sim, sink_process(wdes.out_ch, received, count=len(words)))
        sim.run(max_events=5_000_000)
        assert received == words


class TestRoutingProperties:
    @given(
        cols=st.integers(2, 6),
        rows=st.integers(2, 6),
        data=st.data(),
    )
    @settings(deadline=None, max_examples=80)
    def test_xy_route_reaches_destination(self, cols, rows, data):
        topo = Topology(cols, rows)
        src = data.draw(st.tuples(st.integers(0, cols - 1),
                                  st.integers(0, rows - 1)))
        dest = data.draw(st.tuples(st.integers(0, cols - 1),
                                   st.integers(0, rows - 1)))
        pos = src
        for port in xy_route(src, dest, topo):
            nxt = topo.neighbor(pos, port)
            assert nxt is not None, "route stepped off the mesh"
            pos = nxt
        assert pos == dest

    @given(
        cols=st.integers(2, 6),
        rows=st.integers(2, 6),
        data=st.data(),
    )
    @settings(deadline=None, max_examples=80)
    def test_route_length_is_manhattan(self, cols, rows, data):
        topo = Topology(cols, rows)
        src = data.draw(st.tuples(st.integers(0, cols - 1),
                                  st.integers(0, rows - 1)))
        dest = data.draw(st.tuples(st.integers(0, cols - 1),
                                   st.integers(0, rows - 1)))
        route = xy_route(src, dest, topo)
        manhattan = abs(src[0] - dest[0]) + abs(src[1] - dest[1])
        assert len(route) == manhattan

    @given(cols=st.integers(2, 6), rows=st.integers(2, 6), data=st.data())
    @settings(deadline=None, max_examples=80)
    def test_xy_never_turns_from_y_back_to_x(self, cols, rows, data):
        """Dimension order: once a route goes N/S it never goes E/W —
        the property that makes XY deadlock-free."""
        topo = Topology(cols, rows)
        src = data.draw(st.tuples(st.integers(0, cols - 1),
                                  st.integers(0, rows - 1)))
        dest = data.draw(st.tuples(st.integers(0, cols - 1),
                                   st.integers(0, rows - 1)))
        route = xy_route(src, dest, topo)
        seen_y = False
        for port in route:
            if port in (Port.NORTH, Port.SOUTH):
                seen_y = True
            elif seen_y:
                pytest.fail(f"X move after Y move in {route}")

    @given(cols=st.integers(2, 5), rows=st.integers(2, 5), data=st.data())
    @settings(deadline=None, max_examples=60)
    def test_next_hop_consistent_with_route(self, cols, rows, data):
        topo = Topology(cols, rows)
        src = data.draw(st.tuples(st.integers(0, cols - 1),
                                  st.integers(0, rows - 1)))
        dest = data.draw(st.tuples(st.integers(0, cols - 1),
                                   st.integers(0, rows - 1)))
        if src == dest:
            assert next_hop(src, dest, topo) == Port.LOCAL
        else:
            assert next_hop(src, dest, topo) == xy_route(src, dest, topo)[0]


class TestAnalysisProperties:
    @given(
        n=st.integers(1, 256),
        length=st.floats(0.0, 10_000.0, allow_nan=False),
    )
    @settings(deadline=None, max_examples=100)
    def test_wire_area_monotone_in_wires_and_length(self, n, length):
        tech = st012()
        area = wire_area_um2(n, length, tech)
        assert area >= 0
        assert wire_area_um2(n + 1, length, tech) >= area
        assert wire_area_um2(n, length + 1, tech) >= area

    @given(
        bandwidth=st.floats(1.0, 1000.0, allow_nan=False),
        clock=st.floats(10.0, 1000.0, allow_nan=False),
    )
    @settings(deadline=None, max_examples=100)
    def test_sync_wires_sufficient(self, bandwidth, clock):
        """The returned wire count actually sustains the bandwidth."""
        wires = sync_wires_needed(bandwidth, clock, flit_width=32)
        achievable = wires * clock / 32
        assert achievable >= bandwidth * (1 - 1e-9)

    @given(
        tp=st.integers(0, 1000),
        slices=st.integers(1, 32),
        buffers=st.integers(1, 16),
    )
    @settings(deadline=None, max_examples=100)
    def test_delay_equations_positive_and_monotone(self, tp, slices, buffers):
        timings = HandshakeTimings(t_p_per_segment=tp)
        i2 = per_transfer_cycle_delay(timings, slices, buffers)
        i3 = per_word_cycle_delay(timings, slices, buffers)
        assert i2.cycle_delay_ps > 0 and i3.cycle_delay_ps > 0
        # more slices never speed up the per-transfer link
        i2_more = per_transfer_cycle_delay(timings, slices + 1, buffers)
        assert i2_more.cycle_delay_ps >= i2.cycle_delay_ps

    @given(usage=st.floats(0.0, 1.0, allow_nan=False),
           freq=st.floats(10.0, 500.0, allow_nan=False),
           buffers=st.integers(1, 16))
    @settings(deadline=None, max_examples=100)
    def test_power_monotone_in_usage_and_buffers(self, usage, freq, buffers):
        from repro.analysis import link_power_uw

        tech = st012()
        for kind in ("I1", "I2", "I3"):
            p = link_power_uw(tech, kind, buffers, freq, usage)
            assert p > 0
            assert link_power_uw(tech, kind, buffers + 1, freq, usage) >= p
            assert link_power_uw(
                tech, kind, buffers, freq, min(1.0, usage + 0.1)
            ) >= p


class TestSequencerProperty:
    @given(n=st.integers(2, 8), advances=st.integers(0, 24))
    @slow
    def test_one_hot_invariant(self, n, advances):
        """After any number of advances the sequencer is exactly 1-hot
        and the token position equals advances mod n."""
        from repro.elements import OneHotSequencer

        sim = Simulator()
        seq = OneHotSequencer(sim, n)
        for _ in range(advances):
            seq.advance.set(1)
            seq.advance.set(0)
            sim.run(max_events=100_000)
        assert sum(s.value for s in seq.sel) == 1
        assert seq.index == advances % n


class TestTrafficProperties:
    @given(seed=st.integers(0, 2**16), rate=st.floats(0.01, 0.5))
    @settings(deadline=None, max_examples=30)
    def test_generators_reproducible(self, seed, rate):
        from repro.noc import TrafficConfig, TrafficGenerator

        topo = Topology(3, 3)
        seqs = []
        for _ in range(2):
            gen = TrafficGenerator(
                topo, TrafficConfig(injection_rate=rate, seed=seed)
            )
            seqs.append(
                [(p.src, p.dest) for c in range(30)
                 for p in gen.packets_for_cycle(c)]
            )
        assert seqs[0] == seqs[1]
