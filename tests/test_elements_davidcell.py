"""Unit tests for the David cell and one-hot sequencer (Fig 3/6)."""

import pytest

from repro.elements import DavidCell, OneHotSequencer
from repro.sim import Signal, Simulator
from repro.tech import GateDelays


@pytest.fixture
def sim():
    return Simulator()


def settle(sim):
    sim.run(max_events=100_000)


class TestDavidCell:
    def test_initial_state(self, sim):
        s, c = Signal(sim, "s"), Signal(sim, "c")
        dc = DavidCell(sim, s, c)
        assert dc.q.value == 0
        dc2 = DavidCell(sim, Signal(sim, "s2"), Signal(sim, "c2"),
                        init_active=True)
        assert dc2.q.value == 1

    def test_set_activates(self, sim):
        s, c = Signal(sim, "s"), Signal(sim, "c")
        dc = DavidCell(sim, s, c)
        s.set(1)
        settle(sim)
        assert dc.q.value == 1
        assert dc.q_to_prev.value == 1

    def test_clear_deactivates(self, sim):
        s, c = Signal(sim, "s"), Signal(sim, "c")
        dc = DavidCell(sim, s, c, init_active=True)
        c.set(1)
        settle(sim)
        assert dc.q.value == 0

    def test_clear_dominates_simultaneous_set(self, sim):
        s, c = Signal(sim, "s"), Signal(sim, "c", init=1)
        dc = DavidCell(sim, s, c)
        s.set(1)  # set while clear held high: ignored
        settle(sim)
        assert dc.q.value == 0

    def test_output_delay_is_davidcell_delay(self, sim):
        s, c = Signal(sim, "s"), Signal(sim, "c")
        dc = DavidCell(sim, s, c, delays=GateDelays(davidcell=50))
        times = []
        dc.q.on_change(lambda sig: times.append(sim.now))
        s.set(1)
        settle(sim)
        assert times == [50]


class TestOneHotSequencer:
    def test_token_starts_at_zero(self, sim):
        seq = OneHotSequencer(sim, 4)
        assert seq.index == 0
        assert [s.value for s in seq.sel] == [1, 0, 0, 0]

    def test_advance_moves_token(self, sim):
        seq = OneHotSequencer(sim, 4)
        seq.advance.set(1)
        seq.advance.set(0)
        settle(sim)
        assert seq.index == 1
        assert [s.value for s in seq.sel] == [0, 1, 0, 0]

    def test_full_rotation_wraps(self, sim):
        seq = OneHotSequencer(sim, 4)
        for _ in range(4):
            seq.advance.set(1)
            seq.advance.set(0)
            settle(sim)
        assert seq.index == 0

    def test_exactly_one_hot_after_settling(self, sim):
        seq = OneHotSequencer(sim, 5)
        for _ in range(7):
            seq.advance.set(1)
            seq.advance.set(0)
            settle(sim)
            assert sum(s.value for s in seq.sel) == 1

    def test_on_wrap_callback(self, sim):
        wraps = []
        seq = OneHotSequencer(sim, 3, on_wrap=lambda: wraps.append(sim.now))
        for _ in range(6):
            seq.advance.set(1)
            seq.advance.set(0)
            settle(sim)
        assert len(wraps) == 2  # two complete rotations

    def test_needs_two_cells(self, sim):
        with pytest.raises(ValueError):
            OneHotSequencer(sim, 1)

    def test_reset_returns_token_to_zero(self, sim):
        seq = OneHotSequencer(sim, 4)
        seq.advance.set(1)
        seq.advance.set(0)
        settle(sim)
        assert seq.index == 1
        seq.reset()
        assert seq.index == 0

    def test_index_minus_one_while_token_moving(self, sim):
        seq = OneHotSequencer(sim, 4)
        seq.advance.set(1)
        # before settling, both cells may be transiently active or none;
        # after settling exactly one
        settle(sim)
        assert seq.index in (0, 1)
