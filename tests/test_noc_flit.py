"""Unit tests for flits and packets."""

import pytest

from repro.noc import Flit, FlitKind, Packet, reset_packet_ids


@pytest.fixture(autouse=True)
def fresh_ids():
    reset_packet_ids()


class TestFlitKind:
    def test_head_opens_route(self):
        assert FlitKind.HEAD.opens_route
        assert FlitKind.HEAD_TAIL.opens_route
        assert not FlitKind.BODY.opens_route

    def test_tail_closes_route(self):
        assert FlitKind.TAIL.closes_route
        assert FlitKind.HEAD_TAIL.closes_route
        assert not FlitKind.HEAD.closes_route


class TestPacket:
    def test_flit_sequence_kinds(self):
        packet = Packet(src=(0, 0), dest=(1, 1), length_flits=4)
        kinds = [f.kind for f in packet.flits()]
        assert kinds == [
            FlitKind.HEAD, FlitKind.BODY, FlitKind.BODY, FlitKind.TAIL,
        ]

    def test_single_flit_packet(self):
        packet = Packet(src=(0, 0), dest=(1, 0), length_flits=1)
        kinds = [f.kind for f in packet.flits()]
        assert kinds == [FlitKind.HEAD_TAIL]

    def test_two_flit_packet(self):
        packet = Packet(src=(0, 0), dest=(1, 0), length_flits=2)
        kinds = [f.kind for f in packet.flits()]
        assert kinds == [FlitKind.HEAD, FlitKind.TAIL]

    def test_flits_share_packet_id(self):
        packet = Packet(src=(0, 0), dest=(2, 2), length_flits=3)
        ids = {f.packet_id for f in packet.flits()}
        assert ids == {packet.packet_id}

    def test_sequence_numbers(self):
        packet = Packet(src=(0, 0), dest=(2, 2), length_flits=3)
        assert [f.seq for f in packet.flits()] == [0, 1, 2]

    def test_ids_unique_across_packets(self):
        a = Packet(src=(0, 0), dest=(1, 0), length_flits=1)
        b = Packet(src=(0, 0), dest=(1, 0), length_flits=1)
        assert a.packet_id != b.packet_id

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            Packet(src=(0, 0), dest=(1, 0), length_flits=0)

    def test_flits_carry_endpoints(self):
        packet = Packet(src=(1, 2), dest=(3, 0), length_flits=2)
        for flit in packet.flits():
            assert flit.src == (1, 2)
            assert flit.dest == (3, 0)

    def test_payload_wraps_32_bits(self):
        packet = Packet(src=(0, 0), dest=(1, 0), length_flits=2,
                        payload_base=0xFFFFFFFF)
        payloads = [f.payload for f in packet.flits()]
        assert payloads == [0xFFFFFFFF, 0x00000000]

    def test_reset_packet_ids(self):
        Packet(src=(0, 0), dest=(1, 0), length_flits=1)
        reset_packet_ids(100)
        p = Packet(src=(0, 0), dest=(1, 0), length_flits=1)
        assert p.packet_id == 100
