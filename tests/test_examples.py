"""Smoke tests for the runnable examples.

Each example's ``main()`` is imported and executed in-process so the
examples cannot rot as the library evolves; output is captured and
spot-checked for the headline content.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "I3 serialized asynchronous" in out
        assert "75 %" in out

    def test_mesh_traffic(self, capsys):
        load_example("mesh_traffic").main()
        out = capsys.readouterr().out
        assert "4x4 mesh" in out
        for kind in ("I1", "I2", "I3"):
            assert kind in out

    def test_link_design_space(self, capsys):
        load_example("link_design_space").main()
        out = capsys.readouterr().out
        assert "Serialization ratio sweep" in out
        assert "32->1" in out
        assert "node (nm)" in out

    def test_power_report(self, capsys):
        load_example("power_report").main()
        out = capsys.readouterr().out
        assert "paper Fig 12" in out
        assert "paper Fig 13" in out
        assert "65 %" in out or "65." in out

    def test_handshake_waveforms(self, capsys):
        load_example("handshake_waveforms").main()
        out = capsys.readouterr().out
        assert "Per-transfer (I2" in out
        assert "Per-word (I3" in out
        assert "▔" in out  # actual waveform art

    def test_gals_demo(self, capsys):
        load_example("gals_demo").main()
        out = capsys.readouterr().out
        assert "independent clock domains" in out
        assert "600" in out  # the 8x mismatch row

    def test_design_api(self, capsys):
        load_example("design_api").main()
        out = capsys.readouterr().out
        assert "bit-identical" in out
        assert "ha1 <HalfAdder>" in out
        assert "i3.s2a.stall" in out
        assert "Per-instance activity" in out

    def test_compiled_batch(self, capsys):
        load_example("compiled_batch").main()
        out = capsys.readouterr().out
        assert "64 bit-parallel lanes" in out
        assert "bit-identical" in out
        assert "aggregate lanes/sec advantage" in out
        assert "compiled-fault-campaign" in out

    def test_every_example_has_a_test(self):
        """Meta: any new example file must get a smoke test here."""
        example_files = {
            p.stem for p in EXAMPLES_DIR.glob("*.py")
        }
        tested = {
            "quickstart", "mesh_traffic", "link_design_space",
            "power_report", "handshake_waveforms", "gals_demo",
            "design_api", "compiled_batch",
        }
        assert example_files == tested, (
            f"untested examples: {example_files - tested}"
        )

    def test_examples_honour_fast_mode(self, monkeypatch):
        """The CI smoke job runs every script with
        REPRO_EXAMPLES_FAST=1; the flag must actually shrink the
        gate-level workloads."""
        monkeypatch.setenv("REPRO_EXAMPLES_FAST", "1")
        module = load_example("quickstart")
        assert module.FAST is True
        for name in ("mesh_traffic", "power_report", "gals_demo",
                     "design_api", "link_design_space",
                     "handshake_waveforms", "compiled_batch"):
            assert load_example(name).FAST is True
        monkeypatch.setenv("REPRO_EXAMPLES_FAST", "0")
        assert load_example("quickstart").FAST is False
