"""Unit tests for bundled-data channels and handshake process fragments."""

import pytest

from repro.link import (
    Channel,
    ValidChannel,
    sink_process,
    source_process,
)
from repro.sim import Simulator, spawn


@pytest.fixture
def sim():
    return Simulator()


class TestChannel:
    def test_wire_count_includes_handshake(self, sim):
        assert Channel(sim, 8).wire_count == 10
        assert Channel(sim, 32).wire_count == 34

    def test_valid_channel_wire_count(self, sim):
        assert ValidChannel(sim, 8).wire_count == 10

    def test_initial_state_idle(self, sim):
        ch = Channel(sim, 8)
        assert ch.req.value == 0
        assert ch.ack.value == 0
        assert ch.data.value == 0


class TestFourPhaseProtocol:
    def test_single_token(self, sim):
        ch = Channel(sim, 8)
        received = []
        spawn(sim, source_process(ch, [0xA5]))
        spawn(sim, sink_process(ch, received, count=1))
        sim.run(max_events=100_000)
        assert received == [0xA5]
        # return-to-zero completed
        assert ch.req.value == 0
        assert ch.ack.value == 0

    def test_token_stream_order_preserved(self, sim):
        ch = Channel(sim, 8)
        values = [0x11, 0x22, 0x33, 0x44, 0x55]
        received = []
        spawn(sim, source_process(ch, values))
        spawn(sim, sink_process(ch, received, count=len(values)))
        sim.run(max_events=100_000)
        assert received == values

    def test_slow_receiver_backpressures(self, sim):
        ch = Channel(sim, 8)
        received = []
        spawn(sim, source_process(ch, [1, 2, 3]))
        spawn(sim, sink_process(ch, received, count=3, ack_delay_ps=500))
        sim.run(max_events=100_000)
        assert received == [1, 2, 3]
        assert sim.now >= 1500  # each token paid the receiver latency

    def test_setup_time_separates_data_from_req(self, sim):
        ch = Channel(sim, 8)
        events = []
        ch.req.on_change(lambda s: events.append(("req", sim.now, s.value)))
        ch.data[0].on_change(lambda s: events.append(("data", sim.now, s.value)))
        received = []
        spawn(sim, source_process(ch, [0x01], setup_ps=100))
        spawn(sim, sink_process(ch, received, count=1))
        sim.run(max_events=100_000)
        data_time = next(t for kind, t, v in events if kind == "data" and v == 1)
        req_time = next(t for kind, t, v in events if kind == "req" and v == 1)
        assert req_time - data_time >= 100

    def test_source_gap_spaces_tokens(self, sim):
        ch = Channel(sim, 8)
        req_rises = []
        ch.req.on_change(
            lambda s: req_rises.append(sim.now) if s.value else None
        )
        received = []
        spawn(sim, source_process(ch, [1, 2], gap_ps=1000))
        spawn(sim, sink_process(ch, received, count=2))
        sim.run(max_events=100_000)
        assert req_rises[1] - req_rises[0] >= 1000

    def test_sink_without_count_runs_forever(self, sim):
        ch = Channel(sim, 8)
        received = []
        spawn(sim, source_process(ch, [7, 8, 9]))
        spawn(sim, sink_process(ch, received))  # unbounded
        sim.run(until=1_000_000, max_events=100_000)
        assert received == [7, 8, 9]
