"""Differential tests: optimized event kernel vs the frozen seed kernel.

Every workload here is built twice through the simulator construction
factories — once on :mod:`repro.sim` (calendar-queue scheduler, true
cancellation, allocation-free signal hot paths) and once on
:mod:`repro.sim.reference` (the seed's flat heapq and token-based
inertial no-ops) — and the observable behaviour is pinned bit-identical:

* the (time, value) trace of **every net the circuit created**,
* rising/falling transition counters (the power-model inputs),
* process wakeup order (logged by the testbench processes),
* link measurements (accept/delivery timestamps, received values),
* per-group activity-monitor transitions,
* the rendered VCD text.

``events_executed`` is deliberately *not* compared: the seed executed
superseded inertial drives as no-op callbacks, the optimized kernel
cancels them outright (that difference is itself pinned below).
"""

import io
import random

import pytest

import repro.sim as OPT
import repro.sim.reference as REF
from repro.elements.fourphase import WireBufferStage
from repro.elements.gates import Inverter, Mux2, Nand2, Nor2, Xor2
from repro.elements.latches import (
    DLatch,
    FlagSynchronizer,
    LatchBus,
    RegisterBus,
)
from repro.elements.ringosc import RingOscillator
from repro.link import LinkConfig, LinkTestbench, build_i1, build_i2, build_i3
from repro.link.wiring import AsyncWireBufferChain, wire
from repro.sim import Delay, SimulationError, Tracer, WaitValue, write_vcd
from repro.tech import st012
from repro.tech.technology import GateDelays

STACKS = (OPT, REF)


def snapshot(sim):
    """Every created net's name, counters and full (time, value) trace."""
    return [
        (sig.name, sig.rising, sig.falling, tuple(sig.trace or ()))
        for sig in sim.created_signals
    ]


def enable_all_traces(sim):
    for sig in sim.created_signals:
        sig.enable_trace()


def run_on_both(build, *args, **kwargs):
    """Build + run ``build(stack, sim, log)`` on both kernels; return both
    observation dicts (observations must already include everything the
    caller wants compared)."""
    results = []
    for stack in STACKS:
        sim = stack.Simulator()
        log = []
        obs = build(stack, sim, log, *args, **kwargs)
        obs["nets"] = snapshot(sim)
        obs["wakeups"] = tuple(log)
        results.append(obs)
    return results


# ----------------------------------------------------------------------
# raw kernel: scheduling order across the near/far band boundary
# ----------------------------------------------------------------------
class TestSchedulerOrderEquivalence:
    @pytest.mark.parametrize("seed", [1, 7, 2008])
    def test_random_event_order_matches_reference(self, seed):
        """Random schedules spanning several NEAR_WINDOWs, with nested
        reschedules, execute in the identical global order."""

        def run(stack):
            sim = stack.Simulator()
            rng = random.Random(seed)
            order = []

            def make(tag, depth):
                def fire():
                    order.append((sim.now, tag))
                    if depth < 3 and rng.random() < 0.4:
                        # respawn into the same or a later band
                        sim.schedule(
                            rng.choice([0, 0, 1, 40, 7_000, 90_000]),
                            make(f"{tag}.{depth}", depth + 1),
                        )
                return fire

            for i in range(150):
                sim.schedule(rng.randrange(0, 250_000), make(str(i), 0))
            sim.run()
            return order

        assert run(OPT) == run(REF)

    @pytest.mark.parametrize("seed", [3, 11])
    def test_sliced_runs_and_step_match_reference(self, seed):
        """run(until=...) slices and single steps interleave identically."""

        def run(stack):
            sim = stack.Simulator()
            rng = random.Random(seed)
            order = []
            for i in range(80):
                when = rng.randrange(0, 180_000)
                sim.call_at(when, lambda i=i: order.append((sim.now, i)))
            while sim.pending_events:
                if rng.random() < 0.5:
                    sim.run(until=sim.now + rng.randrange(1, 50_000))
                else:
                    sim.step()
            return order, sim.now

        assert run(OPT) == run(REF)

    def test_same_time_fifo_across_band_migration(self):
        """Events at one timestamp scheduled before and after the horizon
        migration keep their FIFO order."""

        def run(stack):
            sim = stack.Simulator()
            order = []
            far = sim.NEAR_WINDOW + 1234 if hasattr(sim, "NEAR_WINDOW") \
                else 66770
            # two events at the same far timestamp, then advance time and
            # add two more at the (now near) same timestamp
            sim.call_at(far, lambda: order.append("a"))
            sim.call_at(far, lambda: order.append("b"))
            sim.run(until=far - 10)
            sim.call_at(far, lambda: order.append("c"))
            sim.call_at(far, lambda: order.append("d"))
            sim.run()
            return order

        assert run(OPT) == run(REF) == ["a", "b", "c", "d"]


# ----------------------------------------------------------------------
# gate networks (combinational + SR-latch feedback)
# ----------------------------------------------------------------------
def build_gate_network(stack, sim, log, seed):
    delays = GateDelays()
    a = sim.signal("a")
    b = sim.signal("b")
    c = sim.signal("c")
    s = sim.signal("s")
    r = sim.signal("r")
    n1 = Nand2(sim, a, b, delays=delays, name="n1")
    x1 = Xor2(sim, n1.output, c, delays=delays, name="x1")
    Inverter(sim, x1.output, delays=delays, name="inv")
    Mux2(sim, a, x1.output, c, delays=delays, name="mux")
    # cross-coupled NOR SR latch: real feedback through the kernel
    q = sim.signal("q")
    qn = sim.signal("qn", init=1)
    Nor2(sim, r, qn, out=q, delays=delays, name="norq")
    Nor2(sim, s, q, out=qn, delays=delays, name="norqn")

    targets = [a, b, c, s, r]

    def stim():
        rng = random.Random(seed)
        for i in range(150):
            tgt = targets[rng.randrange(len(targets))]
            value = rng.getrandbits(1)
            delay = rng.choice([0, 1, 3, 7, 45, 130, 400])
            inertial = rng.random() < 0.5
            tgt.drive(value, delay, inertial=inertial)
            log.append((sim.now, "stim", i))
            yield Delay(rng.choice([5, 17, 33, 90]))

    enable_all_traces(sim)
    stack.spawn(sim, stim(), "stim")
    sim.run(until=60_000)
    return {}


class TestGateEquivalence:
    @pytest.mark.parametrize("seed", [2, 19, 41, 2008])
    def test_random_gate_stimulus(self, seed):
        opt, ref = run_on_both(build_gate_network, seed)
        assert opt == ref


# ----------------------------------------------------------------------
# latches, registers, flag synchronizers (clocked workload)
# ----------------------------------------------------------------------
def build_latch_workload(stack, sim, log, seed):
    delays = GateDelays()
    clock = stack.Clock(sim, 3334, "clk")
    d_bus = sim.bus(8, "d")
    enable = sim.signal("en")
    gate = sim.signal("g")
    wr_en = sim.signal("wr")
    clear = sim.signal("clr")
    d_bit = sim.signal("dbit")
    RegisterBus(sim, d_bus, clock.signal, enable, delays=delays, name="reg")
    LatchBus(sim, d_bus, gate, delays=delays, name="lat")
    DLatch(sim, d_bit, gate, delays=delays, name="dlat")
    FlagSynchronizer(sim, clock.signal, wr_en, clear, delays, "flag")

    def stim():
        rng = random.Random(seed)
        for i in range(80):
            d_bus.set(rng.getrandbits(8))
            d_bit.set(rng.getrandbits(1))
            enable.set(rng.getrandbits(1))
            gate.drive(rng.getrandbits(1), rng.choice([0, 20, 90]))
            if rng.random() < 0.4:
                wr_en.set(rng.getrandbits(1))
            if rng.random() < 0.2:
                clear.pulse(width=60, delay=rng.choice([5, 40]))
            log.append((sim.now, "stim", i))
            yield Delay(rng.choice([400, 1100, 1700, 3334]))

    enable_all_traces(sim)
    stack.spawn(sim, stim(), "stim")
    sim.run(until=120_000)
    return {"cycles": clock.cycles}


class TestLatchEquivalence:
    @pytest.mark.parametrize("seed", [5, 23, 2008])
    def test_clocked_storage(self, seed):
        opt, ref = run_on_both(build_latch_workload, seed)
        assert opt == ref


# ----------------------------------------------------------------------
# four-phase wire-buffer chain (handshake workload)
# ----------------------------------------------------------------------
def build_fourphase_chain(stack, sim, log, n_buffers, n_tokens):
    tech = st012()
    data_in = sim.bus(8, "din")
    req_in = sim.signal("req")
    chain = AsyncWireBufferChain(
        sim, data_in, req_in, n_buffers,
        t_p_ps=tech.handshake.t_p_per_segment,
        delays=tech.gates,
        ctl_delay_ps=tech.handshake.t_wire_buffer_ctl,
        name="chain",
    )
    ack_back = sim.signal("ackback")
    wire(chain.ack_out, ack_back, tech.handshake.t_p_per_segment)
    received = []

    def source():
        for i in range(n_tokens):
            data_in.set((0xA5 + i * 31) & 0xFF)
            yield Delay(tech.gates.mux2)
            req_in.set(1)
            log.append((sim.now, "src.req", i))
            yield WaitValue(ack_back, 1)
            req_in.set(0)
            yield WaitValue(ack_back, 0)

    def sink():
        for i in range(n_tokens):
            yield WaitValue(chain.req_out, 1)
            received.append(chain.data_out.value)
            log.append((sim.now, "snk.got", i))
            yield Delay(40)
            chain.ack_in.set(1)
            yield WaitValue(chain.req_out, 0)
            chain.ack_in.set(0)

    enable_all_traces(sim)
    stack.spawn(sim, source(), "src")
    stack.spawn(sim, sink(), "snk")
    sim.run(max_events=5_000_000)
    return {"received": tuple(received)}


class TestFourPhaseEquivalence:
    @pytest.mark.parametrize("n_buffers,n_tokens", [(2, 6), (4, 10)])
    def test_wire_buffer_chain(self, n_buffers, n_tokens):
        opt, ref = run_on_both(build_fourphase_chain, n_buffers, n_tokens)
        assert opt == ref
        assert len(opt["received"]) == n_tokens


# ----------------------------------------------------------------------
# single elements with tight feedback timing
# ----------------------------------------------------------------------
def build_ringosc(stack, sim, log):
    enable = sim.signal("en")
    osc = RingOscillator(sim, enable, stages=5, name="osc")
    edges = []
    osc.out.on_change(lambda sig: edges.append((sim.now, sig.value)))
    enable.pulse(width=4_000, delay=100)
    enable.pulse(width=2_500, delay=9_000)
    enable_all_traces(sim)
    sim.run(until=20_000)
    return {"edges": tuple(edges)}


def build_fourphase_stage(stack, sim, log):
    tech = st012()
    data = sim.bus(4, "d")
    req = sim.signal("req")
    ack = sim.signal("ack")
    stage = WireBufferStage(sim, data, req, ack, tech.gates,
                            tech.handshake.t_wire_buffer_ctl, "wbuf")

    def stim():
        for i in range(6):
            data.set(i * 3 & 0xF)
            req.set(1)
            yield WaitValue(stage.req_out, 1)
            log.append((sim.now, "ctl.up", i))
            ack.set(1)
            req.set(0)
            yield WaitValue(stage.req_out, 0)
            ack.set(0)
            log.append((sim.now, "ctl.down", i))
            yield Delay(200)

    enable_all_traces(sim)
    stack.spawn(sim, stim(), "stim")
    sim.run(max_events=1_000_000)
    return {}


class TestElementEquivalence:
    def test_ring_oscillator(self):
        opt, ref = run_on_both(build_ringosc)
        assert opt == ref
        assert len(opt["edges"]) > 10

    def test_wire_buffer_stage_handshake(self):
        opt, ref = run_on_both(build_fourphase_stage)
        assert opt == ref


# ----------------------------------------------------------------------
# full serializer link testbenches (the bench workloads)
# ----------------------------------------------------------------------
BUILDERS = {"I1": build_i1, "I2": build_i2, "I3": build_i3}


def build_link_workload(stack, sim, log, kind, config, n_flits,
                        stall_pattern=None, gals=False):
    clock = stack.Clock.from_mhz(sim, 300, "clk")
    rx_clock = None
    kwargs = {}
    if gals:
        rx_clock = stack.Clock.from_mhz(sim, 100, "rxclk", start_delay_ps=777)
        kwargs["rx_clk"] = rx_clock.signal
    link = BUILDERS[kind](sim, clock.signal, config, st012(), **kwargs)
    enable_all_traces(sim)
    bench = LinkTestbench(sim, clock, link, rx_clock=rx_clock)
    flits = [(0xA5A5A5A5, 0x5A5A5A5A)[i % 2] for i in range(n_flits)]
    m = bench.run(flits, stall_pattern=stall_pattern)
    groups = {
        group: link.monitor.transitions(group)
        for group in link.monitor.groups
    }
    vcd = io.StringIO()
    tracer = Tracer()
    tracer.watch(*sim.created_signals)
    write_vcd(tracer, vcd)
    return {
        "accepted": link.flits_accepted(),
        "delivered": link.flits_delivered(),
        "values": tuple(m.received_values),
        "accept_times": tuple(m.accept_times_ps),
        "delivery_times": tuple(m.delivery_times_ps),
        "groups": groups,
        "wire_count": link.wire_count,
        "vcd": vcd.getvalue(),
    }


class TestLinkEquivalence:
    @pytest.mark.parametrize("kind", ["I1", "I2", "I3"])
    def test_link_bit_identical(self, kind):
        opt, ref = run_on_both(
            build_link_workload, kind, LinkConfig(), 12
        )
        assert opt == ref
        assert opt["values"] == tuple(
            (0xA5A5A5A5, 0x5A5A5A5A)[i % 2] for i in range(12)
        )

    @pytest.mark.parametrize("kind", ["I2", "I3"])
    def test_link_with_backpressure(self, kind):
        opt, ref = run_on_both(
            build_link_workload, kind, LinkConfig(), 8,
            stall_pattern=(1, 0, 0),
        )
        assert opt == ref

    def test_i3_sixteen_bit_slices(self):
        opt, ref = run_on_both(
            build_link_workload, "I3", LinkConfig(slice_width=16), 8
        )
        assert opt == ref

    def test_i3_gals_receive_clock(self):
        opt, ref = run_on_both(
            build_link_workload, "I3", LinkConfig(), 8, gals=True
        )
        assert opt == ref


# ----------------------------------------------------------------------
# determinism property (satellite): interleaved transport + inertial
# drives on shared nets, serial re-runs and cross-kernel
# ----------------------------------------------------------------------
class TestForceEquivalence:
    def test_force_release_interleaving_matches_reference(self):
        """Forced windows interact with in-flight drives identically on
        both kernels: a drive maturing inside the window is blocked, a
        drive maturing after release() applies (regression: an earlier
        force() cancelled the pending drive outright)."""

        def run(stack):
            sim = stack.Simulator()
            sig = sim.signal("s")
            sig.enable_trace()
            sig.drive(1, delay=100, inertial=True)   # matures post-release
            sig.drive(0, delay=100, inertial=False)  # transport, same time
            sim.run(until=10)
            sig.force(0)
            sim.run(until=50)
            sig.release()
            sim.run(until=200)
            sig.force(1)
            sig.drive(0, delay=20, inertial=True)    # matures mid-force
            sim.run(until=300)
            sig.release()
            sim.run()
            return sig.value, tuple(sig.trace), sig.rising, sig.falling

        assert run(OPT) == run(REF)


class TestBusDriveEquivalence:
    def test_inertial_bus_drive_reasserts_over_inflight_transport(self):
        """A bus bit already at its target value must still be driven:
        the scheduled inertial apply re-asserts the bit at maturity,
        overriding a transport drive that lands in between (regression:
        an earlier skip-unchanged-bits optimization diverged here)."""

        def run(stack):
            sim = stack.Simulator()
            bus = sim.bus(4, "b")
            # transport drive to bit 0 lands at t=60
            bus[0].drive(1, delay=60, inertial=False)
            # inertial bus drive of 0b0000 matures at t=100: bit 0 is
            # "already 0" at schedule time but must be re-asserted
            bus.drive(0b0000, delay=100, inertial=True)
            enable_all_traces(sim)
            sim.run()
            return bus.value, sim.now, snapshot(sim)

        assert run(OPT) == run(REF)
        value, now, _nets = run(OPT)
        assert value == 0
        assert now == 100

    @pytest.mark.parametrize("seed", [17, 71])
    def test_random_bus_drive_interleaving(self, seed):
        """Randomized Bus.drive / Bus.set / per-bit transport mixes."""

        def run(stack):
            sim = stack.Simulator()
            bus = sim.bus(8, "b")

            def stim():
                rng = random.Random(seed)
                for _ in range(120):
                    roll = rng.random()
                    if roll < 0.45:
                        bus.drive(rng.getrandbits(8),
                                  rng.choice([0, 15, 40, 90]),
                                  inertial=True)
                    elif roll < 0.7:
                        bus[rng.randrange(8)].drive(
                            rng.getrandbits(1),
                            rng.choice([5, 25, 70]),
                            inertial=False,
                        )
                    else:
                        bus.set(rng.getrandbits(8))
                    yield Delay(rng.choice([7, 19, 42]))

            enable_all_traces(sim)
            stack.spawn(sim, stim(), "stim")
            sim.run(until=15_000)
            return snapshot(sim)

        assert run(OPT) == run(REF)


class TestDeterminismProperty:
    @pytest.mark.parametrize("seed", [13, 99, 31337])
    def test_shared_net_drive_interleaving(self, seed):
        """Seeded random schedules of transport + inertial drives on
        shared nets produce identical traces on serial re-runs of the
        optimized kernel and between both kernels."""

        def run(stack):
            sim = stack.Simulator()
            nets = [sim.signal(f"n{i}") for i in range(4)]
            # a listener net: every driver net fans into an XOR chain so
            # drive ordering is observable beyond the driven net itself
            x1 = Xor2(sim, nets[0], nets[1], name="x1")
            Xor2(sim, x1.output, nets[2], name="x2")

            def driver(tag, rng_seed):
                rng = random.Random(rng_seed)
                for _ in range(120):
                    tgt = nets[rng.randrange(len(nets))]
                    tgt.drive(
                        rng.getrandbits(1),
                        rng.choice([0, 2, 5, 11, 60, 150]),
                        inertial=rng.random() < 0.5,
                    )
                    yield Delay(rng.choice([3, 9, 21, 55]))

            enable_all_traces(sim)
            stack.spawn(sim, driver("d1", seed), "d1")
            stack.spawn(sim, driver("d2", seed * 31 + 7), "d2")
            sim.run(until=30_000)
            return snapshot(sim)

        first = run(OPT)
        assert first == run(OPT), "optimized kernel is not deterministic"
        assert first == run(REF), "optimized kernel diverged from seed"


class TestDesignPathForceEquivalence:
    """Satellite: force/release via hierarchical design paths is
    bit-identical across the optimized and reference kernels — a
    path-addressed stuck-at fault injected mid-stream perturbs both
    kernels the same way, scalar and bus targets alike."""

    def _run(self, stack):
        from repro.design import Design, LinkBench

        sim = stack.Simulator()
        design = Design(
            LinkBench(kind="I3", config=LinkConfig(), tech=st012(),
                      freq_mhz=300.0, clock_cls=stack.Clock)
        ).elaborate(sim)
        link = design.top.link
        enable_all_traces(sim)
        link.flit_in.set(0xA5A5A5A5)
        link.valid_in.set(1)
        sim.run(until=40_000)
        # stuck-at-1 backpressure on the receive side, by path
        design.force("i3.a2s.stall", 1)
        sim.run(until=120_000)
        design.release("i3.a2s.stall")
        sim.run(until=200_000)
        # bus-wide stuck-at fault on the transmit flit, by path
        design.force("i3.s2a.flit_in", 0x0F0F0F0F)
        sim.run(until=260_000)
        design.release("i3.s2a.flit_in")
        link.valid_in.set(0)
        sim.run(until=320_000)
        probes = (
            design.find("i3.wdes.out.data").value,
            design.find("i3.s2a.stall").value,
            design.find("i3.a2s.flit_out").value,
        )
        return probes, snapshot(sim)

    def test_path_force_release_bit_identical(self):
        opt = self._run(OPT)
        ref = self._run(REF)
        assert opt == ref
        # the forced window must actually have perturbed the stream
        _probes, nets = opt
        stall_traces = [
            trace for name, _r, _f, trace in nets
            if name == "i3.a2s.stall"
        ]
        assert stall_traces and len(stall_traces[0]) >= 2


# ----------------------------------------------------------------------
# the one pinned *difference*: superseded drives and the event budget
# ----------------------------------------------------------------------
class TestCancellationDivergence:
    def _pulse_storm(self, stack, max_events):
        """300 superseding inertial drives, then one maturing one."""
        sim = stack.Simulator()
        sig = sim.signal("s")
        for i in range(300):
            sig.drive(i & 1, delay=500, inertial=True)
        sig.drive(1, delay=500, inertial=True)
        sim.run(max_events=max_events)
        return sim, sig

    def test_budget_counts_only_live_events(self):
        """Seed regression: superseded inertial drives executed as no-op
        callbacks and burned the max_events budget; with true
        cancellation only the one live drive counts."""
        sim, sig = self._pulse_storm(OPT, max_events=10)
        assert sig.value == 1
        assert sim.events_executed == 1
        assert sim.events_cancelled == 300
        # the same storm spuriously trips the seed kernel's livelock guard
        with pytest.raises(SimulationError, match="budget"):
            self._pulse_storm(REF, max_events=10)
        # ... and the final value still agrees when the budget allows it
        _, ref_sig = self._pulse_storm(REF, max_events=1000)
        assert ref_sig.value == 1
