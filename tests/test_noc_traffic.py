"""Unit tests for traffic generation."""

import pytest

from repro.noc import Topology, TrafficConfig, TrafficGenerator, message_sequence


class TestTrafficConfig:
    def test_defaults(self):
        cfg = TrafficConfig()
        assert cfg.pattern == "uniform"
        assert 0 < cfg.injection_rate <= 1

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            TrafficConfig(injection_rate=1.5)
        with pytest.raises(ValueError):
            TrafficConfig(injection_rate=-0.1)

    def test_packet_length_bound(self):
        with pytest.raises(ValueError):
            TrafficConfig(packet_length=0)


class TestTrafficGenerator:
    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            TrafficGenerator(Topology(4, 4), TrafficConfig(pattern="zigzag"))

    def test_hotspot_needs_coordinate(self):
        with pytest.raises(ValueError):
            TrafficGenerator(Topology(4, 4), TrafficConfig(pattern="hotspot"))

    def test_deterministic_given_seed(self):
        topo = Topology(4, 4)
        runs = []
        for _ in range(2):
            gen = TrafficGenerator(
                topo, TrafficConfig(injection_rate=0.3, seed=77)
            )
            pairs = [
                (p.src, p.dest)
                for c in range(50)
                for p in gen.packets_for_cycle(c)
            ]
            runs.append(pairs)
        assert runs[0] == runs[1]

    def test_different_seeds_differ(self):
        topo = Topology(4, 4)
        gens = [
            TrafficGenerator(topo, TrafficConfig(injection_rate=0.3, seed=s))
            for s in (1, 2)
        ]
        seqs = [
            [(p.src, p.dest) for c in range(50)
             for p in g.packets_for_cycle(c)]
            for g in gens
        ]
        assert seqs[0] != seqs[1]

    def test_injection_rate_respected(self):
        topo = Topology(4, 4)
        cfg = TrafficConfig(injection_rate=0.2, packet_length=4, seed=3)
        gen = TrafficGenerator(topo, cfg)
        cycles = 4000
        flits = sum(
            p.length_flits
            for c in range(cycles)
            for p in gen.packets_for_cycle(c)
        )
        measured = flits / (cycles * topo.n_nodes)
        assert measured == pytest.approx(0.2, rel=0.1)

    def test_uniform_never_self_addressed(self):
        topo = Topology(4, 4)
        gen = TrafficGenerator(topo, TrafficConfig(injection_rate=0.5, seed=5))
        for c in range(100):
            for p in gen.packets_for_cycle(c):
                assert p.src != p.dest

    def test_transpose_pattern(self):
        topo = Topology(4, 4)
        gen = TrafficGenerator(
            topo,
            TrafficConfig(pattern="transpose", injection_rate=0.5, seed=5),
        )
        for c in range(100):
            for p in gen.packets_for_cycle(c):
                assert p.dest == (p.src[1], p.src[0])

    def test_bit_complement_pattern(self):
        topo = Topology(4, 4)
        gen = TrafficGenerator(
            topo,
            TrafficConfig(pattern="bit_complement", injection_rate=0.5,
                          seed=5),
        )
        for c in range(100):
            for p in gen.packets_for_cycle(c):
                assert p.dest == (3 - p.src[0], 3 - p.src[1])

    def test_hotspot_concentrates_traffic(self):
        topo = Topology(4, 4)
        gen = TrafficGenerator(
            topo,
            TrafficConfig(pattern="hotspot", hotspot=(0, 0),
                          hotspot_fraction=0.8, injection_rate=0.5, seed=5),
        )
        dests = [
            p.dest for c in range(300) for p in gen.packets_for_cycle(c)
        ]
        hot = sum(1 for d in dests if d == (0, 0))
        assert hot / len(dests) > 0.5

    def test_neighbor_pattern(self):
        topo = Topology(4, 4)
        gen = TrafficGenerator(
            topo,
            TrafficConfig(pattern="neighbor", injection_rate=0.5, seed=5),
        )
        for c in range(50):
            for p in gen.packets_for_cycle(c):
                assert p.dest == ((p.src[0] + 1) % 4, p.src[1])

    def test_packets_stamped_with_cycle(self):
        topo = Topology(2, 2)
        gen = TrafficGenerator(
            topo, TrafficConfig(injection_rate=1.0, packet_length=1, seed=9)
        )
        for c in (0, 5, 17):
            for p in gen.packets_for_cycle(c):
                assert p.created_cycle == c


class TestMessageSequence:
    def test_explicit_pairs(self):
        topo = Topology(3, 3)
        packets = list(
            message_sequence(topo, [((0, 0), (2, 2)), ((1, 1), (0, 0))])
        )
        assert len(packets) == 2
        assert packets[0].dest == (2, 2)

    def test_out_of_bounds_rejected(self):
        topo = Topology(2, 2)
        with pytest.raises(ValueError):
            list(message_sequence(topo, [((0, 0), (5, 5))]))
