"""Determinism tests: identical runs must be bit-identical.

The integer-picosecond kernel with FIFO delta ordering exists precisely
so that simulations are reproducible; these tests pin that property for
every layer — without it, the calibration in EXPERIMENTS.md would not
be trustworthy.
"""

from repro.link import LinkConfig, build_i2, build_i3, measure_throughput
from repro.link.behavioral import derive_link_params
from repro.noc import (
    Network,
    Topology,
    TrafficConfig,
    TrafficGenerator,
    reset_packet_ids,
)
from repro.sim import Clock, Simulator
from repro.tech import st012


def run_gate_level(builder, n_flits=12):
    sim = Simulator()
    clock = Clock.from_mhz(sim, 300)
    link = builder(sim, clock.signal, LinkConfig())
    m = measure_throughput(sim, clock, link, n_flits=n_flits)
    return (
        tuple(m.delivery_times_ps),
        tuple(m.accept_times_ps),
        sim.events_executed,
    )


class TestGateLevelDeterminism:
    def test_i2_identical_runs(self):
        assert run_gate_level(build_i2) == run_gate_level(build_i2)

    def test_i3_identical_runs(self):
        assert run_gate_level(build_i3) == run_gate_level(build_i3)

    def test_activity_counters_deterministic(self):
        from repro.analysis import measure_link_activity

        a = measure_link_activity("I3", n_flits=8)
        b = measure_link_activity("I3", n_flits=8)
        assert a.transitions_by_group == b.transitions_by_group


class TestNetworkDeterminism:
    def _run(self):
        reset_packet_ids()
        topo = Topology(4, 4)
        net = Network(topo, derive_link_params(st012(), "I3", 300))
        traffic = TrafficGenerator(
            topo, TrafficConfig(injection_rate=0.2, seed=99)
        )
        net.run(600, traffic)
        net.drain()
        return (
            net.stats.flits_ejected,
            tuple(net.stats.packet_latencies),
            tuple(sorted(net.link_utilization().values())),
        )

    def test_identical_network_runs(self):
        assert self._run() == self._run()

    def test_adaptive_routing_deterministic(self):
        def run():
            reset_packet_ids()
            topo = Topology(4, 4)
            net = Network(topo, derive_link_params(st012(), "I1", 300),
                          routing="west_first")
            traffic = TrafficGenerator(
                topo, TrafficConfig(injection_rate=0.25, seed=7)
            )
            net.run(500, traffic)
            net.drain()
            return tuple(net.stats.packet_latencies)

        assert run() == run()


class TestBitSerialEdgeCase:
    def test_gate_level_single_wire_serialization(self):
        """The fully bit-serial configuration (32→1, the [9] reference's
        single-wire link) works end to end at gate level."""
        from repro.link import Channel, Deserializer, Serializer
        from repro.link.channel import sink_process, source_process
        from repro.link.wiring import wire, wire_bus
        from repro.sim import spawn

        sim = Simulator()
        in_ch = Channel(sim, 32, "in")
        ser = Serializer(sim, in_ch, slice_width=1)
        des = Deserializer(sim, Channel(sim, 1, "mid"), 32)
        wire_bus(ser.out_ch.data, des.in_ch.data, 0)
        wire(ser.out_ch.req, des.in_ch.req, 0)
        wire(des.in_ch.ack, ser.out_ch.ack, 0)
        received = []
        spawn(sim, source_process(in_ch, [0xDEADBEEF]))
        spawn(sim, sink_process(des.out_ch, received, count=1))
        sim.run(max_events=10_000_000)
        assert received == [0xDEADBEEF]
        assert ser.sequencer.n == 32  # one David cell per bit
