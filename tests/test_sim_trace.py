"""Unit tests for tracing and activity monitoring."""

import pytest

from repro.sim import ActivityMonitor, Bus, Signal, Simulator, Tracer


@pytest.fixture
def sim():
    return Simulator()


class TestTracer:
    def test_watch_signal_records_history(self, sim):
        sig = Signal(sim, "s")
        tracer = Tracer()
        tracer.watch(sig)
        sig.set(1)
        sig.set(0)
        history = tracer.history(sig)
        assert [v for _, v in history] == [0, 1, 0]

    def test_watch_bus_watches_all_bits(self, sim):
        bus = Bus(sim, 4, "b")
        tracer = Tracer()
        tracer.watch(bus)
        assert len(tracer.signals) == 4

    def test_history_requires_watch(self, sim):
        sig = Signal(sim, "s")
        tracer = Tracer()
        with pytest.raises(ValueError):
            tracer.history(sig)

    def test_watch_rejects_non_signal(self, sim):
        tracer = Tracer()
        with pytest.raises(TypeError):
            tracer.watch(42)

    def test_render_produces_waveform(self, sim):
        sig = Signal(sim, "req")
        tracer = Tracer()
        tracer.watch(sig)
        sig.drive(1, delay=200, inertial=False)
        sig.drive(0, delay=400, inertial=False)
        sim.run()
        art = tracer.render(until_ps=600, step_ps=100)
        assert "req" in art
        assert "▔" in art and "▁" in art


class TestActivityMonitor:
    def test_groups_and_transitions(self, sim):
        mon = ActivityMonitor()
        a = Signal(sim, "a")
        b = Signal(sim, "b")
        mon.add("g1", a)
        mon.add("g2", b)
        mon.snapshot()
        a.set(1)
        a.set(0)
        b.set(1)
        assert mon.transitions("g1") == 2
        assert mon.transitions("g2") == 1
        assert mon.transitions() == 3

    def test_snapshot_resets_baseline(self, sim):
        mon = ActivityMonitor()
        sig = Signal(sim, "s")
        mon.add("g", sig)
        sig.set(1)
        mon.snapshot()
        assert mon.transitions("g") == 0
        sig.set(0)
        assert mon.transitions("g") == 1

    def test_add_bus(self, sim):
        mon = ActivityMonitor()
        bus = Bus(sim, 8, "b")
        mon.add("data", bus)
        mon.snapshot()
        bus.set(0xFF)
        assert mon.transitions("data") == 8

    def test_add_iterable_of_signals(self, sim):
        mon = ActivityMonitor()
        sigs = [Signal(sim, f"s{i}") for i in range(3)]
        mon.add("g", sigs)
        mon.snapshot()
        for s in sigs:
            s.set(1)
        assert mon.transitions("g") == 3

    def test_add_rejects_garbage(self, sim):
        mon = ActivityMonitor()
        with pytest.raises(TypeError):
            mon.add("g", 3.14)

    def test_switched_energy_uses_cap_weight(self, sim):
        mon = ActivityMonitor()
        light = Signal(sim, "light", cap_ff=1.0)
        heavy = Signal(sim, "heavy", cap_ff=5.0)
        mon.add("g", light, heavy)
        mon.snapshot()
        light.set(1)
        heavy.set(1)
        assert mon.switched_energy_fj("g") == pytest.approx(6.0)

    def test_switched_energy_scales(self, sim):
        mon = ActivityMonitor()
        sig = Signal(sim, "s")
        mon.add("g", sig)
        mon.snapshot()
        sig.set(1)
        assert mon.switched_energy_fj(
            "g", energy_per_transition_fj=2.5
        ) == pytest.approx(2.5)

    def test_signals_in_group(self, sim):
        mon = ActivityMonitor()
        sig = Signal(sim, "s")
        mon.add("g", sig)
        assert mon.signals_in("g") == [sig]
        assert mon.signals_in("missing") == []

    def test_groups_listing(self, sim):
        mon = ActivityMonitor()
        mon.add("alpha", Signal(sim, "a"))
        mon.add("beta", Signal(sim, "b"))
        assert mon.groups == ["alpha", "beta"]
