"""Unit tests for network statistics."""

import math

from repro.noc import Flit, FlitKind, NetworkStats


def flit(pid=1, seq=0, kind=FlitKind.HEAD_TAIL):
    return Flit(packet_id=pid, kind=kind, src=(0, 0), dest=(1, 1), seq=seq)


class TestNetworkStats:
    def test_initial_state(self):
        stats = NetworkStats()
        assert stats.flits_injected == 0
        assert math.isnan(stats.mean_packet_latency)

    def test_single_flit_packet_latency(self):
        stats = NetworkStats()
        f = flit()
        stats.record_injection(f, cycle=10, packet_length=1, created_cycle=5)
        stats.record_ejection(f, cycle=30)
        assert stats.packets_ejected == 1
        assert stats.packet_latencies == [25]  # creation → ejection

    def test_multi_flit_packet_completes_on_last_flit(self):
        stats = NetworkStats()
        flits = [flit(pid=2, seq=i) for i in range(3)]
        for f in flits:
            stats.record_injection(f, cycle=0, packet_length=3,
                                   created_cycle=0)
        stats.record_ejection(flits[0], cycle=10)
        stats.record_ejection(flits[1], cycle=11)
        assert stats.packets_ejected == 0
        stats.record_ejection(flits[2], cycle=12)
        assert stats.packets_ejected == 1
        assert stats.packet_latencies == [12]

    def test_bookkeeping_freed_after_packet(self):
        stats = NetworkStats()
        f = flit(pid=3)
        stats.record_injection(f, cycle=0, packet_length=1, created_cycle=0)
        stats.record_ejection(f, cycle=5)
        assert stats._packet_progress == {}
        assert stats._packet_lengths == {}

    def test_mean_and_p99(self):
        stats = NetworkStats()
        stats.packet_latencies = list(range(1, 101))
        assert stats.mean_packet_latency == 50.5
        assert stats.p99_packet_latency == 100.0

    def test_throughput(self):
        stats = NetworkStats()
        stats.cycles = 100
        stats.flits_ejected = 160
        assert stats.throughput_flits_per_node_cycle(16) == 0.1

    def test_throughput_zero_cycles(self):
        assert NetworkStats().throughput_flits_per_node_cycle(16) == 0.0

    def test_in_flight(self):
        stats = NetworkStats()
        f1, f2 = flit(pid=4), flit(pid=5)
        stats.record_injection(f1, 0, 1, 0)
        stats.record_injection(f2, 0, 1, 0)
        stats.record_ejection(f1, 3)
        assert stats.in_flight_flits == 1

    def test_summary_keys(self):
        summary = NetworkStats().summary()
        assert {"cycles", "flits_injected", "flits_ejected",
                "packets_ejected", "mean_packet_latency",
                "p99_packet_latency"} == set(summary)

    def test_flit_timestamps_written(self):
        stats = NetworkStats()
        f = flit(pid=6)
        stats.record_injection(f, cycle=7, packet_length=1, created_cycle=7)
        stats.record_ejection(f, cycle=19)
        assert f.injected_cycle == 7
        assert f.ejected_cycle == 19
