"""Property tests: compiled lane 0 vs the event kernels, bit for bit.

The contract (satellite of the compiled-backend PR): for any seeded
random stimulus on the I1/I2/I3 bench circuits, lane 0 of the compiled
evaluation must match an event-kernel simulation of the same circuit —
settled net values after every phase AND the aggregate sampled
transition counters — on *both* the optimized kernel (``repro.sim``)
and the frozen seed kernel (``repro.sim.reference``).

The oracle (:class:`repro.compiled.StepOracle`) mirrors the compiled
backend's phase semantics on an event kernel: apply pokes, run the
event queue dry, sample every net.  Transition counters are compared at
phase granularity on both sides (within-phase glitches are invisible to
both by construction).
"""

import pytest

import repro.sim as optimized_stack
import repro.sim.reference as reference_stack
from repro.compiled import (
    KINDS,
    StepOracle,
    build_bench,
    compile_component,
    lane_phases,
    stimulus_phases,
)

#: (vectors, width) for the two stimulus scales the CLI exercises
FAST_SCALE = (3, 8)
FULL_SCALE = (8, 32)


def _compiled_run(kind, seed, vectors, width):
    sim = optimized_stack.Simulator()
    bench = build_bench(sim, kind, width)
    circuit = compile_component(bench.root)
    phases = stimulus_phases(kind, [seed], vectors, width)
    return circuit, phases


def _oracle(stack, kind, width):
    sim = stack.Simulator()
    bench = build_bench(sim, kind, width)
    return StepOracle(sim, bench.root)


def _assert_lane0_matches(stack, kind, seed, vectors, width):
    circuit, phases = _compiled_run(kind, seed, vectors, width)
    oracle = _oracle(stack, kind, width)
    for n, phase in enumerate(phases):
        circuit.step(phase)
        oracle.step(lane_phases([phase], 0)[0])
        assert circuit.lane_values(0) == oracle.values(), (
            f"{kind} seed {seed}: settled values diverged at "
            f"phase {n}"
        )
    counts = circuit.counts()
    ocounts = oracle.counts()
    assert counts["rising0"] == ocounts["rising"]
    assert counts["falling0"] == ocounts["falling"]
    # a circuit that never toggled would make this test vacuous
    assert ocounts["rising"] > 0


class TestLane0AgainstOptimizedKernel:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("seed", (1, 7, 2008))
    def test_fast_scale(self, kind, seed):
        vectors, width = FAST_SCALE
        _assert_lane0_matches(optimized_stack, kind, seed, vectors,
                              width)

    @pytest.mark.parametrize("kind", KINDS)
    def test_full_scale(self, kind):
        vectors, width = FULL_SCALE
        _assert_lane0_matches(optimized_stack, kind, 42, vectors, width)


class TestLane0AgainstSeedKernel:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("seed", (3, 11))
    def test_fast_scale(self, kind, seed):
        vectors, width = FAST_SCALE
        _assert_lane0_matches(reference_stack, kind, seed, vectors,
                              width)

    def test_full_scale_i3(self):
        vectors, width = FULL_SCALE
        _assert_lane0_matches(reference_stack, "i3", 42, vectors, width)


class TestAllLanesIndependent:
    @pytest.mark.parametrize("kind", KINDS)
    def test_each_lane_matches_its_own_solo_oracle(self, kind):
        """Lanes carry different seeds; every lane must equal a
        single-lane event simulation of its own stimulus."""
        vectors, width = FAST_SCALE
        seeds = [5, 6, 7, 8]
        sim = optimized_stack.Simulator()
        bench = build_bench(sim, kind, width)
        circuit = compile_component(bench.root)
        phases = stimulus_phases(kind, seeds, vectors, width)
        for phase in phases:
            circuit.step(phase)
        for lane, seed in enumerate(seeds):
            oracle = _oracle(optimized_stack, kind, width)
            for phase in lane_phases(phases, lane):
                oracle.step(phase)
            assert circuit.lane_values(lane) == oracle.values(), (
                f"{kind}: lane {lane} (seed {seed}) diverged"
            )

    def test_forced_fault_lane_matches_forced_oracle(self):
        vectors, width = FAST_SCALE
        sim = optimized_stack.Simulator()
        bench = build_bench(sim, "i3", width)
        site = bench.fault_sites[0]
        circuit = compile_component(bench.root, forceable=[site])
        circuit.force(site, 0, lanes=1 << 3)
        phases = stimulus_phases("i3", [9, 9, 9, 9], vectors, width)
        for phase in phases:
            circuit.step(phase)

        ref = optimized_stack.Simulator()
        obench = build_bench(ref, "i3", width)
        oracle = StepOracle(ref, obench.root)
        oracle.force(site, 0)
        for phase in lane_phases(phases, 3):
            oracle.step(phase)
        assert circuit.lane_values(3) == oracle.values()
        # the un-forced sibling lane still matches a clean oracle
        clean = _oracle(optimized_stack, "i3", width)
        for phase in lane_phases(phases, 0):
            clean.step(phase)
        assert circuit.lane_values(0) == clean.values()


class TestRingOscillatorTicks:
    @pytest.mark.parametrize("toggles", (7, 101))
    def test_tick_matches_event_run(self, toggles):
        from repro.elements.ringosc import RingOscillator

        sim = optimized_stack.Simulator()
        enable = sim.signal("en")
        osc = RingOscillator(sim, enable, stages=5)
        circuit = compile_component(osc)
        circuit.step({enable: (1 << 64) - 1})
        circuit.tick(toggles)

        ref = optimized_stack.Simulator()
        ren = ref.signal("en")
        rosc = RingOscillator(ref, ren, stages=5)
        ren.set(1)
        # run() is exclusive of ``until``: N*half_period + 1 executes
        # exactly N toggles
        ref.run(until=toggles * rosc.half_period + 1)
        assert circuit.lane(osc.out, 0) == rosc.out.value
        counts = circuit.counts()
        assert counts["rising0"] == ren.rising + rosc.out.rising
        assert counts["falling0"] == ren.falling + rosc.out.falling
