"""System-level integration: meshes wired with each link implementation."""

import pytest

from repro.link.behavioral import derive_link_params
from repro.noc import (
    Network,
    Packet,
    Topology,
    TrafficConfig,
    TrafficGenerator,
    latency_vs_load,
    reset_packet_ids,
)
from repro.tech import st012


@pytest.fixture(autouse=True)
def fresh_ids():
    reset_packet_ids()


class TestMeshParity:
    """The paper's system-level implication: a mesh on 8-wire serialized
    async links performs like one on 32-wire synchronous links."""

    def _run(self, kind, rate=0.08, mhz=300, cycles=1500, seed=42):
        topo = Topology(4, 4)
        params = derive_link_params(st012(), kind, mhz)
        net = Network(topo, params)
        traffic = TrafficGenerator(
            topo,
            TrafficConfig(injection_rate=rate, seed=seed),
        )
        net.run(cycles, traffic)
        net.drain()
        return net

    def test_i3_latency_within_25pct_of_i1(self):
        i1 = self._run("I1")
        i3 = self._run("I3")
        assert i3.stats.mean_packet_latency == pytest.approx(
            i1.stats.mean_packet_latency, rel=0.25
        )

    def test_i3_uses_a_third_of_the_wires(self):
        i1 = self._run("I1", cycles=10)
        i3 = self._run("I3", cycles=10)
        assert i3.total_wires / i1.total_wires == pytest.approx(
            10 / 32, rel=0.01
        )

    def test_all_kinds_lossless_under_moderate_load(self):
        for kind in ("I1", "I2", "I3"):
            net = self._run(kind, rate=0.15)
            assert net.stats.flits_ejected == net.stats.flits_injected, kind

    def test_i2_saturates_earlier_than_i3_at_300mhz(self):
        """I2's per-link rate cap (0.95 flit/cycle) bites under load."""
        i2 = self._run("I2", rate=0.45, cycles=1200)
        i3 = self._run("I3", rate=0.45, cycles=1200)
        assert (i2.stats.mean_packet_latency
                >= i3.stats.mean_packet_latency * 0.95)


class TestTrafficPatternsAcrossLinks:
    @pytest.mark.parametrize("pattern", ["transpose", "bit_complement",
                                         "neighbor"])
    def test_pattern_delivery_on_i3(self, pattern):
        topo = Topology(4, 4)
        params = derive_link_params(st012(), "I3", 300)
        net = Network(topo, params)
        traffic = TrafficGenerator(
            topo,
            TrafficConfig(pattern=pattern, injection_rate=0.1, seed=7),
        )
        net.run(1000, traffic)
        net.drain()
        assert net.stats.flits_injected > 0
        assert net.stats.flits_ejected == net.stats.flits_injected

    def test_hotspot_congests_but_delivers(self):
        topo = Topology(4, 4)
        params = derive_link_params(st012(), "I3", 300)
        net = Network(topo, params)
        traffic = TrafficGenerator(
            topo,
            TrafficConfig(pattern="hotspot", hotspot=(1, 1),
                          hotspot_fraction=0.7, injection_rate=0.1, seed=7),
        )
        net.run(800, traffic)
        net.drain(max_cycles=200_000)
        assert net.stats.flits_ejected == net.stats.flits_injected


class TestLoadSweep:
    def test_saturation_ordering(self):
        """At low load all links give similar latency; the sweep output
        is monotone enough to spot saturation."""
        topo = Topology(4, 4)
        params = derive_link_params(st012(), "I1", 300)
        sweep = latency_vs_load(
            topo, params,
            injection_rates=[0.05, 0.15, 0.30],
            warmup_cycles=200, measure_cycles=900,
        )
        latencies = [row["mean_latency"] for row in sweep]
        assert latencies == sorted(latencies)

    def test_sweep_rows_complete(self):
        topo = Topology(3, 3)
        params = derive_link_params(st012(), "I3", 300)
        sweep = latency_vs_load(
            topo, params, injection_rates=[0.05],
            warmup_cycles=100, measure_cycles=400,
        )
        assert set(sweep[0]) == {
            "offered_rate", "throughput", "mean_latency", "p99_latency",
            "packets",
        }


class TestLargeMesh:
    def test_8x8_mesh_runs(self):
        topo = Topology(8, 8)
        params = derive_link_params(st012(), "I3", 300)
        net = Network(topo, params)
        traffic = TrafficGenerator(
            topo, TrafficConfig(injection_rate=0.05, seed=3)
        )
        net.run(600, traffic)
        net.drain(max_cycles=200_000)
        assert net.stats.packets_ejected > 50
        assert net.stats.flits_ejected == net.stats.flits_injected

    def test_wire_savings_scale_with_mesh_size(self):
        for side in (2, 4, 8):
            topo = Topology(side, side)
            i1 = Network(topo, derive_link_params(st012(), "I1", 300))
            i3 = Network(topo, derive_link_params(st012(), "I3", 300))
            saved = i1.total_wires - i3.total_wires
            assert saved == 22 * topo.n_directed_links


class TestCornerMeshes:
    def test_1xn_chain(self):
        topo = Topology(4, 1)
        params = derive_link_params(st012(), "I3", 300)
        net = Network(topo, params)
        net.offer_packet(Packet(src=(0, 0), dest=(3, 0), length_flits=4))
        net.drain()
        assert net.stats.packets_ejected == 1

    def test_2x2_all_pairs(self):
        topo = Topology(2, 2)
        params = derive_link_params(st012(), "I2", 300)
        net = Network(topo, params)
        for src in topo.nodes():
            for dst in topo.nodes():
                if src != dst:
                    net.offer_packet(Packet(src=src, dest=dst,
                                            length_flits=2))
        net.drain()
        assert net.stats.packets_ejected == 12
