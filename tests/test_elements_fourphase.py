"""Unit tests for the four-phase latch controller / wire buffer stage."""

import pytest

from repro.elements import SimpleLatchController, WireBufferStage
from repro.sim import Bus, Signal, Simulator


@pytest.fixture
def sim():
    return Simulator()


def settle(sim):
    sim.run(max_events=100_000)


class TestSimpleLatchController:
    def test_idle_state(self, sim):
        req, ack = Signal(sim, "req"), Signal(sim, "ack")
        lc = SimpleLatchController(sim, req, ack)
        settle(sim)
        assert lc.ctl.value == 0
        assert lc.latch_enable.value == 1  # transparent while idle

    def test_req_raises_ctl(self, sim):
        req, ack = Signal(sim, "req"), Signal(sim, "ack")
        lc = SimpleLatchController(sim, req, ack)
        req.set(1)
        settle(sim)
        assert lc.ctl.value == 1
        assert lc.latch_enable.value == 0  # latch closed while busy

    def test_full_four_phase_cycle(self, sim):
        req, ack = Signal(sim, "req"), Signal(sim, "ack")
        lc = SimpleLatchController(sim, req, ack)
        # sender raises request → controller acks upstream & requests down
        req.set(1)
        settle(sim)
        assert lc.ack_out.value == 1
        assert lc.req_out.value == 1
        # downstream acknowledges → controller completes return-to-zero
        req.set(0)
        ack.set(1)
        settle(sim)
        assert lc.ctl.value == 0
        ack.set(0)
        settle(sim)
        assert lc.ctl.value == 0
        assert lc.latch_enable.value == 1

    def test_not_decoupled(self, sim):
        """ctl cannot rise again while the downstream ack is still high
        — the undecoupled property the paper calls out."""
        req, ack = Signal(sim, "req"), Signal(sim, "ack")
        lc = SimpleLatchController(sim, req, ack)
        req.set(1)
        settle(sim)
        req.set(0)
        ack.set(1)
        settle(sim)
        assert lc.ctl.value == 0
        # second request while ack still high: blocked
        req.set(1)
        settle(sim)
        assert lc.ctl.value == 0
        ack.set(0)
        settle(sim)
        assert lc.ctl.value == 1  # now it can proceed


class TestWireBufferStage:
    def test_latches_data_on_request(self, sim):
        data = Bus(sim, 8, "d")
        req, ack = Signal(sim, "req"), Signal(sim, "ack")
        stage = WireBufferStage(sim, data, req, ack)
        data.set(0x5A)
        settle(sim)
        assert stage.data_out.value == 0x5A  # transparent while idle
        req.set(1)
        settle(sim)
        # latch closed: upstream data change no longer propagates
        data.set(0xFF)
        settle(sim)
        assert stage.data_out.value == 0x5A

    def test_data_held_until_downstream_ack(self, sim):
        """The latch stays closed from REQ↑ until the downstream ack
        arrives (at which point the next stage has captured the slice),
        then reopens for the following transfer."""
        data = Bus(sim, 8, "d")
        req, ack = Signal(sim, "req"), Signal(sim, "ack")
        stage = WireBufferStage(sim, data, req, ack)
        data.set(0xC3)
        settle(sim)
        req.set(1)
        settle(sim)
        req.set(0)
        data.set(0x00)
        settle(sim)
        # downstream has not acknowledged yet: slice still held
        assert stage.data_out.value == 0xC3
        ack.set(1)
        settle(sim)
        # downstream captured the slice; the latch is transparent again
        assert stage.data_out.value == 0x00
        ack.set(0)
        settle(sim)
        assert stage.data_out.value == 0x00

    def test_ctl_delay_override_slows_handshake(self, sim):
        data = Bus(sim, 8, "d")
        req, ack = Signal(sim, "req"), Signal(sim, "ack")
        stage = WireBufferStage(sim, data, req, ack, ctl_delay_ps=212)
        times = []
        stage.req_out.on_change(lambda s: times.append(sim.now))
        req.set(1)
        settle(sim)
        assert times == [212]
