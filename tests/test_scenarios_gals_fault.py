"""Tests for the GALS mixed-clock and fault-injection scenario wrappers."""

import pytest

from repro.link.behavioral import derive_link_params
from repro.noc import Topology, run_mesh_point
from repro.runner import registry
from repro.tech import st012


@pytest.fixture(autouse=True)
def loaded_registry():
    registry.load_builtin()


class TestRegistration:
    def test_both_registered_with_tags(self):
        gals = registry.get("gals-mesh")
        fault = registry.get("fault-injection")
        assert {"noc", "gals", "extension"} <= gals.tags
        assert {"noc", "fault", "extension"} <= fault.tags

    def test_both_declare_sweep_axes(self):
        for sid in ("gals-mesh", "fault-injection"):
            sc = registry.get(sid)
            swept = [p.name for p in sc.params if p.sweep]
            assert swept, f"{sid} declares no sweep axis"


class TestGalsMesh:
    def test_fast_run_passes_checks(self):
        result = registry.get("gals-mesh").run(fast=True)
        assert result.failures() == []
        # the 4x4 default splits into two domains with a seam of links
        assert int(result.rows[0][4]) > 0  # cross-domain links

    def test_equal_clocks_degenerate_to_uniform_mesh(self):
        """With both domains at the same frequency the GALS mesh is just
        a uniform mesh — the scenario must agree with run_mesh_point."""
        mhz, cycles = 300.0, 200
        result = registry.get("gals-mesh").run(
            overrides={"fast_mhz": mhz, "slow_mhz": mhz,
                       "cycles": cycles},
        )
        topology = Topology(4, 4)
        params = derive_link_params(st012(), "I3", mhz)
        point = run_mesh_point(
            topology, params, injection_rate=0.15, cycles=cycles
        )
        row = result.rows[0]
        assert row[6] == f"{point['throughput']:.4f}"
        assert row[7] == f"{point['mean_latency']:.1f}"

    def test_slow_domain_raises_latency(self):
        fast = registry.get("gals-mesh").run(
            overrides={"slow_mhz": 400.0, "cycles": 300},
        )
        mixed = registry.get("gals-mesh").run(
            overrides={"slow_mhz": 100.0, "cycles": 300},
        )
        lat = lambda r: float(r.rows[0][7])  # noqa: E731
        assert lat(mixed) > lat(fast)


class TestFaultInjection:
    def test_fast_run_passes_checks(self):
        result = registry.get("fault-injection").run(fast=True)
        assert result.failures() == []
        healthy, damaged = result.rows
        assert healthy[3] == 0
        assert damaged[3] == 3

    def test_zero_faults_matches_healthy_mesh(self):
        result = registry.get("fault-injection").run(
            overrides={"n_faults": 0, "cycles": 200},
        )
        healthy, damaged = result.rows
        # identical traffic over an identical mesh: rows must agree on
        # every measured column
        assert healthy[4:] == damaged[4:]

    def test_fault_sites_are_seed_deterministic(self):
        from repro.experiments.fault_injection import pick_faulty_links

        topology = Topology(4, 4)
        a = pick_faulty_links(topology, 5, fault_seed=13)
        b = pick_faulty_links(topology, 5, fault_seed=13)
        c = pick_faulty_links(topology, 5, fault_seed=14)
        assert a == b
        assert len(a) == 5
        assert a != c

    def test_degraded_params_are_slower_and_later(self):
        from repro.experiments.fault_injection import degraded_params

        base = derive_link_params(st012(), "I3", 300)
        slow = degraded_params(base, rate_factor=0.5, latency_penalty=4)
        assert slow.latency_cycles == base.latency_cycles + 4
        assert slow.rate_flits_per_cycle \
            == pytest.approx(base.rate_flits_per_cycle * 0.5)
        assert slow.capacity_flits == base.capacity_flits
        assert slow.wire_count == base.wire_count

    def test_bad_rate_factor_rejected(self):
        with pytest.raises(ValueError, match="rate_factor"):
            registry.get("fault-injection").run(
                overrides={"rate_factor": 0.0},
            )

    def test_damage_costs_latency_under_xy_routing(self):
        """Deterministic XY routing cannot steer around the slow links,
        so enough damage must show up as added latency."""
        result = registry.get("fault-injection").run(
            overrides={"routing": "xy", "n_faults": 8,
                       "rate_factor": 0.25, "latency_penalty": 8,
                       "cycles": 300},
        )
        assert result.failures() == []
        healthy, damaged = result.rows
        assert float(damaged[6]) > float(healthy[6])  # mean latency
