"""Tests for the chaos engineering layer.

Covers the seeded fault schedule grammar and its determinism, the
deterministic retry policy, fault injection through
:class:`ChaosTransport`, the integrity checksums on journal lines /
store objects / published results, the fencing and quarantine paths in
the worker, ``repro fsck``'s corruption-class matrix, and — the point
of it all — a whole coordinator+worker run under a seeded fault
schedule finishing byte-identical to a serial run, twice.
"""

import json
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.chaos import ChaosSpecError, RetryPolicy, parse_spec, policy_from_env
from repro.chaos.transport import ChaosTransport
from repro.fabric import (
    FabricError,
    FileTransport,
    LeaseRecord,
    plan_fabric,
    run_fabric_sweep,
    run_worker,
)
from repro.fabric.coordinator import _worker_env
from repro.fabric.transport import item_id
from repro.fabric.worker import _LeaseRenewer
from repro.obs import metrics
from repro.runner import engine, registry
from repro.store import codec
from repro.store import journal as journal_mod
from repro.store.fsck import QUARANTINE_DIRNAME, fsck_tree
from repro.store.journal import Journal
from repro.store.store import RunStore, request_key


@pytest.fixture(autouse=True)
def _builtin():
    registry.load_builtin()


def _grid(n):
    return [
        engine.RunRequest.create("sweep-noop", {"point": i})
        for i in range(n)
    ]


def _canonical(outcomes):
    return [
        json.dumps(
            codec.strip_volatile(codec.outcome_to_record(o)),
            sort_keys=True,
        )
        for o in outcomes
    ]


# ----------------------------------------------------------------------
class TestChaosSpec:
    def test_parse_full_grammar(self):
        policy = parse_spec(
            "7:worker.item=die#3,transport.claim=race@0.5,"
            "transport.publish=stall:0.25"
        )
        assert policy.seed == 7
        die, race, stall = policy.rules
        assert (die.seam, die.fault, die.nth) == ("worker.item", "die", 3)
        assert (race.fault, race.prob) == ("race", 0.5)
        assert (stall.fault, stall.arg) == ("stall", 0.25)

    @pytest.mark.parametrize("bad", [
        "no-seed-directive",
        "x:worker.item=die",          # bad seed
        "1:",                          # no directives
        "1:bogus.seam=io",             # unknown seam
        "1:worker.item=io",            # fault not allowed at seam
        "1:transport.claim=race@1.5",  # probability out of range
        "1:worker.item=die#0",         # nth must be >= 1
        "1:worker.item=die@x",         # unparseable probability
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ChaosSpecError):
            parse_spec(bad)

    def test_nth_fires_exactly_once(self):
        policy = parse_spec("3:worker.item=die#2")
        fired = [policy.fire("worker.item") for _ in range(6)]
        assert [r is not None for r in fired] == [
            False, True, False, False, False, False
        ]
        assert policy.injected == [("worker.item", "die", 2)]

    def test_probabilistic_schedule_is_seed_deterministic(self):
        draws = []
        for _ in range(2):
            policy = parse_spec("11:transport.claim=race@0.3")
            draws.append([
                policy.fire("transport.claim") is not None
                for _ in range(50)
            ])
        assert draws[0] == draws[1]
        assert any(draws[0]) and not all(draws[0])
        # a different seed gives a different schedule
        other = parse_spec("12:transport.claim=race@0.3")
        assert draws[0] != [
            other.fire("transport.claim") is not None for _ in range(50)
        ]

    def test_seams_draw_from_independent_streams(self):
        # consulting one seam must not perturb another's schedule
        lone = parse_spec("5:transport.claim=race@0.3")
        mixed = parse_spec(
            "5:transport.claim=race@0.3,transport.renew=fail@0.3"
        )
        lone_draws = []
        mixed_draws = []
        for _ in range(40):
            lone_draws.append(lone.fire("transport.claim") is not None)
            mixed.fire("transport.renew")  # interleaved traffic
            mixed_draws.append(
                mixed.fire("transport.claim") is not None
            )
        assert lone_draws == mixed_draws

    def test_policy_from_env(self):
        assert policy_from_env({}) is None
        policy = policy_from_env({"REPRO_CHAOS": "9:worker.item=hang"})
        assert policy is not None and policy.seed == 9
        with pytest.raises(ChaosSpecError):
            policy_from_env({"REPRO_CHAOS": "junk"})

    def test_describe_round_trips(self):
        spec = "7:worker.item=die#3,transport.claim=race@0.2"
        assert parse_spec(parse_spec(spec).describe()).describe() \
            == parse_spec(spec).describe()


# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_delays_are_deterministic_and_bounded(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1, max_delay=0.8,
                             jitter=0.25, seed=1)
        delays = [policy.delay(i, key="k") for i in range(1, 6)]
        assert delays == [policy.delay(i, key="k") for i in range(1, 6)]
        for attempt, delay in enumerate(delays, start=1):
            nominal = min(0.8, 0.1 * 2 ** (attempt - 1))
            assert nominal * 0.75 <= delay <= nominal * 1.25
        # different call sites get different jitter, same bounds
        assert delays != [policy.delay(i, key="other") for i in range(1, 6)]

    def test_transient_failure_retried_then_succeeds(self):
        calls = []
        slept = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(attempts=4, base_delay=0.01)
        assert policy.call(flaky, sleep=slept.append) == "ok"
        assert len(calls) == 3
        assert len(slept) == 2

    def test_exhaustion_reraises_last_error(self):
        policy = RetryPolicy(attempts=3, base_delay=0.001)

        def always():
            raise OSError("still broken")

        with pytest.raises(OSError, match="still broken"):
            policy.call(always, sleep=lambda _s: None)

    def test_non_retryable_exception_passes_through(self):
        policy = RetryPolicy(attempts=3)

        def boom():
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            policy.call(boom, sleep=lambda _s: None)


# ----------------------------------------------------------------------
class TestChaosTransport:
    def test_injected_io_error_and_passthrough(self, tmp_path):
        inner = FileTransport(tmp_path)
        bus = ChaosTransport(inner, parse_spec("1:transport.claim=io#1"))
        with pytest.raises(OSError, match="chaos"):
            bus.try_claim(item_id(0), "wk", 5.0)
        lease = bus.try_claim(item_id(0), "wk", 5.0)  # second hit: clean
        assert lease is not None and lease.owner == "wk"
        # FileTransport extras delegate through the wrapper
        assert bus.root == inner.root
        assert bus.worker_dir("wk").is_dir()

    def test_claim_race_loses_without_touching_disk(self, tmp_path):
        inner = FileTransport(tmp_path)
        bus = ChaosTransport(inner, parse_spec("1:transport.claim=race#1"))
        assert bus.try_claim(item_id(0), "wk", 5.0) is None
        assert inner.lease(item_id(0)) is None  # nothing was written

    def test_renew_fail_reports_lost_ownership(self, tmp_path):
        inner = FileTransport(tmp_path)
        bus = ChaosTransport(inner, parse_spec("1:transport.renew=fail#1"))
        assert inner.try_claim(item_id(0), "wk", 5.0) is not None
        assert bus.renew(item_id(0), "wk", 5.0) is False
        assert bus.renew(item_id(0), "wk", 5.0) is True

    def test_torn_publish_then_retry_overwrites_debris(self, tmp_path):
        inner = FileTransport(tmp_path)
        bus = ChaosTransport(inner,
                             parse_spec("1:transport.publish=torn#1"))
        record = codec.attach_hash({"kind": "x", "value": 1})
        with pytest.raises(OSError, match="torn"):
            bus.publish_result(0, dict(record))
        # the tear left unreadable debris occupying the result path
        assert inner._result_path(0).exists()
        assert inner.read_result(0) is None
        # the worker's retry path: publish again — the hardened
        # FileTransport overwrites corrupt debris instead of treating
        # it as an existing result
        assert bus.publish_result(0, dict(record)) is True
        assert inner.read_result(0)["value"] == 1

    def test_duplicate_publish_stays_idempotent(self, tmp_path):
        inner = FileTransport(tmp_path)
        bus = ChaosTransport(inner, parse_spec("1:transport.publish=dup#1"))
        record = codec.attach_hash({"kind": "x", "value": 1})
        assert bus.publish_result(0, dict(record)) is True
        assert inner.read_result(0)["value"] == 1

    def test_corrupt_result_not_overwritten_when_valid(self, tmp_path):
        # idempotency is preserved for *valid* existing records
        inner = FileTransport(tmp_path)
        first = codec.attach_hash({"kind": "x", "value": 1})
        second = codec.attach_hash({"kind": "x", "value": 2})
        assert inner.publish_result(0, first) is True
        assert inner.publish_result(0, second) is False
        assert inner.read_result(0)["value"] == 1


# ----------------------------------------------------------------------
class TestChecksums:
    def test_attach_verify_and_tamper(self):
        record = codec.attach_hash({"a": 1, "b": "x"})
        assert codec.verify_hash(record) is True
        record["a"] = 2
        assert codec.verify_hash(record) is False
        assert codec.verify_hash({"a": 1}) is None  # pre-checksum record

    def test_volatile_fields_do_not_affect_hash(self):
        base = codec.attach_hash({"a": 1})
        noisy = codec.attach_hash({"a": 1, "duration_s": 9.9,
                                   "t_mono": 123.0})
        assert base[codec.CHECKSUM_FIELD] == noisy[codec.CHECKSUM_FIELD]
        assert codec.verify_hash(noisy) is True

    def test_journal_lines_carry_verifying_checksums(self, tmp_path):
        outcomes = engine.execute(_grid(3), jobs=1)
        writer = Journal(tmp_path / "journal.jsonl")
        writer.start("sweep-noop", "fp")
        for outcome in outcomes:
            writer.append(outcome)
        lines = writer.path.read_text().splitlines()
        for line in lines[1:]:
            entry = json.loads(line)
            assert codec.verify_hash(entry) is True
        _, loaded = journal_mod.load(writer.path)
        assert len(loaded) == 3

    def test_journal_read_stops_at_checksum_mismatch(self, tmp_path):
        outcomes = engine.execute(_grid(3), jobs=1)
        writer = Journal(tmp_path / "journal.jsonl")
        writer.start("sweep-noop", "fp")
        for outcome in outcomes:
            writer.append(outcome)
        lines = writer.path.read_text().splitlines(keepends=True)
        # scribble inside line 2 (first outcome), keeping valid JSON
        entry = json.loads(lines[1])
        entry["error"] = "tampered"
        lines[1] = json.dumps(entry, sort_keys=True) + "\n"
        writer.path.write_text("".join(lines))
        _, loaded = journal_mod.load(writer.path)
        assert loaded == []  # damage boundary: nothing after is trusted

    def test_store_self_heals_bit_flipped_payload(self, tmp_path):
        outcomes = engine.execute(_grid(1), jobs=1)
        store = RunStore(tmp_path)
        key = store.put(outcomes[0])
        path = store._object_path(key)
        raw = path.read_text()
        path.write_text(raw.replace('"point"', '"paint"', 1))
        assert store.get(outcomes[0].request) is None  # miss, not poison
        store.put(outcomes[0])  # recompute-and-replace heals the object
        assert store.get(outcomes[0].request) is not None

    def test_corrupt_lease_counted_in_registry(self, tmp_path):
        transport = FileTransport(tmp_path)
        transport._lease_path(item_id(0)).parent.mkdir(
            parents=True, exist_ok=True
        )
        transport._lease_path(item_id(0)).write_text("{not json")
        prior = metrics.REGISTRY.enabled
        metrics.REGISTRY.reset()
        metrics.REGISTRY.enabled = True
        try:
            assert transport.lease(item_id(0)) is None
            counters = metrics.REGISTRY.counters()
            assert counters.get("fabric.corrupt_records", 0) == 1
        finally:
            metrics.REGISTRY.reset()
            metrics.REGISTRY.enabled = prior


# ----------------------------------------------------------------------
class TestRenewerAndFencing:
    def test_lost_renewal_sets_abort_flag(self, tmp_path):
        inner = FileTransport(tmp_path)
        bus = ChaosTransport(inner, parse_spec("1:transport.renew=fail#1"))
        assert inner.try_claim(item_id(0), "wk", 0.15) is not None
        with _LeaseRenewer(bus, item_id(0), "wk", 0.15) as renewer:
            deadline = time.monotonic() + 5.0
            while not renewer.lost.is_set():
                assert time.monotonic() < deadline, "lost flag never set"
                time.sleep(0.01)
        assert renewer.lost.is_set()
        assert not renewer.leaked

    def test_transient_renew_error_is_not_a_loss(self, tmp_path):
        inner = FileTransport(tmp_path)
        bus = ChaosTransport(inner, parse_spec("1:transport.renew=io#1"))
        assert inner.try_claim(item_id(0), "wk", 0.15) is not None
        with _LeaseRenewer(bus, item_id(0), "wk", 0.15) as renewer:
            time.sleep(0.25)  # at least two renew ticks
        assert not renewer.lost.is_set()

    def test_wedged_renew_thread_is_recorded_not_joined_forever(self):
        gate = threading.Event()

        class Wedged:
            def renew(self, item, owner, ttl):
                gate.wait(30.0)
                return True

        renewer = _LeaseRenewer(Wedged(), item_id(0), "wk", 0.15,
                                join_timeout=0.2)
        with renewer:
            time.sleep(0.1)  # let the thread enter the wedged renew
        assert renewer.leaked
        gate.set()  # unwedge so the daemon thread exits

    def test_fenced_worker_never_publishes(self, tmp_path):
        # the acceptance scenario: kill renewal via a takeover race —
        # the executor hangs, the lease is stolen mid-execution, and
        # the original worker must abort between execution and publish
        requests = _grid(1)
        transport = FileTransport(tmp_path)
        plan_fabric(transport, "sweep-noop", requests)
        policy = parse_spec("1:worker.item=hang:0.8")
        done = {}

        def victim():
            done["stats"] = run_worker(
                transport, worker_id="wk-victim", once=True,
                lease_ttl=30.0, chaos=policy,
            )

        thread = threading.Thread(target=victim, daemon=True)
        thread.start()
        deadline = time.monotonic() + 5.0
        while transport.lease(item_id(0)) is None:
            assert time.monotonic() < deadline, "victim never claimed"
            time.sleep(0.01)
        # steal the lease while the victim's executor hangs
        assert transport.break_lease(item_id(0))
        stolen = transport.try_claim(item_id(0), "wk-thief", 60.0)
        assert stolen is not None
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        stats = done["stats"]
        assert stats.fenced == 1
        assert stats.published == 0  # the loser aborted cleanly
        assert transport.result_indices() == set()
        # the fenced work stayed journaled (salvageable)...
        merged = journal_mod.merge_segments(transport.segment_journals())
        assert len(merged) == 1
        # ...and first-publisher-wins: the thief's record sticks
        outcome = engine.execute(requests, jobs=1)[0]
        record = codec.outcome_to_record(outcome)
        record["key"] = request_key(outcome.request)
        record["worker"] = "wk-thief"
        assert transport.publish_result(0, codec.attach_hash(record))
        assert transport.read_result(0)["worker"] == "wk-thief"


# ----------------------------------------------------------------------
class TestQuarantineAndTimeout:
    def test_poisoned_item_quarantined_as_structured_failure(
        self, tmp_path
    ):
        requests = _grid(1)
        transport = FileTransport(tmp_path)
        plan_fabric(transport, "sweep-noop", requests)
        # the lease record says two executors already died on this item
        dead = LeaseRecord(item=item_id(0), owner="wk-dead",
                           deadline=time.time() - 60.0, attempt=2)
        transport._write_atomic(
            transport._lease_path(item_id(0)), dead.to_json()
        )
        stats = run_worker(
            transport, worker_id="wk-live", once=True,
            lease_ttl=10.0, quarantine_after=2,
        )
        assert stats.quarantined == 1
        assert stats.published == 1
        record = transport.read_result(0)
        assert record["error"].startswith("quarantined:")
        assert "killed 2 executor(s)" in record["error"]
        assert codec.verify_hash(record) is True
        # the sweep completes gracefully around the quarantined point
        result = run_fabric_sweep(
            transport, "sweep-noop", requests,
            workers=0, poll_s=0.01, timeout=30.0,
        )
        assert result.outcomes[0].error.startswith("quarantined:")

    def test_point_timeout_journals_structured_failure(self, tmp_path):
        requests = _grid(1)
        transport = FileTransport(tmp_path)
        plan_fabric(transport, "sweep-noop", requests)
        policy = parse_spec("1:worker.item=hang:5")
        stats = run_worker(
            transport, worker_id="wk-slow", once=True, lease_ttl=10.0,
            point_timeout=0.2, chaos=policy,
        )
        assert stats.timeouts == 1
        record = transport.read_result(0)
        assert record["error"].startswith("point timeout:")
        assert transport.leases() == {}  # released after publishing

    def test_second_attempt_executes_normally(self, tmp_path):
        # one prior death is below the quarantine threshold: takeover
        # re-executes and publishes the real result
        requests = _grid(1)
        transport = FileTransport(tmp_path)
        plan_fabric(transport, "sweep-noop", requests)
        dead = LeaseRecord(item=item_id(0), owner="wk-dead",
                           deadline=time.time() - 60.0, attempt=1)
        transport._write_atomic(
            transport._lease_path(item_id(0)), dead.to_json()
        )
        stats = run_worker(
            transport, worker_id="wk-live", once=True,
            lease_ttl=10.0, quarantine_after=2,
        )
        assert stats.quarantined == 0
        assert stats.takeovers == 1
        assert transport.read_result(0)["error"] == ""


# ----------------------------------------------------------------------
class TestChaosEndToEnd:
    def _chaos_spawn(self, fabric_dir, spec):
        env = _worker_env()

        def spawn(index):
            return subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "worker",
                    str(fabric_dir), "--lease-ttl", "0.5",
                    "--poll", "0.05", "--chaos", spec,
                    # keep quarantine out of the way: every takeover
                    # re-executes, so the recovered tree is the serial
                    # tree no matter how the deaths interleave
                    "--quarantine-after", "9",
                ],
                env=env,
                stdout=subprocess.DEVNULL,
            )

        return spawn

    def _run_once(self, fabric_dir, requests, spec):
        return run_fabric_sweep(
            fabric_dir, "sweep-noop", requests,
            workers=1, lease_ttl=0.5, poll_s=0.05, timeout=120.0,
            spawn=self._chaos_spawn(fabric_dir, spec),
        )

    def test_seeded_die_chaos_replays_byte_identical(self, tmp_path):
        # every worker incarnation dies mid-item on its second lease:
        # after the durable journal append, before publication — the
        # window salvage and takeover exist for.  The sweep must still
        # finish, twice, canonically identical to a serial run.
        requests = _grid(40)  # 3 batch-packed work items
        serial = engine.execute(requests, jobs=1)
        spec = "7:worker.item=die#2"
        canon = []
        restarts = []
        for run in ("a", "b"):
            fabric_dir = tmp_path / f"fabric-{run}"
            fabric_dir.mkdir()
            result = self._run_once(fabric_dir, requests, spec)
            canon.append(_canonical(result.outcomes))
            restarts.append(result.worker_restarts)
        assert canon[0] == _canonical(serial)
        assert canon[0] == canon[1]  # same seed ⇒ same recovered tree
        assert all(r >= 1 for r in restarts)  # the chaos really fired

    def test_corrupt_journal_chaos_still_converges(self, tmp_path):
        # scribbled journal appends damage the worker's segment but the
        # published results stay authoritative; fsck then repairs the
        # segments without touching anything valid
        requests = _grid(40)
        serial = engine.execute(requests, jobs=1)
        fabric_dir = tmp_path / "fabric"
        fabric_dir.mkdir()
        result = self._run_once(
            fabric_dir, requests,
            "5:journal.append=corrupt#3,transport.claim=race@0.2",
        )
        assert _canonical(result.outcomes) == _canonical(serial)
        report = fsck_tree(fabric_dir)
        assert report.ok
        assert any(i.kind in ("corrupt-line", "torn-tail")
                   for i in report.issues)
        assert fsck_tree(fabric_dir).clean  # second pass: nothing left

    def test_restart_exhaustion_surfaces_first_failure(self, tmp_path):
        # satellite: a worker dying max_restarts+1 times must raise the
        # supervisor's failure out of the coordinator, not hang it
        fabric_dir = tmp_path / "fabric"
        fabric_dir.mkdir()

        def spawn(index):
            return subprocess.Popen(
                [sys.executable, "-c", "import sys; sys.exit(3)"],
            )

        start = time.monotonic()
        with pytest.raises(FabricError, match="died 3 times"):
            run_fabric_sweep(
                fabric_dir, "sweep-noop", _grid(4),
                workers=1, lease_ttl=0.5, poll_s=0.05, timeout=60.0,
                max_restarts=2, spawn=spawn,
            )
        assert time.monotonic() - start < 30.0


# ----------------------------------------------------------------------
class TestFsck:
    def _sweep_tree(self, tmp_path, n=3):
        out = tmp_path / "out"
        outcomes = engine.execute(_grid(n), jobs=1)
        writer = Journal(journal_mod.journal_path(out))
        writer.start("sweep-noop", "fp")
        for outcome in outcomes:
            writer.append(outcome)
        return out, outcomes

    def test_clean_tree_is_clean(self, tmp_path):
        out, _ = self._sweep_tree(tmp_path)
        report = fsck_tree(out)
        assert report.clean and report.ok
        assert report.records_checked >= 4

    def test_torn_tail_truncated_without_data_loss(self, tmp_path):
        out, outcomes = self._sweep_tree(tmp_path)
        path = journal_mod.journal_path(out)
        with path.open("ab") as fh:
            fh.write(b'{"kind": "outcome", "half')
        report = fsck_tree(out)
        assert [i.kind for i in report.issues] == ["torn-tail"]
        assert report.ok
        _, loaded = journal_mod.load(path)
        assert _canonical(loaded) == _canonical(outcomes)
        # the torn bytes were preserved, not destroyed
        debris = list((out / QUARANTINE_DIRNAME).iterdir())
        assert len(debris) == 1
        assert b'"half' in debris[0].read_bytes()

    def test_interior_corruption_quarantined_tail_kept(self, tmp_path):
        # unlike load()'s stop-at-damage rule, fsck rescues the valid
        # lines *after* a corrupt interior line
        out, outcomes = self._sweep_tree(tmp_path, n=4)
        path = journal_mod.journal_path(out)
        lines = path.read_text().splitlines(keepends=True)
        lines[2] = lines[2][:20] + "\xff\xff" + lines[2][22:]
        path.write_text("".join(lines))
        _, before = journal_mod.load(path)
        assert len(before) == 1  # readers stop at the damage...
        report = fsck_tree(out)
        assert report.ok
        assert [i.kind for i in report.issues] == ["corrupt-line"]
        _, after = journal_mod.load(path)
        assert len(after) == 3  # ...fsck kept the tail lines too

    def test_bit_flipped_store_payload_quarantined(self, tmp_path):
        outcomes = engine.execute(_grid(2), jobs=1)
        store = RunStore(tmp_path / "store")
        keys = [store.put(o) for o in outcomes]
        victim = store._object_path(keys[0])
        victim.write_text(
            victim.read_text().replace('"sweep-noop"', '"sweep-nope"', 1)
        )
        report = fsck_tree(tmp_path / "store")
        assert report.ok
        assert [i.kind for i in report.issues] == ["bad-checksum"]
        assert not victim.exists()  # moved to quarantine, not deleted
        assert list((tmp_path / "store" / QUARANTINE_DIRNAME).iterdir())
        # the untouched object survived
        assert store.get(outcomes[1].request) is not None
        assert store.get(outcomes[0].request) is None

    def test_truncated_result_record_quarantined(self, tmp_path):
        fabric = tmp_path / "fabric"
        transport = FileTransport(fabric)
        plan_fabric(transport, "sweep-noop", _grid(2))
        outcome = engine.execute(_grid(2), jobs=1)[0]
        record = codec.attach_hash(codec.outcome_to_record(outcome))
        transport.publish_result(0, record)
        # a truncated (torn) second record
        path = transport._result_path(1)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(record)[:25])
        report = fsck_tree(fabric)
        assert report.ok
        assert [i.kind for i in report.issues] == ["corrupt-result"]
        assert transport.read_result(0) is not None
        assert not path.exists()

    def test_stale_lease_debris_cleared(self, tmp_path):
        fabric = tmp_path / "fabric"
        transport = FileTransport(fabric)
        plan_fabric(transport, "sweep-noop", _grid(2))
        # expired lease with a dead owner
        dead = LeaseRecord(item=item_id(0), owner="wk-dead",
                           deadline=time.time() - 120.0, attempt=1)
        transport._write_atomic(
            transport._lease_path(item_id(0)), dead.to_json()
        )
        # unreadable lease debris (writer died mid-write)
        debris = transport._lease_path(item_id(1))
        debris.write_text('{"item": "item-0000')
        # a live lease that must survive
        assert transport.try_claim("item-000099", "wk-live", 300.0)
        report = fsck_tree(fabric)
        assert report.ok
        kinds = sorted(i.kind for i in report.issues)
        assert kinds == ["lease-debris", "stale-lease"]
        assert transport.lease(item_id(0)) is None
        assert not debris.exists()
        assert transport.lease("item-000099") is not None

    def test_corrupt_telemetry_line_quarantined(self, tmp_path):
        from repro.obs.telemetry import TelemetryWriter, read_stream

        out = tmp_path / "out"
        outcomes = engine.execute(_grid(2), jobs=1)
        writer = TelemetryWriter(out / "telemetry.jsonl")
        writer.start("sweep-noop", "fp", jobs=1)
        for outcome in outcomes:
            writer.append_point(outcome)
        lines = writer.path.read_text().splitlines(keepends=True)
        lines[1] = '{"kind": "mystery"}\n'
        writer.path.write_text("".join(lines))
        report = fsck_tree(out)
        assert report.ok
        assert [i.kind for i in report.issues] == ["corrupt-line"]
        header, entries = read_stream(writer.path)
        assert header["kind"] == "header"
        assert [e["kind"] for e in entries] == ["point"]

    def test_dry_run_reports_without_touching(self, tmp_path):
        out, _ = self._sweep_tree(tmp_path)
        path = journal_mod.journal_path(out)
        with path.open("ab") as fh:
            fh.write(b"torn")
        before = path.read_bytes()
        report = fsck_tree(out, repair=False)
        assert not report.clean and not report.ok
        assert all(i.action == "reported" for i in report.issues)
        assert path.read_bytes() == before
        assert not (out / QUARANTINE_DIRNAME).exists()

    def test_cli_exit_codes(self, tmp_path):
        from repro.__main__ import main

        out, _ = self._sweep_tree(tmp_path)
        assert main(["fsck", str(out)]) == 0
        path = journal_mod.journal_path(out)
        with path.open("ab") as fh:
            fh.write(b"torn")
        assert main(["fsck", str(out), "--dry-run"]) == 1
        assert main(["fsck", str(out)]) == 0  # repaired
        assert main(["fsck", str(out)]) == 0  # and stays clean
