"""Unit tests for mesh/torus topologies and XY routing."""

import pytest

from repro.noc import Port, Topology, next_hop, xy_route


class TestPort:
    def test_opposites(self):
        assert Port.NORTH.opposite == Port.SOUTH
        assert Port.EAST.opposite == Port.WEST
        assert Port.LOCAL.opposite == Port.LOCAL


class TestTopology:
    def test_node_count(self):
        assert Topology(4, 4).n_nodes == 16
        assert Topology(2, 3).n_nodes == 6

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Topology(0, 4)

    def test_nodes_cover_grid(self):
        topo = Topology(3, 2)
        nodes = list(topo.nodes())
        assert len(nodes) == 6
        assert (0, 0) in nodes and (2, 1) in nodes

    def test_mesh_neighbor_edges(self):
        topo = Topology(3, 3)
        assert topo.neighbor((0, 0), Port.WEST) is None
        assert topo.neighbor((0, 0), Port.EAST) == (1, 0)
        assert topo.neighbor((0, 0), Port.NORTH) == (0, 1)
        assert topo.neighbor((2, 2), Port.NORTH) is None

    def test_torus_wraps(self):
        topo = Topology(3, 3, torus=True)
        assert topo.neighbor((0, 0), Port.WEST) == (2, 0)
        assert topo.neighbor((2, 2), Port.NORTH) == (2, 0)

    def test_local_has_no_neighbor(self):
        assert Topology(2, 2).neighbor((0, 0), Port.LOCAL) is None

    def test_directed_link_count_mesh(self):
        # 4x4 mesh: 2*(3*4)*2 = 48 directed links
        assert Topology(4, 4).n_directed_links == 48

    def test_directed_link_count_torus(self):
        # every node has 4 out-links
        assert Topology(4, 4, torus=True).n_directed_links == 64

    def test_networkx_view(self):
        graph = Topology(3, 3).to_networkx()
        assert graph.number_of_nodes() == 9
        assert graph.has_edge((0, 0), (1, 0))

    def test_average_hop_count_2x2(self):
        # pairs at distance 1 (8 ordered) and 2 (4 ordered): mean = 4/3
        assert Topology(2, 2).average_hop_count() == pytest.approx(4 / 3)

    def test_in_bounds(self):
        topo = Topology(3, 3)
        assert topo.in_bounds((2, 2))
        assert not topo.in_bounds((3, 0))


class TestXYRoute:
    def test_x_before_y(self):
        topo = Topology(4, 4)
        route = xy_route((0, 0), (2, 3), topo)
        assert route == [Port.EAST, Port.EAST,
                         Port.NORTH, Port.NORTH, Port.NORTH]

    def test_west_and_south(self):
        topo = Topology(4, 4)
        route = xy_route((3, 3), (1, 0), topo)
        assert route == [Port.WEST, Port.WEST,
                         Port.SOUTH, Port.SOUTH, Port.SOUTH]

    def test_same_node_empty_route(self):
        assert xy_route((1, 1), (1, 1), Topology(4, 4)) == []

    def test_route_length_is_manhattan_distance(self):
        topo = Topology(5, 5)
        route = xy_route((0, 4), (4, 0), topo)
        assert len(route) == 8

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            xy_route((0, 0), (9, 9), Topology(4, 4))

    def test_torus_takes_short_way_around(self):
        topo = Topology(4, 4, torus=True)
        route = xy_route((0, 0), (3, 0), topo)
        assert route == [Port.WEST]  # wrap is shorter than 3 hops east

    def test_next_hop_local_at_destination(self):
        assert next_hop((2, 2), (2, 2), Topology(4, 4)) == Port.LOCAL

    def test_next_hop_follows_route(self):
        topo = Topology(4, 4)
        assert next_hop((0, 0), (2, 0), topo) == Port.EAST
        assert next_hop((2, 0), (2, 3), topo) == Port.NORTH

    def test_route_walk_reaches_destination(self):
        topo = Topology(4, 4)
        pos = (0, 3)
        dest = (3, 1)
        for _ in range(20):
            if pos == dest:
                break
            port = next_hop(pos, dest, topo)
            pos = topo.neighbor(pos, port)
        assert pos == dest


class TestCompiledNextHop:
    """The compiled fast router must agree with next_hop everywhere."""

    @pytest.mark.parametrize("torus", [False, True])
    @pytest.mark.parametrize("cols,rows", [(1, 1), (2, 2), (3, 5),
                                           (4, 4), (5, 3), (8, 8)])
    def test_agrees_with_next_hop_on_all_pairs(self, cols, rows, torus):
        from repro.noc.topology import compile_next_hop

        topo = Topology(cols, rows, torus=torus)
        fast = compile_next_hop(topo)
        for src in topo.nodes():
            for dest in topo.nodes():
                assert fast(src, dest) is next_hop(src, dest, topo), \
                    (src, dest, cols, rows, torus)

    def test_compiled_router_is_reused_by_the_network(self):
        from repro.link.behavioral import derive_link_params
        from repro.noc import Network
        from repro.tech import st012

        topo = Topology(3, 3)
        net = Network(topo, derive_link_params(st012(), "I3", 300))
        route_fn = net.switches[(0, 0)].route_fn
        assert route_fn((0, 0), (2, 1)) is Port.EAST
        assert route_fn.__name__ == "fast_next_hop"
