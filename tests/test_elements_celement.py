"""Unit tests for the Muller C-element (Fig 3)."""

import pytest

from repro.elements import CElement, c2
from repro.sim import Signal, Simulator


@pytest.fixture
def sim():
    return Simulator()


def settle(sim):
    sim.run(max_events=10_000)


class TestCElement:
    def test_rises_when_all_inputs_high(self, sim):
        a, b = Signal(sim, "a"), Signal(sim, "b")
        c = c2(sim, a, b)
        a.set(1)
        settle(sim)
        assert c.output.value == 0  # only one input high: hold
        b.set(1)
        settle(sim)
        assert c.output.value == 1

    def test_falls_only_when_all_inputs_low(self, sim):
        a, b = Signal(sim, "a"), Signal(sim, "b")
        c = c2(sim, a, b)
        a.set(1)
        b.set(1)
        settle(sim)
        a.set(0)
        settle(sim)
        assert c.output.value == 1  # hold state
        b.set(0)
        settle(sim)
        assert c.output.value == 0

    def test_hysteresis_full_cycle(self, sim):
        """The C-element implements the four-phase handshake memory."""
        a, b = Signal(sim, "a"), Signal(sim, "b")
        c = c2(sim, a, b)
        sequence = [
            (1, 0, 0), (1, 1, 1), (0, 1, 1), (0, 0, 0), (1, 0, 0),
        ]
        for va, vb, expected in sequence:
            a.set(va)
            b.set(vb)
            settle(sim)
            assert c.output.value == expected, (va, vb)

    def test_three_input(self, sim):
        sigs = [Signal(sim, f"i{i}") for i in range(3)]
        c = CElement(sim, sigs)
        for s in sigs[:2]:
            s.set(1)
        settle(sim)
        assert c.output.value == 0
        sigs[2].set(1)
        settle(sim)
        assert c.output.value == 1

    def test_inverted_input(self, sim):
        """invert_b: output rises when a=1 and b=0 (the latch controller)."""
        a, b = Signal(sim, "a"), Signal(sim, "b")
        c = c2(sim, a, b, invert_b=True)
        a.set(1)
        settle(sim)
        assert c.output.value == 1  # b=0 counts as asserted
        b.set(1)
        settle(sim)
        assert c.output.value == 1  # hold
        a.set(0)
        settle(sim)
        assert c.output.value == 0  # a=0, ~b=0 → all low

    def test_reset_forces_output(self, sim):
        a, b = Signal(sim, "a"), Signal(sim, "b")
        rst = Signal(sim, "rst")
        c = c2(sim, a, b, reset=rst)
        a.set(1)
        b.set(1)
        settle(sim)
        assert c.output.value == 1
        rst.set(1)
        settle(sim)
        assert c.output.value == 0

    def test_inputs_ignored_during_reset(self, sim):
        a, b = Signal(sim, "a"), Signal(sim, "b")
        rst = Signal(sim, "rst", init=1)
        c = c2(sim, a, b, reset=rst)
        a.set(1)
        b.set(1)
        settle(sim)
        assert c.output.value == 0
        rst.set(0)
        a.set(0)
        a.set(1)
        settle(sim)
        assert c.output.value == 1

    def test_requires_inputs(self, sim):
        with pytest.raises(ValueError):
            CElement(sim, [])

    def test_invert_flag_count_checked(self, sim):
        a, b = Signal(sim, "a"), Signal(sim, "b")
        with pytest.raises(ValueError):
            CElement(sim, [a, b], invert=[True])

    def test_delay_override(self, sim):
        a, b = Signal(sim, "a"), Signal(sim, "b")
        c = c2(sim, a, b, delay_ps=212)
        times = []
        c.output.on_change(lambda s: times.append(sim.now))
        a.set(1)
        b.set(1)
        sim.run()
        assert times == [212]

    def test_brief_all_high_excursion_still_sets(self, sim):
        """The C-element is a *state* element: once all inputs have been
        simultaneously high — however briefly — the internal feedback
        commits and the output rises after the element delay.  (Unlike a
        combinational gate, the subsequent hold condition does not cancel
        the pending transition.)"""
        a, b = Signal(sim, "a"), Signal(sim, "b", init=1)
        c = c2(sim, a, b, delay_ps=100)
        a.pulse(width=20)  # a returns low; the set was still captured
        sim.run()
        assert c.output.value == 1
        assert c.output.transitions == 1
