"""Tests for the ``python -m repro`` command-line entry point."""

import pytest

from repro.__main__ import EXPERIMENT_IDS, main


class TestCli:
    def test_fast_run_all_succeeds(self, capsys):
        assert main(["--fast"]) == 0
        out = capsys.readouterr().out
        assert "Fig 10" in out
        assert "Table 2" in out
        assert "all paper-vs-measured checks passed" in out

    def test_subset_selection(self, capsys):
        assert main(["fig12", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Fig 12" in out
        assert "Fig 10" not in out

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99", "--fast"])

    def test_experiment_ids_cover_every_artifact(self):
        assert set(EXPERIMENT_IDS) == {
            "fig10", "fig11", "fig12", "fig13", "fig14",
            "table1", "table2", "throughput", "wirelength",
        }

    def test_ablations_flag(self, capsys):
        assert main(["table1", "--fast", "--ablations"]) == 0
        out = capsys.readouterr().out
        assert "Ablation A" in out
        assert "Ablation C" in out
