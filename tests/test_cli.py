"""Tests for the ``python -m repro`` command-line entry point."""

import json

import pytest

from repro.__main__ import EXPERIMENT_IDS, main
from repro.runner import registry


@pytest.fixture
def executed(monkeypatch):
    """Record which scenarios actually execute (not just get selected)."""
    registry.load_builtin()
    calls = []
    for sc in registry.all_scenarios():
        def wrap(orig, sid):
            def wrapper(*args, **kwargs):
                calls.append(sid)
                return orig(*args, **kwargs)
            return wrapper
        monkeypatch.setattr(sc, "func", wrap(sc.func, sc.id))
    return calls


class TestRun:
    def test_fast_run_all_succeeds(self, capsys):
        assert main(["run", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Fig 10" in out
        assert "Table 2" in out
        assert "all paper-vs-measured checks passed" in out

    def test_subset_selection(self, capsys):
        assert main(["run", "fig12", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Fig 12" in out
        assert "Fig 10" not in out

    def test_subset_executes_only_that_subset(self, executed, capsys):
        assert main(["run", "fig12", "--fast"]) == 0
        assert executed == ["fig12"]

    def test_default_executes_every_paper_scenario_once(
        self, executed, capsys
    ):
        assert main(["run", "--fast"]) == 0
        assert sorted(executed) == sorted(EXPERIMENT_IDS)

    def test_unknown_scenario_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "fig99", "--fast"])
        assert exc.value.code == 2

    def test_tag_filter_selects_ablations(self, executed, capsys):
        assert main(["run", "--tags", "ablation", "--fast"]) == 0
        # early-ack needs gate-level simulation: skipped under --fast
        assert sorted(executed) == [
            "ablation-buffers", "ablation-serialization",
        ]
        out = capsys.readouterr().out
        assert "Ablation A" in out
        assert "Ablation C" in out
        assert "skipped ablation-early-ack" in out

    def test_all_selected_scenarios_skipped_fails(self, executed, capsys):
        """A run where everything was fast-skipped must not go green."""
        assert main(["run", "ablation-early-ack", "--fast"]) == 1
        assert executed == []
        err = capsys.readouterr().err
        assert "no scenarios executed" in err

    def test_empty_selection_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "--tags", "no-such-tag"])
        assert exc.value.code == 2

    def test_out_writes_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        assert main(["run", "fig12", "--fast", "--out", str(out_dir)]) == 0
        assert (out_dir / "fig12" / "default.rows.csv").exists()
        summary = json.loads((out_dir / "summary.json").read_text())
        assert summary["runs"][0]["scenario"] == "fig12"


class TestList:
    def test_lists_all_scenarios(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for sid in EXPERIMENT_IDS + ("mesh-design-space",):
            assert sid in out

    def test_tag_filter(self, capsys):
        assert main(["list", "--tags", "sweep"]) == 0
        out = capsys.readouterr().out
        assert "mesh-design-space" in out
        assert "fig12" not in out


class TestSweep:
    def test_explicit_grid(self, executed, capsys, tmp_path):
        out_dir = tmp_path / "sweep"
        assert main([
            "sweep", "mesh-design-space",
            "--param", "mesh_size=2,3",
            "--set", "cycles=150",
            "--out", str(out_dir),
        ]) == 0
        assert executed == ["mesh-design-space"] * 2
        out = capsys.readouterr().out
        assert "2 point(s)" in out
        assert "all sweep points passed" in out
        summary = json.loads((out_dir / "summary.json").read_text())
        assert len(summary["runs"]) == 2
        assert summary["runs"][0]["params"]["cycles"] == 150

    def test_unknown_scenario_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["sweep", "fig99"])
        assert exc.value.code == 2

    def test_unknown_param_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["sweep", "mesh-design-space", "--param", "warp=9"])
        assert exc.value.code == 2

    def test_duplicate_param_axis_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main([
                "sweep", "mesh-design-space",
                "--param", "mesh_size=2", "--param", "mesh_size=3",
            ])
        assert exc.value.code == 2

    def test_scenario_without_axes_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["sweep", "fig10"])
        assert exc.value.code == 2


class TestTopLevel:
    def test_no_subcommand_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_bad_jobs_rejected(self):
        with pytest.raises(SystemExit) as exc:
            main(["run", "fig12", "--jobs", "0"])
        assert exc.value.code == 2

    def test_experiment_ids_cover_every_paper_artifact(self):
        assert set(EXPERIMENT_IDS) == {
            "fig10", "fig11", "fig12", "fig13", "fig14",
            "table1", "table2", "throughput", "wirelength",
        }
