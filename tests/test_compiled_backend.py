"""Unit tests for the bit-parallel compiled backend.

Extraction (what compiles, what is refused and why), levelization
(order and the combinational-loop diagnostic), and the executor's lane
mechanics (poke/force/release, counters, ring-oscillator ticks).  The
behavioral contract against the event kernels lives in
``tests/test_compiled_equivalence.py``.
"""

import pytest

from repro.compiled import (
    LANES,
    MASK,
    CombinationalLoopError,
    CompileError,
    SettleError,
    build_bench,
    compile_component,
    extract,
    levelize,
)
from repro.design.component import Component
from repro.elements.gates import And2, Gate, Inverter, Nor2, Xor2
from repro.elements.latches import DLatch
from repro.elements.ringosc import RingOscillator
from repro.link.serializer import Serializer
from repro.sim import Simulator

ALL = (1 << 64) - 1


def _adopted(name: str, *components) -> Component:
    root = Component(name)
    for comp in components:
        root.adopt(comp)
    return root


class TestExtraction:
    def test_i2_bench_netlist_inventory(self):
        sim = Simulator()
        bench = build_bench(sim, "i2", 16)
        netlist = extract(bench.root)
        kinds = netlist.counts_by_kind()
        assert kinds["dff"] == 2
        assert kinds["regbus"] == 4
        assert kinds["onehotmux"] == 1
        assert kinds["celement"] == 1
        # slice inputs + clk + rst are undriven stimulus nets
        inputs = {netlist.nets[i].name for i in netlist.input_nets()}
        assert "i2.clk" in inputs and "i2.rst" in inputs
        assert "i2.s0[0]" in inputs

    def test_every_net_addressable_by_name(self):
        sim = Simulator()
        bench = build_bench(sim, "i1", 8)
        netlist = extract(bench.root)
        for name in bench.inputs + bench.outputs:
            assert name in netlist.names

    def test_multi_driver_rejected(self):
        sim = Simulator()
        a = sim.signal("a")
        b = sim.signal("b")
        shared = sim.signal("shared")
        root = _adopted(
            "md",
            Inverter(sim, a, out=shared, name="inv1"),
            Inverter(sim, b, out=shared, name="inv2"),
        )
        with pytest.raises(CompileError, match="two structural drivers"):
            extract(root)

    def test_coroutine_component_rejected_with_reason(self):
        from repro.link import Channel

        sim = Simulator()
        channel = Channel(sim, 32, name="ch")
        ser = Serializer(sim, channel, name="ser")
        with pytest.raises(CompileError) as err:
            extract(_adopted("root", ser))
        assert "Serializer" in str(err.value)

    def test_generic_gate_rejected(self):
        sim = Simulator()
        a = sim.signal("a")
        out = sim.signal("out")
        gate = Gate(sim, [a], out, lambda a: not a, delay=10, name="odd")
        with pytest.raises(CompileError, match="opaque evaluation"):
            extract(_adopted("root", gate))

    def test_empty_tree_rejected(self):
        with pytest.raises(CompileError, match="nothing compilable"):
            extract(Component("hollow"))

    def test_unknown_forceable_net_rejected(self):
        sim = Simulator()
        bench = build_bench(sim, "i1", 8)
        with pytest.raises(CompileError, match="no.such.net"):
            compile_component(bench.root, forceable=["no.such.net"])


class TestLevelization:
    def test_parity_tree_depth(self):
        sim = Simulator()
        bench = build_bench(sim, "i1", 8)
        netlist = extract(bench.root)
        levels = levelize(netlist)
        # xor reduction of 8 latch outputs: 4 + 2 + 1 gates, 3 levels
        assert [len(level) for level in levels] == [4, 2, 1]
        placed = {gi for level in levels for gi in level}
        assert placed == set(range(len(netlist.gates)))

    def test_sr_latch_loop_diagnosed_by_path(self):
        sim = Simulator()
        s = sim.signal("s")
        r = sim.signal("r")
        q = sim.signal("q")
        nq = sim.signal("nq")
        root = _adopted(
            "sr",
            Nor2(sim, r, nq, out=q, name="n1"),
            Nor2(sim, s, q, out=nq, name="n2"),
        )
        with pytest.raises(CombinationalLoopError) as err:
            levelize(extract(root))
        assert len(err.value.cycle) == 2
        assert set(err.value.cycle) == {"sr.n1", "sr.n2"}
        message = str(err.value)
        assert "combinational loop (2 gates)" in message
        assert "state element" in message  # the suggested fix

    def test_loop_diagnostic_is_shortest_not_whole_blob(self):
        sim = Simulator()
        # a 2-gate loop feeding a 3-gate chain that loops back too:
        # the report must name a shortest cycle, not all five gates
        a = sim.signal("a")
        q = sim.signal("q")
        nq = sim.signal("nq")
        root = Component("blob")
        root.adopt(Nor2(sim, a, nq, out=q, name="n1"))
        root.adopt(Nor2(sim, a, q, out=nq, name="n2"))
        x = Inverter(sim, q, name="c1")
        y = Inverter(sim, x.output, name="c2")
        root.adopt(x)
        root.adopt(y)
        with pytest.raises(CombinationalLoopError) as err:
            levelize(extract(root))
        assert len(err.value.cycle) == 2


class TestCompiledCircuit:
    def _inv_and(self):
        sim = Simulator()
        a = sim.signal("a")
        b = sim.signal("b")
        inv = Inverter(sim, a, name="inv")
        gate = And2(sim, inv.output, b, name="and")
        return compile_component(_adopted("c", inv, gate))

    def test_comb_lanes_evaluate_independently(self):
        circuit = self._inv_and()
        circuit.step({"a": 0b0101, "b": 0b0011})
        # out = ~a & b per lane
        assert circuit.peek("and.out") == 0b0010
        assert circuit.lane("and.out", 1) == 1
        assert circuit.lane("and.out", 0) == 0

    def test_poke_rejects_driven_net(self):
        circuit = self._inv_and()
        with pytest.raises(ValueError, match="only undriven stimulus"):
            circuit.poke("inv.out", ALL)

    def test_poke_rejects_unknown_name(self):
        circuit = self._inv_and()
        with pytest.raises(ValueError, match="unknown net"):
            circuit.poke("zz.top", 1)

    def test_force_requires_declaration(self):
        circuit = self._inv_and()
        with pytest.raises(ValueError, match="not declared forceable"):
            circuit.force("and.out", ALL)

    def test_force_and_release_act_per_lane(self):
        sim = Simulator()
        a = sim.signal("a")
        inv = Inverter(sim, a, name="inv")
        circuit = compile_component(_adopted("c", inv),
                                    forceable=["inv.out"])
        circuit.step({"a": 0})
        assert circuit.peek("inv.out") == MASK
        circuit.force("inv.out", 0, lanes=0b1010)
        circuit.settle()
        assert circuit.peek("inv.out") == MASK & ~0b1010
        # untouched lanes still follow the logic
        circuit.step({"a": MASK})
        assert circuit.peek("inv.out") == 0
        circuit.release("inv.out")
        circuit.step({"a": 0})
        assert circuit.peek("inv.out") == MASK

    def test_dlatch_transparent_then_opaque(self):
        sim = Simulator()
        d = sim.signal("d")
        g = sim.signal("g")
        lat = DLatch(sim, d, g, name="lat")
        circuit = compile_component(_adopted("c", lat))
        circuit.step({"d": 0b11, "g": 0b01})
        assert circuit.peek("lat.q") == 0b01  # lane 1 gate is shut
        circuit.step({"d": 0b00})
        assert circuit.peek("lat.q") == 0b00 | 0  # lane 0 follows
        circuit.step({"g": 0b10})  # open lane 1 on d=0
        assert circuit.peek("lat.q") == 0

    def test_counters_track_lane0_and_aggregate(self):
        circuit = self._inv_and()
        circuit.zero_counts()
        circuit.step({"a": 0b01})  # lane0 a rises, lane0 inv.out falls
        counts = circuit.counts()
        assert counts["rising0"] == 1
        assert counts["falling0"] == 1
        assert counts["rising_all"] == 1
        assert counts["falling_all"] == 1

    def test_settle_error_on_transparent_latch_loop(self):
        sim = Simulator()
        g = sim.signal("g")
        q = sim.signal("q")
        inv = Inverter(sim, q, name="inv")
        lat = DLatch(sim, inv.output, g, q=q, name="lat")
        circuit = compile_component(_adopted("c", inv, lat))
        with pytest.raises(SettleError):
            circuit.step({"g": ALL})

    def test_ringosc_tick(self):
        sim = Simulator()
        enable = sim.signal("en")
        osc = RingOscillator(sim, enable, stages=5)
        circuit = compile_component(osc)
        circuit.step({enable: ALL})
        before = circuit.peek(osc.out)
        circuit.tick(1)
        assert circuit.peek(osc.out) == before ^ MASK
        circuit.tick(2)
        assert circuit.peek(osc.out) == before ^ MASK
        # disabled lanes stop toggling (and are held low)
        circuit.step({enable: 0})
        circuit.tick(3)
        assert circuit.peek(osc.out) == 0

    def test_stats_report(self):
        sim = Simulator()
        bench = build_bench(sim, "i3", 16)
        circuit = compile_component(bench.root)
        stats = circuit.stats()
        assert stats.lanes == LANES == 64
        assert stats.depth == len(circuit.levels)
        assert sum(stats.gates_per_level) == stats.n_gates
        rendered = stats.render()
        assert "lanes per word" in rendered
        assert "gates per level" in rendered

    def test_generated_source_is_inspectable(self):
        circuit = self._inv_and()
        assert "def settle" in circuit.source
        assert "def tick" in circuit.source


class TestBenchCircuits:
    @pytest.mark.parametrize("kind", ("i1", "i2", "i3"))
    def test_declared_nets_exist_and_compile(self, kind):
        sim = Simulator()
        bench = build_bench(sim, kind, 16)
        circuit = compile_component(bench.root,
                                    forceable=bench.fault_sites)
        for name in bench.inputs:
            circuit.poke(name, 0)
        for name in bench.outputs:
            circuit.peek(name)
        for site in bench.fault_sites:
            circuit.force(site, 0, lanes=1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown bench kind"):
            build_bench(Simulator(), "i9", 8)
