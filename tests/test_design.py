"""Tests for the hierarchical design API (repro.design).

Covers the Component/Port layer (declaration, connection checking,
elaboration onto both kernels), path addressing (find/force/release),
the differential guarantee that a design-built link is bit-identical to
a legacy-built one, the tree-walking analysis functions pinned against
the hand-maintained module tables, and the mesh/registry/CLI surface.
"""

import io

import pytest

import repro.sim as OPT
import repro.sim.reference as REF
from repro.analysis.area import (
    instance_area_rows,
    link_area,
    link_area_from_tree,
)
from repro.analysis.power import activity_by_instance, subtree_activity
from repro.analysis.report import render_design_summary
from repro.analysis.timing import (
    link_timing_from_tree,
    per_transfer_cycle_delay,
    per_word_cycle_delay,
)
from repro.analysis.wires import link_wire_count_from_tree
from repro.design import Component, Design, DesignError, LinkBench, MeshDesign
from repro.design.component import Port
from repro.elements.gates import And2, Inverter, Xor2
from repro.link import LinkConfig, LinkTestbench, build_i1, build_i2, build_i3
from repro.noc.topology import Port as NocPort
from repro.noc.topology import Topology
from repro.sim import ActivityMonitor, Simulator, Tracer, write_vcd
from repro.tech import st012

FLITS = [(0xA5A5A5A5, 0x5A5A5A5A)[i % 2] for i in range(8)]


def snapshot(sim):
    return [
        (sig.name, sig.rising, sig.falling, tuple(sig.trace or ()))
        for sig in sim.created_signals
    ]


def enable_all_traces(sim):
    for sig in sim.created_signals:
        sig.enable_trace()


# ----------------------------------------------------------------------
# a small declarative component used across the unit tests
# ----------------------------------------------------------------------
class HalfAdder(Component):
    def __init__(self, name=None):
        super().__init__(name)
        self.a = self.port_in("a")
        self.b = self.port_in("b")
        self.s = self.port_out("s")
        self.c = self.port_out("c")

    def build(self, sim):
        self.xor = self.adopt(
            Xor2(sim, self.net("a"), self.net("b"), out=self.net("s"),
                 name=self.sub("xor")),
            leaf="xor",
        )
        self.andg = self.adopt(
            And2(sim, self.net("a"), self.net("b"), out=self.net("c"),
                 name=self.sub("and")),
            leaf="and",
        )


class TwoStage(Component):
    """Two half-adders wired through the declarative connect layer."""

    def __init__(self, name="two"):
        super().__init__(name)
        self.x = self.port_in("x")
        self.y = self.port_in("y")
        self.out = self.port_out("out")
        self.ha1 = self.add("ha1", HalfAdder())
        self.ha2 = self.add("ha2", HalfAdder())
        self.connect(self.x, self.ha1.a)
        self.connect(self.y, self.ha1.b)
        self.connect(self.ha1.s, self.ha2.a)
        self.connect(self.ha1.c, self.ha2.b)
        self.connect(self.ha2.s, self.out)


class TestComponentBasics:
    def test_paths_and_tree(self):
        top = TwoStage()
        paths = [path for path, _ in top.walk()]
        assert paths == ["two", "two.ha1", "two.ha2"]
        text = top.tree()
        assert "ha1 <HalfAdder>" in text
        assert "a:in" in text and "s:out" in text

    def test_duplicate_child_rejected(self):
        top = Component("t")
        top.add("x", Component())
        with pytest.raises(DesignError, match="already has a child"):
            top.add("x", Component())

    def test_child_cannot_have_two_parents(self):
        child = Component("c")
        Component("p1").add("c", child)
        with pytest.raises(DesignError, match="already belongs"):
            Component("p2").add("c", child)

    def test_duplicate_port_rejected(self):
        comp = Component("t")
        comp.port_in("a")
        with pytest.raises(DesignError, match="already declares"):
            comp.port_out("a")

    def test_width_mismatch_rejected(self):
        top = Component("t")
        a = top.port_in("a", width=8)
        b = top.port_out("b", width=4)
        with pytest.raises(DesignError, match="width mismatch"):
            top.connect(a, b)

    def test_in_cannot_drive_sibling_from_child(self):
        top = Component("t")
        c1 = top.add("c1", Component())
        c2 = top.add("c2", Component())
        src = c1.port_in("i")
        dst = c2.port_in("i")
        with pytest.raises(DesignError, match="cannot drive"):
            top.connect(src, dst)

    def test_out_cannot_be_sink_between_siblings(self):
        top = Component("t")
        c1 = top.add("c1", Component())
        c2 = top.add("c2", Component())
        src = c1.port_out("o")
        dst = c2.port_out("o")
        with pytest.raises(DesignError, match="cannot be driven"):
            top.connect(src, dst)

    def test_two_drivers_rejected(self):
        top = Component("t")
        c1 = top.add("c1", Component())
        c2 = top.add("c2", Component())
        c3 = top.add("c3", Component())
        sink = c3.port_in("i")
        top.connect(c1.port_out("o"), sink)
        with pytest.raises(DesignError, match="driven by"):
            top.connect(c2.port_out("o"), sink)

    def test_rejected_connection_leaves_groups_untouched(self):
        """Regression: a second-driver rejection must not have already
        merged the net groups — the loser keeps its own net."""
        top = Component("t")
        c1 = top.add("c1", Component())
        c2 = top.add("c2", Component())
        c3 = top.add("c3", Component())
        winner = c1.port_out("o")
        loser = c2.port_out("o")
        sink = c3.port_in("i")
        top.connect(winner, sink)
        with pytest.raises(DesignError):
            top.connect(loser, sink)
        top.elaborate(Simulator())
        assert sink.net is winner.net
        assert loser.net is not winner.net
        assert loser.net.name == "t.c2.o"

    def test_input_cannot_alias_internally_driven_net(self):
        """Regression: a parent 'in' port must not merge onto a net a
        child output already drives — that net would have two sources."""
        top = Component("t")
        c1 = top.add("c1", Component())
        c2 = top.add("c2", Component())
        x = top.port_in("x")
        sink = c2.port_in("i")
        top.connect(c1.port_out("o"), sink)
        with pytest.raises(DesignError, match="cannot also feed"):
            top.connect(x, sink)
        # ... and the rejected input kept its own net
        top.elaborate(Simulator())
        assert x.net is not sink.net
        assert x.net.name == "t.x"

    def test_two_same_level_inputs_cannot_share_a_sink(self):
        top = Component("t")
        c1 = top.add("c1", Component())
        sink = c1.port_in("i")
        top.connect(top.port_in("x"), sink)
        with pytest.raises(DesignError, match="cannot also feed"):
            top.connect(top.port_in("y"), sink)

    def test_driver_cannot_join_an_externally_fed_net(self):
        top = Component("t")
        c1 = top.add("c1", Component())
        c2 = top.add("c2", Component())
        sink = c2.port_in("i")
        top.connect(top.port_in("x"), sink)
        with pytest.raises(DesignError, match="already fed"):
            top.connect(c1.port_out("o"), sink)

    def test_driver_satisfying_a_childs_input_chain_allowed(self):
        """c2's internal chain makes c2.i a provisional feed; a sibling
        output later supplying that input is the one true source."""

        class Chained(Component):
            def __init__(self, name=None):
                super().__init__(name)
                self.i = self.port_in("i")
                inner = self.add("inner", Component())
                self.connect(self.i, inner.port_in("i"))

        top = Component("t")
        c1 = top.add("c1", Component())
        c2 = top.add("c2", Chained())
        top.connect(c1.port_out("o"), c2.i)
        top.elaborate(Simulator())
        assert c2.i.net.name == "t.c1.o"

    def test_input_chain_through_hierarchy_allowed(self):
        """A top input feeding a child input that a deeper build then
        feeds onward is one source, not two — must stay legal."""

        class Inner(Component):
            def __init__(self, name=None):
                super().__init__(name)
                self.i = self.port_in("i")

            def build(self, sim):
                self.adopt(Inverter(sim, self.net("i"),
                                    name=self.sub("inv")))

        class Outer(Component):
            def __init__(self, name=None):
                super().__init__(name)
                self.i = self.port_in("i")
                inner = self.add("inner", Inner())
                self.connect(self.i, inner.i)

        top = Component("t")
        outer = top.add("o1", Outer())
        x = top.port_in("x")
        top.connect(x, outer.i)
        top.elaborate(Simulator())
        assert outer.i.net is x.net

    def test_foreign_port_rejected(self):
        top = Component("t")
        other = Component("o")
        with pytest.raises(DesignError, match="not a port of"):
            top.connect(other.port_out("x"), top.port_out("y"))

    def test_unelaborated_net_access_raises(self):
        comp = Component("t")
        port = comp.port_in("a")
        with pytest.raises(DesignError, match="not elaborated"):
            _ = port.net

    def test_elaborate_twice_rejected(self):
        top = HalfAdder("ha")
        top.elaborate(Simulator())
        with pytest.raises(DesignError, match="already elaborated"):
            top.elaborate(Simulator())

    def test_elaborate_from_child_rejected(self):
        top = TwoStage()
        with pytest.raises(DesignError, match="root"):
            top.ha1.elaborate(Simulator())

    def test_adopt_derives_leaf_from_tree_path(self):
        """Regression: a declarative component adopting a sub()-named
        eager element without an explicit leaf= must strip its *path*
        prefix (its leaf name is set by the parent, not its class)."""

        class PathNamed(Component):
            def __init__(self, name=None):
                super().__init__(name)
                self.a = self.port_in("a")

            def build(self, sim):
                self.adopt(Inverter(sim, self.net("a"),
                                    name=self.sub("inv")))

        top = Component("top")
        stage = top.add("st1", PathNamed())
        top.elaborate(Simulator())
        assert list(stage.children) == ["inv"]
        assert top.find("st1.inv").name == "top.st1.inv"


class TestElaboration:
    def test_nets_named_by_hierarchy_path(self):
        top = TwoStage()
        sim = Simulator()
        top.elaborate(sim)
        names = {sig.name for sig in sim.created_signals}
        # port nets take the path of their driving (or outermost) port
        assert "two.x" in names
        assert "two.ha1.s" in names  # ha1.s drives ha2.a: driver names it
        assert "two.ha1.xor.out" not in names  # xor drives the port net
        # eager leaf gates name their own internal nets by instance path
        assert any(n.startswith("two.ha1.") for n in names)

    def test_logic_settles_correctly(self):
        top = TwoStage()
        sim = Simulator()
        top.elaborate(sim)
        x, y = top.find("x"), top.find("y")
        sim.run(until=10_000)
        x.set(1)
        y.set(1)
        sim.run(until=20_000)
        # x=1,y=1: ha1.s=0, ha1.c=1 -> ha2: a=0,b=1 -> s=1
        assert top.find("out").value == 1

    def test_same_description_elaborates_on_both_kernels(self):
        def run(stack):
            sim = stack.Simulator()
            top = TwoStage()
            top.elaborate(sim)
            enable_all_traces(sim)
            x, y = top.find("x"), top.find("y")
            for i in range(12):
                x.drive(i & 1, delay=i * 700, inertial=False)
                y.drive((i >> 1) & 1, delay=i * 700 + 300,
                        inertial=False)
            sim.run()
            return snapshot(sim)

        assert run(OPT) == run(REF)

    def test_bind_attaches_existing_net(self):
        sim = Simulator()
        clk = sim.signal("ext.clk")
        top = HalfAdder("ha")
        top.bind(top.a, clk)
        top.elaborate(sim)
        assert top.net("a") is clk

    def test_bound_width_mismatch_rejected(self):
        sim = Simulator()
        bus = sim.bus(8, "ext.bus")
        top = Component("t")
        port = top.port_in("a", width=4)
        with pytest.raises(DesignError, match="width"):
            top.bind(port, bus)


class TestPathAddressing:
    def make_link(self, kind="I3"):
        sim = Simulator()
        clock = OPT.Clock.from_mhz(sim, 300, "clk")
        builders = {"I1": build_i1, "I2": build_i2, "I3": build_i3}
        link = builders[kind](sim, clock.signal, LinkConfig(), st012())
        return sim, clock, link

    def test_find_resolves_children_ports_and_attributes(self):
        sim, _clock, link = self.make_link()
        design = Design(link, sim)
        # child chain + attribute fallback
        assert design.find("i3.s2a.flag0.flag_a").name == "i3.s2a.flag0.a"
        # port on an eager component
        assert design.find("s2a.stall").name == "i3.s2a.stall"
        # bracket indexing into lists and buses
        assert design.find("wdes.sreg.stages[1]").width == 8
        assert design.find("s2a.flit_in[3]").name == "i3.s2a.flitin[3]"

    def test_find_error_lists_candidates(self):
        sim, _clock, link = self.make_link()
        design = Design(link, sim)
        with pytest.raises(DesignError, match="children"):
            design.find("i3.nonexistent.x")

    def test_find_typo_suggests_nearest_path(self):
        sim, _clock, link = self.make_link()
        design = Design(link, sim)
        with pytest.raises(DesignError, match="did you mean") as err:
            design.find("i3.s2a.flagg0")
        # the suggestion is the full dotted path — the same form lint
        # findings use — so it pastes straight back into find()
        assert "'i3.s2a.flag0'" in str(err.value)
        design.find("i3.s2a.flag0")  # and it resolves

    def test_find_typo_suggests_ports_too(self):
        sim, _clock, link = self.make_link()
        design = Design(link, sim)
        with pytest.raises(DesignError, match="did you mean") as err:
            design.find("s2a.stal")
        assert "stall" in str(err.value)

    def test_find_with_no_near_match_falls_back_to_listing(self):
        sim, _clock, link = self.make_link()
        design = Design(link, sim)
        with pytest.raises(DesignError) as err:
            design.find("i3.zzzzqqqq")
        message = str(err.value)
        assert "did you mean" not in message
        assert "children" in message

    def test_force_release_scalar_by_path(self):
        sim, _clock, link = self.make_link()
        design = Design(link, sim)
        design.force("i3.s2a.stall", 1)
        assert link.s2a.stall.value == 1
        assert link.s2a.stall.is_forced
        design.release("i3.s2a.stall")
        assert not link.s2a.stall.is_forced

    def test_force_release_bus_by_path(self):
        sim, _clock, link = self.make_link()
        design = Design(link, sim)
        design.force("i3.s2a.flit_in", 0xDEADBEEF)
        assert link.s2a.flit_in.value == 0xDEADBEEF
        assert all(sig.is_forced for sig in link.s2a.flit_in.signals)
        design.release("i3.s2a.flit_in")
        assert not any(sig.is_forced for sig in link.s2a.flit_in.signals)

    def test_force_overflow_rejected(self):
        sim, _clock, link = self.make_link()
        design = Design(link, sim)
        with pytest.raises(DesignError, match="does not fit"):
            design.force("i3.s2a.flit_in", 1 << 32)

    def test_force_on_component_rejected(self):
        sim, _clock, link = self.make_link()
        design = Design(link, sim)
        with pytest.raises(DesignError, match="not a net"):
            design.force("i3.s2a", 1)

    def test_nets_by_instance_partitions_created_signals(self):
        sim, _clock, link = self.make_link()
        design = Design(link, sim)
        grouped = design.nets_by_instance()
        total = sum(len(nets) for nets in grouped.values())
        assert total == len(sim.created_signals)
        # the clock is testbench-level (owned by no instance)
        assert [s.name for s in grouped[""]] == ["clk"]
        # FIFO register nets live under their own register instance
        assert any("i3.s2a.reg0" in path for path in grouped)

    def test_i1_nets_attributed_to_the_pipeline_instance(self):
        """Regression: the I1 wrapper shares its name prefix with the
        pipeline it wraps; the pipeline (which created the nets) must
        own them, not the wrapper."""
        sim, _clock, link = self.make_link("I1")
        grouped = Design(link, sim).nets_by_instance()
        assert "i1" not in grouped  # wrapper created no nets itself
        pipe_nets = grouped["i1.pipe"]
        assert len(pipe_nets) == len(sim.created_signals) - 1  # - clk
        assert any(sig.name == "i1.st0.valid" for sig in pipe_nets)

    def test_monitor_add_tree_groups_by_instance_path(self):
        sim, _clock, link = self.make_link()
        monitor = ActivityMonitor()
        groups = monitor.add_tree(link, sim, default_group="(tb)")
        assert "i3.s2a" in groups and "(tb)" in groups
        monitored = sum(
            len(monitor.signals_in(group)) for group in monitor.groups
        )
        assert monitored == len(sim.created_signals)


# ----------------------------------------------------------------------
# the acceptance-criterion differential: design-built I3 testbench is
# bit-identical to the legacy construction path, on both kernels
# ----------------------------------------------------------------------
def run_legacy(stack, kind="I3"):
    sim = stack.Simulator()
    clock = stack.Clock.from_mhz(sim, 300, "clk")
    builders = {"I1": build_i1, "I2": build_i2, "I3": build_i3}
    link = builders[kind](sim, clock.signal, LinkConfig(), st012())
    enable_all_traces(sim)
    bench = LinkTestbench(sim, clock, link)
    m = bench.run(FLITS)
    vcd = io.StringIO()
    tracer = Tracer()
    tracer.watch(*sim.created_signals)
    write_vcd(tracer, vcd)
    return {
        "nets": snapshot(sim),
        "values": tuple(m.received_values),
        "delivery_times": tuple(m.delivery_times_ps),
        "vcd": vcd.getvalue(),
    }


def run_design(stack, kind="I3"):
    sim = stack.Simulator()
    design = Design(
        LinkBench(kind=kind, config=LinkConfig(), tech=st012(),
                  freq_mhz=300.0, clock_cls=stack.Clock)
    ).elaborate(sim)
    bench_comp = design.top
    enable_all_traces(sim)
    bench = LinkTestbench(sim, bench_comp.clock, bench_comp.link)
    m = bench.run(FLITS)
    vcd = io.StringIO()
    tracer = Tracer()
    tracer.watch(*sim.created_signals)
    write_vcd(tracer, vcd)
    return {
        "nets": snapshot(sim),
        "values": tuple(m.received_values),
        "delivery_times": tuple(m.delivery_times_ps),
        "vcd": vcd.getvalue(),
    }


class TestDesignVsLegacyDifferential:
    @pytest.mark.parametrize("kind", ["I1", "I2", "I3"])
    def test_design_build_bit_identical_to_legacy(self, kind):
        assert run_design(OPT, kind) == run_legacy(OPT, kind)

    def test_design_build_bit_identical_on_reference_kernel(self):
        assert run_design(REF) == run_legacy(REF)

    def test_design_build_bit_identical_across_kernels(self):
        assert run_design(OPT) == run_design(REF)

    def test_design_path_probe_during_run(self):
        sim = Simulator()
        design = Design(
            LinkBench(kind="I3", config=LinkConfig(), tech=st012())
        ).elaborate(sim)
        link = design.top.link
        link.flit_in.set(0xA5A5A5A5)
        link.valid_in.set(1)
        sim.run(until=200_000)
        # the word made it through the serializer chain: probe by path
        assert design.find("tb.i3.wdes.out.data").value == 0xA5A5A5A5


# ----------------------------------------------------------------------
# tree-walking analysis pinned against the module tables
# ----------------------------------------------------------------------
class TestTreeWalkingAnalysis:
    @pytest.mark.parametrize("kind", ["I1", "I2", "I3"])
    @pytest.mark.parametrize("n_buffers", [2, 4, 6])
    def test_area_from_tree_pins_module_table(self, kind, n_buffers):
        tech = st012()
        sim = Simulator()
        clock = OPT.Clock.from_mhz(sim, 300, "clk")
        builders = {"I1": build_i1, "I2": build_i2, "I3": build_i3}
        link = builders[kind](
            sim, clock.signal, LinkConfig(n_buffers=n_buffers), tech
        )
        from_tree = link_area_from_tree(link, tech)
        from_table = link_area(tech, kind, n_buffers)
        assert from_tree.modules == from_table.modules
        assert from_tree.quantities == from_table.quantities
        assert from_tree.total_um2 == pytest.approx(from_table.total_um2)
        # canonical Table 2 row order is preserved
        assert list(from_tree.modules) == list(from_table.modules)

    def test_instance_area_rows_carry_paths(self):
        tech = st012()
        sim = Simulator()
        clock = OPT.Clock.from_mhz(sim, 300, "clk")
        link = build_i2(sim, clock.signal, LinkConfig(), tech)
        rows = instance_area_rows(link, tech)
        paths = [path for path, _label, _area in rows]
        assert "i2.s2a" in paths
        assert "i2.chain.s0" in paths  # wire-buffer stage, per instance

    @pytest.mark.parametrize("kind", ["I1", "I2", "I3"])
    def test_wire_count_from_tree_pins_link_attribute(self, kind):
        sim = Simulator()
        clock = OPT.Clock.from_mhz(sim, 300, "clk")
        builders = {"I1": build_i1, "I2": build_i2, "I3": build_i3}
        link = builders[kind](sim, clock.signal, LinkConfig(), st012())
        assert link_wire_count_from_tree(link) == link.wire_count

    def test_timing_from_tree_pins_analytical_models(self):
        tech = st012()
        sim = Simulator()
        clock = OPT.Clock.from_mhz(sim, 300, "clk")
        i2 = build_i2(sim, clock.signal, LinkConfig(), tech)
        i3 = build_i3(sim, clock.signal, LinkConfig(), tech, name="i3b")
        assert (
            link_timing_from_tree(i2, tech).cycle_delay_ps
            == per_transfer_cycle_delay(tech.handshake, 4, 4).cycle_delay_ps
        )
        assert (
            link_timing_from_tree(i3, tech).cycle_delay_ps
            == per_word_cycle_delay(tech.handshake, 4, 4).cycle_delay_ps
        )
        i1 = build_i1(sim, clock.signal, LinkConfig(), tech)
        with pytest.raises(ValueError, match="clock-bound"):
            link_timing_from_tree(i1, tech)

    def test_activity_by_instance_totals_match_global_counters(self):
        sim = Simulator()
        clock = OPT.Clock.from_mhz(sim, 300, "clk")
        link = build_i3(sim, clock.signal, LinkConfig(), st012())
        bench = LinkTestbench(sim, clock, link)
        bench.run(FLITS[:4])
        rows = activity_by_instance(link, sim)
        total = sum(transitions for *_head, transitions, _sw in rows)
        expected = sum(
            sig.rising + sig.falling for sig in sim.created_signals
        )
        assert total == expected
        rollup = subtree_activity(rows)
        # the testbench adopted the link, so its root path is "tb.i3"
        root_path = rows[0][0]
        assert root_path == "tb.i3"
        assert rollup[root_path][0] == total - rollup.get("", (0, 0))[0]

    def test_render_design_summary_lists_instances(self):
        sim = Simulator()
        clock = OPT.Clock.from_mhz(sim, 300, "clk")
        link = build_i3(sim, clock.signal, LinkConfig(), st012())
        text = render_design_summary(Design(link, sim))
        assert "SyncToAsyncInterface" in text
        assert "nets" in text


# ----------------------------------------------------------------------
# mesh design: path-addressed links, domains, campaign hooks
# ----------------------------------------------------------------------
class TestMeshDesign:
    def test_paths_and_lookup(self):
        mesh = MeshDesign(Topology(3, 3))
        link = mesh.link_by_path("node[1][2].west")
        assert link.src == (2, 1)
        assert link.noc_port is NocPort.WEST
        assert mesh.link_path((2, 1), NocPort.WEST) == "node[1][2].west"
        assert mesh.find("node[1][2].west") is link

    def test_degrade_attaches_params_and_tag(self):
        mesh = MeshDesign(Topology(2, 2))
        marker = object()
        mesh.degrade("node[0][0].east", marker)
        hook = mesh.link_params_for()
        assert hook((0, 0), NocPort.EAST, (1, 0)) is marker
        assert hook((0, 0), NocPort.NORTH, (0, 1)) is None
        assert "[degraded]" in mesh.tree()

    def test_degrade_unknown_path_raises(self):
        mesh = MeshDesign(Topology(2, 2))
        with pytest.raises(DesignError):
            mesh.degrade("node[0][0].west", object())  # edge of mesh

    def test_domains_and_cross_domain_links(self):
        mesh = MeshDesign(Topology(4, 4))
        counts = mesh.assign_domains(
            lambda node: "slow" if node.x >= 2 else "fast"
        )
        assert counts == {"fast": 8, "slow": 8}
        crossing = mesh.cross_domain_links()
        # the domain wall crosses 4 rows, links in both directions
        assert len(crossing) == 8
        assert all(
            mesh.node_at(link.src).domain != mesh.node_at(link.dst).domain
            for link in crossing
        )


class TestScenarioDesignHooks:
    def test_fault_injection_explicit_paths(self):
        from repro.experiments import fault_injection

        result = fault_injection.run(
            mesh_size=3, cycles=150,
            fault_paths="node[0][0].east,node[1][1].north",
        )
        assert not result.failures()
        assert "node[0][0].east" in result.description

    def test_fault_injection_design_hook(self):
        from repro.runner import registry

        registry.load_builtin()
        sc = registry.get("fault-injection")
        assert sc.has_design
        design = sc.design_for(overrides={"mesh_size": 3})
        degraded = [
            path for path, comp in design.top.walk()
            if getattr(comp, "tag", None) == "degraded"
        ]
        assert len(degraded) == 3  # default n_faults

    def test_gals_design_hook_assigns_domains(self):
        from repro.runner import registry

        registry.load_builtin()
        design = registry.get("gals-mesh").design_for()
        domains = {
            comp.domain
            for _path, comp in design.top.walk()
            if hasattr(comp, "domain")
        }
        assert domains == {"fast", "slow"}

    def test_throughput_design_hook_is_elaborated(self):
        from repro.runner import registry

        registry.load_builtin()
        design = registry.get("throughput").design_for()
        assert design.is_elaborated
        assert design.find("tb.i3.s2a.stall").name == "i3.s2a.stall"

    def test_scenario_without_design_raises(self):
        from repro.runner import registry

        registry.load_builtin()
        with pytest.raises(registry.ScenarioError, match="no design"):
            registry.get("fig12").design_for()


class TestCli:
    def test_inspect_tree(self, capsys):
        from repro.__main__ import main

        assert main(["inspect", "gals-mesh", "--tree",
                     "--set", "mesh_size=2"]) == 0
        out = capsys.readouterr().out
        assert "node[0][0] <MeshNode>" in out
        assert "domain" in out

    def test_inspect_summary_table(self, capsys):
        from repro.__main__ import main

        assert main(["inspect", "fault-injection",
                     "--set", "mesh_size=2"]) == 0
        out = capsys.readouterr().out
        assert "MeshDesign" in out
        assert "instance" in out

    def test_inspect_without_design_errors(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["inspect", "fig12"])
        err = capsys.readouterr().err
        assert "no design tree" in err

    def test_inspect_compiled_prints_levelized_stats(self, capsys):
        from repro.__main__ import main

        assert main(["inspect", "compiled-fault-campaign",
                     "--compiled", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "lanes per word:  64" in out
        assert "gates per level" in out
        # the scenario batches along its seed axis: the packing
        # estimate tells a sweep author what one word can carry
        assert "batch packing: up to 16" in out

    def test_inspect_compiled_explains_uncompilable_designs(
            self, capsys):
        from repro.__main__ import main

        assert main(["inspect", "gals-mesh", "--compiled",
                     "--set", "mesh_size=2"]) == 0
        out = capsys.readouterr().out
        assert "not compilable:" in out

    def test_list_verbose_prints_param_specs(self, capsys):
        from repro.__main__ import main

        assert main(["list", "--verbose"]) == 0
        out = capsys.readouterr().out
        # typed parameter rows: name, type, default, choices
        assert "param" in out and "type" in out and "choices" in out
        assert "mesh_size" in out
        assert "fast-mode overrides" in out
        assert "design tree (see: inspect)" in out

    def test_list_verbose_with_tag_filter(self, capsys):
        from repro.__main__ import main

        assert main(["list", "--verbose", "--tags", "gals"]) == 0
        out = capsys.readouterr().out
        assert "gals-mesh" in out
        assert "fig12" not in out
