"""Unit tests for the shared graph utilities.

``shortest_cycle`` is the levelizer's historical loop diagnostic
extracted into :mod:`repro.graphutil`; these tests pin its exact
behavior (order, tie-breaks) alongside the Kahn levelization and the
all-loops reporting the lint engine builds on.
"""

import pytest

from repro.graphutil import (
    feedback_cycles,
    shortest_cycle,
    strongly_connected_components,
    topological_levels,
)


class TestTopologicalLevels:
    def test_chain_levels(self):
        # 0 <- 1 <- 2  (deps[i] = what i reads)
        deps = [[], [0], [1]]
        levels, leftover = topological_levels(deps)
        assert levels == [[0], [1], [2]]
        assert leftover == []

    def test_diamond_groups_parallel_nodes(self):
        # 1 and 2 both read 0; 3 reads both
        deps = [[], [0], [0], [1, 2]]
        levels, leftover = topological_levels(deps)
        assert levels == [[0], [1, 2], [3]]
        assert leftover == []

    def test_levels_sorted_ascending(self):
        deps = [[], [], [0, 1], [0, 1]]
        levels, _ = topological_levels(deps)
        assert levels == [[0, 1], [2, 3]]

    def test_cycle_members_left_over(self):
        # 1 <-> 2 loop; 3 reads the loop; 0 is free
        deps = [[], [2], [1], [1]]
        levels, leftover = topological_levels(deps)
        assert levels == [[0]]
        # downstream-of-loop nodes are leftover too
        assert leftover == [1, 2, 3]

    def test_empty_graph(self):
        assert topological_levels([]) == ([], [])


class TestShortestCycle:
    def test_two_node_loop(self):
        deps = [[1], [0]]
        cycle = shortest_cycle(deps, [0, 1])
        assert set(cycle) == {0, 1}
        assert len(cycle) == 2

    def test_cycle_walks_dependency_edges(self):
        # 0 reads 1, 1 reads 2, 2 reads 0; the returned cycle follows
        # dependency edges — each entry reads the entry after it
        deps = [[1], [2], [0]]
        cycle = shortest_cycle(deps, [0, 1, 2])
        assert len(cycle) == 3
        for i, node in enumerate(cycle):
            successor = cycle[(i + 1) % 3]
            assert successor in deps[node]

    def test_shortest_wins_over_blob(self):
        # a 2-cycle (0,1) tangled with a 3-cycle (0,2,3)
        deps = [[1, 3], [0], [0], [2]]
        cycle = shortest_cycle(deps, [0, 1, 2, 3])
        assert set(cycle) == {0, 1}

    def test_self_loop_is_length_one(self):
        deps = [[0]]
        assert shortest_cycle(deps, [0]) == [0]

    def test_no_cycle_returns_empty(self):
        deps = [[], [0]]
        assert shortest_cycle(deps, [0, 1]) == []

    def test_members_restrict_the_search(self):
        # the only cycle goes through node 2, excluded from members
        deps = [[1], [2], [0]]
        assert shortest_cycle(deps, [0, 1]) == []


class TestStronglyConnectedComponents:
    def test_two_independent_loops(self):
        deps = [[1], [0], [3], [2], []]
        comps = strongly_connected_components(deps, [0, 1, 2, 3, 4])
        assert [0, 1] in comps and [2, 3] in comps and [4] in comps

    def test_components_ordered_by_smallest_member(self):
        deps = [[], [2], [1]]
        comps = strongly_connected_components(deps, [2, 1, 0])
        assert comps == [[0], [1, 2]]

    def test_deep_chain_no_recursion_error(self):
        n = 5000
        deps = [[i - 1] if i else [] for i in range(n)]
        comps = strongly_connected_components(deps, list(range(n)))
        assert len(comps) == n


class TestFeedbackCycles:
    def test_reports_every_independent_loop(self):
        # loops (0,1) and (2,3); node 4 strictly downstream of both
        deps = [[1], [0], [3], [2], [0, 2]]
        _levels, leftover = topological_levels(deps)
        assert leftover == [0, 1, 2, 3, 4]
        cycles = feedback_cycles(deps, leftover)
        assert sorted(sorted(c) for c in cycles) == [[0, 1], [2, 3]]

    def test_downstream_singletons_not_reported(self):
        deps = [[1], [0], [0]]
        cycles = feedback_cycles(deps, [0, 1, 2])
        assert sorted(sorted(c) for c in cycles) == [[0, 1]]

    def test_self_loop_reported(self):
        deps = [[0], []]
        assert feedback_cycles(deps, [0]) == [[0]]

    def test_one_cycle_per_tangled_blob(self):
        # 2-cycle and 3-cycle sharing node 0: one SCC, one (shortest)
        # reported cycle
        deps = [[1, 3], [0], [0], [2]]
        cycles = feedback_cycles(deps, [0, 1, 2, 3])
        assert len(cycles) == 1
        assert set(cycles[0]) == {0, 1}


class TestLevelizeIntegration:
    """The extracted helpers feed levelize() unchanged (pinned by
    test_compiled_backend too; these cover the seam directly)."""

    def test_loop_error_matches_shortest_cycle(self):
        from repro.compiled import CombinationalLoopError, extract
        from repro.compiled.levelize import _gate_deps, levelize
        from repro.design.component import Component
        from repro.elements.gates import Nor2
        from repro.sim import Simulator

        sim = Simulator()
        s, r = sim.signal("s"), sim.signal("r")
        q, nq = sim.signal("q"), sim.signal("nq")
        root = Component("sr")
        root.adopt(Nor2(sim, r, nq, out=q, name="n1"))
        root.adopt(Nor2(sim, s, q, out=nq, name="n2"))
        netlist = extract(root)
        with pytest.raises(CombinationalLoopError) as err:
            levelize(netlist)
        deps = _gate_deps(netlist)
        _levels, leftover = topological_levels(deps)
        expected = [
            netlist.gates[gi].path
            for gi in shortest_cycle(deps, leftover)
        ]
        assert err.value.cycle == expected
