"""Soak tests: long randomized streams under adversarial conditions.

Longer-running randomized scenarios (fixed seeds, deterministic) that
exercise the links and the mesh well past the short unit-test horizons:
hundreds of flits, irregular stall patterns, mixed packet sizes, and a
mesh soak near saturation.  These catch slow state corruption (pointer
drift in the FIFO rings, wormhole lock leaks, credit leaks) that short
tests cannot.
"""

import random

import pytest

from repro.link import LinkConfig, LinkTestbench, build_link
from repro.link.behavioral import derive_link_params
from repro.noc import (
    Network,
    Packet,
    Topology,
    TrafficConfig,
    TrafficGenerator,
    reset_packet_ids,
)
from repro.sim import Clock, Simulator
from repro.tech import st012


@pytest.fixture(autouse=True)
def fresh_ids():
    reset_packet_ids()


@pytest.mark.parametrize("kind", ["I1", "I2", "I3"])
class TestLinkSoak:
    def test_200_random_flits(self, kind):
        rng = random.Random(0xC0FFEE)
        flits = [rng.getrandbits(32) for _ in range(200)]
        sim = Simulator()
        clock = Clock.from_mhz(sim, 300)
        link = build_link(sim, clock.signal, kind, LinkConfig())
        bench = LinkTestbench(sim, clock, link)
        m = bench.run(flits, timeout_ns=1e7)
        assert m.received_values == flits

    def test_random_stall_pattern(self, kind):
        rng = random.Random(0xBEEF)
        flits = [rng.getrandbits(32) for _ in range(60)]
        stall_pattern = [rng.random() < 0.4 for _ in range(37)]  # prime len
        sim = Simulator()
        clock = Clock.from_mhz(sim, 300)
        link = build_link(sim, clock.signal, kind, LinkConfig())
        bench = LinkTestbench(sim, clock, link)
        m = bench.run(flits, timeout_ns=1e7,
                      stall_pattern=[int(s) for s in stall_pattern])
        assert m.received_values == flits


class TestMeshSoak:
    def test_near_saturation_uniform(self):
        """4×4 mesh at a high injection rate for 5k cycles: everything
        injected must eventually eject, latencies stay finite."""
        topo = Topology(4, 4)
        net = Network(topo, derive_link_params(st012(), "I3", 300))
        traffic = TrafficGenerator(
            topo, TrafficConfig(injection_rate=0.35, seed=0xF00D)
        )
        net.run(5000, traffic)
        net.drain(max_cycles=500_000)
        stats = net.stats
        assert stats.flits_ejected == stats.flits_injected
        assert stats.packets_ejected > 1000
        assert stats.p99_packet_latency < 500

    def test_mixed_packet_lengths(self):
        """Interleave 1/4/16-flit packets from every node."""
        topo = Topology(3, 3)
        net = Network(topo, derive_link_params(st012(), "I2", 300))
        rng = random.Random(0xABba)
        nodes = list(topo.nodes())
        expected_flits = 0
        for _ in range(120):
            src, dest = rng.sample(nodes, 2)
            length = rng.choice((1, 4, 16))
            expected_flits += length
            net.offer_packet(Packet(src=src, dest=dest, length_flits=length))
        net.drain(max_cycles=500_000)
        assert net.stats.flits_ejected == expected_flits

    def test_vc_mesh_soak(self):
        topo = Topology(4, 4)
        net = Network(topo, derive_link_params(st012(), "I3", 300), n_vcs=2)
        traffic = TrafficGenerator(
            topo,
            TrafficConfig(injection_rate=0.3, seed=0xD00D, n_vcs=2),
        )
        net.run(3000, traffic)
        net.drain(max_cycles=500_000)
        assert net.stats.flits_ejected == net.stats.flits_injected

    def test_wormhole_locks_all_released_after_drain(self):
        """After draining, no switch may hold a stale wormhole lock."""
        topo = Topology(4, 4)
        net = Network(topo, derive_link_params(st012(), "I1", 300))
        traffic = TrafficGenerator(
            topo, TrafficConfig(injection_rate=0.25, seed=0xCAFE)
        )
        net.run(2000, traffic)
        net.drain(max_cycles=300_000)
        for switch in net.switches.values():
            assert switch.buffered_flits == 0
            for owner in switch.output_owner.values():
                assert owner is None
            for queues in switch.inputs.values():
                for queue in queues:
                    assert queue.locked_output is None
