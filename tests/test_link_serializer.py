"""Unit tests for the per-transfer serializer/de-serializer (Fig 6)."""

import pytest

from repro.link import Channel, Deserializer, Serializer, check_slicing
from repro.link.wiring import wire, wire_bus
from repro.sim import Simulator, spawn
from repro.link.channel import sink_process, source_process


@pytest.fixture
def sim():
    return Simulator()


class TestCheckSlicing:
    def test_valid(self):
        assert check_slicing(32, 8) == 4
        assert check_slicing(32, 16) == 2
        assert check_slicing(32, 32) == 1

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            check_slicing(32, 5)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            check_slicing(32, 0)
        with pytest.raises(ValueError):
            check_slicing(0, 8)


class TestSerializer:
    def test_emits_lsb_slice_first(self, sim):
        in_ch = Channel(sim, 32, "in")
        ser = Serializer(sim, in_ch, slice_width=8)
        slices = []
        spawn(sim, source_process(in_ch, [0xDEADBEEF]))
        spawn(sim, sink_process(ser.out_ch, slices, count=4))
        sim.run(max_events=1_000_000)
        assert slices == [0xEF, 0xBE, 0xAD, 0xDE]

    def test_word_acked_after_all_slices(self, sim):
        in_ch = Channel(sim, 32, "in")
        ser = Serializer(sim, in_ch, slice_width=8)
        timeline = []
        in_ch.ack.on_change(
            lambda s: timeline.append(("word_ack", sim.now)) if s.value else None
        )
        ser.out_ch.req.on_change(
            lambda s: timeline.append(("slice_req", sim.now)) if s.value else None
        )
        spawn(sim, source_process(in_ch, [0x12345678]))
        slices = []
        spawn(sim, sink_process(ser.out_ch, slices, count=4))
        sim.run(max_events=1_000_000)
        kinds = [k for k, _ in timeline]
        assert kinds == ["slice_req"] * 4 + ["word_ack"]

    def test_multiple_words(self, sim):
        in_ch = Channel(sim, 32, "in")
        ser = Serializer(sim, in_ch, slice_width=8)
        slices = []
        words = [0xA5A5A5A5, 0x5A5A5A5A]
        spawn(sim, source_process(in_ch, words))
        spawn(sim, sink_process(ser.out_ch, slices, count=8))
        sim.run(max_events=1_000_000)
        assert slices == [0xA5] * 4 + [0x5A] * 4
        assert ser.words_serialized == 2

    def test_sixteen_bit_slices(self, sim):
        in_ch = Channel(sim, 32, "in")
        ser = Serializer(sim, in_ch, slice_width=16)
        slices = []
        spawn(sim, source_process(in_ch, [0xCAFEBABE]))
        spawn(sim, sink_process(ser.out_ch, slices, count=2))
        sim.run(max_events=1_000_000)
        assert slices == [0xBABE, 0xCAFE]

    def test_sel_is_one_hot_through_transfer(self, sim):
        in_ch = Channel(sim, 32, "in")
        ser = Serializer(sim, in_ch, slice_width=8)
        spawn(sim, source_process(in_ch, [0x01020304]))
        slices = []
        spawn(sim, sink_process(ser.out_ch, slices, count=4))
        sim.run(max_events=1_000_000)
        assert sum(s.value for s in ser.sequencer.sel) == 1


class TestDeserializer:
    def test_reassembles_word(self, sim):
        in_ch = Channel(sim, 8, "in")
        des = Deserializer(sim, in_ch, word_width=32)
        words = []
        spawn(sim, source_process(in_ch, [0xEF, 0xBE, 0xAD, 0xDE]))
        spawn(sim, sink_process(des.out_ch, words, count=1))
        sim.run(max_events=1_000_000)
        assert words == [0xDEADBEEF]
        assert des.words_deserialized == 1

    def test_multiple_words(self, sim):
        in_ch = Channel(sim, 8, "in")
        des = Deserializer(sim, in_ch, word_width=16)
        words = []
        spawn(sim, source_process(in_ch, [0x22, 0x11, 0x44, 0x33]))
        spawn(sim, sink_process(des.out_ch, words, count=2))
        sim.run(max_events=1_000_000)
        assert words == [0x1122, 0x3344]

    def test_word_req_after_last_slice(self, sim):
        in_ch = Channel(sim, 8, "in")
        des = Deserializer(sim, in_ch, word_width=32)
        timeline = []
        des.out_ch.req.on_change(
            lambda s: timeline.append(sim.now) if s.value else None
        )
        acks = []
        in_ch.ack.on_change(
            lambda s: acks.append(sim.now) if s.value else None
        )
        words = []
        spawn(sim, source_process(in_ch, [1, 2, 3, 4]))
        spawn(sim, sink_process(des.out_ch, words, count=1))
        sim.run(max_events=1_000_000)
        assert len(acks) == 4
        assert len(timeline) == 1
        assert timeline[0] > acks[-1]


class TestSerializerDeserializerRoundTrip:
    def _roundtrip(self, sim, words, slice_width=8, word_width=32):
        in_ch = Channel(sim, word_width, "in")
        ser = Serializer(sim, in_ch, slice_width=slice_width)
        des = Deserializer(sim, Channel(sim, slice_width, "mid"),
                           word_width=word_width)
        # connect ser.out -> des.in
        wire_bus(ser.out_ch.data, des.in_ch.data, 0)
        wire(ser.out_ch.req, des.in_ch.req, 0)
        wire(des.in_ch.ack, ser.out_ch.ack, 0)
        received = []
        spawn(sim, source_process(in_ch, words))
        spawn(sim, sink_process(des.out_ch, received, count=len(words)))
        sim.run(max_events=5_000_000)
        return received

    def test_single_word(self, sim):
        assert self._roundtrip(sim, [0xDEADBEEF]) == [0xDEADBEEF]

    def test_worst_case_pattern(self, sim):
        words = [0xA5A5A5A5, 0x5A5A5A5A, 0xA5A5A5A5, 0x5A5A5A5A]
        assert self._roundtrip(sim, words) == words

    def test_all_zero_and_all_one(self, sim):
        words = [0x00000000, 0xFFFFFFFF, 0x00000000]
        assert self._roundtrip(sim, words) == words

    def test_sixteen_bit_slicing(self, sim):
        words = [0x12345678, 0x9ABCDEF0]
        assert self._roundtrip(sim, words, slice_width=16) == words

    def test_four_bit_slicing(self, sim):
        words = [0xCAFEBABE]
        assert self._roundtrip(sim, words, slice_width=4) == words
