"""Unit tests for combinational gate primitives."""

import pytest

from repro.elements import And2, Inverter, Mux2, Nand2, Nor2, OneHotMux, Or2, Xor2
from repro.sim import Bus, Signal, Simulator
from repro.tech import GateDelays


@pytest.fixture
def sim():
    return Simulator()


def settle(sim):
    sim.run(max_events=10_000)


class TestInverter:
    def test_truth_table(self, sim):
        a = Signal(sim, "a")
        inv = Inverter(sim, a)
        settle(sim)
        assert inv.output.value == 1
        a.set(1)
        settle(sim)
        assert inv.output.value == 0

    def test_delay_from_technology(self, sim):
        a = Signal(sim, "a")
        inv = Inverter(sim, a, delays=GateDelays(inv=11))
        settle(sim)
        changes = []
        inv.output.on_change(lambda s: changes.append(sim.now))
        a.set(1)
        sim.run()
        assert changes == [sim.now]
        assert sim.now % 11 == 0

    def test_filters_short_pulse(self, sim):
        """Inertial delay: a pulse shorter than the gate delay vanishes."""
        a = Signal(sim, "a")
        inv = Inverter(sim, a, delays=GateDelays(inv=50))
        settle(sim)
        out_transitions_before = inv.output.transitions
        a.pulse(width=10)  # 10 ps pulse through a 50 ps gate
        sim.run()
        assert inv.output.transitions == out_transitions_before


class TestTwoInputGates:
    @pytest.mark.parametrize(
        "cls,table",
        [
            (And2, {(0, 0): 0, (0, 1): 0, (1, 0): 0, (1, 1): 1}),
            (Or2, {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 1}),
            (Nand2, {(0, 0): 1, (0, 1): 1, (1, 0): 1, (1, 1): 0}),
            (Nor2, {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 0}),
            (Xor2, {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 0}),
        ],
    )
    def test_truth_tables(self, sim, cls, table):
        a = Signal(sim, "a")
        b = Signal(sim, "b")
        gate = cls(sim, a, b)
        for (va, vb), expected in table.items():
            a.set(va)
            b.set(vb)
            settle(sim)
            assert gate.output.value == expected, f"{cls.__name__}({va},{vb})"

    def test_output_signal_can_be_supplied(self, sim):
        a = Signal(sim, "a")
        b = Signal(sim, "b")
        out = Signal(sim, "myout")
        gate = And2(sim, a, b, out=out)
        assert gate.output is out

    def test_gate_requires_inputs(self, sim):
        from repro.elements.gates import Gate

        with pytest.raises(ValueError):
            Gate(sim, [], Signal(sim, "o"), lambda: 0, 10)


class TestMux2:
    def test_select(self, sim):
        a = Signal(sim, "a", init=1)
        b = Signal(sim, "b", init=0)
        sel = Signal(sim, "sel")
        mux = Mux2(sim, a, b, sel)
        settle(sim)
        assert mux.output.value == 1  # sel=0 → a
        sel.set(1)
        settle(sim)
        assert mux.output.value == 0  # sel=1 → b


class TestOneHotMux:
    def _build(self, sim, n=4, width=8):
        inputs = [Bus(sim, width, f"in{i}", init=i + 1) for i in range(n)]
        sel = [Signal(sim, f"sel{i}", init=1 if i == 0 else 0) for i in range(n)]
        out = Bus(sim, width, "out")
        mux = OneHotMux(sim, inputs, sel, out)
        return inputs, sel, out, mux

    def test_initial_selection(self, sim):
        inputs, sel, out, _ = self._build(sim)
        # kick the mux by touching the select
        sel[0].set(0)
        sel[0].set(1)
        settle(sim)
        assert out.value == 1

    def test_steering(self, sim):
        inputs, sel, out, _ = self._build(sim)
        sel[0].set(0)
        sel[2].set(1)
        settle(sim)
        assert out.value == 3

    def test_follows_input_changes(self, sim):
        inputs, sel, out, _ = self._build(sim)
        sel[0].set(0)
        sel[1].set(1)
        settle(sim)
        inputs[1].set(0xAB)
        settle(sim)
        assert out.value == 0xAB

    def test_holds_with_no_select(self, sim):
        inputs, sel, out, _ = self._build(sim)
        sel[0].set(0)
        sel[1].set(1)
        settle(sim)
        held = out.value
        sel[1].set(0)  # nothing selected
        settle(sim)
        assert out.value == held

    def test_width_mismatch_rejected(self, sim):
        inputs = [Bus(sim, 8, "a"), Bus(sim, 8, "b")]
        sel = [Signal(sim, "s0"), Signal(sim, "s1")]
        out = Bus(sim, 4, "out")
        with pytest.raises(ValueError):
            OneHotMux(sim, inputs, sel, out)

    def test_count_mismatch_rejected(self, sim):
        inputs = [Bus(sim, 8, "a")]
        sel = [Signal(sim, "s0"), Signal(sim, "s1")]
        out = Bus(sim, 8, "out")
        with pytest.raises(ValueError):
            OneHotMux(sim, inputs, sel, out)


class TestCompiledEvaluation:
    """The arity-specialized eval closure must agree with a direct call
    to the gate function over the exhaustive input truth table."""

    @pytest.mark.parametrize("gate_cls", [Inverter])
    def test_unary_truth_table(self, sim, gate_cls):
        a = Signal(sim, "a")
        gate = gate_cls(sim, a)
        settle(sim)
        for va in (0, 1):
            a.set(va)
            assert gate._evaluate() == (1 if gate.func(va) else 0)

    @pytest.mark.parametrize("gate_cls", [And2, Or2, Nand2, Nor2, Xor2])
    def test_binary_truth_table(self, sim, gate_cls):
        a, b = Signal(sim, "a"), Signal(sim, "b")
        gate = gate_cls(sim, a, b)
        settle(sim)
        for va in (0, 1):
            for vb in (0, 1):
                a.set(va)
                b.set(vb)
                assert gate._evaluate() == (1 if gate.func(va, vb) else 0)

    def test_ternary_truth_table(self, sim):
        a, b, s = Signal(sim, "a"), Signal(sim, "b"), Signal(sim, "s")
        gate = Mux2(sim, a, b, s)
        settle(sim)
        for va in (0, 1):
            for vb in (0, 1):
                for vs in (0, 1):
                    a.set(va)
                    b.set(vb)
                    s.set(vs)
                    assert gate._evaluate() == (
                        1 if gate.func(va, vb, vs) else 0
                    )

    def test_wide_gate_falls_back_to_star_args(self, sim):
        from repro.elements.gates import Gate

        ins = [Signal(sim, f"i{k}") for k in range(5)]
        out = Signal(sim, "out")
        gate = Gate(sim, ins, out, lambda *vs: sum(vs) % 2, delay=10,
                    name="parity5")
        settle(sim)
        for pattern in range(32):
            for k, sig in enumerate(ins):
                sig.set((pattern >> k) & 1)
            expect = 1 if bin(pattern).count("1") % 2 else 0
            assert gate._evaluate() == expect
