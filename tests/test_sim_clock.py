"""Unit tests for the clock generator."""

import pytest

from repro.sim import Clock, RisingEdge, Signal, Simulator, spawn, run_cycles


@pytest.fixture
def sim():
    return Simulator()


class TestClock:
    def test_from_mhz_period(self, sim):
        assert Clock.from_mhz(sim, 100).period_ps == 10_000
        assert Clock.from_mhz(sim, 300).period_ps == 3333

    def test_freq_mhz_roundtrip(self, sim):
        clock = Clock.from_mhz(sim, 100)
        assert clock.freq_mhz == pytest.approx(100.0)

    def test_rejects_tiny_period(self, sim):
        with pytest.raises(ValueError):
            Clock(sim, 1)

    def test_toggles_at_half_period(self, sim):
        clock = Clock(sim, 1000, "clk")
        edges = []
        clock.signal.on_change(lambda s: edges.append((sim.now, s.value)))
        sim.run(until=2100)
        assert edges[:4] == [(0, 1), (500, 0), (1000, 1), (1500, 0)]

    def test_cycle_counter(self, sim):
        clock = Clock(sim, 1000)
        sim.run(until=5500)
        assert clock.cycles == 6  # rising edges at 0,1000,...,5000

    def test_start_delay(self, sim):
        clock = Clock(sim, 1000, start_delay_ps=200)
        edges = []
        clock.signal.on_change(lambda s: edges.append(sim.now))
        sim.run(until=1000)
        assert edges[0] == 200

    def test_stop_freezes_clock(self, sim):
        clock = Clock(sim, 1000)
        sim.run(until=1600)
        clock.stop()
        value = clock.signal.value
        sim.run(until=5000)
        assert clock.signal.value == value

    def test_odd_period_keeps_total(self, sim):
        """A 3333 ps period (300 MHz) must not drift."""
        clock = Clock(sim, 3333)
        rises = []

        def proc():
            for _ in range(4):
                yield RisingEdge(clock.signal)
                rises.append(sim.now)

        spawn(sim, proc())
        sim.run(until=15_000)
        # consecutive rising edges exactly one period apart
        deltas = [b - a for a, b in zip(rises, rises[1:])]
        assert all(d == 3333 for d in deltas)

    def test_run_cycles_advances_exactly(self, sim):
        clock = Clock(sim, 2000)
        run_cycles(sim, clock, 5)
        assert sim.now == 10_000

    def test_duty_cycle_within_one_ps(self, sim):
        clock = Clock(sim, 3333)
        changes = []
        clock.signal.on_change(lambda s: changes.append((sim.now, s.value)))
        sim.run(until=7000)
        highs = [t for t, v in changes if v == 1]
        lows = [t for t, v in changes if v == 0]
        assert lows[0] - highs[0] in (1666, 1667)
