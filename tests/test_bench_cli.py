"""Tests for the ``repro bench`` subcommand and the bench harness."""

import json

import pytest

from repro.__main__ import main
from repro.bench import (
    BenchPoint,
    check_against_baseline,
    default_points,
    profile_point,
    run_point,
)

#: tiny workload: 2x2 mesh, 60 cycles — milliseconds per kernel
TINY = ["--mesh", "2", "--rates", "0.1", "--cycles", "60", "--repeats", "1"]


class TestBenchHarness:
    def test_run_point_reports_speedup_and_matching_stats(self):
        point = BenchPoint(mesh_size=2, injection_rate=0.1, cycles=60)
        outcome = run_point(point, reference=True, repeats=1)
        assert outcome.optimized_cps > 0
        assert outcome.reference_cps > 0
        assert outcome.speedup == pytest.approx(
            outcome.optimized_cps / outcome.reference_cps
        )
        assert outcome.stats_match is True
        assert outcome.flits_ejected > 0

    def test_reference_skippable(self):
        point = BenchPoint(mesh_size=2, injection_rate=0.1, cycles=60)
        outcome = run_point(point, reference=False, repeats=1)
        assert outcome.reference_cps is None
        assert outcome.speedup is None
        assert outcome.stats_match is None

    def test_default_points_cover_the_acceptance_gates(self):
        keys = [p.key for p in default_points(cycles=300)]
        assert "8x8@0.02/uniform/xy/vc1/I3" in keys
        assert "8x8@0.35/uniform/xy/vc1/I3" in keys

    def test_point_key_stable(self):
        point = BenchPoint(mesh_size=4, injection_rate=0.1)
        assert point.key == "4x4@0.1/uniform/xy/vc1/I3"

    def test_profile_point_names_the_kernel(self):
        text = profile_point(
            BenchPoint(mesh_size=2, injection_rate=0.1, cycles=40)
        )
        assert "step" in text
        assert "function calls" in text


class TestBaselineCheck:
    def _doc(self, speedup, key="2x2@0.1/uniform/xy/vc1/I3",
             stats_match=True):
        return {
            "schema": 1,
            "points": [{
                "key": key,
                "speedup": speedup,
                "stats_match": stats_match,
            }],
        }

    def test_clean_when_within_tolerance(self):
        problems = check_against_baseline(
            self._doc(3.0), self._doc(3.5), tolerance=0.30
        )
        assert problems == []

    def test_regression_reported(self):
        problems = check_against_baseline(
            self._doc(2.0), self._doc(4.0), tolerance=0.30
        )
        assert len(problems) == 1
        assert "fell below" in problems[0]

    def test_missing_point_reported(self):
        problems = check_against_baseline(
            self._doc(3.0, key="other"), self._doc(3.0), tolerance=0.30
        )
        assert any("missing" in p for p in problems)

    def test_diverged_stats_reported(self):
        problems = check_against_baseline(
            self._doc(5.0, stats_match=False), self._doc(3.0),
            tolerance=0.30,
        )
        assert any("diverged" in p for p in problems)

    def test_interpreter_mismatch_reported(self):
        """Speedup ratios are only comparable within one CPython
        major.minor — a baseline from another interpreter must refuse."""
        current = self._doc(3.0)
        baseline = self._doc(3.0)
        current["python"] = "3.12.1"
        baseline["python"] = "3.11.7"
        problems = check_against_baseline(current, baseline,
                                          tolerance=0.30)
        assert any("interpreter mismatch" in p for p in problems)
        # patch releases of the same minor are fine
        current["python"] = "3.11.2"
        assert check_against_baseline(current, baseline,
                                      tolerance=0.30) == []

    def test_cycle_count_mismatch_reported(self):
        """Speedups measured over different cycle counts are not
        comparable — the check must refuse rather than gate them."""
        current = self._doc(3.0)
        baseline = self._doc(3.0)
        current["points"][0]["cycles"] = 1500
        baseline["points"][0]["cycles"] = 300
        problems = check_against_baseline(current, baseline,
                                          tolerance=0.30)
        assert any("cycles" in p for p in problems)


class TestBenchCli:
    def test_bench_writes_json(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = main(["bench", *TINY, "--json", str(out)])
        assert rc == 0
        document = json.loads(out.read_text())
        assert document["schema"] == 4
        assert document["suites"] == ["noc"]
        (point,) = document["points"]
        assert point["suite"] == "noc"
        assert point["speedup"] > 0
        assert point["stats_match"] is True
        assert "cycles/sec" in capsys.readouterr().out

    def test_bench_self_check_passes(self, tmp_path):
        out = tmp_path / "bench.json"
        assert main(["bench", *TINY, "--json", str(out)]) == 0
        assert main(["bench", *TINY, "--check", str(out)]) == 0

    def test_bench_check_fails_on_regression(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["bench", *TINY, "--json", str(out)]) == 0
        doctored = json.loads(out.read_text())
        for point in doctored["points"]:
            point["speedup"] = point["speedup"] * 100  # unreachable bar
        out.write_text(json.dumps(doctored))
        rc = main(["bench", *TINY, "--check", str(out)])
        assert rc == 1
        assert "bench regression" in capsys.readouterr().err

    def test_bench_profile_smoke(self, capsys):
        rc = main(["bench", *TINY, "--profile"])
        assert rc == 0
        assert "cProfile" in capsys.readouterr().out

    def test_bench_profile_picks_most_loaded_point(self, capsys):
        rc = main([
            "bench", "--mesh", "2,3", "--rates", "0.05,0.2",
            "--cycles", "40", "--repeats", "1", "--no-reference",
            "--profile",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cProfile of the optimized kernel (3x3@0.2/" in out

    def test_bench_fast_caps_cycles(self, tmp_path):
        out = tmp_path / "bench.json"
        rc = main([
            "bench", "--mesh", "2", "--rates", "0.1",
            "--cycles", "5000", "--fast", "--json", str(out),
        ])
        assert rc == 0
        (point,) = json.loads(out.read_text())["points"]
        assert point["cycles"] == 300

    def test_bench_no_reference(self, tmp_path):
        out = tmp_path / "bench.json"
        rc = main(["bench", *TINY, "--no-reference", "--json", str(out)])
        assert rc == 0
        (point,) = json.loads(out.read_text())["points"]
        assert point["speedup"] is None

    def test_bench_rejects_bad_cycles(self):
        with pytest.raises(SystemExit):
            main(["bench", "--cycles", "0"])

    def test_bench_rejects_malformed_mesh_and_rates(self):
        with pytest.raises(SystemExit):
            main(["bench", "--mesh", "4x4"])
        with pytest.raises(SystemExit):
            main(["bench", "--mesh", ","])
        with pytest.raises(SystemExit):
            main(["bench", "--mesh", "2", "--rates", "fast"])
        with pytest.raises(SystemExit):
            main(["bench", "--mesh", "2", "--rates", "1.5"])

    def test_workload_flags_apply_without_mesh(self, tmp_path):
        """--routing/--vcs/... must reshape the default points rather
        than being silently ignored when --mesh/--rates are absent."""
        out = tmp_path / "bench.json"
        rc = main([
            "bench", "--routing", "west_first", "--vcs", "2",
            "--kind", "I2", "--pattern", "transpose",
            "--cycles", "40", "--repeats", "1", "--no-reference",
            "--json", str(out),
        ])
        assert rc == 0
        points = json.loads(out.read_text())["points"]
        assert {p["routing"] for p in points} == {"west_first"}
        assert {p["n_vcs"] for p in points} == {2}
        assert {p["kind"] for p in points} == {"I2"}
        assert {p["pattern"] for p in points} == {"transpose"}
        # the default mesh x rate gate points are preserved
        assert {(p["mesh_size"], p["injection_rate"]) for p in points} \
            == {(4, 0.10), (8, 0.02), (8, 0.35)}

    def test_committed_baseline_matches_default_points(self):
        """The checked-in baseline must gate the default bench points
        (guards against the baseline going stale when points change)."""
        from pathlib import Path

        baseline_path = (
            Path(__file__).resolve().parent.parent
            / "benchmarks" / "baseline_bench.json"
        )
        baseline = json.loads(baseline_path.read_text())
        noc_keys = {p["key"] for p in baseline["points"]
                    if p.get("suite", "noc") == "noc"}
        assert noc_keys == {p.key for p in default_points(cycles=300)}
        from repro.bench import default_gate_points

        gate_keys = {p["key"] for p in baseline["points"]
                     if p.get("suite") == "gate"}
        assert gate_keys == {
            p.key for p in default_gate_points(scale=0.5)
        }
        assert all(p["speedup"] is not None for p in baseline["points"])


class TestGateSuiteHarness:
    def test_run_gate_point_cross_checks_kernels(self):
        from repro.bench import GateBenchPoint, run_gate_point

        point = GateBenchPoint("serializer-i3", 4)
        outcome = run_gate_point(point, reference=True, repeats=1)
        assert outcome.optimized_eps > 0
        assert outcome.reference_eps > 0
        assert outcome.stats_match is True
        assert outcome.speedup == pytest.approx(
            outcome.reference_wall_s / outcome.optimized_wall_s
        )
        assert outcome.events_executed > 0
        assert outcome.events_cancelled > 0  # inertial supersedes happen

    @pytest.mark.parametrize(
        "workload", ["serializer-i2", "fourphase-chain", "ringosc"]
    )
    def test_other_workloads_match_reference(self, workload):
        from repro.bench import GateBenchPoint, run_gate_point

        size = 2000 if workload == "ringosc" else 4
        outcome = run_gate_point(
            GateBenchPoint(workload, size), reference=True, repeats=1
        )
        assert outcome.stats_match is True

    def test_gate_point_key_stable(self):
        from repro.bench import GateBenchPoint

        assert GateBenchPoint("serializer-i3", 24).key == \
            "gate/serializer-i3@24"

    def test_default_gate_points_cover_the_acceptance_gate(self):
        from repro.bench import default_gate_points

        points = default_gate_points()
        assert points[0].workload == "serializer-i3"
        assert {p.workload for p in points} == {
            "serializer-i3", "serializer-i2", "fourphase-chain", "ringosc",
        }
        # --fast halves the workloads but never below the floor
        fast = default_gate_points(scale=0.01)
        assert all(p.size >= 4 for p in fast)

    def test_unknown_workload_rejected(self):
        from repro.bench import GateBenchPoint, run_gate_point

        with pytest.raises(ValueError, match="unknown gate workload"):
            run_gate_point(GateBenchPoint("warp-drive", 4), repeats=1)

    def test_profile_gate_point_names_the_kernel(self):
        from repro.bench import GateBenchPoint, profile_gate_point

        text = profile_gate_point(GateBenchPoint("serializer-i3", 4))
        assert "run" in text
        assert "function calls" in text


class TestGateSuiteCli:
    GATE_TINY = ["--suite", "gate", "--gate-scale", "0.01", "--repeats", "1"]

    def test_gate_suite_writes_json(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = main(["bench", *self.GATE_TINY, "--json", str(out)])
        assert rc == 0
        document = json.loads(out.read_text())
        assert document["suites"] == ["gate"]
        assert {p["suite"] for p in document["points"]} == {"gate"}
        assert all(p["stats_match"] for p in document["points"])
        assert "events/sec" in capsys.readouterr().out

    def _easy_baseline(self, document):
        """Drop the recorded speedups to a floor any machine clears —
        these tests exercise the check plumbing, not timing stability
        (micro-sized workloads are too noisy to self-gate at 30 %)."""
        for point in document["points"]:
            point["speedup"] = 0.01
        return document

    def test_gate_suite_self_check_passes(self, tmp_path):
        out = tmp_path / "bench.json"
        assert main(["bench", *self.GATE_TINY, "--json", str(out)]) == 0
        baseline = self._easy_baseline(json.loads(out.read_text()))
        out.write_text(json.dumps(baseline))
        assert main(["bench", *self.GATE_TINY, "--check", str(out)]) == 0

    def test_gate_check_skips_foreign_suite_points(self, tmp_path):
        """A gate-only run checked against a combined baseline must not
        flag the absent noc points (and vice versa)."""
        out = tmp_path / "bench.json"
        assert main(["bench", *self.GATE_TINY, "--json", str(out)]) == 0
        combined = self._easy_baseline(json.loads(out.read_text()))
        combined["points"].append({
            "suite": "noc",
            "key": "4x4@0.1/uniform/xy/vc1/I3",
            "speedup": 99.0,  # would regress if it were checked
            "cycles": 300,
            "stats_match": True,
        })
        out.write_text(json.dumps(combined))
        assert main(["bench", *self.GATE_TINY, "--check", str(out)]) == 0

    def test_gate_check_fails_on_regression(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["bench", *self.GATE_TINY, "--json", str(out)]) == 0
        doctored = json.loads(out.read_text())
        for point in doctored["points"]:
            point["speedup"] = point["speedup"] * 100
        out.write_text(json.dumps(doctored))
        rc = main(["bench", *self.GATE_TINY, "--check", str(out)])
        assert rc == 1
        assert "bench regression" in capsys.readouterr().err

    def test_suite_all_runs_every_suite(self, tmp_path):
        out = tmp_path / "bench.json"
        rc = main([
            "bench", "--suite", "all", "--mesh", "2", "--rates", "0.1",
            "--cycles", "40", "--gate-scale", "0.01",
            "--compiled-scale", "0.01", "--sweep-scale", "0.01",
            "--repeats", "1", "--no-reference", "--json", str(out),
        ])
        assert rc == 0
        document = json.loads(out.read_text())
        assert document["suites"] == [
            "noc", "gate", "compiled", "sweep",
        ]
        assert {p["suite"] for p in document["points"]} == {
            "noc", "gate", "compiled", "sweep",
        }

    def test_gate_profile_smoke(self, capsys):
        rc = main(["bench", *self.GATE_TINY, "--no-reference", "--profile"])
        assert rc == 0
        assert "cProfile of the optimized sim kernel" in capsys.readouterr().out

    def test_mesh_flags_rejected_for_gate_suite(self):
        with pytest.raises(SystemExit):
            main(["bench", "--suite", "gate", "--mesh", "2"])

    def test_bad_gate_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench", "--suite", "gate", "--gate-scale", "0"])

    def test_committed_baseline_is_schema_4_with_every_suite(self):
        """The committed baseline must gate every suite's speedups."""
        from pathlib import Path

        baseline = json.loads(
            (Path(__file__).resolve().parent.parent
             / "benchmarks" / "baseline_bench.json").read_text()
        )
        assert baseline["schema"] == 4
        assert set(baseline["suites"]) == {
            "noc", "gate", "compiled", "sweep",
        }
        by_suite = {}
        for point in baseline["points"]:
            by_suite.setdefault(point["suite"], []).append(point)
        assert len(by_suite["noc"]) == 3
        assert len(by_suite["gate"]) == 4
        assert len(by_suite["compiled"]) == 2
        assert len(by_suite["sweep"]) == 1
        # the committed fabric point: --fast grid, one local worker,
        # dispatch efficiency recorded as the gateable speedup ratio
        (sweep_point,) = by_suite["sweep"]
        assert sweep_point["cycles"] == 32
        assert sweep_point["workers"] == 1
        assert 0 < sweep_point["speedup"] < 1.0
        gate_keys = {p["workload"] for p in by_suite["gate"]}
        assert "serializer-i3" in gate_keys
        # the perf acceptance gates: >= 8x aggregate lanes/sec on the
        # 64-lane fault batch, >= 1x on the single-lane ring oscillator
        compiled = {p["workload"]: p for p in by_suite["compiled"]}
        assert compiled["fault-batch"]["lanes"] == 64
        assert compiled["fault-batch"]["speedup"] >= 8.0
        assert compiled["ringosc"]["lanes"] == 1
        assert compiled["ringosc"]["speedup"] >= 1.0
        # every committed point carries a gateable speedup + clean stats
        for point in baseline["points"]:
            assert point["speedup"] > 0
            assert point["stats_match"] is True

    def test_gate_scale_rejected_for_noc_suite(self):
        with pytest.raises(SystemExit):
            main(["bench", "--suite", "noc", "--gate-scale", "2.0"])


class TestCompiledSuiteCli:
    COMPILED_TINY = [
        "--suite", "compiled", "--compiled-scale", "0.005",
        "--repeats", "1",
    ]
    # the gate tests need the single-lane ringosc point to clear its
    # implicit 1.0x floor, which is timing noise at 100 toggles with a
    # single repeat — best-of-3 keeps them deterministic under load
    COMPILED_TINY_GATED = COMPILED_TINY[:-1] + ["3"]

    def test_compiled_suite_writes_json(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = main(["bench", *self.COMPILED_TINY, "--json", str(out)])
        assert rc == 0
        document = json.loads(out.read_text())
        assert document["suites"] == ["compiled"]
        points = {p["workload"]: p for p in document["points"]}
        assert set(points) == {"fault-batch", "ringosc"}
        assert all(p["stats_match"] for p in points.values())
        assert "lane-steps/sec" in capsys.readouterr().out

    def test_min_compiled_speedup_gate_passes(self, capsys):
        rc = main(["bench", *self.COMPILED_TINY_GATED,
                   "--min-compiled-speedup", "0.001"])
        assert rc == 0
        assert "clear the 0.001x batch floor" in capsys.readouterr().out

    def test_min_compiled_speedup_gate_fails(self, capsys):
        rc = main(["bench", *self.COMPILED_TINY_GATED,
                   "--min-compiled-speedup", "1000000"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "bench regression" in err
        assert "fault-batch" in err
        # the single-lane ringosc point is held to 1x, not the floor
        assert "ringosc" not in err

    def test_min_compiled_speedup_needs_a_reference(self, capsys):
        rc = main(["bench", *self.COMPILED_TINY, "--no-reference",
                   "--min-compiled-speedup", "4"])
        assert rc == 1
        assert "no speedup recorded" in capsys.readouterr().err

    def test_compiled_flags_rejected_for_other_suites(self):
        with pytest.raises(SystemExit):
            main(["bench", "--suite", "noc", "--compiled-scale", "0.5"])
        with pytest.raises(SystemExit):
            main(["bench", "--suite", "gate",
                  "--min-compiled-speedup", "4"])
        with pytest.raises(SystemExit):
            main(["bench", "--suite", "compiled",
                  "--compiled-scale", "0"])

    def test_mesh_flags_rejected_for_compiled_suite(self):
        with pytest.raises(SystemExit):
            main(["bench", "--suite", "compiled", "--mesh", "2"])

    def test_fast_halves_compiled_scale(self, tmp_path):
        out = tmp_path / "bench.json"
        rc = main(["bench", "--suite", "compiled", "--fast",
                   "--repeats", "1", "--no-reference",
                   "--json", str(out)])
        assert rc == 0
        document = json.loads(out.read_text())
        keys = {p["key"] for p in document["points"]}
        assert keys == {"compiled/fault-batch@6",
                        "compiled/ringosc@10000"}
