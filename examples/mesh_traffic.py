#!/usr/bin/env python3
"""A 4×4 mesh NoC wired with each of the paper's three links.

The paper evaluates a single point-to-point link; this example answers
the system-level question its introduction poses — what happens to a
whole NoC's wiring bill and performance when every inter-switch link is
replaced by the serialized asynchronous design.

For each link implementation the mesh runs uniform-random traffic at
increasing injection rates and reports accepted throughput and packet
latency, alongside the total number of inter-switch wires and the
estimated link power drawn from the Fig 12/13 model.

Run:  python examples/mesh_traffic.py
"""

import os

#: CI smoke mode: REPRO_EXAMPLES_FAST=1 shrinks the workload so every
#: example stays runnable (and run) on every push — see the examples
#: job in .github/workflows/ci.yml
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") not in ("", "0")

from repro.analysis import format_table, link_power_uw
from repro.link.behavioral import derive_link_params
from repro.noc import Topology, run_mesh_point
from repro.tech import st012

MESH = Topology(4, 4)
CLOCK_MHZ = 300.0
RATES = (0.05, 0.15, 0.25)


def run_point(kind, rate, tech):
    params = derive_link_params(tech, kind, CLOCK_MHZ)
    cycles = 300 if FAST else 2000
    point = run_mesh_point(MESH, params, injection_rate=rate,
                           cycles=cycles)
    return {
        "throughput": point["throughput"],
        "latency": point["mean_latency"],
        "p99": point["p99_latency"],
        "wires": point["total_wires"],
    }


def main() -> None:
    tech = st012()
    n_links = MESH.n_directed_links
    rows = []
    for kind in ("I1", "I2", "I3"):
        link_uw = link_power_uw(tech, kind, 4, CLOCK_MHZ, usage=0.5)
        for rate in RATES:
            r = run_point(kind, rate, tech)
            rows.append(
                [
                    kind,
                    rate,
                    f"{r['throughput']:.3f}",
                    f"{r['latency']:.1f}",
                    f"{r['p99']:.0f}",
                    r["wires"],
                    f"{link_uw * n_links / 1000:.1f}",
                ]
            )
    print(
        format_table(
            (
                "link", "offered (flit/node/cyc)", "accepted",
                "mean lat (cyc)", "p99 lat", "total wires",
                "est. link power (mW)",
            ),
            rows,
            title=(
                f"4x4 mesh, uniform traffic, {CLOCK_MHZ:.0f} MHz switch "
                f"clock, {n_links} directed links"
            ),
        )
    )
    print()
    print(
        "I3 carries the same traffic as I1 on one third of the wires and "
        "about two thirds of the link power at this 4-buffer operating "
        "point; the saving grows to 65 % with 8 buffers per link "
        "(paper Fig 13)."
    )


if __name__ == "__main__":
    main()
