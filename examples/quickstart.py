#!/usr/bin/env python3
"""Quickstart: send flits over the paper's serialized asynchronous link.

Builds the proposed per-word-acknowledge link (I3) between two switch
endpoints running from a single 300 MHz clock, streams the paper's
worst-case flit pattern through it, and prints what the paper's abstract
promises: synchronous-link throughput on a quarter of the data wires.

Run:  python examples/quickstart.py
"""

import os

#: CI smoke mode: REPRO_EXAMPLES_FAST=1 shrinks the workload so every
#: example stays runnable (and run) on every push — see the examples
#: job in .github/workflows/ci.yml
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") not in ("", "0")

from repro.analysis import format_table
from repro.link import (
    LinkConfig,
    WORST_CASE_PATTERN,
    build_i1,
    build_i3,
    measure_throughput,
)
from repro.sim import Clock, Simulator


def measure(kind_builder, label, mhz=300.0, n_flits=None):
    n_flits = n_flits or (8 if FAST else 24)
    sim = Simulator()
    clock = Clock.from_mhz(sim, mhz)
    link = kind_builder(sim, clock.signal, LinkConfig(n_buffers=4))
    m = measure_throughput(sim, clock, link, n_flits=n_flits)
    assert m.received_values == [
        WORST_CASE_PATTERN[i % 4] for i in range(n_flits)
    ], "data corruption — should be impossible"
    return {
        "label": label,
        "wires": link.wire_count,
        "throughput": m.throughput_mflits,
        "latency_ns": m.mean_latency_ns,
    }


def main() -> None:
    rows = []
    for builder, label in (
        (build_i1, "I1 synchronous baseline"),
        (build_i3, "I3 serialized asynchronous (proposed)"),
    ):
        r = measure(builder, label)
        rows.append(
            [r["label"], r["wires"], f"{r['throughput']:.1f}",
             f"{r['latency_ns']:.1f}"]
        )

    print(
        format_table(
            ("link", "wires", "throughput (MFlit/s)", "latency (ns)"),
            rows,
            title="32-bit flits over a 4-buffer link @ 300 MHz switch clock",
        )
    )
    i1_wires, i3_wires = rows[0][1], rows[1][1]
    print()
    print(
        f"Data-wire reduction: 32 -> 8 (75 %); total wires "
        f"{i1_wires} -> {i3_wires} including the valid/ack pair."
    )
    print("Same flit rate, no second clock anywhere on the wire.")


if __name__ == "__main__":
    main()
