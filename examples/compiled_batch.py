#!/usr/bin/env python3
"""Compiled backend walkthrough: levelize → 64 lanes → fault batch.

Compiles the i3 de-serializer bench (counter, one-hot mux, register
slots, David-cell token, flag synchronizer) into one Python function of
bitwise operations over 64-bit integers, where bit ``k`` of every net
is independent simulation lane ``k``.  Then:

1. prints the levelized structure (depth, gates per level);
2. runs the same seeded stimulus on lane 0 of the compiled circuit and
   on the event kernel, and shows they agree bit for bit;
3. spends the 64 lanes on a Monte Carlo fault batch — 16 seeds, each
   with a golden lane plus three stuck-net lanes — and prices it
   against running one lane on the event kernel.

Run:  python examples/compiled_batch.py
"""

import os
import time

#: CI smoke mode: REPRO_EXAMPLES_FAST=1 shrinks the workload so every
#: example stays runnable (and run) on every push — see the examples
#: job in .github/workflows/ci.yml
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") not in ("", "0")

from repro.compiled import (
    MASK,
    StepOracle,
    build_bench,
    compile_component,
    lane_phases,
    stimulus_phases,
)
from repro.sim import Simulator

WIDTH = 16 if FAST else 32
VECTORS = 4 if FAST else 16
SEEDS = 16
FAULTS = 3  # per seed: 1 golden lane + 3 stuck-net lanes = 4 lanes


def compile_and_describe():
    sim = Simulator()
    bench = build_bench(sim, "i3", WIDTH)
    circuit = compile_component(bench.root, forceable=bench.fault_sites)
    print(f"i3 bench ({WIDTH} bit) compiled for 64 bit-parallel lanes:")
    print(circuit.stats().render())
    print()
    return bench, circuit


def check_lane0(bench, circuit):
    """Lane 0 of the compiled run vs the event kernel, bit for bit."""
    phases = stimulus_phases("i3", [2008], VECTORS, WIDTH)
    ref = Simulator()
    oracle = StepOracle(ref, build_bench(ref, "i3", WIDTH).root)
    diverged = 0
    for phase in phases:
        circuit.step(phase)
        oracle.step(lane_phases([phase], 0)[0])
        if circuit.lane_values(0) != oracle.values():
            diverged += 1
    counts = circuit.counts()
    ocounts = oracle.counts()
    print(f"lane 0 vs event kernel over {len(phases)} phases: "
          f"{'DIVERGED' if diverged else 'bit-identical'} "
          f"({ocounts['rising']} rising / {ocounts['falling']} falling "
          f"transitions on both sides)")
    assert diverged == 0
    assert counts["rising0"] == ocounts["rising"]
    assert counts["falling0"] == ocounts["falling"]
    print()


def fault_batch():
    """64 lanes: 16 seeds x (golden + 3 stuck nets), one compiled run."""
    sim = Simulator()
    bench = build_bench(sim, "i3", WIDTH)
    circuit = compile_component(bench.root, forceable=bench.fault_sites)
    group = 1 + FAULTS
    lane_seeds = []
    for seed in range(1, SEEDS + 1):
        lane_seeds.extend([seed] * group)
    phases = stimulus_phases("i3", lane_seeds, VECTORS, WIDTH)

    sites = []
    for r in range(SEEDS):
        for j in range(1, group):
            site = bench.fault_sites[(r + j) % len(bench.fault_sites)]
            sites.append(site)
            circuit.force(site, (j % 2) * MASK,
                          lanes=1 << (r * group + j))

    sub_mask = (1 << group) - 1
    detect = [0] * SEEDS
    t0 = time.perf_counter()
    for phase in phases:
        circuit.step(phase)
        for name in bench.outputs:
            word = circuit.peek(name)
            for r in range(SEEDS):
                seg = (word >> (r * group)) & sub_mask
                detect[r] |= seg ^ ((seg & 1) * sub_mask)
    compiled_wall = time.perf_counter() - t0

    # price one lane of the same stimulus on the event kernel
    ref = Simulator()
    oracle = StepOracle(ref, build_bench(ref, "i3", WIDTH).root)
    lane0 = lane_phases(phases, 0)
    t0 = time.perf_counter()
    for phase in lane0:
        oracle.step(phase)
    event_wall = time.perf_counter() - t0

    covered = sum(
        1 for r in range(SEEDS) for j in range(1, group)
        if (detect[r] >> j) & 1
    )
    total = SEEDS * FAULTS
    print(f"fault batch: {SEEDS} seeds x (1 golden + {FAULTS} stuck "
          f"lanes) = 64 lanes in one run")
    print(f"  detected at the outputs: {covered}/{total} injected "
          f"faults ({covered / total:.0%} coverage)")
    print(f"  compiled, all 64 lanes:  {compiled_wall * 1e3:8.2f} ms")
    print(f"  event kernel, ONE lane:  {event_wall * 1e3:8.2f} ms")
    if compiled_wall > 0:
        ratio = 64 * event_wall / compiled_wall
        print(f"  aggregate lanes/sec advantage: {ratio:.1f}x")


def main():
    bench, circuit = compile_and_describe()
    check_lane0(bench, circuit)
    fault_batch()
    print()
    print("Same sweep through the runner (requests pack automatically):")
    print("  python -m repro sweep compiled-fault-campaign --fast")


if __name__ == "__main__":
    main()
