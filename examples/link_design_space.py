#!/usr/bin/env python3
"""Design-space exploration: slice width, buffers, wire length, node.

The paper fixes one design point (32→8 serialization, 4 buffers,
0.12 µm).  This example walks the knobs the paper says are available:

* serialization ratio (the chains "can easily be modified"),
* buffer/repeater count along the wire,
* wire length (the Tp term the worked example sets to zero),
* technology node (first-order scaling, an extension of this repo).

For each point it reports wires, throughput ceilings for both ack
schemes, and the Fig 11 wiring area — the data a designer would need to
choose a configuration.

Run:  python examples/link_design_space.py
"""

from dataclasses import replace

import os

#: CI smoke mode: REPRO_EXAMPLES_FAST=1 shrinks the workload so every
#: example stays runnable (and run) on every push — see the examples
#: job in .github/workflows/ci.yml
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") not in ("", "0")

from repro.analysis import (
    format_table,
    per_transfer_cycle_delay,
    per_word_cycle_delay,
    scaled_word_timings,
    wire_area_um2,
)
from repro.tech import scale_technology, st012


def slice_width_sweep(tech) -> str:
    rows = []
    for slice_width in ((32, 8, 1) if FAST else (32, 16, 8, 4, 2, 1)):
        n_slices = 32 // slice_width
        timings = scaled_word_timings(tech.handshake, n_slices)
        i2 = per_transfer_cycle_delay(tech.handshake, n_slices, 4)
        i3 = per_word_cycle_delay(timings, n_slices, 4)
        rows.append(
            [
                f"32->{slice_width}",
                slice_width + 2,
                f"{i2.mflits:.0f}",
                f"{i3.mflits:.0f}",
                f"{wire_area_um2(slice_width + 2, 1000, tech):,.0f}",
            ]
        )
    return format_table(
        ("ratio", "wires (incl. handshake)", "I2 ceiling (MF/s)",
         "I3 ceiling (MF/s)", "wire area @1mm (um^2)"),
        rows,
        title="Serialization ratio sweep (4 buffers, Tp=0)",
    )


def wire_length_sweep(tech) -> str:
    """Throughput vs wire length — where Tp starts to matter."""
    rows = []
    for length_um in ((0, 1000, 8000) if FAST
                      else (0, 500, 1000, 2000, 4000, 8000)):
        tp = tech.wire_delay_ps(length_um / 5)  # per segment (5 segments)
        timings = replace(tech.handshake, t_p_per_segment=tp)
        i2 = per_transfer_cycle_delay(timings, 4, 4)
        i3 = per_word_cycle_delay(timings, 4, 4)
        rows.append(
            [length_um, tp, f"{i2.mflits:.0f}", f"{i3.mflits:.0f}",
             f"{i3.mflits / i2.mflits:.2f}"]
        )
    return format_table(
        ("wire length (um)", "Tp/segment (ps)", "I2 ceiling",
         "I3 ceiling", "I3/I2"),
        rows,
        title="Wire length sweep: per-word ack pays the wire once per "
              "flit, per-transfer once per slice",
    )


def node_sweep() -> str:
    rows = []
    for node_nm in (120, 90, 65, 45):
        tech = (
            st012() if node_nm == 120
            else scale_technology(st012(), node_nm)
        )
        i3 = per_word_cycle_delay(tech.handshake, 4, 4)
        rows.append(
            [
                node_nm,
                f"{i3.mflits:.0f}",
                f"{wire_area_um2(8, 1000, tech):,.0f}",
                f"{wire_area_um2(32, 1000, tech):,.0f}",
            ]
        )
    return format_table(
        ("node (nm)", "I3 ceiling (MF/s)", "8-wire area (um^2)",
         "32-wire area (um^2)"),
        rows,
        title="First-order technology scaling (extension; see "
              "tech/scaling.py for the assumptions)",
    )


def main() -> None:
    tech = st012()
    print(slice_width_sweep(tech))
    print()
    print(wire_length_sweep(tech))
    print()
    print(node_sweep())
    print()
    print(
        "Reading: per-transfer acknowledgement (I2) collapses as slices "
        "shrink or wires lengthen; the word-level scheme (I3) holds its "
        "rate — the motivation for Section IV of the paper."
    )


if __name__ == "__main__":
    main()
