#!/usr/bin/env python3
"""Regenerate the paper's full power story (Figs 12, 13 and 14).

Prints the analytical power curves at both published clock rates, the
component breakdown at 50 % usage, and a gate-level switched-activity
cross-check (per-component transitions measured on the event-driven
circuit simulation).

Run:  python examples/power_report.py
"""

import os

#: CI smoke mode: REPRO_EXAMPLES_FAST=1 shrinks the workload so every
#: example stays runnable (and run) on every push — see the examples
#: job in .github/workflows/ci.yml
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") not in ("", "0")

from repro.analysis import (
    buffer_sweep,
    format_table,
    measure_link_activity,
    power_breakdown,
    power_saving_percent,
)
from repro.tech import st012


def power_table(tech, freq_mhz) -> str:
    curves = buffer_sweep(tech, freq_mhz)
    counts = [n for n, _ in curves["I1-Synch"]]
    rows = []
    for i, n in enumerate(counts):
        rows.append(
            [n] + [f"{curves[label][i][1]:.0f}" for label in curves]
        )
    return format_table(
        ["buffers"] + [f"{label} (uW)" for label in curves],
        rows,
        title=f"Power vs buffers @ {freq_mhz:.0f} MHz, 50 % usage "
              f"(paper Fig {'12' if freq_mhz == 100 else '13'})",
    )


def breakdown_table(tech) -> str:
    rows = []
    for kind in ("I1", "I2", "I3"):
        bars = power_breakdown(tech, kind, 4, 100.0, 0.5)
        rows.append(
            [kind]
            + [f"{v:.0f}" for v in bars.values()]
            + [f"{sum(bars.values()):.0f}"]
        )
    categories = list(power_breakdown(tech, "I1", 4, 100.0, 0.5))
    return format_table(
        ["link"] + [f"{c} (uW)" for c in categories] + ["total"],
        rows,
        title="Component breakdown @ 100 MHz, 4 buffers, 50 % usage "
              "(paper Fig 14)",
    )


def activity_table() -> str:
    rows = []
    for kind in ("I1", "I2", "I3"):
        report = measure_link_activity(
            kind, n_buffers=4, n_flits=6 if FAST else 16
        )
        groups = sorted(report.switched_by_group)
        rows.append(
            [kind]
            + [f"{report.per_flit(g):.0f}" for g in groups]
        )
    groups = sorted(
        measure_link_activity("I3", n_buffers=4, n_flits=4)
        .switched_by_group
    )
    return format_table(
        ["link"] + groups,
        rows,
        title="Gate-level switched activity per flit (cap-weighted "
              "transitions; shape check for Fig 14)",
    )


def main() -> None:
    tech = st012()
    print(power_table(tech, 100.0))
    print()
    print(power_table(tech, 300.0))
    print()
    print(breakdown_table(tech))
    print()
    print(activity_table())
    print()
    saving = power_saving_percent(tech, n_buffers=8, freq_mhz=300.0)
    print(
        f"Headline: at 8 buffers and a 300 MHz switch clock the proposed "
        f"link saves {saving:.1f} % power (paper: 65 %)."
    )


if __name__ == "__main__":
    main()
