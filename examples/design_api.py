#!/usr/bin/env python3
"""Design API walkthrough: build → connect → elaborate → probe.

Describes a small hierarchical circuit (a ripple of half-adders built
from the gate library) with typed ports, wires it with direction-checked
``connect``, elaborates the same description onto BOTH event kernels,
and then uses the paper's I3 link testbench to show path-addressed
probing and fault forcing on a real netlist.

Run:  python examples/design_api.py
"""

import os

#: CI smoke mode: REPRO_EXAMPLES_FAST=1 shrinks the workload so every
#: example stays runnable (and run) on every push — see the examples
#: job in .github/workflows/ci.yml
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") not in ("", "0")

import repro.sim as optimized
import repro.sim.reference as reference
from repro.analysis.power import activity_by_instance
from repro.analysis.report import format_instance_breakdown
from repro.design import Component, Design, link_design
from repro.elements.gates import And2, Xor2
from repro.link import LinkConfig, LinkTestbench


class HalfAdder(Component):
    """Two typed in-ports, two out-ports, two leaf gates."""

    def __init__(self, name=None):
        super().__init__(name)
        self.a = self.port_in("a")
        self.b = self.port_in("b")
        self.s = self.port_out("s")
        self.c = self.port_out("c")

    def build(self, sim):
        # leaf elements are the classic eager constructors, named by
        # hierarchy path and adopted into the tree
        self.adopt(Xor2(sim, self.net("a"), self.net("b"),
                        out=self.net("s"), name=self.sub("xor")),
                   leaf="xor")
        self.adopt(And2(sim, self.net("a"), self.net("b"),
                        out=self.net("c"), name=self.sub("and")),
                   leaf="and")


class RippleStage(Component):
    """Two half-adders composed purely through the port layer."""

    def __init__(self, name="ripple"):
        super().__init__(name)
        self.x = self.port_in("x")
        self.y = self.port_in("y")
        self.out = self.port_out("out")
        ha1 = self.add("ha1", HalfAdder())
        ha2 = self.add("ha2", HalfAdder())
        self.connect(self.x, ha1.a)          # parent in  -> child in
        self.connect(self.y, ha1.b)
        self.connect(ha1.s, ha2.a)           # child out  -> sibling in
        self.connect(ha1.c, ha2.b)
        self.connect(ha2.s, self.out)        # child out  -> parent out


def elaborate_on(stack):
    sim = stack.Simulator()
    top = RippleStage()
    top.elaborate(sim)           # every net auto-named by its path
    top.find("x").set(1)
    top.find("y").set(1)
    sim.run(until=10_000)
    return sim, top


def main() -> None:
    # -- the same description elaborates onto either kernel ------------
    sim_opt, top = elaborate_on(optimized)
    sim_ref, _ = elaborate_on(reference)
    nets_opt = [(s.name, s.value) for s in sim_opt.created_signals]
    nets_ref = [(s.name, s.value) for s in sim_ref.created_signals]
    assert nets_opt == nets_ref, "kernels disagree — impossible"
    print("Described once, elaborated twice (optimized + frozen seed "
          "kernel), bit-identical:")
    print(top.tree())
    print()
    print("Hierarchy-path net names:",
          ", ".join(name for name, _v in nets_opt[:4]), "...")
    print()

    # -- a real netlist: the I3 link, path-probed and fault-forced -----
    design = link_design(
        kind="I3", config=LinkConfig(), sim=optimized.Simulator()
    )
    bench_comp = design.top
    bench = LinkTestbench(design.sim, bench_comp.clock, bench_comp.link)
    flits = [0xA5A5A5A5, 0x5A5A5A5A] * (2 if FAST else 6)
    bench.run(flits)
    print(f"I3 testbench delivered {len(flits)} flits; probing by path:")
    for path in ("i3.s2a.stall", "i3.wdes.out.data", "i3.wser.osc.out"):
        print(f"  {path:24} = {design.find(path).value:#x}")
    design.force("i3.s2a.stall", 1)   # a path-addressed stuck-at fault
    assert design.find("i3.s2a.stall").value == 1
    design.release("i3.s2a.stall")
    print()

    rows = activity_by_instance(bench_comp.link, design.sim)
    top_rows = [r for r in rows if r[1] <= 2][: 12]
    print(format_instance_breakdown(
        [(path, depth, cls, nets, transitions)
         for path, depth, cls, nets, transitions, _sw in top_rows],
        ("instance", "class", "nets", "transitions"),
        title="Per-instance activity (tree walk, depth <= 2)",
    ))


if __name__ == "__main__":
    main()
