#!/usr/bin/env python3
"""Visualize the asynchronous handshakes as ASCII waveforms.

Two scenes, straight from the paper's figures:

1. the per-transfer serializer (Fig 6a) pushing one 32-bit flit as four
   request/acknowledge-handshaked byte slices;
2. the word-level transmitter (Fig 8a) emitting the same flit as a
   ring-oscillator-timed VALID burst with a single word acknowledge.

The contrast is the whole paper in one picture: four complete four-phase
cycles versus four bare pulses and one acknowledge.

Run:  python examples/handshake_waveforms.py
"""

import os

#: CI smoke mode: REPRO_EXAMPLES_FAST=1 shrinks the workload so every
#: example stays runnable (and run) on every push — see the examples
#: job in .github/workflows/ci.yml
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") not in ("", "0")

from repro.link import Channel, Serializer, WordDeserializer, WordSerializer
from repro.link.channel import ValidChannel, sink_process, source_process
from repro.link.wiring import wire, wire_bus
from repro.sim import Simulator, Tracer, spawn

FLIT = 0xA5C3F00F


def per_transfer_scene() -> str:
    sim = Simulator()
    in_ch = Channel(sim, 32, "word")
    ser = Serializer(sim, in_ch, slice_width=8)
    tracer = Tracer()
    tracer.watch(in_ch.req, in_ch.ack, ser.out_ch.req, ser.out_ch.ack)
    slices = []
    spawn(sim, source_process(in_ch, [FLIT]))
    spawn(sim, sink_process(ser.out_ch, slices, count=4, ack_delay_ps=150))
    sim.run(max_events=1_000_000)
    art = tracer.render(until_ps=sim.now + 200, step_ps=180 if FAST else 60)
    return (
        f"Per-transfer (I2, Fig 6a): flit 0x{FLIT:08X} as slices "
        f"{[hex(s) for s in slices]}\n{art}"
    )


def per_word_scene() -> str:
    sim = Simulator()
    in_ch = Channel(sim, 32, "word")
    wser = WordSerializer(sim, in_ch, slice_width=8)
    rx = ValidChannel(sim, 8, "rx")
    wdes = WordDeserializer(sim, rx, 32)
    wire_bus(wser.out_ch.data, rx.data, 0)
    wire(wser.out_ch.valid, rx.valid, 0)
    wire(wdes.ack_to_tx, wser.out_ch.ack, 0)
    tracer = Tracer()
    tracer.watch(in_ch.req, wser.out_ch.valid, wser.osc.out,
                 wser.out_ch.ack)
    words = []
    spawn(sim, source_process(in_ch, [FLIT]))
    spawn(sim, sink_process(wdes.out_ch, words, count=1))
    sim.run(max_events=1_000_000)
    art = tracer.render(until_ps=sim.now + 200, step_ps=180 if FAST else 60)
    return (
        f"Per-word (I3, Fig 8a): flit 0x{FLIT:08X} reassembled as "
        f"{[hex(w) for w in words]}\n{art}"
    )


def main() -> None:
    print(per_transfer_scene())
    print()
    print(per_word_scene())
    print()
    print(
        "Top: every byte slice pays a full REQ/ACK return-to-zero cycle. "
        "Bottom: four VALID pulses timed by the local ring oscillator, "
        "then one acknowledge for the whole word."
    )


if __name__ == "__main__":
    main()
