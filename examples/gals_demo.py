#!/usr/bin/env python3
"""GALS demo: two switch domains on unrelated clocks, one serial link.

The paper's motivation section points out that a synchronous serialized
link would need a second, faster, phase-locked clock tree.  The
asynchronous link needs none — and as a consequence the two switches do
not even have to share a frequency.  This demo runs the gate-level I3
link between a 283 MHz transmitter and a 127 MHz receiver (deliberately
unrelated periods) and shows lossless, rate-matched delivery.

Run:  python examples/gals_demo.py
"""

import os

#: CI smoke mode: REPRO_EXAMPLES_FAST=1 shrinks the workload so every
#: example stays runnable (and run) on every push — see the examples
#: job in .github/workflows/ci.yml
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") not in ("", "0")

from repro.analysis import format_table
from repro.link import LinkConfig, LinkTestbench, build_i3
from repro.sim import Clock, Simulator

PAIRS = [
    (300.0, 300.0),   # the paper's configuration
    (283.0, 127.0),   # fast → slow, unrelated periods
    (127.0, 283.0),   # slow → fast
    (600.0, 75.0),    # 8× mismatch
]


def run_pair(tx_mhz, rx_mhz, n_flits=None):
    n_flits = n_flits or (6 if FAST else 16)
    sim = Simulator()
    tx_clock = Clock.from_mhz(sim, tx_mhz, name="txclk")
    rx_clock = Clock.from_mhz(sim, rx_mhz, name="rxclk",
                              start_delay_ps=777)  # arbitrary phase
    link = build_i3(sim, tx_clock.signal, LinkConfig(),
                    rx_clk=rx_clock.signal)
    bench = LinkTestbench(sim, tx_clock, link, rx_clock=rx_clock)
    flits = [0xA5A5A5A5 if i % 2 == 0 else 0x5A5A5A5A
             for i in range(n_flits)]
    m = bench.run(flits, timeout_ns=1e6)
    assert m.received_values == flits, "GALS transfer corrupted data"
    return m


def main() -> None:
    rows = []
    for tx_mhz, rx_mhz in PAIRS:
        m = run_pair(tx_mhz, rx_mhz)
        bottleneck = min(tx_mhz, rx_mhz, 304.1)
        rows.append(
            [
                f"{tx_mhz:.0f}",
                f"{rx_mhz:.0f}",
                m.flits_received,
                f"{m.throughput_mflits:.1f}",
                f"{bottleneck:.1f}",
            ]
        )
    print(
        format_table(
            ("TX clock (MHz)", "RX clock (MHz)", "flits",
             "measured (MFlit/s)", "expected bottleneck"),
            rows,
            title="I3 link between independent clock domains "
                  f"({6 if FAST else 16} worst-case flits each)",
        )
    )
    print()
    print(
        "Every configuration delivers losslessly at the rate of the "
        "slowest element (TX clock, RX clock, or the ~304 MFlit/s serial "
        "ceiling) — no phase-locking, no second clock tree."
    )


if __name__ == "__main__":
    main()
