"""Deterministic fault schedules keyed by named seams.

A :class:`ChaosPolicy` is a seeded, replayable description of *which*
faults fire *where*.  Durability seams (transport calls, the worker item
loop, journal appends) consult the policy by name; the policy answers
with a fault directive or ``None``.  Because every seam draws from its
own ``random.Random(f"{seed}:{seam}")`` stream and keeps its own hit
counter, the schedule depends only on the seed and on how many times
each seam fires — never on wall clock, thread timing, or what the other
seams did.  Running the same workload under the same spec therefore
injects the same faults, which is what makes whole coordinator+worker
chaos runs replayable.

Spec grammar (also accepted via the ``REPRO_CHAOS`` environment
variable)::

    <seed>:<directive>[,<directive>...]
    directive := <seam>=<fault>[:<arg>][@<prob> | #<nth>]

Examples::

    7:transport.claim=race@0.2
    7:worker.item=die#3,journal.append=corrupt#2
    11:transport.renew=fail#2,transport.publish=torn#1

``@p`` fires independently with probability ``p`` on every hit of the
seam; ``#n`` fires on exactly the nth hit.  With neither, the fault
fires on every hit.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..obs.metrics import REGISTRY

ENV_VAR = "REPRO_CHAOS"

#: Seams a spec may target, and the faults each one understands.  The
#: table is the contract between the spec grammar and the injection
#: sites in ``fabric/`` — an unknown seam or an unsupported fault is a
#: spec error, not a silent no-op.
SEAMS: Mapping[str, frozenset] = {
    "transport.read_plan": frozenset({"io", "stall"}),
    "transport.claim": frozenset({"io", "stall", "race"}),
    "transport.renew": frozenset({"io", "stall", "fail"}),
    "transport.release": frozenset({"io", "stall"}),
    "transport.publish": frozenset({"io", "stall", "torn", "dup"}),
    "transport.read_result": frozenset({"io", "stall"}),
    "transport.heartbeat": frozenset({"io", "stall"}),
    "worker.item": frozenset({"die", "hang"}),
    "journal.append": frozenset({"corrupt"}),
}

#: Faults whose ``arg`` is a duration in seconds (and its default).
_TIMED_FAULTS = {"stall": 0.05, "hang": 1.0}


class ChaosSpecError(ValueError):
    """Raised for a malformed or out-of-contract chaos spec."""


@dataclass(frozen=True)
class ChaosRule:
    """One parsed directive: inject ``fault`` at ``seam``."""

    seam: str
    fault: str
    arg: Optional[float] = None
    prob: Optional[float] = None
    nth: Optional[int] = None

    def describe(self) -> str:
        text = f"{self.seam}={self.fault}"
        if self.arg is not None:
            text += f":{self.arg:g}"
        if self.prob is not None:
            text += f"@{self.prob:g}"
        if self.nth is not None:
            text += f"#{self.nth}"
        return text


def _parse_directive(text: str) -> ChaosRule:
    if "=" not in text:
        raise ChaosSpecError(f"directive {text!r} is not <seam>=<fault>")
    seam, _, rhs = text.partition("=")
    seam = seam.strip()
    if seam not in SEAMS:
        known = ", ".join(sorted(SEAMS))
        raise ChaosSpecError(f"unknown seam {seam!r} (known: {known})")
    prob: Optional[float] = None
    nth: Optional[int] = None
    if "@" in rhs:
        rhs, _, tail = rhs.partition("@")
        try:
            prob = float(tail)
        except ValueError:
            raise ChaosSpecError(f"bad probability {tail!r} in {text!r}") from None
        if not 0.0 < prob <= 1.0:
            raise ChaosSpecError(f"probability {prob} outside (0, 1] in {text!r}")
    elif "#" in rhs:
        rhs, _, tail = rhs.partition("#")
        try:
            nth = int(tail)
        except ValueError:
            raise ChaosSpecError(f"bad hit index {tail!r} in {text!r}") from None
        if nth < 1:
            raise ChaosSpecError(f"hit index must be >= 1 in {text!r}")
    fault, _, argtext = rhs.partition(":")
    fault = fault.strip()
    if fault not in SEAMS[seam]:
        allowed = ", ".join(sorted(SEAMS[seam]))
        raise ChaosSpecError(
            f"seam {seam!r} does not support fault {fault!r} (allowed: {allowed})"
        )
    arg: Optional[float] = None
    if argtext:
        try:
            arg = float(argtext)
        except ValueError:
            raise ChaosSpecError(f"bad argument {argtext!r} in {text!r}") from None
        if arg < 0:
            raise ChaosSpecError(f"argument must be >= 0 in {text!r}")
    elif fault in _TIMED_FAULTS:
        arg = _TIMED_FAULTS[fault]
    return ChaosRule(seam=seam, fault=fault, arg=arg, prob=prob, nth=nth)


def parse_spec(spec: str) -> "ChaosPolicy":
    """Parse ``<seed>:<directive>[,...]`` into a :class:`ChaosPolicy`."""

    if ":" not in spec:
        raise ChaosSpecError(f"spec {spec!r} is not <seed>:<directives>")
    head, _, body = spec.partition(":")
    try:
        seed = int(head)
    except ValueError:
        raise ChaosSpecError(f"bad seed {head!r} in {spec!r}") from None
    rules = [_parse_directive(part) for part in body.split(",") if part.strip()]
    if not rules:
        raise ChaosSpecError(f"spec {spec!r} has no directives")
    return ChaosPolicy(seed=seed, rules=rules)


def policy_from_env(environ: Mapping[str, str]) -> Optional["ChaosPolicy"]:
    """Build a policy from ``REPRO_CHAOS`` if set, else ``None``."""

    spec = environ.get(ENV_VAR, "").strip()
    if not spec:
        return None
    return parse_spec(spec)


@dataclass
class ChaosPolicy:
    """A seeded fault schedule consulted by name at each seam.

    ``fire(seam)`` counts the hit and returns the first matching rule
    that triggers on it, or ``None``.  Thread-safe: worker code consults
    seams from both the item loop and the lease-renewal thread.
    """

    seed: int
    rules: List[ChaosRule]
    _hits: Dict[str, int] = field(default_factory=dict, repr=False)
    _rng: Dict[str, random.Random] = field(default_factory=dict, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    #: (seam, fault, hit_index) log of every injected fault, in order.
    injected: List[Tuple[str, str, int]] = field(default_factory=list)

    def _seam_rng(self, seam: str) -> random.Random:
        rng = self._rng.get(seam)
        if rng is None:
            # str seeding hashes via sha512 — stable across processes
            # and PYTHONHASHSEED, unlike hash().
            rng = self._rng[seam] = random.Random(f"{self.seed}:{seam}")
        return rng

    def fire(self, seam: str) -> Optional[ChaosRule]:
        with self._lock:
            hit = self._hits.get(seam, 0) + 1
            self._hits[seam] = hit
            chosen: Optional[ChaosRule] = None
            for rule in self.rules:
                if rule.seam != seam:
                    continue
                if rule.nth is not None:
                    triggered = hit == rule.nth
                elif rule.prob is not None:
                    # Draw exactly once per hit per probabilistic rule so
                    # the stream position depends only on the hit count.
                    triggered = self._seam_rng(seam).random() < rule.prob
                else:
                    triggered = True
                if triggered and chosen is None:
                    chosen = rule
            if chosen is not None:
                self.injected.append((seam, chosen.fault, hit))
        if chosen is not None and REGISTRY.enabled:
            REGISTRY.counter("chaos.injected").inc()
            REGISTRY.counter(f"chaos.injected.{chosen.fault}").inc()
        return chosen

    def hits(self, seam: str) -> int:
        with self._lock:
            return self._hits.get(seam, 0)

    def describe(self) -> str:
        return f"{self.seed}:" + ",".join(rule.describe() for rule in self.rules)
