"""Bounded exponential backoff with deterministic jitter.

Transient transport faults (a stalled NFS mount, an injected chaos
IOError) should cost a few retries, not a dead worker.  The jitter here
is *deterministic*: it is derived by hashing ``(seed, key, attempt)``
rather than drawn from shared RNG state, so a replayed chaos run backs
off by exactly the same delays and two call sites never perturb each
other's schedules.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

from ..obs.metrics import REGISTRY

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Retry ``attempts`` times with capped exponential backoff.

    ``jitter`` widens each delay to ``[1-jitter, 1+jitter]`` of its
    nominal value using the hash-derived fraction — set it to 0 for
    exact exponential delays.
    """

    attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def delay(self, attempt: int, key: str = "") -> float:
        """Nominal sleep before retry number ``attempt`` (1-based)."""

        raw = min(self.max_delay, self.base_delay * (2.0 ** (attempt - 1)))
        if not self.jitter:
            return raw
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode("utf-8")
        ).digest()
        frac = int.from_bytes(digest[:8], "big") / 2.0**64
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * frac)

    def call(
        self,
        fn: Callable[..., T],
        *args,
        key: str = "",
        retry_on: Tuple[Type[BaseException], ...] = (OSError,),
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
        **kwargs,
    ) -> T:
        """Invoke ``fn`` retrying transient failures; re-raise the last."""

        for attempt in range(1, self.attempts + 1):
            try:
                return fn(*args, **kwargs)
            except retry_on as exc:
                if attempt >= self.attempts:
                    raise
                if REGISTRY.enabled:
                    REGISTRY.counter("fabric.retries").inc()
                if on_retry is not None:
                    on_retry(attempt, exc)
                sleep(self.delay(attempt, key))
        raise AssertionError("unreachable")  # pragma: no cover
