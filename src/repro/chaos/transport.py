"""A fault-injecting decorator over any fabric :class:`Transport`.

Wrap a real transport and a :class:`~repro.chaos.policy.ChaosPolicy`;
every protocol call first consults the policy at its named seam and
may raise an injected ``OSError``, stall, lose a claim race, report a
lost lease, tear a result write, or publish a duplicate — then (unless
the fault preempts it) delegates to the inner transport.  The wrapper
changes *when* calls fail, never *what* a successful call does, so
everything the fabric recovers to under chaos is still protocol-legal.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set

from ..fabric.transport import FileTransport, LeaseRecord, Transport
from .policy import ChaosPolicy, ChaosRule


class ChaosTransport(Transport):
    """Inject policy-scheduled faults in front of ``inner``."""

    def __init__(self, inner: Transport, policy: ChaosPolicy) -> None:
        self.inner = inner
        self.policy = policy

    def __getattr__(self, name: str):
        # FileTransport extras (worker_dir, segment_journals, root, ...)
        # pass straight through so callers needing the concrete surface
        # can keep using the wrapped instance.
        return getattr(self.inner, name)

    # ------------------------------------------------------------------
    def _consult(self, seam: str) -> Optional[ChaosRule]:
        rule = self.policy.fire(seam)
        if rule is None:
            return None
        if rule.fault == "stall":
            time.sleep(rule.arg or 0.0)
            return None
        if rule.fault == "io":
            raise OSError(
                f"chaos[{seam}]: injected transient IOError "
                f"(hit {self.policy.hits(seam)})"
            )
        return rule

    # -- plan ----------------------------------------------------------
    def read_plan(self) -> Optional[Dict[str, object]]:
        self._consult("transport.read_plan")
        return self.inner.read_plan()

    def write_plan(self, plan: Dict[str, object]) -> None:
        self.inner.write_plan(plan)

    # -- leases --------------------------------------------------------
    def try_claim(self, item: str, owner: str,
                  ttl: float) -> Optional[LeaseRecord]:
        rule = self._consult("transport.claim")
        if rule is not None and rule.fault == "race":
            return None  # somebody else "won" this claim
        return self.inner.try_claim(item, owner, ttl)

    def renew(self, item: str, owner: str, ttl: float) -> bool:
        rule = self._consult("transport.renew")
        if rule is not None and rule.fault == "fail":
            return False  # lease "taken over" under us
        return self.inner.renew(item, owner, ttl)

    def release(self, item: str, owner: str) -> None:
        self._consult("transport.release")
        self.inner.release(item, owner)

    def lease(self, item: str) -> Optional[LeaseRecord]:
        return self.inner.lease(item)

    def leases(self) -> Dict[str, LeaseRecord]:
        return self.inner.leases()

    def break_lease(self, item: str) -> bool:
        return self.inner.break_lease(item)

    # -- results -------------------------------------------------------
    def publish_result(self, index: int,
                       record: Dict[str, object]) -> bool:
        rule = self._consult("transport.publish")
        if rule is not None and rule.fault == "torn":
            self._tear(index, record)
            raise OSError(
                f"chaos[transport.publish]: write torn mid-record "
                f"for index {index}"
            )
        if rule is not None and rule.fault == "dup":
            first = self.inner.publish_result(index, record)
            self.inner.publish_result(index, record)
            return first
        return self.inner.publish_result(index, record)

    def _tear(self, index: int, record: Dict[str, object]) -> None:
        """Leave half a record at the result path, non-atomically."""
        import json

        if not isinstance(self.inner, FileTransport):
            return  # only the file transport has a path to tear
        path = self.inner._result_path(index)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(record, sort_keys=True)
        path.write_text(payload[: max(4, len(payload) // 2)],
                        encoding="utf-8")

    def read_result(self, index: int) -> Optional[Dict[str, object]]:
        self._consult("transport.read_result")
        return self.inner.read_result(index)

    def discard_result(self, index: int) -> bool:
        return self.inner.discard_result(index)

    def result_indices(self) -> Set[int]:
        return self.inner.result_indices()

    # -- workers -------------------------------------------------------
    def heartbeat(self, worker_id: str) -> None:
        self._consult("transport.heartbeat")
        self.inner.heartbeat(worker_id)

    def worker_ids(self) -> List[str]:
        return self.inner.worker_ids()

    def alive_workers(self, ttl: float) -> List[str]:
        return self.inner.alive_workers(ttl)
