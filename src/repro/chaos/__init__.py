"""Deterministic chaos engineering for the sweep fabric.

Seeded fault schedules (:mod:`.policy`), deterministic retry/backoff
(:mod:`.retry`), and a fault-injecting :class:`ChaosTransport`
decorator (:mod:`.transport`).  Same seed, same workload ⇒ same
injected faults ⇒ same recovered artifacts — failure handling becomes
a replayable, CI-gated property instead of a rare-event hope.
"""

from .policy import (
    ENV_VAR,
    SEAMS,
    ChaosPolicy,
    ChaosRule,
    ChaosSpecError,
    parse_spec,
    policy_from_env,
)
from .retry import RetryPolicy

__all__ = [
    "ENV_VAR",
    "SEAMS",
    "ChaosPolicy",
    "ChaosRule",
    "ChaosSpecError",
    "ChaosTransport",
    "RetryPolicy",
    "parse_spec",
    "policy_from_env",
]


def __getattr__(name: str):
    # ChaosTransport pulls in repro.fabric; load it lazily so importing
    # repro.chaos from inside the fabric package cannot cycle.
    if name == "ChaosTransport":
        from .transport import ChaosTransport

        return ChaosTransport
    raise AttributeError(name)
