"""Structured JSONL telemetry stream + end-of-run snapshot.

A sweep with telemetry enabled appends ``telemetry.jsonl`` beside its
journal: a header line, one ``point`` line per completed grid point
(flushed the moment the engine yields the outcome, like the journal),
and a final ``summary`` line with sweep-level rollups.  Unlike the
journal, the stream is *not* part of the deterministic artifact
contract — it exists to carry exactly the volatile facts (wall-clock
durations, kernel counter deltas, store hits, job utilization) that
the journal's determinism forbids it from owning alone.

The encoding mirrors :mod:`repro.store.codec`: JSON-native scalars
survive verbatim, parameters travel as ``[name, value]`` pairs, and
reading a stream back loses nothing the analytics consume.  Torn-tail
recovery is byte-for-byte the journal's discipline: a line counts only
if it is newline-terminated *and* parseable; everything after the
first damaged line is dropped (:func:`recover_stream` also truncates
the file so later appends continue a well-formed stream).

``telemetry.json`` is the companion end-of-run snapshot: one JSON
document (metrics registry snapshot, per-point summaries, wall time)
written once when the run finishes — the cheap thing dashboards read
without replaying a stream.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple

#: file names inside a sweep/run output directory
STREAM_FILENAME = "telemetry.jsonl"
SNAPSHOT_FILENAME = "telemetry.json"

STREAM_VERSION = 1


class TelemetryError(ValueError):
    """Malformed telemetry stream: missing/invalid header."""


def stream_path(out_dir) -> Path:
    return Path(out_dir) / STREAM_FILENAME


def snapshot_path(out_dir) -> Path:
    return Path(out_dir) / SNAPSHOT_FILENAME


def point_record(outcome, store_hit: bool = False) -> Dict[str, object]:
    """One stream line's payload for a completed grid point.

    ``outcome`` is a :class:`repro.runner.engine.RunOutcome` (typed
    loosely here so this module stays import-time dependency-free — the
    kernels import :mod:`repro.obs` and must not drag the runner in).
    """
    request = outcome.request
    record: Dict[str, object] = {
        "kind": "point",
        "scenario": request.scenario_id,
        "params": [[name, value] for name, value in request.params],
        "fast": request.fast,
        "ok": outcome.ok,
        "raised": bool(outcome.error),
        "store_hit": store_hit,
        "duration_s": outcome.duration_s,
        "t_mono": outcome.t_mono,
    }
    if outcome.error:
        # the last traceback line identifies the failure cluster; the
        # journal keeps the full text for resume
        record["error"] = outcome.error.strip().splitlines()[-1]
    if outcome.metrics:
        record["metrics"] = dict(outcome.metrics)
    return record


class TelemetryWriter:
    """Writer side: header once, flushed line per point, summary last."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    def start(self, scenario_id: str, fingerprint: str = "",
              jobs: int = 1, total_points: int = 0) -> None:
        """(Re)create the stream with a fresh header line."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "kind": "header",
            "version": STREAM_VERSION,
            "scenario": scenario_id,
            "fingerprint": fingerprint,
            "jobs": jobs,
            "total_points": total_points,
        }
        self.path.write_text(
            json.dumps(header, sort_keys=True) + "\n", encoding="utf-8"
        )

    def _append(self, record: Dict[str, object]) -> None:
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()

    def append_point(self, outcome, store_hit: bool = False) -> None:
        """Durably record one completed point (open-write-close)."""
        self._append(point_record(outcome, store_hit=store_hit))

    def finish(self, summary: Dict[str, object]) -> None:
        """Append the sweep-level rollup line."""
        record = {"kind": "summary"}
        record.update(summary)
        self._append(record)


def _read(path: Path) -> Tuple[Dict[str, object],
                               List[Dict[str, object]], int]:
    """Parse the stream; also return the valid-prefix byte length."""
    header: Dict[str, object] = {}
    records: List[Dict[str, object]] = []
    valid_bytes = 0
    with path.open("rb") as fh:
        raw = fh.read()
    for i, line in enumerate(raw.splitlines(keepends=True)):
        if not line.endswith(b"\n"):
            break
        try:
            entry = json.loads(line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            break  # killed mid-write; the rest is untrustworthy
        if i == 0:
            if entry.get("kind") != "header":
                raise TelemetryError(
                    f"{path}: first line is not a telemetry header"
                )
            header = entry
        else:
            records.append(entry)
        valid_bytes += len(line)
    if not header:
        raise TelemetryError(f"{path}: empty or headerless stream")
    return header, records, valid_bytes


def read_stream(path) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """Read a stream back: ``(header, records)``, torn tail dropped."""
    header, records, _ = _read(Path(path))
    return header, records


def recover_stream(path) -> Tuple[Dict[str, object],
                                  List[Dict[str, object]]]:
    """Like :func:`read_stream`, but truncates the file to its valid
    prefix so subsequent appends continue a well-formed stream."""
    path = Path(path)
    header, records, valid_bytes = _read(path)
    if valid_bytes < path.stat().st_size:
        with path.open("r+b") as fh:
            fh.truncate(valid_bytes)
    return header, records


def write_snapshot(out_dir, document: Dict[str, object]) -> Path:
    """Write the ``telemetry.json`` end-of-run snapshot; returns its path."""
    path = snapshot_path(out_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"version": STREAM_VERSION}
    payload.update(document)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path
