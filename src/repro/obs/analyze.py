"""``repro telemetry <dir>`` — summarize a sweep's telemetry stream.

Answers the questions a long sweep leaves behind: where did the time
go (slowest points, per-job utilization), what failed and how often
(failure clusters keyed by the final traceback line), how well the
store served resume (hit ratio), and what the kernels actually did
(counter rollups across every instrumented point).

The primary source is ``telemetry.jsonl``.  When a sweep ran without
telemetry the journal still carries per-point durations (a satellite
of the same PR), so :func:`summarize` falls back to ``journal.jsonl``
— store hits and kernel counters are simply absent there, and the
report says so rather than inventing zeros.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from . import telemetry as telemetry_mod

#: the journal's filename, mirrored here so this module stays
#: import-time leaf-only (the store package pulls in the whole runner,
#: and the kernels import repro.obs at module scope)
_JOURNAL_FILENAME = "journal.jsonl"


def _point_label(params) -> str:
    """``a=1,b=x`` from codec-style ``[name, value]`` pairs."""
    if not params:
        return "default"
    return ",".join(f"{name}={value}" for name, value in params)


@dataclass
class TelemetryReport:
    """Everything the ``repro telemetry`` subcommand prints/exports."""

    source: str                       # file the report was built from
    scenario: str = ""
    jobs: int = 1
    points: List[Dict[str, object]] = field(default_factory=list)
    summary: Dict[str, object] = field(default_factory=dict)
    has_store_info: bool = False      # journal fallback lacks store hits
    #: set when built from a fabric directory: one row per worker
    #: segment — ``{"worker", "points", "busy_s", "span_s",
    #: "utilization"}`` (utilization None for an untimestamped segment)
    worker_rows: List[Dict[str, object]] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        return len(self.points)

    @property
    def failed(self) -> List[Dict[str, object]]:
        return [p for p in self.points if not p.get("ok", True)]

    @property
    def store_hits(self) -> int:
        return sum(1 for p in self.points if p.get("store_hit"))

    @property
    def store_hit_ratio(self) -> Optional[float]:
        if not self.has_store_info or not self.points:
            return None
        return self.store_hits / len(self.points)

    @property
    def total_duration_s(self) -> float:
        return sum(p.get("duration_s") or 0.0 for p in self.points)

    @property
    def wall_span_s(self) -> Optional[float]:
        """Elapsed wall time covered by the timestamped points."""
        stamps = [
            (p["t_mono"] - (p.get("duration_s") or 0.0), p["t_mono"])
            for p in self.points
            if p.get("t_mono") is not None
        ]
        if not stamps:
            return None
        return max(end for _, end in stamps) - min(s for s, _ in stamps)

    @property
    def utilization(self) -> Optional[float]:
        """Busy fraction per job: sum(durations) / (jobs * wall span)."""
        span = self.wall_span_s
        if span is None or span <= 0 or self.jobs <= 0:
            return None
        return min(self.total_duration_s / (self.jobs * span), 1.0)

    def slowest(self, n: int = 5) -> List[Tuple[str, float]]:
        timed = [
            (_point_label(p.get("params")), p["duration_s"])
            for p in self.points
            if p.get("duration_s") is not None
        ]
        timed.sort(key=lambda item: (-item[1], item[0]))
        return timed[:n]

    def failure_clusters(self) -> List[Tuple[str, int, str]]:
        """``(error, count, example point)`` — most common first."""
        clusters: Dict[str, List[str]] = {}
        for p in self.failed:
            error = str(p.get("error") or "unknown error")
            clusters.setdefault(error, []).append(
                _point_label(p.get("params"))
            )
        ranked = sorted(
            clusters.items(), key=lambda kv: (-len(kv[1]), kv[0])
        )
        return [(err, len(pts), pts[0]) for err, pts in ranked]

    def counter_rollup(self) -> Dict[str, int]:
        """Sum every ``counter:<name>`` delta across all points."""
        totals: Dict[str, int] = {}
        for p in self.points:
            for key, value in (p.get("metrics") or {}).items():
                if key.startswith("counter:"):
                    name = key[len("counter:"):]
                    totals[name] = totals.get(name, 0) + value
        return dict(sorted(totals.items()))

    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        ratio = self.store_hit_ratio
        return {
            "source": self.source,
            "scenario": self.scenario,
            "jobs": self.jobs,
            "points": self.total,
            "failed": len(self.failed),
            "store_hit_ratio": ratio,
            "total_duration_s": self.total_duration_s,
            "wall_span_s": self.wall_span_s,
            "utilization": self.utilization,
            "slowest": [
                {"point": label, "duration_s": dur}
                for label, dur in self.slowest()
            ],
            "failure_clusters": [
                {"error": err, "count": count, "example": example}
                for err, count, example in self.failure_clusters()
            ],
            "counters": self.counter_rollup(),
            **({"workers": self.worker_rows} if self.worker_rows
               else {}),
        }

    def to_csv(self) -> str:
        """One row per point: the flat facts, counters excluded.

        Fabric reports gain a trailing ``worker`` column naming which
        worker segment each point came from; single-stream reports
        keep the original header shape.
        """
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        header = ["scenario", "point", "ok", "store_hit", "duration_s"]
        if self.worker_rows:
            header.append("worker")
        writer.writerow(header)
        for p in self.points:
            row = [
                p.get("scenario", self.scenario),
                _point_label(p.get("params")),
                p.get("ok", True),
                p.get("store_hit", "") if self.has_store_info else "",
                p.get("duration_s", ""),
            ]
            if self.worker_rows:
                row.append(p.get("worker", ""))
            writer.writerow(row)
        return buf.getvalue()

    def render(self) -> str:
        lines = [
            f"telemetry: {self.source}",
            f"scenario:  {self.scenario or '?'}"
            + (f"  (jobs={self.jobs})" if self.jobs > 1 else ""),
            f"points:    {self.total} total, {len(self.failed)} failed",
        ]
        ratio = self.store_hit_ratio
        if ratio is not None:
            lines.append(
                f"store:     {self.store_hits}/{self.total} hits "
                f"({100 * ratio:.0f}%)"
            )
        if any(p.get("duration_s") is not None for p in self.points):
            lines.append(f"busy time: {self.total_duration_s:.3f} s")
            span = self.wall_span_s
            util = self.utilization
            if span is not None:
                text = f"wall span: {span:.3f} s"
                if util is not None:
                    text += f"  ({100 * util:.0f}% per-job utilization)"
                lines.append(text)
            lines.append("slowest points:")
            for label, dur in self.slowest():
                lines.append(f"  {dur:9.3f} s  {label}")
        clusters = self.failure_clusters()
        if clusters:
            lines.append("failure clusters:")
            for err, count, example in clusters:
                lines.append(f"  {count:4d} x {err}  (e.g. {example})")
        if self.worker_rows:
            lines.append("per-worker utilization:")
            width = max(len(str(r["worker"])) for r in self.worker_rows)
            for row in self.worker_rows:
                util = row.get("utilization")
                util_text = (
                    f"{100 * util:.0f}% busy" if util is not None
                    else "no timestamps"
                )
                lines.append(
                    f"  {str(row['worker']):<{width}}  "
                    f"{row['points']:4d} point(s)  "
                    f"{row['busy_s']:9.3f} s busy  {util_text}"
                )
        counters = self.counter_rollup()
        if counters:
            lines.append("kernel counters (summed over points):")
            width = max(len(name) for name in counters)
            for name, value in counters.items():
                lines.append(f"  {name:<{width}}  {value}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
def _from_stream(path: Path) -> TelemetryReport:
    header, records = telemetry_mod.read_stream(path)
    report = TelemetryReport(
        source=str(path),
        scenario=str(header.get("scenario", "")),
        jobs=int(header.get("jobs", 1) or 1),
        has_store_info=True,
    )
    for record in records:
        kind = record.get("kind")
        if kind == "point":
            report.points.append(record)
        elif kind == "summary":
            report.summary = record
    return report


def _from_journal(path: Path) -> TelemetryReport:
    from ..store import journal as journal_mod  # lazy: pulls in runner

    header, outcomes = journal_mod.load(path)
    report = TelemetryReport(
        source=str(path),
        scenario=str(header.get("scenario", "")),
        has_store_info=False,
    )
    for outcome in outcomes:
        report.points.append(telemetry_mod.point_record(outcome))
    return report


def _worker_streams(target: Path) -> List[Path]:
    """Per-worker telemetry segments under a fabric directory."""
    workers = target / "workers"
    if not workers.is_dir():
        return []
    return sorted(workers.glob(f"*/{telemetry_mod.STREAM_FILENAME}"))


def _segment_utilization(
    points: List[Dict[str, object]]
) -> Tuple[float, Optional[float], Optional[float]]:
    """``(busy_s, span_s, utilization)`` of one worker's points."""
    busy = sum(p.get("duration_s") or 0.0 for p in points)
    stamps = [
        (p["t_mono"] - (p.get("duration_s") or 0.0), p["t_mono"])
        for p in points
        if p.get("t_mono") is not None
    ]
    if not stamps:
        return busy, None, None
    span = max(end for _, end in stamps) - min(s for s, _ in stamps)
    if span <= 0:
        return busy, span, None
    return busy, span, min(busy / span, 1.0)


def _from_fabric(target: Path, streams: List[Path]) -> TelemetryReport:
    """Aggregate every worker's telemetry segment in a fabric directory.

    The merged report sums counter rollups and point lists across the
    whole fleet (each point tagged with its worker), treats the worker
    count as the job count for fleet-wide utilization, and adds one
    per-worker utilization row per segment.  Unreadable segments — a
    worker SIGKILLed before writing its header — are skipped, matching
    the journal merge's damage-bounding rule.
    """
    report = TelemetryReport(
        source=str(target),
        has_store_info=True,
        worker_rows=[],
    )
    for stream in streams:
        worker_id = stream.parent.name
        try:
            header, records = telemetry_mod.read_stream(stream)
        except (telemetry_mod.TelemetryError, OSError):
            continue
        if not report.scenario:
            report.scenario = str(header.get("scenario", ""))
        segment_points = []
        for record in records:
            if record.get("kind") != "point":
                continue
            tagged = dict(record)
            tagged["worker"] = worker_id
            segment_points.append(tagged)
        report.points.extend(segment_points)
        busy, span, util = _segment_utilization(segment_points)
        report.worker_rows.append({
            "worker": worker_id,
            "points": len(segment_points),
            "busy_s": busy,
            "span_s": span,
            "utilization": util,
        })
    if not report.worker_rows:
        raise telemetry_mod.TelemetryError(
            f"{target}: no readable worker telemetry segments"
        )
    report.jobs = len(report.worker_rows)
    return report


def summarize(target) -> TelemetryReport:
    """Build a report for a sweep directory (or a stream file directly).

    Prefers ``telemetry.jsonl``; a fabric directory (one with
    ``workers/*/telemetry.jsonl`` segments and no top-level stream)
    aggregates every worker's segment; otherwise falls back to the
    journal, which carries per-point durations too.
    """
    target = Path(target)
    if target.is_file():
        if target.name == _JOURNAL_FILENAME:
            return _from_journal(target)
        return _from_stream(target)
    stream = telemetry_mod.stream_path(target)
    if stream.exists():
        return _from_stream(stream)
    worker_streams = _worker_streams(target)
    if worker_streams:
        return _from_fabric(target, worker_streams)
    journal_file = target / _JOURNAL_FILENAME
    if journal_file.exists():
        return _from_journal(journal_file)
    raise FileNotFoundError(
        f"{target}: no {telemetry_mod.STREAM_FILENAME}, "
        f"workers/*/{telemetry_mod.STREAM_FILENAME} or "
        f"{_JOURNAL_FILENAME} found"
    )
