"""Live sweep progress: one status line, rewritten in place.

``repro sweep --progress`` feeds each engine outcome (and each
store-satisfied point) into a :class:`SweepProgress`, which maintains a
single status line::

    sweep 37/84 (44%) | 2.3 pt/s | eta 0:20 | 3 failed | 12 cached

On a TTY the line is redrawn with ``\\r`` on every update, and a
background heartbeat rewrites it twice a second so elapsed/ETA keep
ticking even while a slow point runs.  When stdout is a pipe (CI, logs)
the same text degrades to periodic *newline-terminated* log lines — at
most one every few seconds plus a final one — so piped output stays
readable and, crucially, small.

The display writes only to its stream and touches no artifact file:
a sweep with ``--progress`` produces byte-identical artifacts to one
without (the tests hold this as an invariant).  Clock and stream are
injectable so the renderer is testable without wall-clock sleeps.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Optional


def _fmt_eta(seconds: float) -> str:
    """Compact mm:ss / h:mm:ss."""
    seconds = max(0, int(seconds + 0.5))
    minutes, sec = divmod(seconds, 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{sec:02d}"
    return f"{minutes}:{sec:02d}"


class SweepProgress:
    """Single-line sweep status with TTY redraw / non-TTY log fallback.

    Call :meth:`point_done` for every finished point (whether executed
    or served from the store), then :meth:`close` — which prints the
    final state and, on a TTY, terminates the line with a newline so
    whatever prints next starts clean.
    """

    def __init__(
        self,
        total: int,
        stream=None,
        clock=time.monotonic,
        heartbeat_interval: float = 0.5,
        log_interval: float = 5.0,
        heartbeat: Optional[bool] = None,
    ) -> None:
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.clock = clock
        self.log_interval = log_interval
        self.heartbeat_interval = heartbeat_interval
        isatty = getattr(self.stream, "isatty", None)
        self.tty = bool(isatty()) if callable(isatty) else False
        self.done = 0
        self.failed = 0
        self.cached = 0
        self._t0 = clock()
        self._last_emit = float("-inf")
        self._last_len = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # the heartbeat only earns its thread on a live terminal, where
        # the ETA visibly ticks; piped output gets timed log lines from
        # point_done alone
        if heartbeat is None:
            heartbeat = self.tty
        if heartbeat:
            self._thread = threading.Thread(
                target=self._beat, name="sweep-progress", daemon=True
            )
            self._thread.start()

    # ------------------------------------------------------------------
    def point_done(self, ok: bool = True, cached: bool = False) -> None:
        """Record one finished point and maybe refresh the display."""
        with self._lock:
            self.done += 1
            if not ok:
                self.failed += 1
            if cached:
                self.cached += 1
            self._emit(force=self.tty)

    def close(self) -> None:
        """Stop the heartbeat and print the final state."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        with self._lock:
            self._emit(force=True, final=True)

    def __enter__(self) -> "SweepProgress":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The status text (no carriage control)."""
        elapsed = max(self.clock() - self._t0, 1e-9)
        rate = self.done / elapsed
        pct = (100 * self.done // self.total) if self.total else 100
        parts = [
            f"sweep {self.done}/{self.total} ({pct}%)",
            f"{rate:.1f} pt/s",
        ]
        remaining = self.total - self.done
        if remaining > 0 and rate > 0:
            parts.append(f"eta {_fmt_eta(remaining / rate)}")
        elif remaining <= 0:
            parts.append(f"took {_fmt_eta(elapsed)}")
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.cached:
            parts.append(f"{self.cached} cached")
        return " | ".join(parts)

    # ------------------------------------------------------------------
    def _emit(self, force: bool = False, final: bool = False) -> None:
        now = self.clock()
        if not force and now - self._last_emit < self.log_interval:
            return
        self._last_emit = now
        text = self.render()
        try:
            if self.tty:
                # overwrite the previous line; pad over any leftovers
                pad = " " * max(0, self._last_len - len(text))
                end = "\n" if final else ""
                self.stream.write(f"\r{text}{pad}{end}")
                self._last_len = len(text)
            else:
                self.stream.write(text + "\n")
            self.stream.flush()
        except (OSError, ValueError):
            pass  # display is best-effort; never kill the sweep

    def _beat(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            with self._lock:
                self._emit(force=True)
