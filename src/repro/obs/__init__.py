"""Unified observability layer.

Four pieces, layered so that each backend pays nothing when the layer
is off and nobody above it needs to know which kernel ran:

* :mod:`repro.obs.metrics` — the process-wide metrics registry
  (counters, gauges, timers, fixed-bucket histograms).  Disabled by
  default; every instrumentation site in the kernels guards on a
  single attribute check (``if REGISTRY.enabled:``), so the hot paths
  of all three backends are untouched until somebody opts in.
* :mod:`repro.obs.telemetry` — the structured JSONL telemetry stream a
  sweep appends beside its journal, plus the ``telemetry.json``
  end-of-run snapshot.  Same torn-tail recovery discipline as the
  sweep journal.
* :mod:`repro.obs.progress` — the ``cs/upd.py``-style live single-line
  sweep status (done/total, rate, ETA, failures), degrading to
  periodic log lines when stdout is not a TTY.
* :mod:`repro.obs.analyze` — ``repro telemetry <dir>``: summarize a
  sweep's stream (slowest points, failure clusters, store-hit ratio,
  kernel counter rollups) with JSON/CSV export.
"""

from .metrics import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    Timer,
    collecting,
    disable,
    enable,
    snapshot_delta,
)
from .telemetry import (  # noqa: F401
    STREAM_FILENAME,
    SNAPSHOT_FILENAME,
    TelemetryError,
    TelemetryWriter,
    read_stream,
    recover_stream,
    stream_path,
    snapshot_path,
    write_snapshot,
)
from .progress import SweepProgress  # noqa: F401
from .analyze import TelemetryReport, summarize  # noqa: F401
