"""Process-wide metrics registry: counters, gauges, timers, histograms.

One :data:`REGISTRY` instance exists per process, **disabled** by
default.  The contract with the kernels' hot paths is strict: an
instrumentation site may cost at most a single attribute check when
the registry is disabled::

    from ..obs.metrics import REGISTRY as _OBS
    ...
    if _OBS.enabled:            # the whole disabled-path cost
        _OBS.counter("sim.events_executed").inc(executed)

Publishing therefore happens at *coarse* boundaries (the end of a
kernel ``run()``, a compiled ``settle()`` phase, one sweep point) —
never inside per-event or per-cycle loops, which keep their existing
plain-integer counters and hand the registry deltas in bulk.

:func:`enable` flips the flag in place (cached references stay valid)
and exports ``REPRO_TELEMETRY=1`` so spawn-start worker processes,
which re-import this module instead of inheriting the parent's memory,
come up enabled too.  Fork-start workers inherit the flag directly.

Snapshots are deterministic: flat ``{"kind:name": value}`` dicts with
sorted keys, so two identical runs serialize identically and
:func:`snapshot_delta` can subtract monotonic metrics point-to-point.
"""

from __future__ import annotations

import bisect
import os
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: environment variable that enables the registry at import time (how
#: spawn-start sweep workers inherit the parent's opt-in)
ENV_FLAG = "REPRO_TELEMETRY"

_TRUE = frozenset({"1", "true", "yes", "on"})


class Counter:
    """Monotonically increasing integer total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-written value (set sizes, depths, occupancies)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value) -> None:
        self.value = value


class Timer:
    """Accumulated wall-clock observations (count/total/min/max)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if self.min is None or seconds < self.min:
            self.min = seconds
        if self.max is None or seconds > self.max:
            self.max = seconds


class Histogram:
    """Fixed-bucket histogram: counts of observations per upper bound.

    ``bounds`` are inclusive upper edges in ascending order; one
    overflow bucket catches everything beyond the last edge.  Bounds
    are fixed at creation — re-requesting the histogram with different
    bounds is an error, which keeps snapshots comparable across the
    whole process lifetime.
    """

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: Sequence[float]) -> None:
        edges = tuple(bounds)
        if not edges:
            raise ValueError("histogram needs at least one bucket bound")
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError(
                f"histogram bounds must be strictly ascending, got {edges}"
            )
        self.bounds: Tuple[float, ...] = edges
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value


class MetricsRegistry:
    """Named metrics of four kinds, keyed once and cached forever.

    ``enabled`` is public and checked by every instrumentation site;
    everything else is get-or-create accessors plus deterministic
    snapshot/reset.
    """

    __slots__ = ("enabled", "_counters", "_gauges", "_timers", "_hists")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}
        self._hists: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def timer(self, name: str) -> Timer:
        metric = self._timers.get(name)
        if metric is None:
            metric = self._timers[name] = Timer()
        return metric

    def histogram(self, name: str,
                  bounds: Sequence[float]) -> Histogram:
        metric = self._hists.get(name)
        if metric is None:
            metric = self._hists[name] = Histogram(bounds)
        elif metric.bounds != tuple(bounds):
            raise ValueError(
                f"histogram {name!r} already exists with bounds "
                f"{metric.bounds}, requested {tuple(bounds)}"
            )
        return metric

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Flat, deterministic view of every metric.

        Keys are ``counter:<name>``, ``gauge:<name>``,
        ``timer:<name>`` (a ``[count, total, min, max]`` list) and
        ``hist:<name>`` (``[bounds..., counts...]`` is unambiguous
        because bounds have fixed length ``len(counts) - 1``), sorted
        so serialization is reproducible.
        """
        out: Dict[str, object] = {}
        for name in sorted(self._counters):
            out[f"counter:{name}"] = self._counters[name].value
        for name in sorted(self._gauges):
            out[f"gauge:{name}"] = self._gauges[name].value
        for name in sorted(self._timers):
            t = self._timers[name]
            out[f"timer:{name}"] = [t.count, t.total, t.min, t.max]
        for name in sorted(self._hists):
            h = self._hists[name]
            out[f"hist:{name}"] = [list(h.bounds), list(h.counts)]
        return out

    def counters(self) -> Dict[str, int]:
        """Just the counter totals, by bare name (sorted)."""
        return {
            name: self._counters[name].value
            for name in sorted(self._counters)
        }

    def reset(self) -> None:
        """Drop every metric (the enabled flag is left alone)."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()
        self._hists.clear()

    def is_empty(self) -> bool:
        return not (
            self._counters or self._gauges or self._timers or self._hists
        )


def snapshot_delta(
    before: Dict[str, object], after: Dict[str, object]
) -> Dict[str, object]:
    """What changed between two snapshots of the same registry.

    Counters and timer totals subtract; gauges and histograms report
    the ``after`` state (a gauge is a level, not a flow).  Metrics
    that did not move are omitted, so a point that never touched a
    subsystem carries no keys for it.
    """
    delta: Dict[str, object] = {}
    for key, value in after.items():
        prev = before.get(key)
        if prev == value:
            continue
        if key.startswith("counter:"):
            delta[key] = value - (prev or 0)
        elif key.startswith("timer:"):
            count, total, tmin, tmax = value
            pcount, ptotal = (prev[0], prev[1]) if prev else (0, 0.0)
            delta[key] = [count - pcount, total - ptotal, tmin, tmax]
        else:
            delta[key] = value
    return delta


#: the process-wide registry every instrumentation site checks
REGISTRY = MetricsRegistry(
    enabled=os.environ.get(ENV_FLAG, "").strip().lower() in _TRUE
)


def enable() -> None:
    """Turn metrics collection on, for this process and its workers."""
    REGISTRY.enabled = True
    os.environ[ENV_FLAG] = "1"


def disable() -> None:
    REGISTRY.enabled = False
    os.environ.pop(ENV_FLAG, None)


@contextmanager
def collecting(reset: bool = False) -> Iterator[MetricsRegistry]:
    """Enable the registry for one block; restore the prior state after.

    ``reset=True`` clears the registry first so the block observes
    deltas from zero (the bench harness uses this to attribute counter
    deltas to one timing point).  The previous enabled state — not the
    previous contents — is restored on exit.
    """
    prior = REGISTRY.enabled
    if reset:
        REGISTRY.reset()
    REGISTRY.enabled = True
    try:
        yield REGISTRY
    finally:
        REGISTRY.enabled = prior
