"""repro — reproduction of "Serialized Asynchronous Links for NoC".

Ogg, Valli, Al-Hashimi, Yakovlev, D'Alessandro, Benini — DATE 2008.

Subpackages
-----------
``repro.sim``
    Discrete-event simulation kernel (signals, processes, clocks).
``repro.design``
    Hierarchical design API: Component/Port instance trees,
    kernel-agnostic elaboration, path-addressed probing.
``repro.tech``
    Technology models; ``st012()`` is the calibrated 0.12 um instance.
``repro.elements``
    Asynchronous circuit primitives (C-element, David cell, latch
    controllers, ring oscillator, shift registers).
``repro.link``
    The paper's three link implementations (synchronous baseline I1,
    per-transfer-ack I2, per-word-ack I3) plus testbenches.
``repro.noc``
    Synchronous NoC substrate (switches, mesh topologies, traffic).
``repro.analysis``
    Timing/power/area/wire-count models reproducing the evaluation.
``repro.experiments``
    One module per paper table/figure regenerating its rows/series.
"""

__version__ = "1.0.0"

from . import sim, design, tech, elements, link, noc, analysis, experiments  # noqa: F401

__all__ = [
    "sim",
    "design",
    "tech",
    "elements",
    "link",
    "noc",
    "analysis",
    "experiments",
    "__version__",
]
