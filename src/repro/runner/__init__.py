"""Scenario registry + sweep engine: the execution layer.

Every workload in the repo — paper figures/tables, ablation studies,
design-space sweeps — is a *scenario*: a function returning an
:class:`~repro.experiments.common.ExperimentResult`, registered under a
stable id with a typed parameter spec and tags.  The pieces:

* :mod:`~repro.runner.registry` — decorator-based registration and
  lookup (`scenario`, `get`, `find`, `load_builtin`);
* :mod:`~repro.runner.engine` — serial and ``multiprocessing``
  execution with per-scenario isolation and deterministic ordering;
* :mod:`~repro.runner.sweep` — cartesian parameter-grid expansion;
* :mod:`~repro.runner.artifacts` — CSV + JSON artifact output.

The CLI (``python -m repro``) is a thin shell over this package, and
``repro.experiments.run_all`` is a registry query — nothing enumerates
experiments by hand anymore.
"""

from .registry import (
    ParamSpec,
    Scenario,
    ScenarioError,
    all_scenarios,
    find,
    get,
    ids,
    load_builtin,
    scenario,
)
from .engine import RunOutcome, RunRequest, execute
from .sweep import build_requests, default_grid, expand_grid, parse_axis
from .artifacts import write_artifacts

__all__ = [
    "ParamSpec",
    "Scenario",
    "ScenarioError",
    "all_scenarios",
    "find",
    "get",
    "ids",
    "load_builtin",
    "scenario",
    "RunOutcome",
    "RunRequest",
    "execute",
    "build_requests",
    "default_grid",
    "expand_grid",
    "parse_axis",
    "write_artifacts",
]
