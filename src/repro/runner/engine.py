"""Serial and multiprocess scenario execution.

The engine consumes :class:`RunRequest` values — picklable (scenario id,
parameter overrides, fast flag) triples — and produces
:class:`RunOutcome` values in *request order* regardless of worker
count, so ``--jobs 4`` output is byte-identical to a serial run.

Per-scenario isolation: every execution resets the global packet-id
counter and resolves its own technology object, so one scenario's
global state never leaks into the next whether they share a process
(serial mode) or not (worker pool).
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..obs.metrics import REGISTRY as _OBS
from ..obs.metrics import snapshot_delta
from . import registry


@dataclass(frozen=True)
class RunRequest:
    """One scenario execution: id + sorted, hashable parameter overrides."""

    scenario_id: str
    params: Tuple[Tuple[str, object], ...] = ()
    fast: bool = False

    @classmethod
    def create(
        cls,
        scenario_id: str,
        params: Optional[Dict[str, object]] = None,
        fast: bool = False,
    ) -> "RunRequest":
        """Build a request, validating/coercing params against the spec."""
        sc = registry.get(scenario_id)
        coerced = {
            name: sc.param(name).coerce(raw)
            for name, raw in (params or {}).items()
        }
        return cls(
            scenario_id=scenario_id,
            params=tuple(sorted(coerced.items())),
            fast=fast,
        )

    def params_dict(self) -> Dict[str, object]:
        return dict(self.params)


@dataclass
class RunOutcome:
    """Result (or captured failure) of one request.

    ``duration_s``/``t_mono``/``metrics`` are observability side-band:
    wall-clock execution time, the monotonic completion stamp, and (when
    the metrics registry is enabled) the kernel counter deltas this
    point caused.  They are volatile — two identical runs disagree on
    them — so the deterministic artifact writer ignores them and the
    journal codec quarantines them behind ``VOLATILE_FIELDS``.
    """

    request: RunRequest
    result: object = None  # ExperimentResult on success
    error: str = ""
    resolved_params: Dict[str, object] = field(default_factory=dict)
    duration_s: Optional[float] = None
    t_mono: Optional[float] = None
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.error and getattr(self.result, "all_ok", False)


def _execute_one(request: RunRequest) -> RunOutcome:
    """Run one request in the current process (top-level: picklable)."""
    registry.load_builtin()
    # isolate: global packet ids restart for every scenario so serial
    # and multiprocess execution observe identical counter state
    from ..noc import reset_packet_ids

    reset_packet_ids()
    before = _OBS.snapshot() if _OBS.enabled else None
    t0 = time.perf_counter()
    try:
        sc = registry.get(request.scenario_id)
        resolved = sc.resolve_params(request.params_dict(), fast=request.fast)
        result = sc.func(tech=None, **resolved)
        outcome = RunOutcome(request=request, result=result,
                             resolved_params=resolved)
    except Exception:
        outcome = RunOutcome(request=request, error=traceback.format_exc())
    outcome.duration_s = time.perf_counter() - t0
    outcome.t_mono = time.monotonic()
    if before is not None:
        outcome.metrics = snapshot_delta(before, _OBS.snapshot())
    return outcome


def _batch_key(request: RunRequest, axis: str) -> Tuple:
    """Grouping identity: everything about the request except the axis."""
    return (
        request.scenario_id,
        request.fast,
        tuple(kv for kv in request.params if kv[0] != axis),
    )


def _execute_batch(requests: Sequence[RunRequest]) -> list[RunOutcome]:
    """Run a packed group through the scenario's batch hook.

    The hook receives every request's resolved parameters at once (the
    compiled backend maps them onto bit-parallel lanes) and must return
    one result per request, each identical to what a solo run would
    have produced.  A raising hook fails the whole group — per-request
    outcomes all carry the same traceback.
    """
    registry.load_builtin()
    from ..noc import reset_packet_ids

    reset_packet_ids()
    sc = registry.get(requests[0].scenario_id)
    before = _OBS.snapshot() if _OBS.enabled else None
    t0 = time.perf_counter()
    try:
        resolved = [
            sc.resolve_params(r.params_dict(), fast=r.fast)
            for r in requests
        ]
        results = sc.batch(
            tech=None, param_sets=[dict(p) for p in resolved]
        )
        if results is None or len(results) != len(requests):
            raise RuntimeError(
                f"batch hook of {sc.id!r} returned "
                f"{0 if results is None else len(results)} results "
                f"for {len(requests)} requests"
            )
        outcomes = [
            RunOutcome(request=r, result=res, resolved_params=p)
            for r, res, p in zip(requests, results, resolved)
        ]
    except Exception:
        error = traceback.format_exc()
        outcomes = [RunOutcome(request=r, error=error) for r in requests]
    # the group executed as one call: members share the wall clock
    # evenly, and the first member carries the whole group's kernel
    # counter delta (splitting it per-lane would invent precision)
    wall = time.perf_counter() - t0
    t_end = time.monotonic()
    for outcome in outcomes:
        outcome.duration_s = wall / len(outcomes)
        outcome.t_mono = t_end
    if before is not None and outcomes:
        outcomes[0].metrics = snapshot_delta(before, _OBS.snapshot())
    return outcomes


#: one unit of pool work: a solo request or a packed group
WorkItem = Tuple[str, object]
_WorkItem = WorkItem


def execute_item(item: WorkItem) -> list[RunOutcome]:
    """Run one planned work item in the current process.

    Public seam: the fabric worker executes leased items through this
    exact call, so a leased batch group runs the compiled backend's
    lane packing identically to a local sweep.
    """
    kind, payload = item
    if kind == "one":
        return [_execute_one(payload)]
    return _execute_batch(payload)


_execute_item = execute_item


def failed_outcomes(requests: Sequence[RunRequest],
                    error: str) -> list[RunOutcome]:
    """Fabricated failure outcomes for points the *infrastructure*
    abandoned (wall-clock timeout, quarantine after repeated executor
    deaths) rather than a scenario raising.  The error string is the
    structured reason; it must be deterministic for a given cause so
    replayed chaos runs journal identical failures."""
    t_end = time.monotonic()
    return [
        RunOutcome(request=request, error=error,
                   duration_s=0.0, t_mono=t_end)
        for request in requests
    ]


def _execute_indexed(pair: Tuple[int, WorkItem]
                     ) -> Tuple[int, list[RunOutcome]]:
    """Pool shim carrying each item's plan position through
    ``imap_unordered`` (top-level: picklable)."""
    index, item = pair
    return index, execute_item(item)


def plan_items(requests: Sequence[RunRequest]) -> list[WorkItem]:
    """Pack contiguous batchable requests into groups.

    Only *adjacent* requests sharing everything but the batch axis are
    grouped (capped at the scenario's ``batch_lanes``), which keeps
    outcome streaming strictly in request order — a group completes as
    a block exactly where its members sat in the sequence.
    """
    items: list[_WorkItem] = []
    i = 0
    while i < len(requests):
        request = requests[i]
        sc = registry.get(request.scenario_id)
        if not sc.has_batch:
            items.append(("one", request))
            i += 1
            continue
        key = _batch_key(request, sc.batch_axis)
        group = [request]
        j = i + 1
        while (
            j < len(requests)
            and len(group) < sc.batch_lanes
            and requests[j].scenario_id == request.scenario_id
            and _batch_key(requests[j], sc.batch_axis) == key
        ):
            group.append(requests[j])
            j += 1
        if len(group) > 1:
            items.append(("batch", group))
        else:
            items.append(("one", request))
        i = j
    return items


_plan = plan_items


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork (where available) spares workers the re-import of the whole
    # package and keeps sys.path handling out of the picture
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def execute(
    requests: Sequence[RunRequest],
    jobs: int = 1,
    on_outcome: Optional[Callable[[RunOutcome], None]] = None,
) -> list[RunOutcome]:
    """Execute ``requests``; the returned list is in request order.

    ``jobs > 1`` fans work out over a process pool.  Scenario failures
    are captured per-outcome (``error``), never raised, so one broken
    point cannot sink a sweep.

    ``on_outcome`` is invoked in the parent process for each outcome
    *as it completes* — in completion order, not request order, when
    ``jobs > 1``.  The pool streams via ``imap_unordered`` so one slow
    point never head-of-line-blocks the journal flushes and progress
    display behind it; a reorder buffer reassembles the returned list
    in request order regardless.  Callers that persist incrementally
    (the journal) tolerate any completion order and normalize to
    canonical grid order when the sweep finishes, which keeps the
    final artifacts byte-identical to a serial run.

    Scenarios exposing a ``batch`` hook get adjacent requests that
    differ only in the batch axis packed into one call (up to
    ``batch_lanes`` per group); results unpack per-request, so stores
    and journals see exactly the outcomes a solo sweep would produce.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    requests = list(requests)
    # validate ids up front so a typo fails fast, not in a worker
    for request in requests:
        registry.get(request.scenario_id)
    items = plan_items(requests)
    if jobs == 1 or len(items) < 2:
        outcomes: list[RunOutcome] = []
        for item in items:
            for outcome in execute_item(item):
                if on_outcome is not None:
                    on_outcome(outcome)
                outcomes.append(outcome)
        return outcomes
    ctx = _pool_context()
    ordered: list[Optional[list[RunOutcome]]] = [None] * len(items)
    with ctx.Pool(processes=min(jobs, len(items))) as pool:
        for index, group in pool.imap_unordered(
            _execute_indexed, list(enumerate(items))
        ):
            ordered[index] = group
            for outcome in group:
                if on_outcome is not None:
                    on_outcome(outcome)
    return [
        outcome
        for group in ordered
        if group is not None
        for outcome in group
    ]
