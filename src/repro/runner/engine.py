"""Serial and multiprocess scenario execution.

The engine consumes :class:`RunRequest` values — picklable (scenario id,
parameter overrides, fast flag) triples — and produces
:class:`RunOutcome` values in *request order* regardless of worker
count, so ``--jobs 4`` output is byte-identical to a serial run.

Per-scenario isolation: every execution resets the global packet-id
counter and resolves its own technology object, so one scenario's
global state never leaks into the next whether they share a process
(serial mode) or not (worker pool).
"""

from __future__ import annotations

import multiprocessing
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from . import registry


@dataclass(frozen=True)
class RunRequest:
    """One scenario execution: id + sorted, hashable parameter overrides."""

    scenario_id: str
    params: Tuple[Tuple[str, object], ...] = ()
    fast: bool = False

    @classmethod
    def create(
        cls,
        scenario_id: str,
        params: Optional[Dict[str, object]] = None,
        fast: bool = False,
    ) -> "RunRequest":
        """Build a request, validating/coercing params against the spec."""
        sc = registry.get(scenario_id)
        coerced = {
            name: sc.param(name).coerce(raw)
            for name, raw in (params or {}).items()
        }
        return cls(
            scenario_id=scenario_id,
            params=tuple(sorted(coerced.items())),
            fast=fast,
        )

    def params_dict(self) -> Dict[str, object]:
        return dict(self.params)


@dataclass
class RunOutcome:
    """Result (or captured failure) of one request."""

    request: RunRequest
    result: object = None  # ExperimentResult on success
    error: str = ""
    resolved_params: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.error and getattr(self.result, "all_ok", False)


def _execute_one(request: RunRequest) -> RunOutcome:
    """Run one request in the current process (top-level: picklable)."""
    registry.load_builtin()
    # isolate: global packet ids restart for every scenario so serial
    # and multiprocess execution observe identical counter state
    from ..noc import reset_packet_ids

    reset_packet_ids()
    try:
        sc = registry.get(request.scenario_id)
        resolved = sc.resolve_params(request.params_dict(), fast=request.fast)
        result = sc.func(tech=None, **resolved)
        return RunOutcome(request=request, result=result,
                          resolved_params=resolved)
    except Exception:
        return RunOutcome(request=request, error=traceback.format_exc())


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork (where available) spares workers the re-import of the whole
    # package and keeps sys.path handling out of the picture
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def execute(
    requests: Sequence[RunRequest],
    jobs: int = 1,
    on_outcome: Optional[Callable[[RunOutcome], None]] = None,
) -> list[RunOutcome]:
    """Execute ``requests``; outcomes come back in request order.

    ``jobs > 1`` fans work out over a process pool.  Scenario failures
    are captured per-outcome (``error``), never raised, so one broken
    point cannot sink a sweep.

    ``on_outcome`` is invoked in the parent process for each outcome
    *as it completes* (still in request order — the pool streams via
    ``imap``, not all-at-the-end ``map``), so callers can journal or
    store progress incrementally: a killed sweep keeps everything that
    had finished by the time it died.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    requests = list(requests)
    # validate ids up front so a typo fails fast, not in a worker
    for request in requests:
        registry.get(request.scenario_id)
    outcomes: list[RunOutcome] = []
    if jobs == 1 or len(requests) < 2:
        for request in requests:
            outcome = _execute_one(request)
            if on_outcome is not None:
                on_outcome(outcome)
            outcomes.append(outcome)
        return outcomes
    ctx = _pool_context()
    with ctx.Pool(processes=min(jobs, len(requests))) as pool:
        for outcome in pool.imap(_execute_one, requests):
            if on_outcome is not None:
                on_outcome(outcome)
            outcomes.append(outcome)
    return outcomes
