"""Cartesian parameter-grid expansion for scenario sweeps.

A grid maps parameter names to value lists; :func:`expand_grid` walks
the cartesian product in a deterministic order (first axis slowest,
matching nested for-loops over the axes as given), and
:func:`build_requests` turns the points into engine requests.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional, Sequence

from .engine import RunRequest
from .registry import Scenario, ScenarioError


def expand_grid(
    axes: Mapping[str, Sequence[object]],
) -> List[Dict[str, object]]:
    """All combinations of the axis values, in nested-loop order.

    >>> expand_grid({"a": [1, 2], "b": ["x"]})
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    if not axes:
        return [{}]
    names = list(axes)
    for name in names:
        if not axes[name]:
            raise ScenarioError(f"sweep axis {name!r} has no values")
    return [
        dict(zip(names, values))
        for values in itertools.product(*(axes[name] for name in names))
    ]


def default_grid(scenario: Scenario) -> Dict[str, Sequence[object]]:
    """The scenario's declared default sweep axes (may be empty)."""
    return {
        spec.name: list(spec.sweep)
        for spec in scenario.params
        if spec.sweep
    }


def parse_axis(scenario: Scenario, name: str, raw: str) -> List[object]:
    """Parse a comma-separated axis value list against the param spec."""
    spec = scenario.param(name)
    values = [spec.coerce(part.strip()) for part in raw.split(",") if part.strip()]
    if not values:
        raise ScenarioError(f"sweep axis {name!r} has no values")
    return values


def build_requests(
    scenario: Scenario,
    axes: Optional[Mapping[str, Sequence[object]]] = None,
    fixed: Optional[Mapping[str, object]] = None,
    fast: bool = False,
) -> List[RunRequest]:
    """Requests for every grid point (scenario defaults fill the rest).

    ``axes`` defaults to the scenario's declared sweep axes; ``fixed``
    pins additional parameters across every point.
    """
    grid = dict(axes) if axes is not None else default_grid(scenario)
    if not grid:
        raise ScenarioError(
            f"scenario {scenario.id!r} declares no default sweep axes; "
            f"pass an explicit grid"
        )
    overlap = set(grid) & set(fixed or {})
    if overlap:
        raise ScenarioError(
            f"parameters {sorted(overlap)} are both swept and fixed"
        )
    return [
        RunRequest.create(
            scenario.id,
            params={**dict(fixed or {}), **point},
            fast=fast,
        )
        for point in expand_grid(grid)
    ]
