"""CSV + JSON artifact output for engine outcomes.

Layout under the output directory::

    <out>/
      summary.json                         # machine-readable index
      <scenario>/<point>.rows.csv          # the result table
      <scenario>/<point>.checks.csv        # paper-vs-measured checks

``<point>`` encodes the request's parameter overrides (``default`` when
none).  Content is fully deterministic — no timestamps, host names or
durations — so a ``--jobs 4`` sweep is byte-identical to ``--jobs 1``
and artifact diffs are meaningful in CI.
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path
from typing import Sequence, Union

from .engine import RunOutcome

_UNSAFE = re.compile(r"[^A-Za-z0-9._=+-]+")


def point_slug(outcome: RunOutcome) -> str:
    """Filesystem-safe name for one grid point's parameter overrides.

    Sanitizing is lossy (``"a b"`` and ``"a-b"`` both read ``a-b``),
    so a short hash of the *unsanitized* parameters is appended —
    distinct points can never share artifact files.  The hash is
    content-derived, making slugs stable across processes and runs.
    """
    params = outcome.request.params
    if not params:
        return "default"
    parts = [f"{name}={value}" for name, value in params]
    digest = hashlib.sha256(repr(params).encode()).hexdigest()[:8]
    return f"{_UNSAFE.sub('-', '_'.join(parts))}-{digest}"


def _check_record(check) -> dict:
    return {
        "name": check.name,
        "measured": check.measured,
        "paper": check.paper,
        "tolerance": check.tolerance,
        "mode": check.mode,
        "error": check.error,
        "ok": check.ok,
    }


def write_artifacts(
    outcomes: Sequence[RunOutcome],
    out_dir: Union[str, Path],
) -> Path:
    """Write every outcome's tables plus a ``summary.json`` index.

    Returns the summary path.  Failed outcomes appear in the summary
    with their captured traceback and produce no CSV files.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    records = []
    for outcome in outcomes:
        request = outcome.request
        slug = point_slug(outcome)
        record = {
            "scenario": request.scenario_id,
            "point": slug,
            "params": {name: value for name, value in request.params},
            "fast": request.fast,
            "ok": outcome.ok,
        }
        if outcome.error:
            record["error"] = outcome.error
        else:
            result = outcome.result
            scenario_dir = out / request.scenario_id
            scenario_dir.mkdir(parents=True, exist_ok=True)
            rows_path = scenario_dir / f"{slug}.rows.csv"
            checks_path = scenario_dir / f"{slug}.checks.csv"
            result.to_csv(rows_path)
            checks_path.write_text(result.checks_csv(), encoding="utf-8")
            record["rows_csv"] = str(rows_path.relative_to(out))
            record["checks_csv"] = str(checks_path.relative_to(out))
            record["checks"] = [_check_record(c) for c in result.checks]
        records.append(record)
    summary_path = out / "summary.json"
    summary_path.write_text(
        json.dumps({"runs": records}, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return summary_path
