"""Decorator-based scenario registration.

A scenario is a callable ``func(tech=None, **params) -> ExperimentResult``
registered under a stable id with a description, tags and a typed
parameter spec.  Registration happens at import time::

    from repro.runner.registry import ParamSpec, scenario

    @scenario(
        "fig12",
        description="Fig 12 — link power vs buffer count",
        tags=("paper", "figure", "analytical"),
        params=(ParamSpec("freq_mhz", float, 100.0),),
    )
    def run(tech=None, freq_mhz=100.0):
        ...

The registry is process-global; :func:`load_builtin` imports every
built-in experiment module so worker processes see the same catalogue
as the parent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)


class ScenarioError(ValueError):
    """Unknown id, duplicate registration, or bad parameter value."""


_TRUE = frozenset({"1", "true", "yes", "on"})
_FALSE = frozenset({"0", "false", "no", "off"})


def _coerce_bool(raw: object) -> bool:
    if isinstance(raw, bool):
        return raw
    text = str(raw).strip().lower()
    if text in _TRUE:
        return True
    if text in _FALSE:
        return False
    raise ScenarioError(f"cannot interpret {raw!r} as a boolean")


@dataclass(frozen=True)
class ParamSpec:
    """One typed, sweepable scenario parameter.

    ``sweep`` lists the default axis values used when the scenario is
    swept without an explicit grid (empty = not swept by default).
    """

    name: str
    type: type
    default: object
    help: str = ""
    choices: Optional[Tuple[object, ...]] = None
    sweep: Tuple[object, ...] = ()

    def coerce(self, raw: object) -> object:
        """Parse/validate a (possibly string) value for this parameter."""
        try:
            if self.type is bool:
                value = _coerce_bool(raw)
            elif isinstance(raw, self.type):
                value = raw
            else:
                value = self.type(raw)
        except (TypeError, ValueError) as exc:
            raise ScenarioError(
                f"parameter {self.name!r}: cannot convert {raw!r} "
                f"to {self.type.__name__}"
            ) from exc
        if self.choices is not None and value not in self.choices:
            raise ScenarioError(
                f"parameter {self.name!r}: {value!r} not in "
                f"allowed choices {self.choices}"
            )
        return value


@dataclass
class Scenario:
    """A registered workload: id, metadata, and the callable itself."""

    id: str
    description: str
    func: Callable[..., object]
    tags: frozenset = frozenset()
    params: Tuple[ParamSpec, ...] = ()
    #: parameter overrides applied in fast (no gate-level sim) mode
    fast_params: Dict[str, object] = field(default_factory=dict)
    #: scenario cannot produce a meaningful fast-mode result at all
    fast_skip: bool = False
    #: optional hook ``design(tech=None, **params) -> repro.design.Design``
    #: exposing the scenario's elaborated instance tree (CLI ``inspect``)
    design: Optional[Callable[..., object]] = None
    #: optional batched executor
    #: ``batch(tech=None, param_sets=[{...}, ...]) -> [ExperimentResult]``
    #: — requests that differ only in ``batch_axis`` pack into one call
    #: (the compiled backend runs them as bit-parallel lanes); must
    #: return one result per param set, each identical to a solo run
    batch: Optional[Callable[..., object]] = None
    #: the parameter along which requests may be packed together
    batch_axis: str = "seed"
    #: maximum requests per batched call (compiled backends: lanes/word)
    batch_lanes: int = 64

    def param(self, name: str) -> ParamSpec:
        for spec in self.params:
            if spec.name == name:
                return spec
        raise ScenarioError(
            f"scenario {self.id!r} has no parameter {name!r}; "
            f"declared: {[p.name for p in self.params] or 'none'}"
        )

    def defaults(self) -> Dict[str, object]:
        return {spec.name: spec.default for spec in self.params}

    def resolve_params(
        self,
        overrides: Optional[Dict[str, object]] = None,
        fast: bool = False,
    ) -> Dict[str, object]:
        """Defaults, then fast-mode overrides, then explicit overrides."""
        params = self.defaults()
        if fast:
            params.update(self.fast_params)
        for name, raw in (overrides or {}).items():
            params[name] = self.param(name).coerce(raw)
        return params

    def run(
        self,
        tech=None,
        overrides: Optional[Dict[str, object]] = None,
        fast: bool = False,
    ):
        """Execute with resolved parameters, returning the result."""
        return self.func(tech=tech, **self.resolve_params(overrides, fast))

    @property
    def has_design(self) -> bool:
        return self.design is not None

    @property
    def has_batch(self) -> bool:
        return self.batch is not None

    def design_for(
        self,
        tech=None,
        overrides: Optional[Dict[str, object]] = None,
        fast: bool = False,
    ):
        """Build the scenario's design tree with resolved parameters."""
        if self.design is None:
            raise ScenarioError(
                f"scenario {self.id!r} exposes no design tree"
            )
        return self.design(
            tech=tech, **self.resolve_params(overrides, fast)
        )


_REGISTRY: Dict[str, Scenario] = {}


def scenario(
    id: str,
    *,
    description: str,
    tags: Iterable[str] = (),
    params: Sequence[ParamSpec] = (),
    fast_params: Optional[Dict[str, object]] = None,
    fast_skip: bool = False,
    design: Optional[Callable[..., object]] = None,
    batch: Optional[Callable[..., object]] = None,
    batch_axis: str = "seed",
    batch_lanes: int = 64,
) -> Callable[[Callable], Callable]:
    """Register the decorated function as a scenario; returns it unchanged."""

    def decorate(func: Callable) -> Callable:
        existing = _REGISTRY.get(id)
        if existing is not None:
            same_origin = (
                getattr(existing.func, "__module__", None)
                == getattr(func, "__module__", None)
                and getattr(existing.func, "__qualname__", None)
                == getattr(func, "__qualname__", None)
            )
            # a module re-import (importlib.reload) re-runs its own
            # decorator; that is idempotent, everything else is a clash
            if not same_origin:
                raise ScenarioError(
                    f"scenario id {id!r} already registered by "
                    f"{existing.func.__module__}"
                )
        _REGISTRY[id] = Scenario(
            id=id,
            description=description,
            func=func,
            tags=frozenset(tags),
            params=tuple(params),
            fast_params=dict(fast_params or {}),
            fast_skip=fast_skip,
            design=design,
            batch=batch,
            batch_axis=batch_axis,
            batch_lanes=batch_lanes,
        )
        return func

    return decorate


def get(id: str) -> Scenario:
    try:
        return _REGISTRY[id]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {id!r}; registered: {', '.join(ids()) or 'none'}"
        ) from None


def ids() -> List[str]:
    """Registered scenario ids, in registration order."""
    return list(_REGISTRY)


def all_scenarios() -> List[Scenario]:
    return list(_REGISTRY.values())


def find(tags: Iterable[str] = ()) -> List[Scenario]:
    """Scenarios carrying *every* given tag (all scenarios if none given)."""
    wanted = frozenset(tags)
    return [s for s in _REGISTRY.values() if wanted <= s.tags]


def unregister(id: str) -> None:
    """Remove a scenario (test hook; built-ins re-register on load)."""
    _REGISTRY.pop(id, None)


def load_builtin() -> List[str]:
    """Import every built-in experiment module, triggering registration.

    Safe to call repeatedly and from worker processes; returns the
    registered ids.
    """
    from .. import experiments  # noqa: F401  (import side effect)

    return ids()
