"""Cycle-kernel benchmark harness behind ``python -m repro bench``.

Measures the simulated-cycles-per-second throughput of the optimized
activity-driven kernel (:mod:`repro.noc.network`) and, by default, of
the frozen seed kernel (:mod:`repro.noc.reference`) on the same
workloads, reporting the speedup per point and emitting a JSON document
so the performance trajectory is recorded rather than anecdotal.

Two properties make the numbers trustworthy:

* every timed pair also cross-checks that both kernels produced
  bit-identical :class:`~repro.noc.stats.NetworkStats` summaries
  (``stats_match`` in the JSON) — a fast kernel that computes the wrong
  answer fails the bench;
* regression checking (``--check``) compares the *speedup ratio*
  against a committed baseline, not absolute cycles/sec: the ratio of
  two kernels timed on the same host in the same process is stable
  across machines, where raw cycles/sec is dominated by whatever CPU
  the CI runner happened to get.

``--profile`` wraps the most loaded point's optimized run (highest
injection rate, then largest mesh) in :mod:`cProfile` and prints the
hottest functions, which is how the active-set work was targeted in
the first place.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .link.behavioral import derive_link_params
from .noc import (
    Network,
    Topology,
    TrafficConfig,
    TrafficGenerator,
    reset_packet_ids,
)
from .noc.reference import ReferenceNetwork
from .tech import st012

#: bench schema version, bumped on incompatible JSON layout changes
SCHEMA = 1

#: default operating points: (mesh_size, injection_rate) — the nominal
#: 4x4 point plus the 8x8 low-load and saturation gates from the perf
#: acceptance criteria
DEFAULT_POINTS: Sequence[tuple[int, float]] = ((4, 0.10), (8, 0.02), (8, 0.35))


@dataclass(frozen=True)
class BenchPoint:
    """One timed workload configuration."""

    mesh_size: int
    injection_rate: float
    pattern: str = "uniform"
    routing: str = "xy"
    n_vcs: int = 1
    kind: str = "I3"
    freq_mhz: float = 300.0
    cycles: int = 1500
    seed: int = 2008

    @property
    def key(self) -> str:
        """Stable identity used to match points across bench runs."""
        return (
            f"{self.mesh_size}x{self.mesh_size}"
            f"@{self.injection_rate:g}/{self.pattern}"
            f"/{self.routing}/vc{self.n_vcs}/{self.kind}"
        )


@dataclass
class BenchResult:
    """Timing + verification outcome of one point."""

    point: BenchPoint
    optimized_cps: float
    reference_cps: Optional[float]
    stats_match: Optional[bool]
    flits_ejected: int
    active_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def speedup(self) -> Optional[float]:
        if not self.reference_cps:
            return None
        return self.optimized_cps / self.reference_cps

    def to_json(self) -> Dict[str, object]:
        return {
            "key": self.point.key,
            "mesh_size": self.point.mesh_size,
            "injection_rate": self.point.injection_rate,
            "pattern": self.point.pattern,
            "routing": self.point.routing,
            "n_vcs": self.point.n_vcs,
            "kind": self.point.kind,
            "cycles": self.point.cycles,
            "optimized_cps": round(self.optimized_cps, 1),
            "reference_cps": (
                round(self.reference_cps, 1) if self.reference_cps else None
            ),
            "speedup": (
                round(self.speedup, 3) if self.speedup is not None else None
            ),
            "stats_match": self.stats_match,
            "flits_ejected": self.flits_ejected,
            "active_counts_final": self.active_counts,
        }


def _build(point: BenchPoint, network_cls):
    reset_packet_ids()
    topology = Topology(point.mesh_size, point.mesh_size)
    params = derive_link_params(st012(), point.kind, point.freq_mhz)
    network = network_cls(topology, params, n_vcs=point.n_vcs,
                         routing=point.routing)
    hotspot = None
    if point.pattern == "hotspot":
        hotspot = (topology.cols // 2, topology.rows // 2)
    traffic = TrafficGenerator(
        topology,
        TrafficConfig(
            pattern=point.pattern,
            injection_rate=point.injection_rate,
            seed=point.seed,
            hotspot=hotspot,
            n_vcs=point.n_vcs,
        ),
    )
    return network, traffic


def _time_run(point: BenchPoint, network_cls, repeats: int):
    """Best-of-``repeats`` cycles/sec plus the final network (for stats)."""
    best = 0.0
    network = None
    for _ in range(repeats):
        network, traffic = _build(point, network_cls)
        t0 = time.perf_counter()
        network.run(point.cycles, traffic)
        elapsed = time.perf_counter() - t0
        best = max(best, point.cycles / elapsed if elapsed > 0 else 0.0)
    return best, network


def run_point(
    point: BenchPoint,
    reference: bool = True,
    repeats: int = 3,
) -> BenchResult:
    """Time one point on the optimized (and optionally seed) kernel."""
    opt_cps, opt_net = _time_run(point, Network, repeats)
    ref_cps = None
    stats_match = None
    if reference:
        ref_cps, ref_net = _time_run(point, ReferenceNetwork, repeats)
        stats_match = (
            opt_net.stats.summary() == ref_net.stats.summary()
            and opt_net.stats.packet_latencies
            == ref_net.stats.packet_latencies
        )
    return BenchResult(
        point=point,
        optimized_cps=opt_cps,
        reference_cps=ref_cps,
        stats_match=stats_match,
        flits_ejected=opt_net.stats.flits_ejected,
        active_counts=dict(opt_net.active_component_counts),
    )


def profile_point(point: BenchPoint, top: int = 15) -> str:
    """cProfile the optimized kernel on ``point``; return a pstats table."""
    network, traffic = _build(point, Network)
    profiler = cProfile.Profile()
    profiler.enable()
    network.run(point.cycles, traffic)
    profiler.disable()
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative").print_stats(top)
    return buf.getvalue()


def run_bench(
    points: Sequence[BenchPoint],
    reference: bool = True,
    repeats: int = 3,
    progress=None,
) -> Dict[str, object]:
    """Run every point; return the JSON-able bench document."""
    results = []
    for point in points:
        outcome = run_point(point, reference=reference, repeats=repeats)
        if progress is not None:
            progress(outcome)
        results.append(outcome.to_json())
    return {
        "schema": SCHEMA,
        "python": sys.version.split()[0],
        "repeats": repeats,
        "points": results,
    }


def _major_minor(version: Optional[str]) -> Optional[str]:
    if not version:
        return None
    return ".".join(str(version).split(".")[:2])


def check_against_baseline(
    current: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = 0.30,
) -> List[str]:
    """Problems found comparing ``current`` to a committed baseline.

    A point regresses when its optimized-vs-reference speedup falls
    more than ``tolerance`` (relative) below the baseline's — the
    machine-independent formulation of "cycles/sec regressed".  Points
    present in the baseline but missing from the current run, mismatched
    stats, missing speedups, and workload-length mismatches (a speedup
    measured over a different cycle count is not comparable) all count
    as problems, as does an interpreter mismatch: the two kernels
    stress CPython differently (dict/attribute-heavy vs scan-heavy),
    so the ratio is only stable within one major.minor version — the
    CI bench job pins the Python the committed baseline was recorded
    on.
    """
    problems: List[str] = []
    base_python = _major_minor(baseline.get("python"))
    cur_python = _major_minor(current.get("python"))
    if base_python and cur_python and base_python != cur_python:
        problems.append(
            f"interpreter mismatch: bench ran on Python {cur_python} "
            f"but the baseline was recorded on {base_python} — kernel "
            f"speedup ratios are only comparable on the same "
            f"interpreter; regenerate the baseline"
        )
    current_by_key = {p["key"]: p for p in current.get("points", [])}
    for base_point in baseline.get("points", []):
        key = base_point["key"]
        base_speedup = base_point.get("speedup")
        if base_speedup is None:
            continue
        point = current_by_key.get(key)
        if point is None:
            problems.append(f"{key}: missing from current bench run")
            continue
        base_cycles = base_point.get("cycles")
        cycles = point.get("cycles")
        if (base_cycles is not None and cycles is not None
                and base_cycles != cycles):
            problems.append(
                f"{key}: measured over {cycles} cycles but the baseline "
                f"used {base_cycles} — rerun with matching --cycles "
                f"(the committed baseline uses --fast) or regenerate "
                f"the baseline"
            )
            continue
        if point.get("stats_match") is False:
            problems.append(
                f"{key}: optimized kernel diverged from reference stats"
            )
        speedup = point.get("speedup")
        if speedup is None:
            problems.append(f"{key}: no speedup recorded (ran without "
                            f"--reference?)")
            continue
        floor = base_speedup * (1.0 - tolerance)
        if speedup < floor:
            problems.append(
                f"{key}: speedup {speedup:.2f}x fell below "
                f"{floor:.2f}x (baseline {base_speedup:.2f}x "
                f"- {tolerance:.0%} tolerance)"
            )
    return problems


def default_points(cycles: int) -> List[BenchPoint]:
    return [
        BenchPoint(mesh_size=mesh, injection_rate=rate, cycles=cycles)
        for mesh, rate in DEFAULT_POINTS
    ]


def load_baseline(path: str) -> Dict[str, object]:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def write_json(document: Dict[str, object], path: str) -> None:
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
