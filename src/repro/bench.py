"""Kernel benchmark harness behind ``python -m repro bench``.

Four suites, selected with ``--suite {noc,gate,compiled,sweep,all}``:

* **noc** — simulated-cycles-per-second of the optimized activity-driven
  NoC cycle kernel (:mod:`repro.noc.network`) vs the frozen seed kernel
  (:mod:`repro.noc.reference`);
* **gate** — events-per-second of the optimized gate-level event kernel
  (:mod:`repro.sim`: calendar-queue scheduler, true inertial
  cancellation, allocation-free signal dispatch) vs the frozen seed
  kernel (:mod:`repro.sim.reference`) on serializer-link testbenches, a
  four-phase wire-buffer chain and a free-running ring oscillator;
* **compiled** — aggregate lanes-per-second of the bit-parallel compiled
  backend (:mod:`repro.compiled`: levelized netlist, 64 simulation
  lanes per 64-bit word) vs the *optimized* event kernel evaluating one
  lane of the identical workload — the ratio prices what packing a
  Monte Carlo batch into one word buys over running its lanes one by
  one on the incumbent kernel;
* **sweep** — points-per-second of a no-op grid (``sweep-noop``, zero
  computation per point) dispatched through the distributed sweep
  fabric (:mod:`repro.fabric`: coordinator, file leases, a local
  worker) vs the bare engine on the identical grid — the ratio is
  pure scheduling overhead, and the committed baseline gates how much
  of it the fabric may cost.

Both report the speedup per point and emit a JSON document so the
performance trajectory is recorded rather than anecdotal.

Two properties make the numbers trustworthy:

* every timed pair also cross-checks that both kernels produced
  bit-identical results (``stats_match`` in the JSON): NetworkStats
  summaries for the noc suite, delivery timestamps / received values /
  activity counters for the gate suite, lane-0 settled net values and
  transition counters for the compiled suite — a fast kernel that
  computes the wrong answer fails the bench;
* regression checking (``--check``) compares the *speedup ratio*
  against a committed baseline, not absolute throughput: the ratio of
  two kernels timed on the same host in the same process is stable
  across machines, where raw cycles/sec is dominated by whatever CPU
  the CI runner happened to get.

The gate suite's speedup is the wall-clock ratio on the identical
workload — the two kernels execute different event *counts* for the
same circuit (the seed runs superseded inertial drives as no-ops, the
optimized kernel cancels them), so the ratio is quoted in the seed
kernel's event currency.

``--profile`` wraps the most loaded point's optimized run (highest
injection rate, then largest mesh) in :mod:`cProfile` and prints the
hottest functions, which is how the active-set work was targeted in
the first place.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .link.behavioral import derive_link_params
from .obs import metrics as obs_metrics
from .noc import (
    Network,
    Topology,
    TrafficConfig,
    TrafficGenerator,
    reset_packet_ids,
)
from .noc.reference import ReferenceNetwork
from .tech import st012

#: bench schema version, bumped on incompatible JSON layout changes
#: (2: added the gate-level suite; points carry a ``suite`` field;
#: 3: added the compiled suite — lane counts and wall-clock fields;
#: 4: added the sweep suite — fabric scheduling-overhead points;
#: readers keep accepting schema-1/2/3 documents unchanged)
SCHEMA = 4

#: default operating points: (mesh_size, injection_rate) — the nominal
#: 4x4 point plus the 8x8 low-load and saturation gates from the perf
#: acceptance criteria
DEFAULT_POINTS: Sequence[tuple[int, float]] = ((4, 0.10), (8, 0.02), (8, 0.35))


@dataclass(frozen=True)
class BenchPoint:
    """One timed workload configuration."""

    mesh_size: int
    injection_rate: float
    pattern: str = "uniform"
    routing: str = "xy"
    n_vcs: int = 1
    kind: str = "I3"
    freq_mhz: float = 300.0
    cycles: int = 1500
    seed: int = 2008

    @property
    def key(self) -> str:
        """Stable identity used to match points across bench runs."""
        return (
            f"{self.mesh_size}x{self.mesh_size}"
            f"@{self.injection_rate:g}/{self.pattern}"
            f"/{self.routing}/vc{self.n_vcs}/{self.kind}"
        )


@dataclass
class BenchResult:
    """Timing + verification outcome of one point."""

    point: BenchPoint
    optimized_cps: float
    reference_cps: Optional[float]
    stats_match: Optional[bool]
    flits_ejected: int
    active_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def speedup(self) -> Optional[float]:
        if not self.reference_cps:
            return None
        return self.optimized_cps / self.reference_cps

    def to_json(self) -> Dict[str, object]:
        return {
            "suite": "noc",
            "key": self.point.key,
            "mesh_size": self.point.mesh_size,
            "injection_rate": self.point.injection_rate,
            "pattern": self.point.pattern,
            "routing": self.point.routing,
            "n_vcs": self.point.n_vcs,
            "kind": self.point.kind,
            "cycles": self.point.cycles,
            "optimized_cps": round(self.optimized_cps, 1),
            "reference_cps": (
                round(self.reference_cps, 1) if self.reference_cps else None
            ),
            "speedup": (
                round(self.speedup, 3) if self.speedup is not None else None
            ),
            "stats_match": self.stats_match,
            "flits_ejected": self.flits_ejected,
            "active_counts_final": self.active_counts,
        }


def _build(point: BenchPoint, network_cls):
    reset_packet_ids()
    topology = Topology(point.mesh_size, point.mesh_size)
    params = derive_link_params(st012(), point.kind, point.freq_mhz)
    network = network_cls(topology, params, n_vcs=point.n_vcs,
                         routing=point.routing)
    hotspot = None
    if point.pattern == "hotspot":
        hotspot = (topology.cols // 2, topology.rows // 2)
    traffic = TrafficGenerator(
        topology,
        TrafficConfig(
            pattern=point.pattern,
            injection_rate=point.injection_rate,
            seed=point.seed,
            hotspot=hotspot,
            n_vcs=point.n_vcs,
        ),
    )
    return network, traffic


def _time_run(point: BenchPoint, network_cls, repeats: int):
    """Best-of-``repeats`` cycles/sec plus the final network (for stats)."""
    best = 0.0
    network = None
    for _ in range(repeats):
        network, traffic = _build(point, network_cls)
        t0 = time.perf_counter()
        network.run(point.cycles, traffic)
        elapsed = time.perf_counter() - t0
        best = max(best, point.cycles / elapsed if elapsed > 0 else 0.0)
    return best, network


def run_point(
    point: BenchPoint,
    reference: bool = True,
    repeats: int = 3,
) -> BenchResult:
    """Time one point on the optimized (and optionally seed) kernel."""
    opt_cps, opt_net = _time_run(point, Network, repeats)
    ref_cps = None
    stats_match = None
    if reference:
        ref_cps, ref_net = _time_run(point, ReferenceNetwork, repeats)
        stats_match = (
            opt_net.stats.summary() == ref_net.stats.summary()
            and opt_net.stats.packet_latencies
            == ref_net.stats.packet_latencies
        )
    return BenchResult(
        point=point,
        optimized_cps=opt_cps,
        reference_cps=ref_cps,
        stats_match=stats_match,
        flits_ejected=opt_net.stats.flits_ejected,
        active_counts=dict(opt_net.active_component_counts),
    )


def profile_point(point: BenchPoint, top: int = 15) -> str:
    """cProfile the optimized kernel on ``point``; return a pstats table."""
    network, traffic = _build(point, Network)
    profiler = cProfile.Profile()
    profiler.enable()
    network.run(point.cycles, traffic)
    profiler.disable()
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative").print_stats(top)
    return buf.getvalue()


# ----------------------------------------------------------------------
# gate-level event-kernel suite
# ----------------------------------------------------------------------
#: workload ids of the gate suite and their default sizes (the unit is
#: flits for the serializer testbenches, tokens for the four-phase
#: chain, and nanoseconds of free-running oscillation for the ring)
GATE_WORKLOADS: Sequence[tuple[str, int]] = (
    ("serializer-i3", 24),
    ("serializer-i2", 16),
    ("fourphase-chain", 40),
    ("ringosc", 40_000),
)


@dataclass(frozen=True)
class GateBenchPoint:
    """One timed gate-level workload configuration.

    ``size`` is the workload length in the workload's own unit; it is
    recorded as ``cycles`` in the JSON so the baseline check's
    workload-length comparability rule applies unchanged.
    """

    workload: str
    size: int

    @property
    def key(self) -> str:
        return f"gate/{self.workload}@{self.size}"


@dataclass
class GateBenchResult:
    """Timing + cross-check outcome of one gate-level point."""

    point: GateBenchPoint
    optimized_eps: float
    optimized_wall_s: float
    reference_eps: Optional[float]
    reference_wall_s: Optional[float]
    stats_match: Optional[bool]
    events_executed: int
    events_cancelled: int

    @property
    def speedup(self) -> Optional[float]:
        """Wall-clock ratio on the identical workload (the seed kernel's
        events/sec currency; see the module docstring)."""
        if not self.reference_wall_s or not self.optimized_wall_s:
            return None
        return self.reference_wall_s / self.optimized_wall_s

    def to_json(self) -> Dict[str, object]:
        return {
            "suite": "gate",
            "key": self.point.key,
            "workload": self.point.workload,
            "cycles": self.point.size,
            "optimized_eps": round(self.optimized_eps, 1),
            "reference_eps": (
                round(self.reference_eps, 1) if self.reference_eps else None
            ),
            "speedup": (
                round(self.speedup, 3) if self.speedup is not None else None
            ),
            "stats_match": self.stats_match,
            "events_executed": self.events_executed,
            "events_cancelled": self.events_cancelled,
        }


def _gate_serializer(stack, kind: str, n_flits: int):
    """Serializer-link testbench workload; fingerprint pins delivery."""
    from .link import LinkConfig, LinkTestbench, build_i2, build_i3

    sim = stack.Simulator()
    clock = stack.Clock.from_mhz(sim, 300)
    builder = build_i3 if kind == "I3" else build_i2
    link = builder(sim, clock.signal, LinkConfig(), st012())
    bench = LinkTestbench(sim, clock, link)
    flits = [(0xA5A5A5A5, 0x5A5A5A5A)[i % 2] for i in range(n_flits)]

    def run():
        return bench.run(flits)

    def fingerprint(measurement):
        return (
            link.flits_accepted(),
            link.flits_delivered(),
            tuple(measurement.received_values),
            tuple(measurement.delivery_times_ps),
            tuple(
                (group, link.monitor.transitions(group))
                for group in sorted(link.monitor.groups)
            ),
        )

    return sim, run, fingerprint


def _gate_fourphase(stack, n_tokens: int):
    """Four-phase wire-buffer-chain token pump."""
    from .link.wiring import AsyncWireBufferChain, wire
    from .sim.process import Delay, WaitValue

    tech = st012()
    sim = stack.Simulator()
    data_in = sim.bus(8, "din")
    req_in = sim.signal("req")
    chain = AsyncWireBufferChain(
        sim, data_in, req_in, 4,
        t_p_ps=tech.handshake.t_p_per_segment,
        delays=tech.gates,
        ctl_delay_ps=tech.handshake.t_wire_buffer_ctl,
        name="chain",
    )
    ack_back = sim.signal("ackback")
    wire(chain.ack_out, ack_back, tech.handshake.t_p_per_segment)
    received: List[int] = []

    def source():
        for i in range(n_tokens):
            data_in.set((0xA5 + i * 31) & 0xFF)
            yield Delay(tech.gates.mux2)
            req_in.set(1)
            yield WaitValue(ack_back, 1)
            req_in.set(0)
            yield WaitValue(ack_back, 0)

    def sink():
        for _ in range(n_tokens):
            yield WaitValue(chain.req_out, 1)
            received.append(chain.data_out.value)
            yield Delay(40)
            chain.ack_in.set(1)
            yield WaitValue(chain.req_out, 0)
            chain.ack_in.set(0)

    def run():
        stack.spawn(sim, source(), "src")
        stack.spawn(sim, sink(), "snk")
        sim.run(max_events=50_000_000)
        return None

    def fingerprint(_result):
        return (
            tuple(received),
            sim.now,
            chain.data_out.transitions,
            chain.req_out.transitions,
        )

    return sim, run, fingerprint


def _gate_ringosc(stack, duration_ns: int):
    """Free-running gated ring oscillator: pure kernel churn."""
    from .elements.ringosc import RingOscillator

    sim = stack.Simulator()
    enable = sim.signal("en")
    osc = RingOscillator(sim, enable, stages=5)
    enable.set(1)

    def run():
        sim.run(until=duration_ns * 1000)
        return None

    def fingerprint(_result):
        return (osc.out.transitions, osc.out.value, sim.now)

    return sim, run, fingerprint


def _build_gate_workload(stack, point: GateBenchPoint):
    if point.workload == "serializer-i3":
        return _gate_serializer(stack, "I3", point.size)
    if point.workload == "serializer-i2":
        return _gate_serializer(stack, "I2", point.size)
    if point.workload == "fourphase-chain":
        return _gate_fourphase(stack, point.size)
    if point.workload == "ringosc":
        return _gate_ringosc(stack, point.size)
    raise ValueError(f"unknown gate workload {point.workload!r}")


def _time_gate_run(point: GateBenchPoint, stack, repeats: int):
    """Best-of-``repeats`` wall seconds plus the final run's artifacts."""
    best = float("inf")
    sim = fingerprint = None
    for _ in range(repeats):
        sim, run, fp = _build_gate_workload(stack, point)
        t0 = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed)
        fingerprint = fp(result)
    return best, sim, fingerprint


def run_gate_point(
    point: GateBenchPoint,
    reference: bool = True,
    repeats: int = 3,
) -> GateBenchResult:
    """Time one gate workload on the optimized (and seed) sim kernel."""
    import repro.sim as optimized_stack
    from .sim import reference as reference_stack

    opt_wall, opt_sim, opt_fp = _time_gate_run(
        point, optimized_stack, repeats
    )
    ref_wall = ref_eps = None
    stats_match = None
    if reference:
        ref_wall, ref_sim, ref_fp = _time_gate_run(
            point, reference_stack, repeats
        )
        ref_eps = ref_sim.events_executed / ref_wall if ref_wall else 0.0
        stats_match = opt_fp == ref_fp
    return GateBenchResult(
        point=point,
        optimized_eps=(
            opt_sim.events_executed / opt_wall if opt_wall else 0.0
        ),
        optimized_wall_s=opt_wall,
        reference_eps=ref_eps,
        reference_wall_s=ref_wall,
        stats_match=stats_match,
        events_executed=opt_sim.events_executed,
        events_cancelled=getattr(opt_sim, "events_cancelled", 0),
    )


def profile_gate_point(point: GateBenchPoint, top: int = 15) -> str:
    """cProfile the optimized sim kernel on ``point``; a pstats table."""
    import repro.sim as optimized_stack

    _sim, run, _fp = _build_gate_workload(optimized_stack, point)
    profiler = cProfile.Profile()
    profiler.enable()
    run()
    profiler.disable()
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative").print_stats(top)
    return buf.getvalue()


def default_gate_points(scale: float = 1.0) -> List[GateBenchPoint]:
    """The standard gate-suite points, workload sizes scaled by ``scale``
    (the CLI's ``--fast`` passes a fraction)."""
    return [
        GateBenchPoint(workload, max(4, round(size * scale)))
        for workload, size in GATE_WORKLOADS
    ]


# ----------------------------------------------------------------------
# bit-parallel compiled-backend suite
# ----------------------------------------------------------------------
#: workload ids of the compiled suite and their default sizes (the unit
#: is stimulus vectors for the fault batch, output toggles for the
#: free-running ring oscillator)
COMPILED_WORKLOADS: Sequence[tuple[str, int]] = (
    ("fault-batch", 12),
    ("ringosc", 20_000),
)

#: fault-batch lane layout: 16 seeds x (1 golden + 3 stuck-net lanes)
#: fill the 64-bit word exactly
_BATCH_SEEDS = 16
_BATCH_FAULTS = 3


@dataclass(frozen=True)
class CompiledBenchPoint:
    """One timed compiled-backend workload configuration.

    ``size`` is recorded as ``cycles`` in the JSON so the baseline
    check's workload-length comparability rule applies unchanged.
    """

    workload: str
    size: int

    @property
    def key(self) -> str:
        return f"compiled/{self.workload}@{self.size}"


@dataclass
class CompiledBenchResult:
    """Timing + lane-0 cross-check outcome of one compiled point.

    ``speedup`` is *aggregate lanes per second*: the compiled run
    evaluates ``lanes`` independent simulations per pass, the reference
    (the optimized event kernel) evaluates exactly one of them — so the
    ratio is ``lanes * reference_wall / compiled_wall``.
    """

    point: CompiledBenchPoint
    lanes: int
    compiled_wall_s: float
    reference_wall_s: Optional[float]
    stats_match: Optional[bool]
    #: workload steps executed (phases for fault-batch, toggles for
    #: ringosc) — the throughput denominator
    steps: int

    @property
    def optimized_lps(self) -> float:
        """Aggregate lane-steps per second of the compiled run."""
        if not self.compiled_wall_s:
            return 0.0
        return self.lanes * self.steps / self.compiled_wall_s

    @property
    def speedup(self) -> Optional[float]:
        if not self.reference_wall_s or not self.compiled_wall_s:
            return None
        return (
            self.lanes * self.reference_wall_s / self.compiled_wall_s
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "suite": "compiled",
            "key": self.point.key,
            "workload": self.point.workload,
            "cycles": self.point.size,
            "lanes": self.lanes,
            "compiled_lps": round(self.optimized_lps, 1),
            "compiled_wall_s": round(self.compiled_wall_s, 6),
            "reference_wall_s": (
                round(self.reference_wall_s, 6)
                if self.reference_wall_s else None
            ),
            "speedup": (
                round(self.speedup, 3) if self.speedup is not None else None
            ),
            "stats_match": self.stats_match,
        }


def _compiled_fault_batch(vectors: int):
    """64-lane fault-injection batch on the compilable i3 bench.

    Returns ``(run_compiled, run_reference, check)``: the first times a
    full 64-lane stimulus replay (16 seeds, each a golden lane plus
    three stuck-net lanes); the second times the optimized event kernel
    driving lane 0's projection of the identical stimulus through the
    same circuit; the third compares lane-0 settled values and the
    aggregate sampled-transition counters bit for bit.
    """
    from .compiled import (
        LANES,
        MASK,
        StepOracle,
        build_bench,
        compile_component,
        lane_phases,
        stimulus_phases,
    )
    from .sim import Simulator

    group = 1 + _BATCH_FAULTS
    lane_seeds: List[int] = []
    for seed in range(1, _BATCH_SEEDS + 1):
        lane_seeds.extend([seed] * group)
    phases = stimulus_phases("i3", lane_seeds, vectors, 32)

    def build_circuit():
        sim = Simulator()
        bench = build_bench(sim, "i3", 32)
        circuit = compile_component(bench.root,
                                    forceable=bench.fault_sites)
        for r in range(_BATCH_SEEDS):
            for j in range(1, group):
                site = bench.fault_sites[
                    (r + j) % len(bench.fault_sites)
                ]
                circuit.force(site, (j % 2) * MASK,
                              lanes=1 << (r * group + j))
        return circuit

    def run_compiled():
        circuit = build_circuit()
        t0 = time.perf_counter()
        for phase in phases:
            circuit.step(phase)
        return time.perf_counter() - t0, circuit

    lane0 = lane_phases(phases, 0)

    def run_reference():
        sim = Simulator()
        bench = build_bench(sim, "i3", 32)
        oracle = StepOracle(sim, bench.root)
        t0 = time.perf_counter()
        for phase in lane0:
            oracle.step(phase)
        return time.perf_counter() - t0, oracle

    def check(circuit, oracle) -> bool:
        counts = circuit.counts()
        ocounts = oracle.counts()
        return (
            circuit.lane_values(0) == oracle.values()
            and counts["rising0"] == ocounts["rising"]
            and counts["falling0"] == ocounts["falling"]
        )

    return LANES, len(phases), run_compiled, run_reference, check


def _compiled_ringosc(toggles: int):
    """Single-lane ring oscillator: the compiled backend's worst case.

    No batch to amortize over — one free-running state element ticking
    ``toggles`` times — so the speedup here prices raw per-step
    overhead against the event kernel (the gate is only >= 1x).
    """
    from .compiled import MASK, compile_component
    from .elements.ringosc import RingOscillator
    from .sim import Simulator

    def run_compiled():
        sim = Simulator()
        enable = sim.signal("en")
        osc = RingOscillator(sim, enable, stages=5)
        circuit = compile_component(osc)
        circuit.poke(enable, MASK)
        circuit.settle()
        t0 = time.perf_counter()
        circuit.tick(toggles)
        return time.perf_counter() - t0, (circuit, osc)

    def run_reference():
        sim = Simulator()
        enable = sim.signal("en")
        osc = RingOscillator(sim, enable, stages=5)
        enable.set(1)
        t0 = time.perf_counter()
        sim.run(until=toggles * osc.half_period + 1)
        return time.perf_counter() - t0, (enable, osc)

    def check(compiled_art, ref_art) -> bool:
        circuit, cosc = compiled_art
        enable, rosc = ref_art
        counts = circuit.counts()
        return (
            circuit.lane(cosc.out, 0) == rosc.out.value
            and counts["rising0"] == enable.rising + rosc.out.rising
            and counts["falling0"] == enable.falling + rosc.out.falling
        )

    # a single meaningful lane: the other 63 compute the same ring
    return 1, toggles, run_compiled, run_reference, check


def _build_compiled_workload(point: CompiledBenchPoint):
    if point.workload == "fault-batch":
        return _compiled_fault_batch(point.size)
    if point.workload == "ringosc":
        return _compiled_ringosc(point.size)
    raise ValueError(f"unknown compiled workload {point.workload!r}")


def run_compiled_point(
    point: CompiledBenchPoint,
    reference: bool = True,
    repeats: int = 3,
) -> CompiledBenchResult:
    """Time one compiled workload against the optimized event kernel."""
    lanes, steps, run_compiled, run_reference, check = (
        _build_compiled_workload(point)
    )
    comp_wall = float("inf")
    comp_art = None
    for _ in range(repeats):
        elapsed, comp_art = run_compiled()
        comp_wall = min(comp_wall, elapsed)
    ref_wall = None
    stats_match = None
    if reference:
        ref_wall = float("inf")
        ref_art = None
        for _ in range(repeats):
            elapsed, ref_art = run_reference()
            ref_wall = min(ref_wall, elapsed)
        stats_match = check(comp_art, ref_art)
    return CompiledBenchResult(
        point=point,
        lanes=lanes,
        compiled_wall_s=comp_wall,
        reference_wall_s=ref_wall,
        stats_match=stats_match,
        steps=steps,
    )


def default_compiled_points(scale: float = 1.0
                            ) -> List[CompiledBenchPoint]:
    """The standard compiled-suite points, sizes scaled by ``scale``."""
    return [
        CompiledBenchPoint(workload, max(2, round(size * scale)))
        for workload, size in COMPILED_WORKLOADS
    ]


# ----------------------------------------------------------------------
# sweep-fabric scheduling-overhead suite
# ----------------------------------------------------------------------
#: sweep-suite workloads and their default grid sizes (points per grid);
#: the workload is the ``sweep-noop`` scenario — zero computation, so
#: what gets timed is purely the machinery around scenario execution
SWEEP_WORKLOADS: Sequence[tuple[str, int]] = (("noop", 64),)

#: local worker daemons (threads) serving the timed fabric runs
_SWEEP_WORKERS = 1


@dataclass(frozen=True)
class SweepBenchPoint:
    """One timed scheduling-overhead configuration.

    ``size`` is the number of no-op grid points; it is recorded as
    ``cycles`` in the JSON so the baseline check's workload-length
    comparability rule applies unchanged.
    """

    workload: str
    size: int

    @property
    def key(self) -> str:
        return f"sweep/{self.workload}@{self.size}"


@dataclass
class SweepBenchResult:
    """Coordinator-vs-bare-engine throughput on a no-op grid.

    ``speedup`` here is a *dispatch efficiency ratio* — fabric
    points/sec over bare-engine points/sec on the identical grid.  It
    is necessarily below 1.0 (the fabric adds lease files, heartbeats
    and result publication around the same zero-cost execution); the
    committed baseline gates how far below, i.e. how much scheduling
    overhead the fabric is allowed to cost.
    """

    point: SweepBenchPoint
    fabric_pps: float
    fabric_wall_s: float
    engine_pps: Optional[float]
    engine_wall_s: Optional[float]
    workers: int
    stats_match: Optional[bool]

    @property
    def speedup(self) -> Optional[float]:
        if not self.engine_pps or not self.fabric_pps:
            return None
        return self.fabric_pps / self.engine_pps

    def to_json(self) -> Dict[str, object]:
        return {
            "suite": "sweep",
            "key": self.point.key,
            "workload": self.point.workload,
            "cycles": self.point.size,
            "workers": self.workers,
            "fabric_pps": round(self.fabric_pps, 1),
            "fabric_wall_s": round(self.fabric_wall_s, 6),
            "engine_pps": (
                round(self.engine_pps, 1) if self.engine_pps else None
            ),
            "engine_wall_s": (
                round(self.engine_wall_s, 6)
                if self.engine_wall_s else None
            ),
            "speedup": (
                round(self.speedup, 3) if self.speedup is not None else None
            ),
            "stats_match": self.stats_match,
        }


def _sweep_requests(point: SweepBenchPoint):
    from .runner import engine as engine_mod
    from .runner import registry

    if point.workload != "noop":
        raise ValueError(f"unknown sweep workload {point.workload!r}")
    registry.load_builtin()
    return [
        engine_mod.RunRequest.create("sweep-noop", {"point": i})
        for i in range(point.size)
    ]


def _canonical_records(outcomes) -> List[str]:
    from .store import codec

    return [
        json.dumps(
            codec.strip_volatile(codec.outcome_to_record(outcome)),
            sort_keys=True,
        )
        for outcome in outcomes
    ]


def _sweep_fabric_run(requests, workers: int = _SWEEP_WORKERS):
    """One timed coordinator+workers pass over ``requests``.

    Workers run as in-process threads (the workload is no-op, so the
    run is dominated by exactly the file-lease traffic being priced);
    the clock covers worker startup through the coordinator seeing the
    last published result — everything a real fabric sweep pays.
    """
    import tempfile
    import threading

    from .fabric import FileTransport, run_fabric_sweep, run_worker

    with tempfile.TemporaryDirectory(prefix="repro-bench-fabric-") as td:
        transport = FileTransport(td)
        threads = []
        t0 = time.perf_counter()
        for j in range(workers):
            thread = threading.Thread(
                target=run_worker,
                kwargs=dict(
                    fabric=transport,
                    worker_id=f"bench-w{j}",
                    lease_ttl=10.0,
                    poll_s=0.01,
                    plan_timeout=30.0,
                ),
                daemon=True,
            )
            thread.start()
            threads.append(thread)
        result = run_fabric_sweep(
            transport, "sweep-noop", requests,
            workers=0, lease_ttl=10.0, poll_s=0.002, timeout=300.0,
        )
        wall = time.perf_counter() - t0
        for thread in threads:
            thread.join(timeout=10.0)
    return wall, result.outcomes


def run_sweep_point(
    point: SweepBenchPoint,
    reference: bool = True,
    repeats: int = 3,
    workers: int = _SWEEP_WORKERS,
) -> SweepBenchResult:
    """Time one no-op grid through the fabric and (optionally) the
    bare engine; cross-check that both produced identical canonical
    outcome records."""
    from .runner import engine as engine_mod

    requests = _sweep_requests(point)
    fab_wall = float("inf")
    fab_outcomes = None
    for _ in range(repeats):
        wall, outcomes = _sweep_fabric_run(requests, workers=workers)
        if wall < fab_wall:
            fab_wall = wall
            fab_outcomes = outcomes
    eng_wall = None
    eng_pps = None
    stats_match = None
    if reference:
        eng_wall = float("inf")
        eng_outcomes = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            outcomes = engine_mod.execute(requests, jobs=1)
            elapsed = time.perf_counter() - t0
            if elapsed < eng_wall:
                eng_wall = elapsed
                eng_outcomes = outcomes
        eng_pps = point.size / eng_wall if eng_wall else 0.0
        stats_match = (
            _canonical_records(fab_outcomes)
            == _canonical_records(eng_outcomes)
        )
    return SweepBenchResult(
        point=point,
        fabric_pps=point.size / fab_wall if fab_wall else 0.0,
        fabric_wall_s=fab_wall,
        engine_pps=eng_pps,
        engine_wall_s=eng_wall,
        workers=workers,
        stats_match=stats_match,
    )


def default_sweep_points(scale: float = 1.0) -> List[SweepBenchPoint]:
    """The standard sweep-suite points, grid sizes scaled by ``scale``."""
    return [
        SweepBenchPoint(workload, max(8, round(size * scale)))
        for workload, size in SWEEP_WORKLOADS
    ]


def _counter_deltas(run_fn) -> Dict[str, int]:
    """Kernel counter deltas from one extra *untimed* instrumented run.

    The timed repeats execute with metrics in whatever state the
    process default left them (disabled, normally — the overhead bench
    holds the disabled path to a single attribute check); the counters
    recorded next to a timing point come from this separate replay so
    instrumentation can never contaminate the timings it annotates.
    """
    with obs_metrics.collecting(reset=True) as reg:
        run_fn()
        snapshot = reg.snapshot()
    return {
        key.split(":", 1)[1]: value
        for key, value in snapshot.items()
        if key.startswith("counter:")
    }


def _noc_point_metrics(point: BenchPoint) -> Dict[str, int]:
    network, traffic = _build(point, Network)
    return _counter_deltas(lambda: network.run(point.cycles, traffic))


def _gate_point_metrics(point: GateBenchPoint) -> Dict[str, int]:
    import repro.sim as optimized_stack

    _sim, run, _fp = _build_gate_workload(optimized_stack, point)
    return _counter_deltas(run)


def _compiled_point_metrics(point: CompiledBenchPoint) -> Dict[str, int]:
    _lanes, _steps, run_compiled, _ref, _check = (
        _build_compiled_workload(point)
    )
    return _counter_deltas(run_compiled)


def _sweep_point_metrics(point: SweepBenchPoint) -> Dict[str, int]:
    requests = _sweep_requests(point)
    return _counter_deltas(lambda: _sweep_fabric_run(requests))


def run_bench(
    points: Sequence[BenchPoint] = (),
    reference: bool = True,
    repeats: int = 3,
    progress=None,
    gate_points: Sequence[GateBenchPoint] = (),
    compiled_points: Sequence[CompiledBenchPoint] = (),
    sweep_points: Sequence[SweepBenchPoint] = (),
    collect_metrics: bool = True,
) -> Dict[str, object]:
    """Run every noc, gate, compiled and sweep point; return the JSON
    document.

    With ``collect_metrics`` each point's record gains a ``metrics``
    key — kernel counter deltas (events executed, cycles simulated,
    settle rounds, ...) from an untimed replay — additive to the
    schema, ignored by the baseline check.
    """
    results = []
    suites = []
    if points:
        suites.append("noc")
    if gate_points:
        suites.append("gate")
    if compiled_points:
        suites.append("compiled")
    if sweep_points:
        suites.append("sweep")
    for point in points:
        outcome = run_point(point, reference=reference, repeats=repeats)
        if progress is not None:
            progress(outcome)
        record = outcome.to_json()
        if collect_metrics:
            record["metrics"] = _noc_point_metrics(point)
        results.append(record)
    for gate_point in gate_points:
        gate_outcome = run_gate_point(
            gate_point, reference=reference, repeats=repeats
        )
        if progress is not None:
            progress(gate_outcome)
        record = gate_outcome.to_json()
        if collect_metrics:
            record["metrics"] = _gate_point_metrics(gate_point)
        results.append(record)
    for compiled_point in compiled_points:
        compiled_outcome = run_compiled_point(
            compiled_point, reference=reference, repeats=repeats
        )
        if progress is not None:
            progress(compiled_outcome)
        record = compiled_outcome.to_json()
        if collect_metrics:
            record["metrics"] = _compiled_point_metrics(compiled_point)
        results.append(record)
    for sweep_point in sweep_points:
        sweep_outcome = run_sweep_point(
            sweep_point, reference=reference, repeats=repeats
        )
        if progress is not None:
            progress(sweep_outcome)
        record = sweep_outcome.to_json()
        if collect_metrics:
            record["metrics"] = _sweep_point_metrics(sweep_point)
        results.append(record)
    return {
        "schema": SCHEMA,
        "python": sys.version.split()[0],
        "repeats": repeats,
        "suites": suites,
        "points": results,
    }


def _major_minor(version: Optional[str]) -> Optional[str]:
    if not version:
        return None
    return ".".join(str(version).split(".")[:2])


def check_against_baseline(
    current: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = 0.30,
) -> List[str]:
    """Problems found comparing ``current`` to a committed baseline.

    A point regresses when its optimized-vs-reference speedup falls
    more than ``tolerance`` (relative) below the baseline's — the
    machine-independent formulation of "cycles/sec regressed".  Points
    present in the baseline but missing from the current run, mismatched
    stats, missing speedups, and workload-length mismatches (a speedup
    measured over a different cycle count is not comparable) all count
    as problems, as does an interpreter mismatch: the two kernels
    stress CPython differently (dict/attribute-heavy vs scan-heavy),
    so the ratio is only stable within one major.minor version — the
    CI bench job pins the Python the committed baseline was recorded
    on.

    Baseline points whose suite was not benchmarked by ``current`` are
    skipped: ``repro bench --suite gate`` gates only the gate points of
    a combined baseline (schema-1 baselines without suite tags count as
    noc points).
    """
    problems: List[str] = []
    current_suites = set(current.get("suites") or [])
    if not current_suites:
        # pre-suite document: infer from the recorded points
        current_suites = {
            p.get("suite", "noc") for p in current.get("points", [])
        }
    base_python = _major_minor(baseline.get("python"))
    cur_python = _major_minor(current.get("python"))
    if base_python and cur_python and base_python != cur_python:
        problems.append(
            f"interpreter mismatch: bench ran on Python {cur_python} "
            f"but the baseline was recorded on {base_python} — kernel "
            f"speedup ratios are only comparable on the same "
            f"interpreter; regenerate the baseline"
        )
    current_by_key = {p["key"]: p for p in current.get("points", [])}
    for base_point in baseline.get("points", []):
        key = base_point["key"]
        if base_point.get("suite", "noc") not in current_suites:
            continue
        base_speedup = base_point.get("speedup")
        if base_speedup is None:
            continue
        point = current_by_key.get(key)
        if point is None:
            problems.append(f"{key}: missing from current bench run")
            continue
        base_cycles = base_point.get("cycles")
        cycles = point.get("cycles")
        if (base_cycles is not None and cycles is not None
                and base_cycles != cycles):
            # gate-suite workload sizes are set by --gate-scale, noc
            # cycle counts by --cycles — point the user at the right knob
            if base_point.get("suite") == "gate":
                flag, unit = "--gate-scale", "workload units"
            elif base_point.get("suite") == "compiled":
                flag, unit = "--compiled-scale", "workload units"
            elif base_point.get("suite") == "sweep":
                flag, unit = "--sweep-scale", "grid points"
            else:
                flag, unit = "--cycles", "cycles"
            problems.append(
                f"{key}: measured over {cycles} {unit} but the baseline "
                f"used {base_cycles} — rerun with matching {flag} "
                f"(the committed baseline uses --fast) or regenerate "
                f"the baseline"
            )
            continue
        if point.get("stats_match") is False:
            problems.append(
                f"{key}: optimized kernel diverged from reference stats"
            )
        speedup = point.get("speedup")
        if speedup is None:
            problems.append(f"{key}: no speedup recorded (ran without "
                            f"--reference?)")
            continue
        floor = base_speedup * (1.0 - tolerance)
        if speedup < floor:
            problems.append(
                f"{key}: speedup {speedup:.2f}x fell below "
                f"{floor:.2f}x (baseline {base_speedup:.2f}x "
                f"- {tolerance:.0%} tolerance)"
            )
    return problems


def default_points(cycles: int) -> List[BenchPoint]:
    return [
        BenchPoint(mesh_size=mesh, injection_rate=rate, cycles=cycles)
        for mesh, rate in DEFAULT_POINTS
    ]


def load_baseline(path: str) -> Dict[str, object]:
    """Read a committed bench document; any schema up to ours loads.

    Older documents (schema 1: no suites, schema 2: no compiled points)
    stay readable — :func:`check_against_baseline` treats missing
    fields as "point not benchmarked".  A *newer* schema is refused:
    silently gating against fields this code does not understand would
    make the check vacuous.
    """
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    schema = document.get("schema")
    if isinstance(schema, int) and schema > SCHEMA:
        raise ValueError(
            f"baseline {path} has schema {schema}, newer than the "
            f"supported schema {SCHEMA}; update the code or regenerate "
            f"the baseline"
        )
    return document


def write_json(document: Dict[str, object], path: str) -> None:
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
