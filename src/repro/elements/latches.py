"""Storage elements: transparent latches, flip-flops, synchronizer flags.

These model the clocked and level-sensitive storage of the paper's
interfaces:

* :class:`DLatch` / :class:`LatchBus` — transparent-high latches; the
  serializer/de-serializer capture slices with these (``D Q / G`` symbols
  in Fig 6).
* :class:`DFlipFlop` / :class:`RegisterBus` — positive-edge flip-flops;
  the synchronous FIFO registers of Figs 4–5.
* :class:`FlagSynchronizer` — the two-flip-flop flag of Fig 4: set
  synchronously (write side), cleared asynchronously (``CLEAR(x)`` gated
  into the reset pin), with the documented two-FF metastability filter
  [14] modelled as two clock cycles of latency before the synchronous
  side observes the asynchronous edge.
"""

from __future__ import annotations

from typing import Optional

from ..design.component import Component
from ..sim.kernel import Simulator
from ..sim.signal import Bus, Signal
from ..tech.technology import GateDelays


class DLatch(Component):
    """Transparent-high D latch: Q follows D while G=1, holds while G=0."""

    def __init__(
        self,
        sim: Simulator,
        d: Signal,
        g: Signal,
        q: Optional[Signal] = None,
        delays: Optional[GateDelays] = None,
        name: str = "lat",
    ) -> None:
        delays = delays or GateDelays()
        Component.__init__(self, name)
        self.sim = sim
        self.name = name
        self.d = d
        self.g = g
        self.q = q if q is not None else sim.signal(f"{name}.q")
        self._dq_delay = delays.latch_dq
        self._en_delay = delays.latch_en
        d.on_change(self._on_d)
        g.on_change(self._on_g)
        self.expose("d", d, "in")
        self.expose("g", g, "in")
        self.expose("q", self.q, "out")

    def _on_d(self, _sig: Signal) -> None:
        if self.g._value:
            self.q.drive(self.d._value, self._dq_delay, inertial=True)

    def _on_g(self, sig: Signal) -> None:
        if sig._value:
            self.q.drive(self.d._value, self._en_delay, inertial=True)


class LatchBus(Component):
    """A word of transparent-high latches sharing one enable."""

    def __init__(
        self,
        sim: Simulator,
        d: Bus,
        g: Signal,
        q: Optional[Bus] = None,
        delays: Optional[GateDelays] = None,
        name: str = "latbus",
    ) -> None:
        Component.__init__(self, name)
        self.sim = sim
        self.q = q if q is not None else sim.bus(d.width, f"{name}.q")
        if self.q.width != d.width:
            raise ValueError(
                f"{name}: D width {d.width} != Q width {self.q.width}"
            )
        self.latches = [
            DLatch(sim, d[i], g, self.q[i], delays, f"{name}.b{i}")
            for i in range(d.width)
        ]
        for latch in self.latches:
            self.adopt(latch)
        self.expose("d", d, "in")
        self.expose("g", g, "in")
        self.expose("q", self.q, "out")


class DFlipFlop(Component):
    """Positive-edge D flip-flop with optional asynchronous clear."""

    def __init__(
        self,
        sim: Simulator,
        d: Signal,
        clk: Signal,
        q: Optional[Signal] = None,
        clear: Optional[Signal] = None,
        delays: Optional[GateDelays] = None,
        name: str = "dff",
    ) -> None:
        delays = delays or GateDelays()
        Component.__init__(self, name)
        self.sim = sim
        self.name = name
        self.d = d
        self.clk = clk
        self.q = q if q is not None else sim.signal(f"{name}.q")
        self.clear = clear
        self._clk_q = delays.dff_clk_q
        clk.on_change(self._on_clk)
        if clear is not None:
            clear.on_change(self._on_clear)
        self.expose("d", d, "in")
        self.expose("clk", clk, "in")
        self.expose("q", self.q, "out")
        if clear is not None:
            self.expose("clear", clear, "in")

    def _on_clk(self, sig: Signal) -> None:
        if not sig._value:
            return
        if self.clear is not None and self.clear._value:
            return
        self.q.drive(self.d._value, self._clk_q, inertial=True)

    def _on_clear(self, sig: Signal) -> None:
        if sig._value:
            self.q.drive(0, self._clk_q, inertial=True)


class RegisterBus(Component):
    """A word of positive-edge flip-flops with a shared write enable.

    Models the FIFO registers of Fig 4: on the clock edge, if
    ``enable`` is high, the register captures ``d``.
    """

    def __init__(
        self,
        sim: Simulator,
        d: Bus,
        clk: Signal,
        enable: Signal,
        q: Optional[Bus] = None,
        delays: Optional[GateDelays] = None,
        name: str = "reg",
    ) -> None:
        delays = delays or GateDelays()
        Component.__init__(self, name)
        self.sim = sim
        self.name = name
        self.d = d
        self.clk = clk
        self.enable = enable
        self.q = q if q is not None else sim.bus(d.width, f"{name}.q")
        if self.q.width != d.width:
            raise ValueError(
                f"{name}: D width {d.width} != Q width {self.q.width}"
            )
        self._clk_q = delays.dff_clk_q
        clk.on_change(self._on_clk)
        self.expose("d", d, "in")
        self.expose("clk", clk, "in")
        self.expose("enable", enable, "in")
        self.expose("q", self.q, "out")

    def _on_clk(self, sig: Signal) -> None:
        if sig._value and self.enable._value:
            self.q.drive(self.d.value, self._clk_q, inertial=True)


class FlagSynchronizer(Component):
    """The per-register flag of Fig 4 (and its mirror in Fig 5).

    The flag is *set* by the synchronous write (``wr_en`` sampled on the
    clock edge) and *cleared* asynchronously by the handshake side
    (``clear`` gated into the flip-flop reset).  Two flip-flops in series
    synchronize the asynchronous clear back into the clock domain [14]:

    * :attr:`flag_a` — the asynchronous-facing flag: set after one
      clock-to-Q, cleared as soon as ``clear`` fires.  The David-cell
      sequencer reads this to know data is available.
    * :attr:`flag_s` — the synchronous-facing flag: follows ``flag_a``
      with two clock edges of latency (the synchronizer).  VALID/STALL
      logic reads this, so a cleared register becomes reusable only two
      cycles later — exactly the pessimism a real 2-FF synchronizer buys.
    """

    def __init__(
        self,
        sim: Simulator,
        clk: Signal,
        wr_en: Signal,
        clear: Signal,
        delays: Optional[GateDelays] = None,
        name: str = "flag",
    ) -> None:
        delays = delays or GateDelays()
        Component.__init__(self, name)
        self.sim = sim
        self.name = name
        self.clk = clk
        self.wr_en = wr_en
        self.clear = clear
        self.flag_a = sim.signal(f"{name}.a")
        self.flag_s = sim.signal(f"{name}.s")
        self._sync1 = sim.signal(f"{name}.sync1")
        self._clk_q = delays.dff_clk_q
        clk.on_change(self._on_clk)
        clear.on_change(self._on_clear)
        self.expose("clk", clk, "in")
        self.expose("wr_en", wr_en, "in")
        self.expose("clear", clear, "in")
        self.expose("flag_a", self.flag_a, "out")
        self.expose("flag_s", self.flag_s, "out")

    def _on_clk(self, sig: Signal) -> None:
        if not sig._value:
            return
        # async clear dominates the synchronous set
        if self.clear._value:
            return
        if self.wr_en._value:
            self.flag_a.drive(1, self._clk_q, inertial=True)
            # a synchronous set is visible to the sync side immediately:
            # the synchronizer only filters the asynchronous *clear* path
            self._sync1.drive(1, self._clk_q, inertial=True)
            self.flag_s.drive(1, self._clk_q, inertial=True)
        else:
            # synchronizer chain samples flag_a
            self._sync1.drive(self.flag_a._value, self._clk_q, inertial=True)
            self.flag_s.drive(self._sync1._value, self._clk_q, inertial=True)

    def _on_clear(self, sig: Signal) -> None:
        if sig._value:
            self.flag_a.drive(0, self._clk_q, inertial=True)
