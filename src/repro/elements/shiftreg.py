"""Shift registers for the word-level de-serializer (Fig 8b).

The per-word de-serializer shifts each incoming slice into a word-wide
shift register on every VALID pulse, and in parallel shifts a single '1'
down a one-bit shift register of the same depth; when the bit falls out
the whole word has arrived and REQOUT is raised.
"""

from __future__ import annotations

from typing import Optional

from ..design.component import Component
from ..sim.kernel import Simulator
from ..sim.signal import Bus, Signal
from ..tech.technology import GateDelays


class SliceShiftRegister(Component):
    """Shifts ``slice_in`` into a ``depth``-stage word register.

    On each rising edge of ``shift`` every stage captures its
    predecessor, and stage 0 captures the input slice.  After ``depth``
    pulses :attr:`word` holds the slices with the *first* received slice
    in the most significant position — the paper shifts the word towards
    DOUT(31:24), i.e. first slice ends up at the top.  We instead place
    the first slice at the *bottom* (LSB-first), which matches the
    serializer emitting DIN(7:0) first; the pairing is exercised by the
    round-trip tests.

    All ``depth`` stage registers toggle on every pulse, which is exactly
    why the paper measures higher de-serializer power for this design —
    the activity counters here reproduce that effect.
    """

    def __init__(
        self,
        sim: Simulator,
        slice_in: Bus,
        shift: Signal,
        depth: int,
        delays: Optional[GateDelays] = None,
        name: str = "slicereg",
    ) -> None:
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        delays = delays or GateDelays()
        Component.__init__(self, name)
        self.sim = sim
        self.name = name
        self.slice_in = slice_in
        self.shift = shift
        self.depth = depth
        self.slice_width = slice_in.width
        self.stages = [
            sim.bus(self.slice_width, f"{name}.st{i}") for i in range(depth)
        ]
        self._clk_q = delays.dff_clk_q
        self.pulses_seen = 0
        shift.on_change(self._on_shift)
        self.expose("slice_in", slice_in, "in")
        self.expose("shift", shift, "in")

    def _on_shift(self, sig: Signal) -> None:
        if not sig._value:
            return
        self.pulses_seen += 1
        # capture predecessor values *before* this edge (two-phase update)
        values = [stage.value for stage in self.stages]
        for i in range(self.depth - 1, 0, -1):
            self.stages[i].drive(values[i - 1], self._clk_q, inertial=True)
        self.stages[0].drive(self.slice_in.value, self._clk_q, inertial=True)

    @property
    def word(self) -> int:
        """Assembled word; first-received slice in the low bits.

        After ``depth`` shifts, the first slice has ridden to the last
        stage.  Reading stages in reverse stage order therefore yields
        slices in arrival order, LSB-first.
        """
        total = 0
        for pos, stage in enumerate(reversed(self.stages)):
            total |= stage.value << (pos * self.slice_width)
        return total


class PulseShiftRegister(Component):
    """The one-bit completion tracker of Fig 8b.

    A single '1' is injected at the head when a word transfer starts; each
    VALID pulse advances it.  :attr:`done` rises when the bit reaches the
    end (word complete → REQOUT); ``clear`` (ACKIN) wipes the register and
    drops :attr:`done`, completing the handshake.
    """

    def __init__(
        self,
        sim: Simulator,
        shift: Signal,
        clear: Signal,
        depth: int,
        delays: Optional[GateDelays] = None,
        name: str = "pulsereg",
    ) -> None:
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        delays = delays or GateDelays()
        Component.__init__(self, name)
        self.sim = sim
        self.name = name
        self.depth = depth
        self.bits = [0] * depth
        self.done = sim.signal(f"{name}.done")
        self._clk_q = delays.dff_clk_q
        self._armed = True
        shift.on_change(self._on_shift)
        clear.on_change(self._on_clear)
        self.expose("shift", shift, "in")
        self.expose("clear", clear, "in")
        self.expose("done", self.done, "out")

    def _on_shift(self, sig: Signal) -> None:
        if not sig._value:
            return
        # shift right; inject a 1 at the head for the first pulse of a word
        self.bits = [1 if self._armed else 0] + self.bits[:-1]
        self._armed = False
        if self.bits[-1]:
            self.done.drive(1, self._clk_q, inertial=True)

    def _on_clear(self, sig: Signal) -> None:
        if sig._value:
            self.bits = [0] * self.depth
            self._armed = True
            self.done.drive(0, self._clk_q, inertial=True)
