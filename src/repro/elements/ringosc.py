"""Ring oscillator: the local timing reference of the I3 serializer.

The per-word serializer (Fig 8a) derives its VALID burst timing from a
ring of five back-to-back inverters: no clock reaches the link, yet the
transmitter can space the four slice transfers so the receiver's shift
register meets timing.  The paper notes the frequency can be tuned by
changing the number or size of the inverters, and the DATA-to-VALID
timing by tapping different points of the ring.

:class:`RingOscillator` here is a gated oscillator: while ``enable`` is
high, :attr:`out` toggles with half-period = ``stages × t_inv`` (a ring
of *n* inverters inverts the wavefront once per traversal, so the full
period is ``2 × n × t_inv``).  The burst generator in
:mod:`repro.link.word_level` counts its edges to produce the VALID
pulses.
"""

from __future__ import annotations

from typing import Optional

from ..design.component import Component
from ..sim.kernel import Simulator
from ..sim.signal import Signal
from ..tech.technology import GateDelays


class RingOscillator(Component):
    """A gated inverter-ring oscillator.

    Parameters
    ----------
    stages:
        Number of inverters in the ring (must be odd for a real ring; the
        paper uses 5).
    t_inv_ps:
        Per-stage inverter delay; defaults to the technology's ``inv``.
    """

    def __init__(
        self,
        sim: Simulator,
        enable: Signal,
        stages: int = 5,
        t_inv_ps: Optional[int] = None,
        half_period_ps: Optional[int] = None,
        delays: Optional[GateDelays] = None,
        name: str = "ringosc",
    ) -> None:
        if stages < 3 or stages % 2 == 0:
            raise ValueError(
                f"a ring oscillator needs an odd stage count >= 3, got {stages}"
            )
        delays = delays or GateDelays()
        Component.__init__(self, name)
        self.sim = sim
        self.name = name
        self.enable = enable
        self.stages = stages
        self.t_inv = t_inv_ps if t_inv_ps is not None else delays.inv
        self.out = sim.signal(f"{name}.out")
        # ``half_period_ps`` models sizing/loading the ring for a target
        # frequency, which the paper explicitly allows ("different sizes
        # can be used depending upon requirements")
        self.half_period = (
            half_period_ps if half_period_ps is not None
            else stages * self.t_inv
        )
        if self.half_period < 1:
            raise ValueError("ring oscillator half period must be >= 1 ps")
        self._running = False
        enable.on_change(self._on_enable)
        self.expose("enable", enable, "in")
        self.expose("out", self.out, "out")

    @property
    def period_ps(self) -> int:
        """Full oscillation period (2 × stages × t_inv)."""
        return 2 * self.half_period

    def _on_enable(self, sig: Signal) -> None:
        if sig._value and not self._running:
            self._running = True
            self.sim.schedule(self.half_period, self._toggle)
        elif not sig._value:
            self._running = False
            self.out.drive(0, self.t_inv, inertial=True)

    def _toggle(self) -> None:
        if not self._running:
            return
        out = self.out
        out.set(0 if out._value else 1)
        self.sim.schedule(self.half_period, self._toggle)
