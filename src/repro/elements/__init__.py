"""Asynchronous circuit element library.

Primitive cells used by the paper's link circuits: combinational gates,
the Muller C-element and David cell (Fig 3), latches/flip-flops and the
two-FF flag synchronizer (Fig 4), slice/pulse shift registers (Fig 8b),
the ring oscillator (Fig 8a) and the Furber/Day four-phase latch
controller (the wire buffer of I2).
"""

from .gates import (
    And2,
    Gate,
    Inverter,
    Mux2,
    Nand2,
    Nor2,
    OneHotMux,
    Or2,
    Xor2,
)
from .celement import CElement, c2
from .davidcell import DavidCell, OneHotSequencer
from .latches import (
    DFlipFlop,
    DLatch,
    FlagSynchronizer,
    LatchBus,
    RegisterBus,
)
from .shiftreg import PulseShiftRegister, SliceShiftRegister
from .ringosc import RingOscillator
from .fourphase import SimpleLatchController, WireBufferStage

__all__ = [
    "And2",
    "Gate",
    "Inverter",
    "Mux2",
    "Nand2",
    "Nor2",
    "OneHotMux",
    "Or2",
    "Xor2",
    "CElement",
    "c2",
    "DavidCell",
    "OneHotSequencer",
    "DFlipFlop",
    "DLatch",
    "FlagSynchronizer",
    "LatchBus",
    "RegisterBus",
    "PulseShiftRegister",
    "SliceShiftRegister",
    "RingOscillator",
    "SimpleLatchController",
    "WireBufferStage",
]
