"""Combinational gate primitives on the event kernel.

Each gate subscribes to its input signals and, on any input change,
schedules its freshly evaluated output after the gate delay using
*inertial* semantics (a pulse shorter than the delay is filtered, as in
a real standard cell).

Gates take their delays from a :class:`~repro.tech.technology.GateDelays`
table so the whole circuit retimes when the technology changes.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..design.component import Component
from ..sim.kernel import Simulator
from ..sim.signal import Bus, Signal
from ..tech.technology import GateDelays


class Gate(Component):
    """Base combinational gate: output = f(inputs) after ``delay`` ps.

    The evaluation closure is compiled once per gate for its exact input
    arity (input values read straight off the signal slots), so an input
    edge costs one call — no per-edge generator or argument tuple.  The
    exhaustive truth-table test in ``tests/test_elements_gates.py`` pins
    the compiled closure against a direct ``func`` call.
    """

    def __init__(
        self,
        sim: Simulator,
        inputs: Sequence[Signal],
        output: Signal,
        func: Callable[..., int],
        delay: int,
        name: str = "gate",
    ) -> None:
        if not inputs:
            raise ValueError(f"gate {name!r} needs at least one input")
        Component.__init__(self, name)
        self.sim = sim
        self.inputs = list(inputs)
        self.output = output
        self.func = func
        self.delay = delay
        self.name = name
        self._compiled = self._compile()
        on_input = self._on_input
        for sig in self.inputs:
            sig.on_change(on_input)
        # settle the output to match the initial inputs
        sim.schedule(0, self._on_input_initial)
        for i, sig in enumerate(self.inputs):
            self.expose(f"in{i}", sig, "in")
        self.expose("out", self.output, "out")

    def _compile(self) -> Callable[[], int]:
        """Specialize the eval closure for this gate's input arity."""
        func = self.func
        ins = self.inputs
        if len(ins) == 1:
            (a,) = ins
            return lambda: 1 if func(a._value) else 0
        if len(ins) == 2:
            a, b = ins
            return lambda: 1 if func(a._value, b._value) else 0
        if len(ins) == 3:
            a, b, c = ins
            return lambda: 1 if func(a._value, b._value, c._value) else 0
        return lambda: 1 if func(*[s._value for s in ins]) else 0

    def _evaluate(self) -> int:
        return self._compiled()

    def _on_input(self, _sig: Signal) -> None:
        self.output.drive(self._compiled(), self.delay, inertial=True)

    def _on_input_initial(self) -> None:
        value = self._compiled()
        if value != self.output.value:
            self.output.drive(value, self.delay, inertial=True)


def _new_output(sim: Simulator, name: str) -> Signal:
    return sim.signal(name)


class Inverter(Gate):
    def __init__(self, sim: Simulator, a: Signal, out: Signal | None = None,
                 delays: GateDelays | None = None, name: str = "inv") -> None:
        delays = delays or GateDelays()
        out = out or _new_output(sim, f"{name}.out")
        super().__init__(sim, [a], out, lambda a: not a, delays.inv, name)


class And2(Gate):
    def __init__(self, sim: Simulator, a: Signal, b: Signal,
                 out: Signal | None = None,
                 delays: GateDelays | None = None, name: str = "and2") -> None:
        delays = delays or GateDelays()
        out = out or _new_output(sim, f"{name}.out")
        super().__init__(sim, [a, b], out, lambda a, b: a and b, delays.and2, name)


class Or2(Gate):
    def __init__(self, sim: Simulator, a: Signal, b: Signal,
                 out: Signal | None = None,
                 delays: GateDelays | None = None, name: str = "or2") -> None:
        delays = delays or GateDelays()
        out = out or _new_output(sim, f"{name}.out")
        super().__init__(sim, [a, b], out, lambda a, b: a or b, delays.or2, name)


class Nand2(Gate):
    def __init__(self, sim: Simulator, a: Signal, b: Signal,
                 out: Signal | None = None,
                 delays: GateDelays | None = None, name: str = "nand2") -> None:
        delays = delays or GateDelays()
        out = out or _new_output(sim, f"{name}.out")
        super().__init__(sim, [a, b], out, lambda a, b: not (a and b),
                         delays.nand2, name)


class Nor2(Gate):
    def __init__(self, sim: Simulator, a: Signal, b: Signal,
                 out: Signal | None = None,
                 delays: GateDelays | None = None, name: str = "nor2") -> None:
        delays = delays or GateDelays()
        out = out or _new_output(sim, f"{name}.out")
        super().__init__(sim, [a, b], out, lambda a, b: not (a or b),
                         delays.nor2, name)


class Xor2(Gate):
    def __init__(self, sim: Simulator, a: Signal, b: Signal,
                 out: Signal | None = None,
                 delays: GateDelays | None = None, name: str = "xor2") -> None:
        delays = delays or GateDelays()
        out = out or _new_output(sim, f"{name}.out")
        super().__init__(sim, [a, b], out, lambda a, b: bool(a) != bool(b),
                         delays.xor2, name)


class Mux2(Gate):
    """2:1 multiplexer: out = b if sel else a."""

    def __init__(self, sim: Simulator, a: Signal, b: Signal, sel: Signal,
                 out: Signal | None = None,
                 delays: GateDelays | None = None, name: str = "mux2") -> None:
        delays = delays or GateDelays()
        out = out or _new_output(sim, f"{name}.out")
        super().__init__(sim, [a, b, sel], out,
                         lambda a, b, sel: b if sel else a, delays.mux2, name)


class OneHotMux(Component):
    """Word-wide one-hot multiplexer: ``out = inputs[i]`` where ``sel[i]``.

    This is the slice selector of the paper's serializers (Fig 6a / 8a):
    a one-hot SEL bus steers one 8-bit slice of the 32-bit flit onto the
    output.  Modelled as a single ``mux2``-delay stage per bit, which is
    what a transmission-gate mux tree costs.

    If no select line is active the output holds its previous value
    (matching a tri-state bus with a keeper).
    """

    def __init__(
        self,
        sim: Simulator,
        inputs: Sequence[Bus],
        sel: Sequence[Signal],
        out: Bus,
        delays: GateDelays | None = None,
        name: str = "ohmux",
    ) -> None:
        if len(inputs) != len(sel):
            raise ValueError(
                f"{name}: {len(inputs)} inputs but {len(sel)} select lines"
            )
        widths = {bus.width for bus in inputs}
        if widths != {out.width}:
            raise ValueError(f"{name}: input/output widths differ: {widths}")
        Component.__init__(self, name)
        self.sim = sim
        self.inputs = list(inputs)
        self.sel = list(sel)
        self.out = out
        self.delay = (delays or GateDelays()).mux2
        self.name = name
        # (select line, input slice) pairs scanned on every update
        self._taps = list(zip(self.sel, self.inputs))
        update = self._update
        for sig in self.sel:
            sig.on_change(update)
        for bus in self.inputs:
            bus.on_change(update)
        for i, (sel_sig, bus) in enumerate(zip(self.sel, self.inputs)):
            self.expose(f"sel{i}", sel_sig, "in")
            self.expose(f"in{i}", bus, "in")
        self.expose("out", self.out, "out")

    def _update(self, _sig: Signal) -> None:
        for sel_sig, bus in self._taps:
            if sel_sig._value:
                self.out.drive(bus.value, self.delay, inertial=True)
                return
        # no select active: hold last value (bus keeper)
