"""Muller C-element (Fig 3 of the paper; Muller & Bartky 1959).

The C-element is the workhorse of speed-independent handshake circuits:
its output rises when *all* inputs are 1, falls when *all* inputs are 0,
and holds its state otherwise.  The paper composes C-elements into the
request/acknowledge control of every link module.

Variants provided:

* :class:`CElement` — n-input symmetric C-element with optional
  per-input inversion bubbles (the figures use inverted inputs in a few
  places) and an asynchronous reset.
* :func:`c2` — convenience two-input constructor.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..design.component import Component
from ..sim.kernel import Simulator
from ..sim.signal import Signal
from ..tech.technology import GateDelays


class CElement(Component):
    """n-input Muller C-element with optional input bubbles and reset.

    ``invert`` is a per-input tuple; an inverted input contributes its
    complement to the all-1s / all-0s decision.  ``reset`` (active high)
    asynchronously forces the output to ``reset_value``.
    """

    def __init__(
        self,
        sim: Simulator,
        inputs: Sequence[Signal],
        output: Optional[Signal] = None,
        invert: Optional[Sequence[bool]] = None,
        reset: Optional[Signal] = None,
        reset_value: int = 0,
        delays: Optional[GateDelays] = None,
        delay_ps: Optional[int] = None,
        name: str = "c",
    ) -> None:
        if not inputs:
            raise ValueError(f"C-element {name!r} needs at least one input")
        Component.__init__(self, name)
        self.sim = sim
        self.name = name
        self.inputs = list(inputs)
        self.invert = list(invert) if invert is not None else [False] * len(inputs)
        if len(self.invert) != len(self.inputs):
            raise ValueError(
                f"C-element {name!r}: {len(self.invert)} invert flags for "
                f"{len(self.inputs)} inputs"
            )
        self.output = output if output is not None else sim.signal(f"{name}.z")
        # ``delay_ps`` overrides the library delay — used where the
        # C-element stands in for a longer control chain (wire buffers)
        self.delay = (
            delay_ps if delay_ps is not None else (delays or GateDelays()).celement
        )
        self.reset = reset
        self.reset_value = 1 if reset_value else 0
        for sig in self.inputs:
            sig.on_change(self._on_input)
        if reset is not None:
            reset.on_change(self._on_reset)
        sim.schedule(0, lambda: self._on_input(self.inputs[0]))
        for i, sig in enumerate(self.inputs):
            self.expose(f"in{i}", sig, "in")
        self.expose("z", self.output, "out")
        if reset is not None:
            self.expose("reset", reset, "in")

    def _effective(self) -> list[int]:
        return [
            (0 if sig._value else 1) if inv else sig._value
            for sig, inv in zip(self.inputs, self.invert)
        ]

    def _on_input(self, _sig: Signal) -> None:
        if self.reset is not None and self.reset._value:
            return
        values = self._effective()
        if all(values):
            self.output.drive(1, self.delay, inertial=True)
        elif not any(values):
            self.output.drive(0, self.delay, inertial=True)
        # else: hold state

    def _on_reset(self, _sig: Signal) -> None:
        if self.reset is not None and self.reset._value:
            self.output.drive(self.reset_value, self.delay, inertial=True)
        else:
            self._on_input(self.inputs[0])


def c2(
    sim: Simulator,
    a: Signal,
    b: Signal,
    output: Optional[Signal] = None,
    invert_a: bool = False,
    invert_b: bool = False,
    reset: Optional[Signal] = None,
    reset_value: int = 0,
    delays: Optional[GateDelays] = None,
    delay_ps: Optional[int] = None,
    name: str = "c2",
) -> CElement:
    """Two-input C-element (the common case in the paper's figures)."""
    return CElement(
        sim,
        [a, b],
        output=output,
        invert=[invert_a, invert_b],
        reset=reset,
        reset_value=reset_value,
        delays=delays,
        delay_ps=delay_ps,
        name=name,
    )
