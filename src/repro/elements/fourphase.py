"""Four-phase latch controller (Furber & Day [15]) — the wire buffer core.

The paper's asynchronous wire buffer (used in the per-transfer link I2)
is "based on a simple four phase latch control circuit"; a single Muller
C-element regulates the handshake:

    ctl = C(req_in, NOT ack_in)

* ``ctl`` acknowledges upstream (ACKOUT) and requests downstream (REQOUT);
* the data latch is transparent while ``ctl`` is low and closes as soon
  as ``ctl`` rises, so the captured slice is stable before the upstream
  ack releases the data wires;
* ``ctl`` cannot rise again until the downstream acknowledge has fully
  returned to zero — the controller is *not decoupled*, so in a chain at
  best every other buffer holds data at a time, exactly the property the
  paper points out (acceptable: the buffers transport rather than store).
"""

from __future__ import annotations

from typing import Optional

from ..design.component import Component
from ..sim.kernel import Simulator
from ..sim.signal import Bus, Signal
from ..tech.technology import GateDelays
from .celement import c2
from .latches import LatchBus
from .gates import Inverter


class SimpleLatchController(Component):
    """The simple (undecoupled) four-phase latch controller.

    Ports follow the paper's naming: ``req_in``/``ack_out`` face the
    sender, ``req_out``/``ack_in`` face the receiver.
    """

    def __init__(
        self,
        sim: Simulator,
        req_in: Signal,
        ack_in: Signal,
        delays: Optional[GateDelays] = None,
        ctl_delay_ps: Optional[int] = None,
        name: str = "lc",
    ) -> None:
        delays = delays or GateDelays()
        Component.__init__(self, name)
        self.sim = sim
        self.name = name
        self.req_in = req_in
        self.ack_in = ack_in
        # the controller output drives every latch enable in the stage —
        # a heavily loaded net (the dominant share of the 82 µW the paper
        # measures for I2's buffers against I3's bare inverters)
        self.ctl = sim.signal(f"{name}.ctl", cap_ff=8.0)
        # C-element with the downstream ack inverted; ``ctl_delay_ps``
        # stands in for the full request/completion control chain of a
        # real buffer stage (see HandshakeTimings.t_wire_buffer_ctl)
        self._c = c2(
            sim,
            req_in,
            ack_in,
            output=self.ctl,
            invert_b=True,
            delays=delays,
            delay_ps=ctl_delay_ps,
            name=f"{name}.c",
        )
        self.req_out = self.ctl
        self.ack_out = self.ctl
        # latch enable = NOT ctl (transparent while idle); same heavy load
        self.latch_enable = sim.signal(f"{name}.le", init=1, cap_ff=8.0)
        self._inv = Inverter(sim, self.ctl, self.latch_enable, delays,
                             f"{name}.inv")
        self.adopt(self._c)
        self.adopt(self._inv)
        self.expose("req_in", req_in, "in")
        self.expose("ack_in", ack_in, "in")
        self.expose("ctl", self.ctl, "out")
        self.expose("latch_enable", self.latch_enable, "out")


class WireBufferStage(Component):
    """A complete buffered pipeline stage: controller + data latch.

    This is one ``BUF`` box of the paper's Fig 9 (I2 row): an n-bit
    transparent latch on the data wires plus a :class:`SimpleLatchController`
    on the request/acknowledge pair.
    """

    def __init__(
        self,
        sim: Simulator,
        data_in: Bus,
        req_in: Signal,
        ack_in: Signal,
        delays: Optional[GateDelays] = None,
        ctl_delay_ps: Optional[int] = None,
        name: str = "wbuf",
    ) -> None:
        delays = delays or GateDelays()
        Component.__init__(self, name)
        self.sim = sim
        self.controller = SimpleLatchController(
            sim, req_in, ack_in, delays, ctl_delay_ps, f"{name}.lc"
        )
        # each latched bit switches its internal storage nodes as well as
        # the wire — substantially more capacitance than a bare repeater
        self.data_out = sim.bus(data_in.width, f"{name}.dout", cap_ff=4.0)
        self._latch = LatchBus(
            sim,
            data_in,
            self.controller.latch_enable,
            self.data_out,
            delays,
            f"{name}.lat",
        )
        self.req_out = self.controller.req_out
        self.ack_out = self.controller.ack_out
        self.adopt(self.controller)
        self.adopt(self._latch)
        self.expose("data_in", data_in, "in")
        self.expose("req_in", req_in, "in")
        self.expose("ack_in", ack_in, "in")
        self.expose("data_out", self.data_out, "out")
        self.expose("req_out", self.req_out, "out")
        self.expose("ack_out", self.ack_out, "out")
