"""David cell and one-hot sequencer (Fig 3 / Figs 4–6 of the paper).

The David cell (R. David, 1977) is a set/reset state element used to
build asynchronous sequencers.  The paper chains David cells into 1-hot
counters that step the FIFO write/read pointers and the serializer's
slice selector: exactly one cell in the chain is active; completing a
handshake passes the token to the next cell, and the newly active cell
clears its predecessor.

Mapping to the paper's Fig 3 symbol:

* ``I1`` → :attr:`DavidCell.set_in` — activates the cell,
* ``I2`` → :attr:`DavidCell.clear_in` — deactivates it,
* ``O2`` → :attr:`DavidCell.q` — the active (token) output,
* ``O1`` → :attr:`DavidCell.q_to_prev` — acknowledge used to clear the
  predecessor (rises one cell delay after the cell activates).

The cell is modelled at protocol level with the technology's
``davidcell`` delay; its internal cross-coupled x/y nodes are not
expanded (the repro band for this paper expects circuit abstraction —
see DESIGN.md §2).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..design.component import Component
from ..sim.kernel import Simulator
from ..sim.signal import Signal
from ..tech.technology import GateDelays


class DavidCell(Component):
    """Set/clear token cell with David-cell delay semantics."""

    def __init__(
        self,
        sim: Simulator,
        set_in: Signal,
        clear_in: Signal,
        init_active: bool = False,
        delays: Optional[GateDelays] = None,
        name: str = "dc",
    ) -> None:
        Component.__init__(self, name)
        self.sim = sim
        self.name = name
        self.set_in = set_in
        self.clear_in = clear_in
        self.delay = (delays or GateDelays()).davidcell
        init = 1 if init_active else 0
        self.q = sim.signal(f"{name}.q", init=init)
        self.q_to_prev = sim.signal(f"{name}.o1", init=init)
        set_in.on_change(self._on_set)
        clear_in.on_change(self._on_clear)
        self.expose("set", set_in, "in")
        self.expose("clear", clear_in, "in")
        self.expose("q", self.q, "out")
        self.expose("o1", self.q_to_prev, "out")

    def _on_set(self, sig: Signal) -> None:
        # set dominates only on its rising edge while the cell is clear
        if sig._value and not self.clear_in._value:
            self.q.drive(1, self.delay, inertial=True)
            self.q_to_prev.drive(1, self.delay + 1, inertial=True)

    def _on_clear(self, sig: Signal) -> None:
        if sig._value:
            self.q.drive(0, self.delay, inertial=True)
            self.q_to_prev.drive(0, self.delay + 1, inertial=True)


class OneHotSequencer(Component):
    """A ring of David cells forming a 1-hot counter.

    ``sel[i]`` is the token output of cell *i*; at reset the token sits in
    cell 0 (matching "at reset the output O2 of DC(0) is logic 1").  Each
    rising edge of ``advance`` moves the token to the next cell, wrapping
    modulo *n*.  ``on_wrap`` (if given) is called in the delta cycle in
    which the token re-enters cell 0 — the serializer uses this as "whole
    word transferred".

    The token movement is the David-cell protocol: the advance pulse,
    gated by the currently active ``sel``, sets the successor; the
    successor's activation clears the predecessor.
    """

    def __init__(
        self,
        sim: Simulator,
        n: int,
        delays: Optional[GateDelays] = None,
        name: str = "seq",
        on_wrap: Optional[Callable[[], None]] = None,
    ) -> None:
        if n < 2:
            raise ValueError(f"sequencer needs >= 2 cells, got {n}")
        Component.__init__(self, name)
        self.sim = sim
        self.name = name
        self.n = n
        self.delays = delays or GateDelays()
        self.on_wrap = on_wrap
        self.advance = sim.signal(f"{name}.advance")
        self._set_lines = [sim.signal(f"{name}.set{i}") for i in range(n)]
        self._clear_lines = [sim.signal(f"{name}.clr{i}") for i in range(n)]
        self.cells: List[DavidCell] = [
            DavidCell(
                sim,
                self._set_lines[i],
                self._clear_lines[i],
                init_active=(i == 0),
                delays=self.delays,
                name=f"{name}.dc{i}",
            )
            for i in range(n)
        ]
        self.advance.on_change(self._on_advance)
        # successor activation clears predecessor
        for i in range(n):
            self.cells[i].q.on_change(self._make_clear_prev(i))
        for cell in self.cells:
            self.adopt(cell)
        self.expose("advance", self.advance, "in")

    # ------------------------------------------------------------------
    @property
    def sel(self) -> List[Signal]:
        """The one-hot select outputs (``SEL(0:n-1)`` in the paper)."""
        return [cell.q for cell in self.cells]

    @property
    def index(self) -> int:
        """Index of the currently active cell (-1 if token in flight)."""
        active = [i for i, cell in enumerate(self.cells) if cell.q.value]
        return active[0] if len(active) == 1 else -1

    # ------------------------------------------------------------------
    def _on_advance(self, sig: Signal) -> None:
        if not sig._value:
            return
        current = self.index
        if current < 0:
            return  # token still moving; a well-formed handshake waits
        nxt = (current + 1) % self.n
        self._set_lines[nxt].set(1)
        # self-clearing set pulse (the gating AND shapes it in silicon)
        self._set_lines[nxt].drive(0, self.delays.davidcell, inertial=False)
        if nxt == 0 and self.on_wrap is not None:
            wrap_cb = self.on_wrap
            self.sim.schedule(self.delays.davidcell, wrap_cb)

    def _make_clear_prev(self, i: int):
        prev = (i - 1) % self.n

        def clear_prev(sig: Signal) -> None:
            if sig._value:
                self._clear_lines[prev].set(1)
                self._clear_lines[prev].drive(
                    0, self.delays.davidcell, inertial=False
                )

        return clear_prev

    def reset(self) -> None:
        """Force the token back into cell 0 (asynchronous reset)."""
        for i, cell in enumerate(self.cells):
            cell.q.set(1 if i == 0 else 0)
            cell.q_to_prev.set(1 if i == 0 else 0)
