"""Shared directed-graph algorithms over index-based dependency lists.

Both the compiled backend's levelizer (:mod:`repro.compiled.levelize`)
and the static lint engine (:mod:`repro.lint`) reason about the same
shape of graph: ``deps[i]`` lists the node indices node ``i`` *depends
on* (reads from).  This module holds the algorithms they share so the
two report feedback identically:

* :func:`topological_levels` — Kahn's algorithm, returning the level
  structure plus whatever could not be placed (the members of at least
  one dependency cycle);
* :func:`shortest_cycle` — the globally shortest cycle among a set of
  nodes, by BFS from every member.  This is the levelizer's historical
  diagnostic, extracted verbatim: given the same graph it returns the
  same cycle, in the same order, so
  :class:`~repro.compiled.levelize.CombinationalLoopError` messages are
  bit-identical to what the in-module implementation produced;
* :func:`feedback_cycles` — *every* independent feedback loop (one
  shortest cycle per strongly connected component), which is what a
  lint report wants: a design with three separate loops gets three
  findings, not just the globally shortest one.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Tuple


def topological_levels(
    deps: Sequence[Sequence[int]],
) -> Tuple[List[List[int]], List[int]]:
    """Kahn levelization of ``deps``; returns ``(levels, leftover)``.

    Every node in ``levels[k]`` depends only on nodes in levels
    ``< k``; each level is sorted ascending.  ``leftover`` lists the
    nodes that could not be placed — non-empty exactly when the graph
    has at least one cycle, and every leftover node sits on (or
    strictly downstream of) one.
    """
    n = len(deps)
    fanout: List[List[int]] = [[] for _ in range(n)]
    missing: List[int] = []
    for i, row in enumerate(deps):
        missing.append(len(row))
        for src in row:
            fanout[src].append(i)
    levels: List[List[int]] = []
    frontier = [i for i, count in enumerate(missing) if count == 0]
    placed = 0
    while frontier:
        levels.append(sorted(frontier))
        placed += len(frontier)
        next_frontier: List[int] = []
        for i in frontier:
            for dst in fanout[i]:
                missing[dst] -= 1
                if missing[dst] == 0:
                    next_frontier.append(dst)
        frontier = next_frontier
    if placed == n:
        return levels, []
    return levels, [i for i, count in enumerate(missing) if count > 0]


def shortest_cycle(
    deps: Sequence[Sequence[int]], members: Sequence[int]
) -> List[int]:
    """Globally shortest cycle among ``members``, as node indices.

    BFS from each member along dependency edges until the start node
    reappears; the shortest such loop found over all starts wins (ties
    broken by the first member, in ``members`` order, that reaches the
    winning length).  The result lists the cycle in dependency order —
    each node reads the previous one — starting at the node the BFS
    closed through.  Returns ``[]`` when no cycle exists among
    ``members``.
    """
    member_set = set(members)
    best: List[int] = []
    for start in members:
        # parent links let us reconstruct the path start -> ... -> start
        parent: Dict[int, int] = {}
        queue = deque([start])
        seen = {start}
        found = None
        while queue and found is None:
            node = queue.popleft()
            for dep in deps[node]:
                if dep not in member_set:
                    continue
                if dep == start:
                    found = node
                    break
                if dep not in seen:
                    seen.add(dep)
                    parent[dep] = node
                    queue.append(dep)
        if found is None:
            continue
        path = [found]
        while path[-1] != start:
            path.append(parent[path[-1]])
        path.reverse()
        if not best or len(path) < len(best):
            best = path
    return best


def strongly_connected_components(
    deps: Sequence[Sequence[int]], members: Sequence[int]
) -> List[List[int]]:
    """Tarjan SCCs of the subgraph induced by ``members``.

    Iterative (no recursion limit risk on deep gate chains).  Returned
    components are in a deterministic order — sorted by their smallest
    member — and each component's nodes are sorted ascending.
    """
    member_set = set(members)
    index: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Dict[int, bool] = {}
    stack: List[int] = []
    counter = [0]
    components: List[List[int]] = []

    for root in members:
        if root in index:
            continue
        # explicit DFS stack of (node, iterator position)
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, pos = work[-1]
            if pos == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            row = deps[node]
            while pos < len(row):
                dep = row[pos]
                pos += 1
                if dep not in member_set:
                    continue
                if dep not in index:
                    work[-1] = (node, pos)
                    work.append((dep, 0))
                    advanced = True
                    break
                if on_stack.get(dep):
                    low[node] = min(low[node], index[dep])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                component: List[int] = []
                while True:
                    top = stack.pop()
                    on_stack[top] = False
                    component.append(top)
                    if top == node:
                        break
                components.append(sorted(component))
            if work:
                parent_node, _ = work[-1]
                low[parent_node] = min(low[parent_node], low[node])
    components.sort(key=lambda comp: comp[0])
    return components


def feedback_cycles(
    deps: Sequence[Sequence[int]], members: Sequence[int]
) -> List[List[int]]:
    """One shortest cycle per strongly connected feedback region.

    ``members`` is typically the leftover of :func:`topological_levels`
    — everything Kahn could not place.  Leftover nodes merely
    *downstream* of a loop form singleton SCCs with no self-edge and
    are skipped; every genuine loop contributes exactly one cycle (its
    shortest, per :func:`shortest_cycle`), so independent loops are all
    reported while a tangled strongly connected blob still reads as a
    single concise diagnostic.
    """
    cycles: List[List[int]] = []
    for component in strongly_connected_components(deps, members):
        if len(component) == 1:
            node = component[0]
            if node not in deps[node]:
                continue  # downstream of a loop, not on one
        cycle = shortest_cycle(deps, component)
        if cycle:
            cycles.append(cycle)
    return cycles
