"""Command-line entry point: regenerate the paper's evaluation.

Usage::

    python -m repro                 # every table/figure + checks
    python -m repro fig12 table1    # a subset
    python -m repro --fast          # skip gate-level simulations
    python -m repro --ablations     # include the extension studies

Exit status is non-zero if any paper-vs-measured check fails, so the
module doubles as a reproduction smoke test in CI.
"""

from __future__ import annotations

import argparse
import sys

from .experiments import ablation, run_all
from .tech import st012

EXPERIMENT_IDS = (
    "fig10", "fig11", "fig12", "fig13", "fig14",
    "table1", "table2", "throughput", "wirelength",
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduce the evaluation of 'Serialized Asynchronous Links "
            "for NoC' (Ogg et al., DATE 2008)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"subset of experiments to run (default: all of "
             f"{', '.join(EXPERIMENT_IDS)})",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="skip gate-level simulations (analytical results only)",
    )
    parser.add_argument(
        "--ablations",
        action="store_true",
        help="also run the extension/ablation studies",
    )
    args = parser.parse_args(argv)

    unknown = [e for e in args.experiments if e not in EXPERIMENT_IDS]
    if unknown:
        parser.error(
            f"unknown experiment(s) {unknown}; choose from {EXPERIMENT_IDS}"
        )

    tech = st012()
    results = run_all(tech, simulate=not args.fast)
    selected = args.experiments or list(EXPERIMENT_IDS)

    failures = 0
    for key in selected:
        result = results[key]
        print(result.render())
        print()
        if not result.all_ok:
            failures += len(result.failures())

    if args.ablations:
        studies = [
            ablation.serialization_sweep(tech),
            ablation.buffer_count_study(tech),
        ]
        if not args.fast:
            studies.append(ablation.early_ack_study(tech, n_flits=12))
        for result in studies:
            print(result.render())
            print()
            if not result.all_ok:
                failures += len(result.failures())

    if failures:
        print(f"{failures} paper-vs-measured check(s) FAILED", file=sys.stderr)
        return 1
    print("all paper-vs-measured checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
