"""Command-line entry point: scenario runner over the registry.

Usage::

    python -m repro list                      # catalogue of scenarios
    python -m repro list --tags paper         # filter by tag
    python -m repro list --verbose            # + full typed parameter specs
    python -m repro inspect gals-mesh --tree  # scenario's instance tree
    python -m repro inspect compiled-fault-campaign --compiled  # levelized stats
    python -m repro lint --all                # static checks, all designs
    python -m repro lint gals-mesh --format sarif --fail-on warning
    python -m repro run                       # every paper table/figure
    python -m repro run fig12 table1          # just these (nothing else runs)
    python -m repro run --tags ablation       # the extension studies
    python -m repro run --fast --jobs 4       # fast mode, 4 worker processes
    python -m repro run fig12 --out out/      # also write CSV+JSON artifacts
    python -m repro sweep mesh-design-space --jobs 4 --out out/
    python -m repro sweep mesh-design-space --param mesh_size=4,8 --set kind=I2
    python -m repro sweep mesh-design-space --resume out/   # finish a killed sweep
    python -m repro sweep traffic-hotspot --store runs/     # skip cached points
    python -m repro sweep traffic-hotspot --progress --out out/  # live status
    python -m repro sweep mesh-design-space --workers 2 --out out/  # fabric
    python -m repro sweep mesh-design-space --fabric shared/ --out out/
    python -m repro worker shared/                 # fabric worker daemon
    python -m repro telemetry out/                          # sweep analytics
    python -m repro telemetry out/ --json - --csv points.csv
    python -m repro diff baseline/ out/                     # regression gate
    python -m repro history runs/                           # store catalogue
    python -m repro bench --json bench.json                 # kernel cycles/sec
    python -m repro bench --fast --check benchmarks/baseline_bench.json
    python -m repro bench --suite compiled --fast --min-compiled-speedup 4
    python -m repro bench --profile                         # cProfile hot spots

``run`` exits non-zero if any paper-vs-measured check fails, so it
doubles as a reproduction smoke test in CI.  ``sweep`` expands a
cartesian parameter grid (the scenario's declared axes, or explicit
``--param name=v1,v2,...``) and executes every point, optionally in
parallel; results are deterministic and independent of ``--jobs``.
Note that *paper* scenarios check against the paper's published
numbers, so sweeping one away from its calibrated defaults reports
failed checks (exit 1) by design.

Durability and comparison live in :mod:`repro.store`: every sweep with
an output directory journals outcomes as they complete, ``--resume``
finishes a killed sweep from that journal (byte-identical artifacts),
``--store`` caches outcomes content-addressed by code fingerprint, and
``diff`` compares two artifact trees, exiting non-zero on regression.

``bench`` times the activity-driven NoC cycle kernel against the frozen
seed kernel (:mod:`repro.noc.reference`) and emits a JSON record;
``--check`` gates the speedup ratio against a committed baseline (see
:mod:`repro.bench` and the README "Performance" section).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .analysis.report import format_table
from .obs import analyze as obs_analyze
from .obs import metrics as obs_metrics
from .obs import progress as obs_progress
from .obs import telemetry as obs_telemetry
from .runner import artifacts, engine, registry, sweep
from . import store as run_store_pkg
from .store import diff as store_diff
from .store import journal as store_journal


def _paper_ids() -> List[str]:
    registry.load_builtin()
    return [sc.id for sc in registry.find(tags=("paper",))]


def _parse_tags(raw: Optional[str]) -> List[str]:
    if not raw:
        return []
    return [t.strip() for t in raw.split(",") if t.strip()]


def _select(
    parser: argparse.ArgumentParser,
    ids: List[str],
    tags: List[str],
) -> List[registry.Scenario]:
    """Scenarios chosen by explicit ids and/or tag filter."""
    registry.load_builtin()
    known = set(registry.ids())
    unknown = [i for i in ids if i not in known]
    if unknown:
        parser.error(
            f"unknown scenario(s) {unknown}; choose from "
            f"{', '.join(sorted(known))}"
        )
    if ids:
        selected = [registry.get(i) for i in ids]
        if tags:
            wanted = frozenset(tags)
            selected = [sc for sc in selected if wanted <= sc.tags]
        return selected
    if tags:
        return registry.find(tags=tags)
    return [registry.get(i) for i in _paper_ids()]


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def _cmd_list(args, parser) -> int:
    registry.load_builtin()
    scenarios = registry.find(tags=_parse_tags(args.tags))
    if args.verbose:
        return _list_verbose(scenarios)
    rows = []
    for sc in scenarios:
        swept = [p.name for p in sc.params if p.sweep]
        rows.append([
            sc.id,
            ",".join(sorted(sc.tags)),
            ",".join(p.name for p in sc.params) or "-",
            ",".join(swept) or "-",
            sc.description,
        ])
    print(format_table(
        ("id", "tags", "params", "sweep axes", "description"),
        rows,
        title=f"{len(rows)} registered scenario(s)",
    ))
    return 0


def _capabilities(sc) -> List[str]:
    """Backend capabilities of one scenario, probed, not declared.

    ``batchable`` and ``design tree`` read the registration;
    ``compilable`` actually levelizes the fast-mode design, because the
    one authority on whether a tree survives the compiled backend is
    the compiler itself.
    """
    caps: List[str] = []
    if sc.has_batch:
        caps.append(
            f"batchable ({sc.batch_axis} x {sc.batch_lanes} lanes/word)"
        )
    if not sc.has_design:
        return caps
    caps.append("design tree")
    from .compiled import CompileError, compile_component

    try:
        circuit = compile_component(sc.design_for(fast=True))
    except (CompileError, ValueError, registry.ScenarioError):
        caps.append("not compilable")
    else:
        stats = circuit.stats()
        caps.append(
            f"compilable (depth {stats.depth}, "
            f"{stats.n_gates} gates)"
        )
    return caps


def _list_verbose(scenarios) -> int:
    """Full typed ParamSpec per scenario, so sweep grids can be
    written without reading the experiment source."""
    for sc in scenarios:
        extras = []
        if sc.has_design:
            extras.append("design tree (see: inspect)")
        if sc.fast_skip:
            extras.append("incompatible with --fast")
        suffix = f"  [{'; '.join(extras)}]" if extras else ""
        print(f"{sc.id} — {sc.description}{suffix}")
        if sc.tags:
            print(f"  tags: {', '.join(sorted(sc.tags))}")
        caps = _capabilities(sc)
        if caps:
            print(f"  capabilities: {', '.join(caps)}")
        if not sc.params:
            print("  (no parameters)\n")
            continue
        rows = []
        for spec in sc.params:
            rows.append([
                spec.name,
                spec.type.__name__,
                spec.default,
                ",".join(str(c) for c in spec.choices or ()) or "-",
                ",".join(str(v) for v in spec.sweep) or "-",
                spec.help or "-",
            ])
        table = format_table(
            ("param", "type", "default", "choices", "sweep axis", "help"),
            rows,
        )
        print("\n".join("  " + line for line in table.splitlines()))
        if sc.fast_params:
            pairs = ", ".join(
                f"{k}={v}" for k, v in sc.fast_params.items()
            )
            print(f"  fast-mode overrides: {pairs}")
        print()
    print(f"{len(scenarios)} registered scenario(s)")
    return 0


def _cmd_inspect(args, parser) -> int:
    registry.load_builtin()
    try:
        sc = registry.get(args.scenario)
    except registry.ScenarioError as exc:
        parser.error(str(exc))
    if not sc.has_design:
        with_design = [s.id for s in registry.all_scenarios()
                       if s.has_design]
        parser.error(
            f"scenario {sc.id!r} exposes no design tree; scenarios "
            f"that do: {', '.join(with_design) or 'none'}"
        )
    overrides = {}
    for raw in args.set or []:
        name, eq, value = raw.partition("=")
        if not eq:
            parser.error(f"--set expects name=value, got {raw!r}")
        try:
            overrides[name.strip()] = sc.param(name.strip()).coerce(value)
        except registry.ScenarioError as exc:
            parser.error(str(exc))
    try:
        design = sc.design_for(overrides=overrides, fast=args.fast)
    except (registry.ScenarioError, ValueError) as exc:
        # covers DesignError (bad fault_paths) and config validation
        # (e.g. n_buffers=0) from the scenario's design hook
        parser.error(str(exc))
    from .analysis.report import render_design_summary

    n_instances = len(design.instances())
    if args.tree:
        print(design.tree(ports=not args.no_ports))
    else:
        print(render_design_summary(
            design,
            title=f"{sc.id}: {n_instances} instance(s)",
        ))
    if design.is_elaborated:
        print(f"{n_instances} instance(s), "
              f"{len(design.sim.created_signals)} net(s)")
    else:
        print(f"{n_instances} instance(s) (structural view, "
              f"not elaborated onto a simulator)")
    from . import lint as lint_pkg

    findings = lint_pkg.lint_design(
        design, scenario=sc.id,
        waivers=_load_default_waivers(parser, None),
    )
    if findings:
        counts: dict = {}
        for f in findings:
            key = "waived" if f.waived else f.severity
            counts[key] = counts.get(key, 0) + 1
        print("lint: " + ", ".join(
            f"{n} {key}" for key, n in sorted(counts.items())
        ))
        for f in findings:
            print(f"  {f.render()}")
    else:
        print("lint: clean")
    if args.compiled:
        from .compiled import CompileError, compile_component

        print()
        try:
            circuit = compile_component(design)
        except (CompileError, ValueError) as exc:
            # a design full of coroutine processes or behavioral models
            # is a fine design — it just has no compiled form
            print(f"not compilable: {exc}")
            return 0
        print(circuit.stats().render())
        if sc.has_batch:
            print(
                f"batch packing: up to {sc.batch_lanes} "
                f"{sc.batch_axis!r}-sweep request(s) per 64-bit word"
            )
    return 0


def _load_default_waivers(parser, explicit: Optional[str]):
    """Waivers from ``--waivers FILE`` or ``./lint-waivers.toml``.

    An explicitly named file must exist and parse; the conventional
    default is optional (no file → no waivers).
    """
    from . import lint as lint_pkg

    path = explicit
    if path is None:
        default = Path("lint-waivers.toml")
        if not default.exists():
            return []
        path = str(default)
    try:
        return lint_pkg.load_waivers(path)
    except lint_pkg.WaiverError as exc:
        parser.error(str(exc))


def _cmd_lint(args, parser) -> int:
    from . import lint as lint_pkg

    registry.load_builtin()
    if not args.scenarios and not args.all:
        parser.error(
            "name at least one scenario or pass --all; scenarios with "
            "design trees: "
            + ", ".join(
                s.id for s in registry.all_scenarios() if s.has_design
            )
        )
    ids = None
    if not args.all:
        known = set(registry.ids())
        unknown = [i for i in args.scenarios if i not in known]
        if unknown:
            parser.error(
                f"unknown scenario(s) {unknown}; choose from "
                f"{', '.join(sorted(known))}"
            )
        ids = list(args.scenarios)
    overrides = {}
    for raw in args.set or []:
        name, eq, value = raw.partition("=")
        if not eq:
            parser.error(f"--set expects name=value, got {raw!r}")
        overrides[name.strip()] = value
    if ids and overrides:
        declared = set()
        for sid in ids:
            declared |= {spec.name for spec in registry.get(sid).params}
        bogus = sorted(set(overrides) - declared)
        if bogus:
            parser.error(
                f"--set {', '.join(bogus)}: no selected scenario "
                f"declares such a parameter"
            )
    waivers = _load_default_waivers(parser, args.waivers)
    try:
        reports = lint_pkg.lint_registry(
            ids=ids, overrides=overrides or None,
            fast=not args.full, waivers=waivers,
        )
    except (registry.ScenarioError, ValueError) as exc:
        parser.error(str(exc))
    formatter = {
        "text": lint_pkg.format_text,
        "json": lint_pkg.format_json,
        "sarif": lint_pkg.format_sarif,
    }[args.format]
    print(formatter(reports))
    if lint_pkg.gate(reports, fail_on=args.fail_on):
        print(
            f"lint gate: unwaived finding(s) at or above "
            f"{args.fail_on!r}",
            file=sys.stderr,
        )
        return 1
    return 0


def _lint_preflight(args, parser, sc, fixed) -> int:
    """The ``sweep --lint`` gate: refuse grids with error findings."""
    from . import lint as lint_pkg

    if not sc.has_design:
        print(f"lint pre-flight: {sc.id} exposes no design tree; "
              f"nothing to check")
        return 0
    waivers = _load_default_waivers(parser, None)
    try:
        report = lint_pkg.lint_scenario(
            sc, overrides=fixed or None, fast=args.fast,
            waivers=waivers,
        )
    except (registry.ScenarioError, ValueError) as exc:
        parser.error(str(exc))
    errors = [
        f for f in report.findings
        if not f.waived and f.severity == "error"
    ]
    if errors:
        print(
            f"lint pre-flight: {len(errors)} error-level finding(s) "
            f"in {sc.id}; refusing to dispatch the sweep",
            file=sys.stderr,
        )
        for finding in errors:
            print(f"  {finding.render()}", file=sys.stderr)
        return 1
    print(f"lint pre-flight: {sc.id} clean at error level")
    return 0


def _report_outcomes(outcomes, out_dir) -> int:
    """Print rendered results, optionally write artifacts; count failures."""
    failures = 0
    for outcome in outcomes:
        if outcome.error:
            print(
                f"scenario {outcome.request.scenario_id} raised:\n"
                f"{outcome.error}",
                file=sys.stderr,
            )
            failures += 1
            continue
        print(outcome.result.render())
        print()
        failures += len(outcome.result.failures())
    if out_dir:
        summary = artifacts.write_artifacts(outcomes, out_dir)
        print(f"artifacts written to {summary.parent}")
        doc = {
            "command": "run",
            "failures": failures,
            "points": [
                obs_telemetry.point_record(o) for o in outcomes
            ],
        }
        rollup = _counter_rollup(outcomes)
        if rollup:
            doc["counters"] = rollup
        if obs_metrics.REGISTRY.enabled:
            snap = obs_metrics.REGISTRY.snapshot()
            if snap:
                doc["metrics"] = snap
        obs_telemetry.write_snapshot(out_dir, doc)
    return failures


def _cmd_run(args, parser) -> int:
    scenarios = _select(parser, args.scenarios, _parse_tags(args.tags))
    if not scenarios:
        parser.error("selection matches no scenarios")
    skipped = [sc.id for sc in scenarios if args.fast and sc.fast_skip]
    requests = [
        engine.RunRequest.create(sc.id, fast=args.fast)
        for sc in scenarios
        if not (args.fast and sc.fast_skip)
    ]
    if not requests:
        # everything the user asked for was fast-skipped: exiting 0
        # here would let a CI job go green having executed no checks
        print(
            f"no scenarios executed: {', '.join(skipped)} need(s) "
            f"gate-level simulation, incompatible with --fast",
            file=sys.stderr,
        )
        return 1
    outcomes = engine.execute(requests, jobs=args.jobs)
    failures = _report_outcomes(outcomes, args.out)
    for sid in skipped:
        print(f"(skipped {sid}: needs gate-level simulation, "
              f"incompatible with --fast)")
    if failures:
        print(f"{failures} paper-vs-measured check(s) FAILED",
              file=sys.stderr)
        return 1
    print("all paper-vs-measured checks passed")
    return 0


def _cmd_sweep(args, parser) -> int:
    registry.load_builtin()
    if args.progress:
        # --progress implies telemetry: the display and the stream feed
        # from the same counters, and enable() exports REPRO_TELEMETRY
        # so spawned worker processes collect too
        obs_metrics.enable()
    try:
        sc = registry.get(args.scenario)
    except registry.ScenarioError as exc:
        parser.error(str(exc))
    try:
        axes = {}
        for raw in args.param or []:
            name, _, values = raw.partition("=")
            if not _:
                parser.error(f"--param expects name=v1,v2,... got {raw!r}")
            name = name.strip()
            if name in axes:
                parser.error(
                    f"--param {name} given twice; list every value in "
                    f"one axis: --param {name}=v1,v2,..."
                )
            axes[name] = sweep.parse_axis(sc, name, values)
        fixed = {}
        for raw in args.set or []:
            name, _, value = raw.partition("=")
            if not _:
                parser.error(f"--set expects name=value, got {raw!r}")
            name = name.strip()
            if name in fixed:
                parser.error(f"--set {name} given twice")
            fixed[name] = sc.param(name).coerce(value)
        requests = sweep.build_requests(
            sc, axes=axes or None, fixed=fixed or None, fast=args.fast
        )
    except registry.ScenarioError as exc:
        parser.error(str(exc))

    if args.lint:
        code = _lint_preflight(args, parser, sc, fixed)
        if code:
            return code

    fabric_mode = bool(args.fabric) or args.workers > 0
    if args.workers < 0:
        parser.error("--workers must be >= 0")
    if fabric_mode and args.jobs != 1:
        parser.error(
            "--jobs does not apply to fabric mode; use --workers N"
        )

    out_dir = args.out
    if args.resume:
        if out_dir and Path(out_dir) != Path(args.resume):
            parser.error(
                "--resume DIR already names the output directory; "
                "drop --out or make them match"
            )
        out_dir = args.resume

    fingerprint = run_store_pkg.code_fingerprint()
    completed = {}
    journal_completed = frozenset()  # requests the journal already holds
    journal_is_current = False
    if args.resume:
        jpath = store_journal.journal_path(out_dir)
        if jpath.exists():
            header = None
            try:
                header, past = store_journal.recover(jpath)
            except store_journal.JournalError:
                # a kill during Journal.start() leaves an empty or
                # headerless file; that's still a resumable state —
                # nothing was completed, so rerun every point
                print(
                    f"journal {jpath} has no usable header; "
                    f"rerunning every point",
                    file=sys.stderr,
                )
            if header is None:
                pass
            elif (header.get("scenario") != sc.id
                    or header.get("fingerprint") != fingerprint):
                print(
                    f"journal {jpath} was written by a different "
                    f"scenario or code version; rerunning every point",
                    file=sys.stderr,
                )
            else:
                wanted = set(requests)
                completed = {o.request: o for o in past
                             if o.request in wanted}
                journal_completed = frozenset(completed)
                journal_is_current = True

    cache = (
        run_store_pkg.RunStore(args.store, fingerprint=fingerprint)
        if args.store else None
    )
    store_hits = 0
    if cache is not None:
        for request in requests:
            if request not in completed:
                hit = cache.get(request)
                if hit is not None:
                    completed[request] = hit
                    store_hits += 1

    remaining = [r for r in requests if r not in completed]
    if fabric_mode:
        print(f"sweeping {sc.id}: {len(requests)} point(s), "
              f"fabric workers={args.workers}")
    else:
        print(f"sweeping {sc.id}: {len(requests)} point(s), "
              f"jobs={args.jobs}")
    if completed:
        print(f"resuming: {len(completed) - store_hits} journaled + "
              f"{store_hits} stored point(s) reused, "
              f"{len(remaining)} to run")

    journal_writer = None
    telemetry_writer = None
    resumed_stream = False
    if out_dir:
        journal_writer = store_journal.Journal(
            store_journal.journal_path(out_dir)
        )
        if not journal_is_current:
            journal_writer.start(sc.id, fingerprint)
        telemetry_writer = obs_telemetry.TelemetryWriter(
            obs_telemetry.stream_path(out_dir)
        )
        if journal_is_current and telemetry_writer.path.exists():
            try:
                obs_telemetry.recover_stream(telemetry_writer.path)
                resumed_stream = True
            except (obs_telemetry.TelemetryError, OSError):
                resumed_stream = False  # rewrite from scratch below
        if not resumed_stream:
            telemetry_writer.start(
                sc.id, fingerprint,
                jobs=args.jobs, total_points=len(requests),
            )
        # points reused from the store still belong in this sweep's
        # journal — without them a later --resume would re-run them;
        # the telemetry stream mirrors them (a resumed stream already
        # holds the journaled points, so only store hits are new)
        for request in requests:
            outcome = completed.get(request)
            if outcome is None:
                continue
            from_store = request not in journal_completed
            if from_store:
                journal_writer.append(outcome)
            if from_store or not resumed_stream:
                telemetry_writer.append_point(
                    outcome, store_hit=from_store
                )

    progress = (
        obs_progress.SweepProgress(len(requests))
        if args.progress else None
    )
    if progress is not None:
        for request in requests:
            outcome = completed.get(request)
            if outcome is not None:
                progress.point_done(ok=outcome.ok, cached=True)

    def on_outcome(outcome):
        # journal/store immediately so a killed sweep loses nothing done
        if journal_writer is not None:
            journal_writer.append(outcome)
        if telemetry_writer is not None:
            telemetry_writer.append_point(outcome)
        if cache is not None and not outcome.error:
            cache.put(outcome)
        if progress is not None:
            progress.point_done(ok=outcome.ok)

    fabric_note = None
    try:
        if fabric_mode:
            executed, fabric_note = _run_fabric(args, parser, sc,
                                                remaining, on_outcome)
        else:
            executed = engine.execute(
                remaining, jobs=args.jobs, on_outcome=on_outcome
            )
    finally:
        if progress is not None:
            progress.close()
    if fabric_note:
        print(fabric_note)
    by_request = dict(completed)
    by_request.update({o.request: o for o in executed})
    outcomes = [by_request[request] for request in requests]

    if journal_writer is not None:
        # outcomes were journaled in completion order (--jobs N and
        # fabric workers publish as they finish); normalize the
        # finished journal to canonical grid order so the file is
        # byte-identical to a serial run's
        journal_writer.rewrite(sc.id, outcomes, fingerprint)

    rows = []
    failures = 0
    for outcome in outcomes:
        params = ", ".join(
            f"{k}={v}" for k, v in outcome.request.params
        ) or "-"
        if outcome.error:
            rows.append([outcome.request.scenario_id, params, "ERROR"])
            print(
                f"scenario point ({params}) raised:\n{outcome.error}",
                file=sys.stderr,
            )
            failures += 1
            continue
        bad = len(outcome.result.failures())
        failures += bad
        rows.append([
            outcome.request.scenario_id,
            params,
            "ok" if bad == 0 else f"{bad} FAILED",
        ])
    print(format_table(
        ("scenario", "point", "checks"),
        rows,
        title=f"sweep of {sc.id}",
    ))
    if out_dir:
        summary = artifacts.write_artifacts(outcomes, out_dir)
        print(f"artifacts written to {summary.parent}")
    if telemetry_writer is not None:
        rollup = _counter_rollup(outcomes)
        summary_rec = {
            "points": len(requests),
            "executed": len(remaining),
            "reused": len(requests) - len(remaining),
            "store_hits": store_hits,
            "failures": failures,
            "jobs": args.jobs,
        }
        if rollup:
            summary_rec["counters"] = rollup
        telemetry_writer.finish(summary_rec)
        doc = {"command": "sweep", "scenario": sc.id}
        doc.update(summary_rec)
        if obs_metrics.REGISTRY.enabled:
            snap = obs_metrics.REGISTRY.snapshot()
            if snap:
                doc["metrics"] = snap
        obs_telemetry.write_snapshot(out_dir, doc)
    if failures:
        print(f"{failures} check(s)/point(s) FAILED", file=sys.stderr)
        return 1
    print("all sweep points passed their checks")
    return 0


def _run_fabric(args, parser, sc, remaining, on_outcome):
    """Execute the sweep's remaining points through the fabric.

    ``--fabric DIR`` names the shared directory (external workers may
    attach); with only ``--workers N`` a private temporary directory
    is used and cleaned up afterwards.  Returns ``(outcomes, note)``.
    """
    import tempfile

    from .fabric import FabricError, run_fabric_sweep

    tmp_ctx = None
    fabric_dir = args.fabric
    if fabric_dir is None:
        tmp_ctx = tempfile.TemporaryDirectory(prefix="repro-fabric-")
        fabric_dir = tmp_ctx.name
    try:
        result = run_fabric_sweep(
            fabric_dir, sc.id, remaining,
            workers=args.workers,
            store=args.store,
            lease_ttl=args.lease_ttl,
            on_outcome=on_outcome,
            timeout=args.fabric_timeout,
            point_timeout=args.point_timeout,
            quarantine_after=args.quarantine_after,
        )
    except FabricError as exc:
        parser.error(str(exc))
    finally:
        if tmp_ctx is not None:
            tmp_ctx.cleanup()
    return result.outcomes, result.summary()


def _cmd_worker(args, parser) -> int:
    from .chaos import ChaosSpecError, parse_spec
    from .fabric import FabricError, run_worker

    if args.lease_ttl <= 0:
        parser.error("--lease-ttl must be positive")
    chaos = None
    if args.chaos:
        try:
            chaos = parse_spec(args.chaos)
        except ChaosSpecError as exc:
            parser.error(f"--chaos: {exc}")
    try:
        stats = run_worker(
            args.fabric,
            worker_id=args.id,
            lease_ttl=args.lease_ttl,
            poll_s=args.poll,
            plan_timeout=args.plan_timeout,
            once=args.once,
            max_items=args.max_items,
            point_timeout=args.point_timeout,
            quarantine_after=args.quarantine_after,
            chaos=chaos,
        )
    except FabricError as exc:
        print(f"worker error: {exc}", file=sys.stderr)
        return 1
    print(stats.summary())
    return 0


def _cmd_fsck(args, parser) -> int:
    from .store.fsck import fsck_tree

    try:
        report = fsck_tree(
            args.dir,
            repair=not args.dry_run,
            quarantine_dir=args.quarantine,
        )
    except FileNotFoundError as exc:
        parser.error(str(exc))
    if args.json is not None:
        payload = json.dumps(report.to_json(), indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)  # machine output only: keep stdout parseable
        else:
            Path(args.json).write_text(payload + "\n", encoding="utf-8")
            print(f"fsck JSON written to {args.json}")
            print(report.render())
    else:
        print(report.render())
    return 0 if report.ok else 1


def _counter_rollup(outcomes) -> dict:
    """Sum the ``counter:`` metric deltas carried by outcomes.

    With ``--jobs N`` the kernels count in worker processes, so the
    parent registry stays empty — the per-outcome deltas are the one
    place the totals survive, whatever the execution mode."""
    rollup: dict = {}
    for outcome in outcomes:
        for key, value in (outcome.metrics or {}).items():
            if key.startswith("counter:"):
                rollup[key] = rollup.get(key, 0) + value
    return dict(sorted(rollup.items()))


def _cmd_bench(args, parser) -> int:
    from dataclasses import replace

    from . import bench as bench_mod

    run_noc = args.suite in ("noc", "all")
    run_gate = args.suite in ("gate", "all")
    run_compiled = args.suite in ("compiled", "all")
    run_sweep = args.suite in ("sweep", "all")
    if not run_noc and (args.mesh or args.rates):
        parser.error("--mesh/--rates only apply to the noc suite")

    workload = dict(
        pattern=args.pattern, routing=args.routing, n_vcs=args.vcs,
        kind=args.kind, cycles=args.cycles,
    )
    if not run_noc:
        points = []
    elif args.mesh or args.rates:
        try:
            meshes = [int(m) for m in (args.mesh or "4,8").split(",") if m]
            rates = [
                float(r) for r in (args.rates or "0.1").split(",") if r
            ]
        except ValueError as exc:
            parser.error(f"bad --mesh/--rates value: {exc}")
        if not meshes or not rates:
            parser.error("--mesh/--rates must name at least one value")
        if any(m < 1 for m in meshes):
            parser.error("--mesh sizes must be >= 1")
        if any(not 0.0 <= r <= 1.0 for r in rates):
            parser.error("--rates must be in [0, 1] flits/node/cycle")
        points = [
            bench_mod.BenchPoint(
                mesh_size=mesh, injection_rate=rate, **workload
            )
            for mesh in meshes
            for rate in rates
        ]
    else:
        # the standard mesh x rate gate points, with any workload
        # options (--pattern/--routing/--vcs/--kind) applied on top
        points = [
            replace(point, **workload)
            for point in bench_mod.default_points(args.cycles)
        ]

    gate_points = (
        bench_mod.default_gate_points(scale=args.gate_scale)
        if run_gate else []
    )
    compiled_points = (
        bench_mod.default_compiled_points(scale=args.compiled_scale)
        if run_compiled else []
    )
    sweep_points = (
        bench_mod.default_sweep_points(scale=args.sweep_scale)
        if run_sweep else []
    )

    def progress(outcome):
        if hasattr(outcome, "fabric_pps"):
            # sweep suite: the ratio is dispatch efficiency, not a
            # kernel speedup — word it as overhead, not a win
            eff = (
                f"{outcome.speedup:.1%} of bare-engine throughput"
                if outcome.speedup is not None else "reference skipped"
            )
            match = ""
            if outcome.stats_match is True:
                match = ", results identical"
            elif outcome.stats_match is False:
                match = ", RESULTS DIVERGED"
            print(
                f"{outcome.point.key}: {outcome.fabric_pps:,.0f} "
                f"points/sec through the fabric ({eff}{match})"
            )
            return
        speed = (
            f"{outcome.speedup:.2f}x vs reference"
            if outcome.speedup is not None else "reference skipped"
        )
        match = ""
        if outcome.stats_match is True:
            match = ", stats identical"
        elif outcome.stats_match is False:
            match = ", STATS DIVERGED"
        if hasattr(outcome, "optimized_lps"):
            rate = f"{outcome.optimized_lps:,.0f} lane-steps/sec"
        elif hasattr(outcome, "optimized_eps"):
            rate = f"{outcome.optimized_eps:,.0f} events/sec"
        else:
            rate = f"{outcome.optimized_cps:,.0f} cycles/sec"
        print(f"{outcome.point.key}: {rate} ({speed}{match})")

    document = bench_mod.run_bench(
        points,
        reference=not args.no_reference,
        repeats=args.repeats,
        progress=progress,
        gate_points=gate_points,
        compiled_points=compiled_points,
        sweep_points=sweep_points,
    )
    if args.profile:
        if points:
            # profile the most loaded point — highest injection rate,
            # then largest mesh — where the hot paths actually dominate
            target = max(
                points, key=lambda p: (p.injection_rate, p.mesh_size)
            )
            print(f"\ncProfile of the optimized kernel ({target.key}):")
            print(bench_mod.profile_point(target))
        if gate_points:
            gate_target = gate_points[0]  # the serializer-i3 gate point
            print(
                f"\ncProfile of the optimized sim kernel "
                f"({gate_target.key}):"
            )
            print(bench_mod.profile_gate_point(gate_target))
    if args.json:
        bench_mod.write_json(document, args.json)
        print(f"bench JSON written to {args.json}")

    diverged = [
        p["key"] for p in document["points"] if p.get("stats_match") is False
    ]
    if diverged:
        print(
            f"optimized kernel diverged from the reference on: "
            f"{', '.join(diverged)}",
            file=sys.stderr,
        )
        return 1
    if args.min_compiled_speedup is not None:
        slow = []
        for p in document["points"]:
            if p.get("suite") != "compiled":
                continue
            # the batch floor only makes sense where there is a batch:
            # single-lane points (ringosc) must merely not lose to the
            # event kernel
            floor = (
                args.min_compiled_speedup
                if p.get("lanes", 1) > 1 else 1.0
            )
            speedup = p.get("speedup")
            if speedup is None:
                slow.append(f"{p['key']}: no speedup recorded "
                            f"(ran with --no-reference?)")
            elif speedup < floor:
                slow.append(
                    f"{p['key']}: {speedup:.2f}x below the "
                    f"{floor:g}x floor (--min-compiled-speedup)"
                )
        if slow:
            for problem in slow:
                print(f"bench regression: {problem}", file=sys.stderr)
            return 1
        print(
            f"compiled-suite speedups clear the "
            f"{args.min_compiled_speedup:g}x batch floor (1x single-lane)"
        )
    if args.min_sweep_efficiency is not None:
        slow = []
        for p in document["points"]:
            if p.get("suite") != "sweep":
                continue
            efficiency = p.get("speedup")
            if efficiency is None:
                slow.append(f"{p['key']}: no efficiency recorded "
                            f"(ran with --no-reference?)")
            elif efficiency < args.min_sweep_efficiency:
                slow.append(
                    f"{p['key']}: {efficiency:.2%} of bare-engine "
                    f"throughput, below the "
                    f"{args.min_sweep_efficiency:.2%} floor "
                    f"(--min-sweep-efficiency)"
                )
        if slow:
            for problem in slow:
                print(f"bench regression: {problem}", file=sys.stderr)
            return 1
        print(
            f"sweep-suite dispatch efficiency clears the "
            f"{args.min_sweep_efficiency:.2%} floor"
        )
    if args.check:
        try:
            baseline = bench_mod.load_baseline(args.check)
        except (OSError, ValueError) as exc:
            parser.error(f"cannot read baseline {args.check}: {exc}")
        problems = bench_mod.check_against_baseline(
            document, baseline, tolerance=args.tolerance
        )
        if problems:
            for problem in problems:
                print(f"bench regression: {problem}", file=sys.stderr)
            return 1
        print(
            f"bench speedups within {args.tolerance:.0%} of "
            f"{args.check}"
        )
    return 0


def _cmd_telemetry(args, parser) -> int:
    try:
        report = obs_analyze.summarize(args.target)
    except FileNotFoundError as exc:
        parser.error(str(exc))
    except (obs_telemetry.TelemetryError,
            store_journal.JournalError, ValueError) as exc:
        parser.error(f"cannot read telemetry from {args.target}: {exc}")
    if args.json:
        text = json.dumps(report.to_json(), indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            Path(args.json).write_text(text + "\n", encoding="utf-8")
            print(f"telemetry JSON written to {args.json}")
    if args.csv:
        text = report.to_csv()
        if args.csv == "-":
            print(text, end="")
        else:
            Path(args.csv).write_text(text, encoding="utf-8")
            print(f"telemetry CSV written to {args.csv}")
    if not args.json and not args.csv:
        print(report.render())
    return 0


def _cmd_diff(args, parser) -> int:
    try:
        report = store_diff.diff_trees(
            args.old, args.new, drift_tolerance=args.drift_tolerance
        )
    except FileNotFoundError as exc:
        parser.error(str(exc))
    print(report.render())
    return 1 if report.regressed else 0


def _cmd_history(args, parser) -> int:
    root = Path(args.store)
    if not root.is_dir():
        parser.error(f"no such store directory: {args.store}")
    cache = run_store_pkg.RunStore(root)
    rows = []
    for record in cache.records():
        if args.scenario and record.get("scenario") != args.scenario:
            continue
        outcome = run_store_pkg.outcome_from_record(record)
        bad = len(outcome.result.failures()) if outcome.result else 0
        rows.append([
            record.get("scenario", "?"),
            record.get("point", "?"),
            "yes" if record.get("fast") else "no",
            "ok" if bad == 0 else f"{bad} FAILED",
            record.get("fingerprint", ""),
            record.get("key", "")[:12],
        ])
    rows.sort(key=lambda row: (row[0], row[1]))
    print(format_table(
        ("scenario", "point", "fast", "checks", "fingerprint", "key"),
        rows,
        title=f"{len(rows)} stored run(s) in {root}",
    ))
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduce and extend the evaluation of 'Serialized "
            "Asynchronous Links for NoC' (Ogg et al., DATE 2008)."
        ),
    )
    sub = parser.add_subparsers(dest="command")

    p_list = sub.add_parser("list", help="show registered scenarios")
    p_list.add_argument("--tags", help="comma-separated tag filter")
    p_list.add_argument(
        "--verbose", action="store_true",
        help="print each scenario's full typed parameter spec "
             "(name, type, default, choices, sweep axis)",
    )

    p_inspect = sub.add_parser(
        "inspect",
        help="print a scenario's hierarchical design tree",
    )
    p_inspect.add_argument("scenario", metavar="SCENARIO")
    p_inspect.add_argument(
        "--tree", action="store_true",
        help="ASCII instance tree instead of the summary table",
    )
    p_inspect.add_argument(
        "--no-ports", action="store_true",
        help="omit port declarations from the tree",
    )
    p_inspect.add_argument(
        "--set", action="append", metavar="NAME=VALUE",
        help="pin a scenario parameter (repeatable)",
    )
    p_inspect.add_argument(
        "--fast", action="store_true",
        help="apply fast-mode parameter overrides",
    )
    p_inspect.add_argument(
        "--compiled", action="store_true",
        help="also levelize the design for the bit-parallel compiled "
             "backend and print its stats (depth, gates per level, "
             "lanes), or why it cannot be compiled",
    )

    p_lint = sub.add_parser(
        "lint",
        help="static design checks over scenario design trees",
    )
    p_lint.add_argument(
        "scenarios", nargs="*", metavar="SCENARIO",
        help="scenario ids to lint (or pass --all)",
    )
    p_lint.add_argument(
        "--all", action="store_true",
        help="lint every registered scenario (those without a design "
             "tree are listed as skipped)",
    )
    p_lint.add_argument(
        "--set", action="append", metavar="NAME=VALUE",
        help="pin a scenario parameter (repeatable; applied to every "
             "selected scenario that declares it)",
    )
    p_lint.add_argument(
        "--full", action="store_true",
        help="build designs at their full default parameters instead "
             "of the fast-mode overrides",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default text; sarif is SARIF 2.1.0 with "
             "logical design-path locations)",
    )
    p_lint.add_argument(
        "--fail-on", dest="fail_on",
        choices=("info", "warning", "error"), default="error",
        help="exit 1 when an unwaived finding at or above this "
             "severity exists (default error)",
    )
    p_lint.add_argument(
        "--waivers", metavar="FILE",
        help="waiver file (default: ./lint-waivers.toml when present)",
    )

    p_run = sub.add_parser("run", help="execute scenarios")
    p_run.add_argument(
        "scenarios", nargs="*", metavar="SCENARIO",
        help="scenario ids (default: every paper-tagged scenario)",
    )
    p_run.add_argument("--tags", help="comma-separated tag filter")
    p_run.add_argument(
        "--fast", action="store_true",
        help="skip gate-level simulations (analytical results only)",
    )
    p_run.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (default 1)")
    p_run.add_argument("--out", metavar="DIR",
                       help="write CSV+JSON artifacts into DIR")

    p_sweep = sub.add_parser(
        "sweep", help="expand a parameter grid and run every point"
    )
    p_sweep.add_argument("scenario", metavar="SCENARIO")
    p_sweep.add_argument(
        "--param", action="append", metavar="NAME=V1,V2,...",
        help="sweep axis (repeatable; default: the scenario's declared axes)",
    )
    p_sweep.add_argument(
        "--set", action="append", metavar="NAME=VALUE",
        help="pin a parameter across every point (repeatable)",
    )
    p_sweep.add_argument("--fast", action="store_true",
                         help="apply fast-mode parameter overrides")
    p_sweep.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes (default 1)")
    p_sweep.add_argument("--out", metavar="DIR",
                         help="write CSV+JSON artifacts into DIR")
    p_sweep.add_argument(
        "--resume", metavar="DIR",
        help="output directory of a killed sweep: skip the points its "
             "journal already records, then write artifacts as usual",
    )
    p_sweep.add_argument(
        "--store", metavar="DIR",
        help="content-addressed run store: reuse identical points "
             "computed by earlier sweeps on this code, record new ones",
    )
    p_sweep.add_argument(
        "--progress", action="store_true",
        help="live one-line status on stderr (done/total, rate, eta, "
             "failures; periodic log lines when piped) and kernel "
             "telemetry collection, as if REPRO_TELEMETRY=1; artifacts "
             "are byte-identical either way",
    )
    p_sweep.add_argument(
        "--fabric", metavar="DIR",
        help="distributed mode: coordinate the sweep through a shared "
             "fabric directory that 'repro worker DIR' daemons (local "
             "or on other hosts via a shared mount) attach to; "
             "artifacts stay byte-identical to --jobs 1",
    )
    p_sweep.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="spawn N local fabric worker processes (uses a private "
             "temporary fabric directory unless --fabric names one)",
    )
    p_sweep.add_argument(
        "--lease-ttl", type=float, default=20.0, metavar="SEC",
        help="fabric lease heartbeat deadline; a worker silent this "
             "long forfeits its lease and the point is re-leased "
             "(default 20)",
    )
    p_sweep.add_argument(
        "--fabric-timeout", type=float, default=None, metavar="SEC",
        help="give up if the fabric sweep has not completed after SEC "
             "seconds (default: wait forever)",
    )
    p_sweep.add_argument(
        "--point-timeout", type=float, default=None, metavar="SEC",
        help="fabric mode: wall-clock budget per work item; a point "
             "that blows it journals as a structured 'point timeout' "
             "failure instead of wedging its worker (default: none)",
    )
    p_sweep.add_argument(
        "--lint", action="store_true",
        help="static pre-flight: lint the scenario's design at the "
             "sweep's pinned parameters and refuse to dispatch the "
             "grid if any unwaived error-level finding exists",
    )
    p_sweep.add_argument(
        "--quarantine-after", type=int, default=None, metavar="N",
        help="fabric mode: a work item whose executor died N times is "
             "quarantined — recorded as a structured failure without "
             "another execution attempt (default 2)",
    )

    p_worker = sub.add_parser(
        "worker",
        help="attach to a fabric directory and execute leased points",
        description=(
            "Fabric worker daemon: waits for the coordinator's plan in "
            "DIR, then claims work-item leases, executes them through "
            "the ordinary engine (batch packing included), streams a "
            "per-worker journal + telemetry segment, publishes results "
            "and exits 0 once every planned point is published."
        ),
    )
    p_worker.add_argument("fabric", metavar="DIR")
    p_worker.add_argument(
        "--id", default=None, metavar="NAME",
        help="worker identity (default: generated host-pid-random id); "
             "reusing an id resumes that worker's journal segment",
    )
    p_worker.add_argument(
        "--lease-ttl", type=float, default=20.0, metavar="SEC",
        help="lease deadline to claim and heartbeat with (default 20)",
    )
    p_worker.add_argument(
        "--poll", type=float, default=0.5, metavar="SEC",
        help="idle poll interval while other workers hold all "
             "remaining leases (default 0.5)",
    )
    p_worker.add_argument(
        "--plan-timeout", type=float, default=60.0, metavar="SEC",
        help="give up if no plan appears in DIR (default 60)",
    )
    p_worker.add_argument(
        "--once", action="store_true",
        help="make a single claim pass and exit instead of waiting "
             "for the plan to complete",
    )
    p_worker.add_argument(
        "--max-items", type=int, default=None, metavar="N",
        help="exit after executing N leased work items",
    )
    p_worker.add_argument(
        "--point-timeout", type=float, default=None, metavar="SEC",
        help="wall-clock budget per work item; exceeded points journal "
             "as structured 'point timeout' failures (default: none)",
    )
    p_worker.add_argument(
        "--quarantine-after", type=int, default=2, metavar="N",
        help="quarantine a work item after its lease record shows N "
             "dead executors (default 2)",
    )
    p_worker.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="deterministic fault injection, e.g. "
             "'7:worker.item=die#3,transport.claim=race@0.2' "
             "(overrides the REPRO_CHAOS environment variable; "
             "see repro.chaos for the grammar)",
    )

    p_fsck = sub.add_parser(
        "fsck",
        help="verify and repair sweep artifacts, stores, fabric state",
        description=(
            "Walk DIR checking every durable record it holds — sweep "
            "journals, telemetry streams, run-store objects, fabric "
            "plan/lease/result files — against structure and sha256 "
            "integrity checksums.  Torn tails are truncated, corrupt "
            "lines/objects quarantined into fsck-quarantine/ (nothing "
            "valid is deleted, every removed byte is preserved), stale "
            "lease debris removed.  Exits 0 when the tree is clean or "
            "fully repaired."
        ),
    )
    p_fsck.add_argument("dir", metavar="DIR")
    p_fsck.add_argument(
        "--dry-run", action="store_true",
        help="report problems without touching anything (exits 1 if "
             "any are found)",
    )
    p_fsck.add_argument(
        "--quarantine", default=None, metavar="DIR",
        help="where to put quarantined bytes "
             "(default: DIR/fsck-quarantine/)",
    )
    p_fsck.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="FILE",
        help="also emit the report as JSON to FILE (or stdout with no "
             "argument)",
    )

    p_tele = sub.add_parser(
        "telemetry",
        help="analyze a sweep's telemetry stream (or its journal)",
        description=(
            "Summarize telemetry.jsonl from a sweep output directory: "
            "slowest points, failure clusters, store-hit ratio, "
            "per-job utilization and kernel counter rollups.  Falls "
            "back to journal.jsonl (wall-clock durations, no store "
            "info) when no stream was written."
        ),
    )
    p_tele.add_argument(
        "target", metavar="DIR_OR_FILE",
        help="sweep output directory, telemetry.jsonl, or journal.jsonl",
    )
    p_tele.add_argument(
        "--json", metavar="PATH",
        help="write the full report as JSON to PATH ('-' for stdout)",
    )
    p_tele.add_argument(
        "--csv", metavar="PATH",
        help="write per-point rows as CSV to PATH ('-' for stdout)",
    )

    p_diff = sub.add_parser(
        "diff",
        help="compare two artifact trees; exit 1 on regression",
    )
    p_diff.add_argument("old", metavar="BASELINE",
                        help="artifact directory or summary.json")
    p_diff.add_argument("new", metavar="CURRENT",
                        help="artifact directory or summary.json")
    p_diff.add_argument(
        "--drift-tolerance", type=float, default=None, metavar="REL",
        help="relative measured-value drift to tolerate per check "
             "(default: each check's own recorded tolerance)",
    )

    p_hist = sub.add_parser(
        "history", help="list the runs recorded in a result store"
    )
    p_hist.add_argument("store", metavar="DIR")
    p_hist.add_argument("--scenario", help="filter by scenario id")

    p_bench = sub.add_parser(
        "bench",
        help="measure kernel throughput vs the frozen seed kernels",
    )
    p_bench.add_argument(
        "--suite", default="noc",
        choices=("noc", "gate", "compiled", "sweep", "all"),
        help="noc = cycle-kernel cycles/sec, gate = event-kernel "
             "events/sec on serializer/four-phase/ring-oscillator "
             "testbenches, compiled = bit-parallel backend aggregate "
             "lanes/sec vs one event-kernel lane, sweep = fabric "
             "scheduling overhead (no-op points/sec, coordinator vs "
             "bare engine) (default noc)",
    )
    p_bench.add_argument(
        "--gate-scale", type=float, default=1.0, metavar="FRAC",
        help="scale factor for the gate-suite workload sizes "
             "(default 1.0; --fast uses 0.5)",
    )
    p_bench.add_argument(
        "--compiled-scale", type=float, default=1.0, metavar="FRAC",
        help="scale factor for the compiled-suite workload sizes "
             "(default 1.0; --fast uses 0.5)",
    )
    p_bench.add_argument(
        "--min-compiled-speedup", type=float, default=None, metavar="X",
        help="fail unless every batched compiled point reaches X times "
             "the event kernel's aggregate lanes/sec (single-lane "
             "points are held to 1x); the CI bench job gates at 4x",
    )
    p_bench.add_argument(
        "--sweep-scale", type=float, default=1.0, metavar="FRAC",
        help="scale factor for the sweep-suite grid sizes "
             "(default 1.0; --fast uses 0.5)",
    )
    p_bench.add_argument(
        "--min-sweep-efficiency", type=float, default=None, metavar="F",
        help="fail unless every sweep point keeps at least fraction F "
             "of bare-engine points/sec when dispatched through the "
             "fabric (a scheduling-overhead ceiling)",
    )
    p_bench.add_argument(
        "--mesh", metavar="N1,N2,...",
        help="mesh sizes to bench (default: the standard 4/8 points)",
    )
    p_bench.add_argument(
        "--rates", metavar="R1,R2,...",
        help="injection rates, flits/node/cycle (with --mesh; default 0.1)",
    )
    p_bench.add_argument(
        "--pattern", default="uniform",
        choices=("uniform", "transpose", "bit_complement", "hotspot",
                 "neighbor"),
        help="traffic pattern (default uniform)",
    )
    p_bench.add_argument("--routing", default="xy",
                         choices=("xy", "west_first"))
    p_bench.add_argument("--vcs", type=int, default=1, metavar="N",
                         help="virtual channels (default 1)")
    p_bench.add_argument("--kind", default="I3", choices=("I1", "I2", "I3"),
                         help="link implementation (default I3)")
    p_bench.add_argument("--cycles", type=int, default=1500, metavar="N",
                         help="timed cycles per point (default 1500)")
    p_bench.add_argument("--repeats", type=int, default=3, metavar="N",
                         help="best-of-N timing repeats (default 3)")
    p_bench.add_argument(
        "--fast", action="store_true",
        help="short run: 300 cycles, 2 repeats (CI smoke)",
    )
    p_bench.add_argument(
        "--no-reference", action="store_true",
        help="skip the seed-kernel comparison run (no speedup reported)",
    )
    p_bench.add_argument(
        "--profile", action="store_true",
        help="cProfile the optimized run of the most loaded point",
    )
    p_bench.add_argument("--json", metavar="PATH",
                         help="write the bench document to PATH")
    p_bench.add_argument(
        "--check", metavar="BASELINE",
        help="compare speedups against a committed bench JSON; exit 1 "
             "when any point regresses beyond --tolerance",
    )
    p_bench.add_argument(
        "--tolerance", type=float, default=0.30, metavar="REL",
        help="relative speedup regression tolerated by --check "
             "(default 0.30)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if getattr(args, "jobs", 1) < 1:
        parser.error("--jobs must be >= 1")
    if args.command == "bench":
        if args.cycles < 1:
            parser.error("--cycles must be >= 1")
        if args.repeats < 1:
            parser.error("--repeats must be >= 1")
        if args.vcs < 1:
            parser.error("--vcs must be >= 1")
        if args.gate_scale <= 0:
            parser.error("--gate-scale must be positive")
        if args.compiled_scale <= 0:
            parser.error("--compiled-scale must be positive")
        if args.sweep_scale <= 0:
            parser.error("--sweep-scale must be positive")
        if args.suite not in ("gate", "all") and args.gate_scale != 1.0:
            # checked before --fast rescales it: reject only an explicit
            # user-supplied value that the selected suite would ignore
            parser.error("--gate-scale only applies to the gate suite")
        if (args.suite not in ("compiled", "all")
                and args.compiled_scale != 1.0):
            parser.error(
                "--compiled-scale only applies to the compiled suite"
            )
        if (args.suite not in ("compiled", "all")
                and args.min_compiled_speedup is not None):
            parser.error(
                "--min-compiled-speedup only applies to the "
                "compiled suite"
            )
        if args.suite not in ("sweep", "all") and args.sweep_scale != 1.0:
            parser.error("--sweep-scale only applies to the sweep suite")
        if (args.suite not in ("sweep", "all")
                and args.min_sweep_efficiency is not None):
            parser.error(
                "--min-sweep-efficiency only applies to the sweep suite"
            )
        if args.fast:
            # short cycles only; repeats stay (best-of-N absorbs
            # scheduler noise, which dominates sub-second timings)
            args.cycles = min(args.cycles, 300)
            args.gate_scale = min(args.gate_scale, 0.5)
            args.compiled_scale = min(args.compiled_scale, 0.5)
            args.sweep_scale = min(args.sweep_scale, 0.5)
        return _cmd_bench(args, parser)
    if args.command == "list":
        return _cmd_list(args, parser)
    if args.command == "inspect":
        return _cmd_inspect(args, parser)
    if args.command == "lint":
        return _cmd_lint(args, parser)
    if args.command == "run":
        return _cmd_run(args, parser)
    if args.command == "diff":
        return _cmd_diff(args, parser)
    if args.command == "history":
        return _cmd_history(args, parser)
    if args.command == "telemetry":
        return _cmd_telemetry(args, parser)
    if args.command == "worker":
        return _cmd_worker(args, parser)
    if args.command == "fsck":
        return _cmd_fsck(args, parser)
    return _cmd_sweep(args, parser)


#: paper-artifact ids, derived from the registry (back-compat re-export)
EXPERIMENT_IDS = tuple(_paper_ids())


if __name__ == "__main__":
    sys.exit(main())
