"""The :class:`Design` handle: an elaborated tree plus its simulator.

``Design`` is what experiments and the CLI hold onto: path-addressed
probing (:meth:`Design.find`), testbench overrides
(:meth:`Design.force` / :meth:`Design.release` — stuck-at faults by
instance path), net inventory keyed by owning instance, and tree
rendering for ``repro inspect``.

It wraps either construction style: a declarative tree (elaborate it
here via :meth:`Design.elaborate`) or a legacy eagerly built circuit
(pass the already-built root and its simulator).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from .component import Component, DesignError


def _is_bus(net) -> bool:
    return getattr(net, "signals", None) is not None


class Design:
    """An instance tree bound (or bindable) to a simulator."""

    def __init__(self, top: Component, sim=None,
                 watched: Optional[List[str]] = None) -> None:
        if not isinstance(top, Component):
            raise DesignError(
                f"Design wraps a Component tree, got {type(top).__name__}"
            )
        self.top = top
        self.sim = sim if sim is not None else top.sim
        #: net names the experiment observes (bench outputs, scoreboard
        #: taps); the lint dead-cone rule treats these as live roots in
        #: addition to the root component's output ports
        self.watched: List[str] = list(watched or [])

    # ------------------------------------------------------------------
    def elaborate(self, sim) -> "Design":
        """Elaborate the wrapped tree onto ``sim`` (either kernel)."""
        self.top.elaborate(sim)
        self.sim = sim
        return self

    @property
    def is_elaborated(self) -> bool:
        return self.sim is not None

    # ------------------------------------------------------------------
    # path addressing
    # ------------------------------------------------------------------
    def find(self, path: str):
        """Resolve ``path`` relative to the top instance.

        The leading segment may name the top instance itself (so paths
        copied from net names, e.g. ``"i3.s2a.stall"``, resolve without
        stripping).
        """
        top_leaf = self.top._leaf
        if path == top_leaf:
            return self.top
        if path.startswith(top_leaf + "."):
            path = path[len(top_leaf) + 1:]
        return self.top.find(path)

    def _net_at(self, path: str):
        net = self.find(path)
        if _is_bus(net) or hasattr(net, "force"):
            return net
        raise DesignError(
            f"{path!r} resolves to {type(net).__name__}, not a net; "
            f"point force/release at a Signal or Bus"
        )

    def force(self, path: str, value: int) -> None:
        """Force the net at ``path`` to ``value`` until :meth:`release`.

        A scalar net takes 0/1; a bus takes an integer forced bit by
        bit — the path-addressed equivalent of a stuck-at fault or a
        simulator ``force`` command.
        """
        net = self._net_at(path)
        if _is_bus(net):
            width = net.width
            if value < 0 or value >= (1 << width):
                raise DesignError(
                    f"value {value:#x} does not fit the {width}-bit bus "
                    f"at {path!r}"
                )
            for i, sig in enumerate(net.signals):
                sig.force((value >> i) & 1)
        else:
            net.force(value)

    def release(self, path: str) -> None:
        """Remove a :meth:`force` from the net at ``path``."""
        net = self._net_at(path)
        if _is_bus(net):
            for sig in net.signals:
                sig.release()
        else:
            net.release()

    # ------------------------------------------------------------------
    # inventory
    # ------------------------------------------------------------------
    def instances(self) -> List[Tuple[str, Component]]:
        """Every (path, component) in the tree, pre-order."""
        return list(self.top.walk())

    def instance_paths(self) -> List[str]:
        return [path for path, _comp in self.top.walk()]

    def _prefix_map(self) -> Dict[str, str]:
        """Name-prefix → instance-path lookup for net ownership.

        Eagerly built components name their nets with their historical
        dotted prefix (``comp.name``), declarative ports with the tree
        path — both resolve to the same instance here.
        """
        prefixes: Dict[str, str] = {}
        for path, comp in self.top.walk():
            prefixes.setdefault(path, path)
            # when a wrapper shares its net-name prefix with an inner
            # component (the I1 link and its pipeline are both "i1"),
            # the deepest instance owns the nets — it created them
            existing = prefixes.get(comp.name)
            if existing is None or len(path) >= len(existing):
                prefixes[comp.name] = path
        return prefixes

    def nets_by_instance(self) -> Dict[str, list]:
        """Created nets grouped by their owning instance path.

        Ownership is by longest matching instance-name prefix of the
        net's name — the library names every net by the instance that
        created it, so this recovers the structural grouping without
        per-class bookkeeping.  Nets whose names match no instance are
        grouped under ``""`` (testbench-level nets).
        """
        if self.sim is None:
            raise DesignError("design is not elaborated yet")
        prefixes = self._prefix_map()
        grouped: Dict[str, list] = {}
        for sig in self.sim.created_signals:
            grouped.setdefault(
                owner_path(sig.name, prefixes), []
            ).append(sig)
        return grouped

    def iter_nets(self) -> Iterator:
        if self.sim is None:
            raise DesignError("design is not elaborated yet")
        return iter(self.sim.created_signals)

    # ------------------------------------------------------------------
    def tree(self, ports: bool = True) -> str:
        """ASCII instance tree (the ``repro inspect --tree`` payload)."""
        return self.top.tree(ports=ports)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "elaborated" if self.is_elaborated else "described"
        return f"Design({self.top.path!r}, {state})"


def owner_path(net_name: str, prefixes: Dict[str, str]) -> str:
    """Longest name prefix of ``net_name`` owning it ('' if none).

    ``prefixes`` maps instance name-prefixes to instance paths (see
    :meth:`Design._prefix_map`).  A net ``i3.s2a.flag0.a`` belongs to
    instance ``i3.s2a.flag0`` when that prefix exists, else
    ``i3.s2a``, else ``i3`` — bit suffixes like ``[5]`` and leaf net
    names fall through naturally.
    """
    candidate = net_name
    while candidate:
        cut = candidate.rfind(".")
        candidate = candidate[:cut] if cut >= 0 else ""
        if candidate in prefixes:
            return prefixes[candidate]
    return ""
