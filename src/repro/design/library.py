"""Declarative wrappers over the gate-level link library.

:class:`LinkBench` is the design-API description of the paper's
measurement setup: a switch clock (optionally a second receive-side
clock for GALS operation) and one of the three link implementations.
Nothing is built until :meth:`~repro.design.component.Component.elaborate`
runs, and elaboration goes through the simulator construction factories,
so the identical description builds bit-identically on the optimized
kernel and on the frozen seed kernel — the differential test in
``tests/test_design.py`` pins the traces and VCD of a design-built I3
testbench against the legacy construction path.
"""

from __future__ import annotations

from typing import Optional

from ..link.assemblies import LinkConfig, build_i1, build_i2, build_i3
from ..tech.st012 import st012
from .component import Component
from .design import Design

_BUILDERS = {"I1": build_i1, "I2": build_i2, "I3": build_i3}


class LinkBench(Component):
    """Clock(s) + one link implementation, described declaratively.

    Elaboration reproduces the legacy construction sequence exactly
    (clock first, then the link builder under its historical instance
    name), so a design-built link is indistinguishable — net for net,
    event for event — from one built by calling the builders directly.
    """

    def __init__(
        self,
        kind: str = "I3",
        config: Optional[LinkConfig] = None,
        tech=None,
        freq_mhz: float = 300.0,
        rx_mhz: Optional[float] = None,
        rx_start_delay_ps: int = 0,
        clock_cls=None,
        name: str = "tb",
    ) -> None:
        super().__init__(name)
        key = kind.upper()
        if key not in _BUILDERS:
            raise ValueError(
                f"unknown link kind {kind!r}; expected I1/I2/I3"
            )
        self.kind = key
        self.config = config or LinkConfig()
        self.tech = tech
        self.freq_mhz = freq_mhz
        self.rx_mhz = rx_mhz
        self.rx_start_delay_ps = rx_start_delay_ps
        self._clock_cls = clock_cls
        self.clock = None
        self.rx_clock = None
        self.link = None

    def build(self, sim) -> None:
        clock_cls = self._clock_cls
        if clock_cls is None:
            from ..sim.clock import Clock as clock_cls  # noqa: N813
        self.clock = clock_cls.from_mhz(sim, self.freq_mhz, "clk")
        kwargs = {}
        if self.rx_mhz is not None:
            if self.kind == "I1":
                raise ValueError(
                    "the synchronous link I1 cannot take a second "
                    "receive clock (GALS needs I2/I3)"
                )
            self.rx_clock = clock_cls.from_mhz(
                sim, self.rx_mhz, "rxclk",
                start_delay_ps=self.rx_start_delay_ps,
            )
            kwargs["rx_clk"] = self.rx_clock.signal
        tech = self.tech or st012()
        self.link = _BUILDERS[self.kind](
            sim, self.clock.signal, self.config, tech, **kwargs
        )
        self.adopt(self.link, leaf=self.link.name)


def link_design(
    kind: str = "I3",
    config: Optional[LinkConfig] = None,
    tech=None,
    freq_mhz: float = 300.0,
    rx_mhz: Optional[float] = None,
    sim=None,
    **kwargs,
) -> Design:
    """Describe (and optionally elaborate) a link testbench design."""
    bench = LinkBench(
        kind=kind, config=config, tech=tech, freq_mhz=freq_mhz,
        rx_mhz=rx_mhz, **kwargs,
    )
    design = Design(bench)
    if sim is not None:
        design.elaborate(sim)
    return design
