"""Hierarchical design layer: components, typed ports, elaboration.

The circuit library historically built netlists by calling element
constructors directly against a simulator (``sim.signal`` / ``sim.bus``
factories wired by hand).  That works, but nothing can address, trace or
analyze the result *by structure* — there is only a flat namespace of
net-name strings.  This module adds the missing structural layer:

* :class:`Component` — a node in a named instance tree.  Every element
  and link module in the library now inherits from it, so any circuit
  (legacy-built or declaratively described) is a walkable tree of
  instances with dotted paths like ``i3.s2a.flag0.a``.
* :class:`Port` — a typed connection point (direction ``in``/``out``,
  scalar or ``width``-bit bus).  Declarative components declare ports
  with :meth:`Component.port_in` / :meth:`Component.port_out`, connect
  them with :meth:`Component.connect` (direction- and width-checked),
  and receive resolved nets at elaboration.
* :meth:`Component.elaborate` — builds the described tree onto a
  simulator **through the factory seam** (``sim.signal``/``sim.bus``),
  so the same description elaborates onto either the optimized kernel
  (:mod:`repro.sim`) or the frozen seed kernel
  (:mod:`repro.sim.reference`), and every net is auto-named by its
  hierarchy path.

Two construction styles therefore coexist:

* **eager** — the classic element constructors (``Inverter(sim, a)``)
  build immediately; the instance registers itself as an elaborated
  Component so the tree exists even for legacy code paths;
* **declarative** — subclass :class:`Component`, declare ports and
  children in ``__init__``, wire them with ``connect``, and implement
  :meth:`Component.build` to place leaf elements; nothing touches a
  simulator until ``elaborate(sim)``.

The two styles compose: a declarative ``build`` typically instantiates
eager elements with path-derived names (:meth:`Component.sub`) and
adopts them (:meth:`Component.adopt`).
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Iterator, List, Optional, Tuple


class DesignError(ValueError):
    """Illegal hierarchy operation: bad connection, unknown path, etc."""


#: directions a port may declare; ``inout`` is reserved for eagerly
#: built components exposing handshake nets whose flow direction is a
#: property of the protocol, not the port (e.g. a Channel's ack wire)
_DIRECTIONS = ("in", "out", "inout")


class _NetGroup:
    """Union-find group of ports that resolve to one shared net."""

    __slots__ = ("_parent", "ports", "driver", "feed", "bound", "net")

    def __init__(self, port: "Port") -> None:
        self._parent: Optional[_NetGroup] = None
        self.ports: List[Port] = [port]
        #: the child ``out`` port driving the group, if known yet
        self.driver: Optional[Port] = None
        #: the shallowest ``in`` port feeding the group from above (a
        #: provisional source: a shallower feed or the real driver of
        #: the value entering that port supersedes it)
        self.feed: Optional[Port] = None
        #: an externally supplied net bound via :meth:`Component.bind`
        self.bound = None
        self.net = None

    def root(self) -> "_NetGroup":
        group = self
        while group._parent is not None:
            group = group._parent
        # path compression
        if group is not self:
            node = self
            while node._parent is not group:
                nxt = node._parent
                node._parent = group
                node = nxt
        return group

    def merge(self, other: "_NetGroup") -> "_NetGroup":
        a, b = self.root(), other.root()
        if a is b:
            return a
        if a.driver is not None and b.driver is not None \
                and a.driver is not b.driver:
            raise DesignError(
                f"net would have two drivers: "
                f"{a.driver.describe()} and {b.driver.describe()}"
            )
        if a.bound is not None and b.bound is not None \
                and a.bound is not b.bound:
            raise DesignError(
                "net would bind two different existing nets "
                f"({getattr(a.bound, 'name', a.bound)!r} and "
                f"{getattr(b.bound, 'name', b.bound)!r})"
            )
        b._parent = a
        a.ports.extend(b.ports)
        a.driver = a.driver or b.driver
        if a.feed is None:
            a.feed = b.feed
        elif b.feed is not None \
                and b.feed.component.tree_depth \
                < a.feed.component.tree_depth:
            a.feed = b.feed
        a.bound = a.bound if a.bound is not None else b.bound
        a.net = a.net if a.net is not None else b.net
        return a


class Port:
    """A typed connection point on a :class:`Component`.

    ``width == 1`` is a scalar port resolving to a
    :class:`~repro.sim.signal.Signal`; wider ports resolve to a
    :class:`~repro.sim.signal.Bus`.  Eagerly built components construct
    ports with ``net`` already resolved (pure metadata); declarative
    ports resolve at elaboration, named by the hierarchy path of the
    group's driving (or first-declared) port.
    """

    __slots__ = ("component", "name", "direction", "width", "group", "_net")

    def __init__(
        self,
        component: "Component",
        name: str,
        direction: str,
        width: int = 1,
        net=None,
    ) -> None:
        if direction not in _DIRECTIONS:
            raise DesignError(
                f"port direction must be one of {_DIRECTIONS}, "
                f"got {direction!r}"
            )
        if width < 1:
            raise DesignError(f"port width must be >= 1, got {width}")
        self.component = component
        self.name = name
        self.direction = direction
        self.width = width
        self._net = net
        self.group: Optional[_NetGroup] = (
            None if net is not None else _NetGroup(self)
        )

    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        return f"{self.component.path}.{self.name}"

    @property
    def is_scalar(self) -> bool:
        return self.width == 1

    def describe(self) -> str:
        return f"{self.path} ({self.direction}, width {self.width})"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Port({self.describe()})"

    # ------------------------------------------------------------------
    @property
    def net(self):
        """The resolved Signal/Bus (only after elaboration/binding)."""
        if self._net is not None:
            return self._net
        group = self.group.root()
        if group.net is None:
            raise DesignError(
                f"port {self.describe()} is not elaborated yet"
            )
        return group.net

    def resolve(self, sim) -> None:
        """Create (or adopt) the group's net on ``sim`` if not done yet."""
        if self._net is not None:
            return
        group = self.group.root()
        if group.net is not None:
            return
        if group.bound is not None:
            group.net = group.bound
            self._check_width(group.net, "bound net")
            return
        namer = group.driver or min(
            group.ports, key=lambda p: p.component.tree_depth
        )
        if self.width == 1:
            group.net = sim.signal(namer.path)
        else:
            group.net = sim.bus(self.width, namer.path)

    def _check_width(self, net, what: str) -> None:
        net_width = len(getattr(net, "signals", ())) or 1
        if net_width != self.width:
            raise DesignError(
                f"{what} has width {net_width} but port "
                f"{self.describe()} expects {self.width}"
            )


_SEGMENT_RE = re.compile(r"^([^\[\]]+)((?:\[\d+\])*)$")
_INDEX_RE = re.compile(r"\[(\d+)\]")


def _parse_segment(segment: str) -> Tuple[str, Tuple[int, ...]]:
    """Split ``"node[1][2]"`` into ``("node", (1, 2))``."""
    match = _SEGMENT_RE.match(segment)
    if not match:
        raise DesignError(f"malformed path segment {segment!r}")
    base, brackets = match.groups()
    return base, tuple(int(i) for i in _INDEX_RE.findall(brackets))


class Component:
    """A node in the hierarchical design tree.

    Every instance has a leaf name, an optional parent, ordered children
    and declared ports.  The dotted instance path
    (``mesh.node[1][2].link``) is the stable structural address used by
    :meth:`find`, fault injection, the activity monitor's per-instance
    groups and the hierarchical VCD scopes.
    """

    def __init__(self, name: Optional[str] = None) -> None:
        #: display name; eager legacy components pass their full dotted
        #: net-name prefix here, declarative components a leaf name
        self.name: str = name if name else type(self).__name__.lower()
        self.parent: Optional["Component"] = None
        self.sim = None
        self._leaf: str = self.name
        self._children: Dict[str, Component] = {}
        self._ports: Dict[str, Port] = {}
        self._elaborated: bool = False

    # ------------------------------------------------------------------
    # tree structure
    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        """Dotted instance path from the root of the tree."""
        if self.parent is None:
            return self._leaf
        return f"{self.parent.path}.{self._leaf}"

    @property
    def tree_depth(self) -> int:
        depth = 0
        node = self
        while node.parent is not None:
            depth += 1
            node = node.parent
        return depth

    @property
    def children(self) -> Dict[str, "Component"]:
        """Leaf-name → child mapping (insertion order preserved)."""
        return dict(self._children)

    @property
    def ports(self) -> Dict[str, Port]:
        """Declared ports by name (insertion order preserved)."""
        return dict(self._ports)

    def root(self) -> "Component":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def add(self, leaf: str, child: "Component") -> "Component":
        """Register ``child`` under ``leaf`` (declarative children)."""
        if leaf in self._children:
            raise DesignError(
                f"{self.path!r} already has a child named {leaf!r}"
            )
        if child.parent is not None:
            raise DesignError(
                f"{child.name!r} already belongs to {child.parent.path!r}"
            )
        child.parent = self
        child._leaf = leaf
        self._children[leaf] = child
        return child

    def adopt(self, child: "Component", leaf: Optional[str] = None
              ) -> "Component":
        """Register an eagerly built ``child``, deriving its leaf name.

        Legacy constructors name sub-components ``f"{name}.seq"`` etc.;
        adoption strips the parent's own prefix so the tree path equals
        the historical flat net-name prefix exactly — nothing about the
        built circuit changes, it only becomes addressable.
        """
        if leaf is None:
            # eager parents prefix children with their historical dotted
            # name; declarative parents with their tree path (via sub())
            leaf = child.name
            for prefix in (f"{self.name}.", f"{self.path}."):
                if child.name.startswith(prefix):
                    candidate = child.name[len(prefix):]
                    if len(candidate) < len(leaf):
                        leaf = candidate
        child._elaborated = True
        return self.add(leaf, child)

    def sub(self, leaf: str) -> str:
        """The dotted name for a child/net named ``leaf`` under this
        instance — the naming convention shared with the legacy
        constructors (``f"{name}.{leaf}"``)."""
        return f"{self.path}.{leaf}"

    def walk(self) -> Iterator[Tuple[str, "Component"]]:
        """Yield ``(path, component)`` pre-order over the subtree."""
        yield self.path, self
        for child in self._children.values():
            yield from child.walk()

    # ------------------------------------------------------------------
    # ports
    # ------------------------------------------------------------------
    def _declare(self, name: str, direction: str, width: int,
                 net=None) -> Port:
        if name in self._ports:
            raise DesignError(
                f"{self.path!r} already declares a port {name!r}"
            )
        if self._elaborated and net is None:
            raise DesignError(
                f"cannot declare unresolved port {name!r} on the "
                f"already-elaborated {self.path!r}"
            )
        port = Port(self, name, direction, width, net)
        self._ports[name] = port
        return port

    def port_in(self, name: str, width: int = 1) -> Port:
        """Declare an input port (resolved to a net at elaboration)."""
        return self._declare(name, "in", width)

    def port_out(self, name: str, width: int = 1) -> Port:
        """Declare an output port (resolved to a net at elaboration)."""
        return self._declare(name, "out", width)

    def expose(self, name: str, net, direction: str = "inout") -> Port:
        """Register an already-built net as a typed port (eager style)."""
        width = len(getattr(net, "signals", ())) or 1
        return self._declare(name, direction, width, net)

    def bind(self, port: Port, net) -> None:
        """Attach an existing net to a declarative ``port`` — the seam
        for elaborating a described subtree into a legacy-built
        circuit."""
        if port._net is not None:
            raise DesignError(
                f"port {port.describe()} already carries a net"
            )
        port._check_width(net, "bound net")
        group = port.group.root()
        if group.bound is not None and group.bound is not net:
            raise DesignError(
                f"port {port.describe()} is already bound to "
                f"{getattr(group.bound, 'name', group.bound)!r}"
            )
        group.bound = net

    def net(self, port_name: str):
        """The resolved net of one of this component's ports."""
        try:
            return self._ports[port_name].net
        except KeyError:
            raise DesignError(
                f"{self.path!r} has no port {port_name!r}; declared: "
                f"{sorted(self._ports) or 'none'}"
            ) from None

    # ------------------------------------------------------------------
    # connection (declarative)
    # ------------------------------------------------------------------
    def _relation(self, port: Port) -> str:
        if port.component is self:
            return "self"
        if port.component.parent is self:
            return "child"
        raise DesignError(
            f"{port.describe()} is not a port of {self.path!r} "
            f"or of one of its direct children"
        )

    def connect(self, src: Port, dst: Port) -> None:
        """Wire ``src`` into ``dst`` with direction and width checking.

        Legal in the scope of ``self``: a child's ``out`` into a sibling
        child's ``in`` or up into one of this component's ``out`` ports;
        one of this component's ``in`` ports down into a child's ``in``
        or through to an own ``out`` (feedthrough).
        """
        if not isinstance(src, Port) or not isinstance(dst, Port):
            raise DesignError("connect() takes two Port objects")
        if src.width != dst.width:
            raise DesignError(
                f"width mismatch: {src.describe()} vs {dst.describe()}"
            )
        src_rel, dst_rel = self._relation(src), self._relation(dst)
        drives = src.direction == "out" and src_rel == "child"
        imports = src.direction == "in" and src_rel == "self"
        if not (drives or imports):
            raise DesignError(
                f"{src.describe()} cannot drive anything in the scope "
                f"of {self.path!r}: sources are a child's 'out' port or "
                f"this component's own 'in' port"
            )
        sinks_ok = (
            (dst_rel == "child" and dst.direction == "in")
            or (dst_rel == "self" and dst.direction == "out")
        )
        if not sinks_ok:
            raise DesignError(
                f"{dst.describe()} cannot be driven in the scope of "
                f"{self.path!r}: sinks are a child's 'in' port or this "
                f"component's own 'out' port"
            )
        if src._net is not None or dst._net is not None:
            raise DesignError(
                "connect() wires declarative ports; "
                f"{(src if src._net is not None else dst).describe()} "
                "already carries a built net (use bind/wire instead)"
            )
        # source conflicts are checked BEFORE merging: a rejected
        # connection must leave both net groups untouched.  A net has
        # one value origin — either a child's 'out' port (the driver)
        # or the shallowest 'in' port it enters the hierarchy through
        # (the feed; a shallower feed, or the driver of the value
        # reaching that port, legitimately supersedes it).
        src_root = src.group.root()
        dst_root = dst.group.root()
        if drives:
            for root in (src_root, dst_root):
                if root.driver is not None and root.driver is not src:
                    raise DesignError(
                        f"net already driven by "
                        f"{root.driver.describe()}; cannot also "
                        f"connect driver {src.describe()}"
                    )
            for root in (src_root, dst_root):
                feed = root.feed
                # a feed that is the very port being driven (a child's
                # input chain now receiving its value) or that flows
                # through the driving component itself is upstream of
                # this driver, not a second source
                if (feed is not None and feed is not dst
                        and feed.component is not src.component):
                    raise DesignError(
                        f"net already fed by the input "
                        f"{feed.describe()}; cannot also connect "
                        f"driver {src.describe()}"
                    )
        else:  # imports: self.in feeding downward/through
            if (dst_root.driver is not None
                    and dst_root is not src_root
                    and dst_root.driver is not src_root.driver):
                raise DesignError(
                    f"{dst.describe()} is already driven by "
                    f"{dst_root.driver.describe()}; the input "
                    f"{src.describe()} cannot also feed it"
                )
            feed = dst_root.feed
            if (feed is not None and feed is not src
                    and dst_root is not src_root
                    and feed.component.tree_depth
                    <= src.component.tree_depth):
                raise DesignError(
                    f"{dst.describe()} is already fed by the input "
                    f"{feed.describe()}; the input {src.describe()} "
                    f"cannot also feed it"
                )
        group = src.group.merge(dst.group)
        if drives:
            group.driver = src
            group.feed = None if group.feed is dst else group.feed
        elif group.feed is None or src.component.tree_depth \
                < group.feed.component.tree_depth:
            group.feed = src

    # ------------------------------------------------------------------
    # elaboration
    # ------------------------------------------------------------------
    def build(self, sim) -> None:
        """Hook: place leaf elements / processes.  Default: nothing.

        Called exactly once per component during :meth:`elaborate`, after
        this component's declared ports have resolved to nets (access
        them with :meth:`net`).  Eagerly built components did their work
        in ``__init__`` and keep the default no-op.
        """

    def elaborate(self, sim) -> "Component":
        """Build the described tree onto ``sim`` and return ``self``.

        Works against any simulator implementing the construction
        factories (``signal``/``bus``/``bus_view``/``spawn``) — the
        optimized kernel and the frozen seed kernel both do.
        """
        if self.parent is not None:
            raise DesignError(
                f"elaborate from the tree root, not {self.path!r}"
            )
        if self._elaborated:
            raise DesignError(f"{self.path!r} is already elaborated")
        for _path, comp in self.walk():
            comp.sim = sim
        self._elaborate_tree(sim)
        return self

    def _elaborate_tree(self, sim) -> None:
        self.sim = sim
        for port in self._ports.values():
            port.resolve(sim)
        if not self._elaborated:
            self._elaborated = True
            self.build(sim)
        for child in list(self._children.values()):
            if not child._elaborated:
                child._elaborate_tree(sim)

    # ------------------------------------------------------------------
    # path addressing
    # ------------------------------------------------------------------
    def find(self, path: str):
        """Resolve a dotted path to a component, port net, or net.

        Each segment is matched against (in order) an exact child key,
        a child/port/attribute base name with ``[index]`` suffixes
        applied to the result.  ``find("")`` returns ``self``.
        """
        target: object = self
        if not path:
            return target
        for segment in path.split("."):
            target = _resolve_segment(target, segment, path)
        return target

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def tree(self, ports: bool = True) -> str:
        """ASCII rendering of the instance subtree."""
        lines: List[str] = [self._label(ports)]
        self._render(lines, "", ports)
        return "\n".join(lines)

    def _describe_ports(self) -> str:
        if not self._ports:
            return ""
        parts = []
        for port in self._ports.values():
            width = "" if port.width == 1 else f"[{port.width}]"
            parts.append(f"{port.name}{width}:{port.direction}")
        return "  (" + ", ".join(parts) + ")"

    def _label(self, ports: bool) -> str:
        label = f"{self._leaf} <{type(self).__name__}>"
        return label + (self._describe_ports() if ports else "")

    def _render(self, lines: List[str], prefix: str, ports: bool) -> None:
        kids = list(self._children.values())
        for i, child in enumerate(kids):
            last = i == len(kids) - 1
            lines.append(
                prefix + ("└─ " if last else "├─ ") + child._label(ports)
            )
            child._render(lines, prefix + ("   " if last else "│  "), ports)


def _nearest_paths(target: "Component", base: str,
                   limit: int = 3) -> List[str]:
    """Closest child/port paths to a mistyped segment, best first.

    Suggestions are full dotted paths (the same form lint findings and
    force/inspect use), so an error message can be pasted straight back
    into ``find``.
    """
    import difflib

    candidates = {
        leaf: child.path for leaf, child in target._children.items()
    }
    for name, port in target._ports.items():
        candidates.setdefault(name, port.path)
    matches = difflib.get_close_matches(
        base, list(candidates), n=limit, cutoff=0.5
    )
    return [candidates[m] for m in matches]


def _resolve_segment(target: object, segment: str, full_path: str):
    base, indices = _parse_segment(segment)
    resolved = None
    if isinstance(target, Component):
        if segment in target._children:
            return target._children[segment]
        if base in target._children:
            resolved = target._children[base]
        elif base in target._ports:
            resolved = target._ports[base].net
        else:
            resolved = getattr(target, base, None)
    else:
        resolved = getattr(target, base, None)
        if resolved is None and hasattr(target, "__getitem__") \
                and not indices:
            raise DesignError(
                f"cannot resolve {segment!r} in {full_path!r}: "
                f"{target!r} has no attribute {base!r}"
            )
    if resolved is None:
        hints = ""
        if isinstance(target, Component):
            nearest = _nearest_paths(target, base)
            if nearest:
                hints = "; did you mean " + ", ".join(
                    repr(p) for p in nearest
                ) + "?"
            else:
                hints = (
                    f"; children: {sorted(target._children) or 'none'}, "
                    f"ports: {sorted(target._ports) or 'none'}"
                )
        raise DesignError(
            f"cannot resolve {segment!r} while walking {full_path!r} "
            f"from {getattr(target, 'path', target)!r}{hints}"
        )
    for index in indices:
        try:
            resolved = resolved[index]
        except (TypeError, IndexError, KeyError) as exc:
            raise DesignError(
                f"cannot index {segment!r} in {full_path!r}: {exc}"
            ) from None
    return resolved


def connect_many(scope: Component,
                 *pairs: Tuple[Port, Port]) -> None:
    """Convenience: ``connect`` every (src, dst) pair in ``scope``."""
    for src, dst in pairs:
        scope.connect(src, dst)
