"""Structural view of a behavioural NoC mesh: path-addressable links.

The cycle-level NoC kernel (:mod:`repro.noc`) identifies a directed
link by a raw ``((x, y), Port)`` tuple.  :class:`MeshDesign` lifts that
namespace into the hierarchy API: every switch becomes an instance
``node[y][x]`` and every outgoing link a leaf instance
``node[y][x].east`` (etc.), so fault campaigns and clock-domain
assignment can address the mesh by structural path —
``mesh.find("node[1][2].east")`` — instead of coordinate tuples, and
``repro inspect gals-mesh --tree`` can print the whole machine.

The design is pure structure (the behavioural kernel owns the
simulation); per-link parameter overrides attached to the tree are
handed to ``Network(link_params_for=...)`` via
:meth:`MeshDesign.link_params_for`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..noc.topology import Port as NocPort
from ..noc.topology import Topology
from .component import Component, DesignError

Coord = Tuple[int, int]


class MeshLink(Component):
    """One directed inter-switch link (a leaf of the mesh tree)."""

    def __init__(self, src: Coord, port: NocPort, dst: Coord,
                 name: str) -> None:
        super().__init__(name)
        self.src = src
        self.noc_port = port
        self.dst = dst
        #: behavioural parameter override (None = the mesh default)
        self.params = None
        #: free-form condition tag ("degraded", "cross-domain", ...)
        self.tag: Optional[str] = None

    def _label(self, ports: bool) -> str:
        label = super()._label(ports)
        if self.tag:
            label += f"  [{self.tag}]"
        return label


class MeshNode(Component):
    """One switch of the mesh; children are its outgoing links."""

    def __init__(self, coord: Coord, name: str) -> None:
        super().__init__(name)
        self.x, self.y = coord
        self.coord = coord
        #: clock-domain label assigned by the scenario ("fast"/"slow"/...)
        self.domain: str = "default"

    def _label(self, ports: bool) -> str:
        label = super()._label(ports)
        if self.domain != "default":
            label += f"  [domain: {self.domain}]"
        return label


class MeshDesign(Component):
    """The instance tree of an ``NxM`` mesh over a :class:`Topology`."""

    def __init__(self, topology: Topology, name: str = "mesh") -> None:
        super().__init__(name)
        self.topology = topology
        self._nodes: Dict[Coord, MeshNode] = {}
        self._links: Dict[Tuple[Coord, NocPort], MeshLink] = {}
        for coord in topology.nodes():
            x, y = coord
            node = MeshNode(coord, f"node[{y}][{x}]")
            self.add(node.name, node)
            self._nodes[coord] = node
        for src, port, dst in topology.links():
            link = MeshLink(src, port, dst, port.name.lower())
            self._nodes[src].add(link.name, link)
            self._links[(src, port)] = link

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def node_at(self, coord: Coord) -> MeshNode:
        try:
            return self._nodes[coord]
        except KeyError:
            raise DesignError(
                f"no node at {coord} in a "
                f"{self.topology.cols}x{self.topology.rows} mesh"
            ) from None

    def link_at(self, src: Coord, port: NocPort) -> MeshLink:
        try:
            return self._links[(src, port)]
        except KeyError:
            raise DesignError(
                f"no directed link out of {src} through {port}"
            ) from None

    def link_path(self, src: Coord, port: NocPort) -> str:
        """The instance path of a directed link, relative to the mesh."""
        link = self.link_at(src, port)
        x, y = src
        return f"node[{y}][{x}].{link.name}"

    def links(self) -> Iterator[MeshLink]:
        return iter(self._links.values())

    def link_by_path(self, path: str) -> MeshLink:
        """Resolve a relative path like ``node[1][2].east`` to its link."""
        found = self.find(path)
        if not isinstance(found, MeshLink):
            raise DesignError(
                f"{path!r} names a {type(found).__name__}, not a mesh link"
            )
        return found

    # ------------------------------------------------------------------
    # campaign hooks
    # ------------------------------------------------------------------
    def degrade(self, path: str, params, tag: str = "degraded"
                ) -> MeshLink:
        """Attach a behavioural override to the link at ``path``."""
        link = self.link_by_path(path)
        link.params = params
        link.tag = tag
        return link

    def assign_domains(
        self, classify: Callable[[MeshNode], str]
    ) -> Dict[str, int]:
        """Label every node's clock domain; returns per-domain counts."""
        counts: Dict[str, int] = {}
        for node in self._nodes.values():
            node.domain = classify(node)
            counts[node.domain] = counts.get(node.domain, 0) + 1
        return counts

    def cross_domain_links(self) -> List[MeshLink]:
        """Links whose endpoints sit in different clock domains."""
        return [
            link for link in self._links.values()
            if self._nodes[link.src].domain != self._nodes[link.dst].domain
        ]

    def link_params_for(self) -> Callable:
        """The ``Network(link_params_for=...)`` hook reading the tree."""

        def params_for(src: Coord, port: NocPort, _dst: Coord):
            link = self._links.get((src, port))
            return link.params if link is not None else None

        return params_for
