"""Hierarchical design API: components, ports, elaboration, designs.

Public surface:

* :class:`Component` / :class:`Port` — the instance tree and its typed
  connection points (declare with ``port_in``/``port_out``, wire with
  ``connect``, direction- and width-checked);
* :class:`Design` — an elaborated tree bound to a simulator:
  ``find(path)`` / ``force(path, v)`` / ``release(path)`` probing, net
  inventory by instance, tree rendering;
* :class:`LinkBench` / :func:`link_design` — the paper's link
  testbench as a declarative design (elaborates onto either kernel);
* :class:`MeshDesign` — path-addressable structural view of a
  behavioural NoC mesh (fault campaigns, clock-domain assignment).

See README "Design API" for a build→connect→elaborate walkthrough.
"""

from .component import Component, DesignError, Port, connect_many
from .design import Design, owner_path

# The library/mesh layers wrap repro.link and repro.noc, which in turn
# import repro.elements — and every element class imports
# repro.design.component.  Loading them lazily keeps that cycle open:
# ``repro.design`` itself depends only on the standard library.
_LAZY = {
    "LinkBench": ("library", "LinkBench"),
    "link_design": ("library", "link_design"),
    "MeshDesign": ("mesh", "MeshDesign"),
    "MeshLink": ("mesh", "MeshLink"),
    "MeshNode": ("mesh", "MeshNode"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    from importlib import import_module

    return getattr(import_module(f".{module_name}", __name__), attr)


__all__ = [
    "Component",
    "DesignError",
    "Port",
    "connect_many",
    "Design",
    "owner_path",
    "LinkBench",
    "link_design",
    "MeshDesign",
    "MeshLink",
    "MeshNode",
]
