"""Synchronous wormhole switch (the paper's NoC context).

The paper's links connect "switches of synchronous NoC"; this module
provides that substrate: a 5-port input-buffered wormhole switch with

* XY (dimension-ordered) routing — deadlock-free on a mesh,
* per-output round-robin arbitration,
* wormhole route locking: a head flit claims an output lane; body flits
  follow; the tail flit releases it,
* optional **virtual channels**: with ``n_vcs > 1`` each input port has
  one FIFO per VC and each output port one wormhole lock per VC, so
  packets on different VCs interleave flit-by-flit over the same
  physical link — the classic cure for head-of-line blocking.  VCs are
  assigned statically at injection (``flit.vc``) and kept end to end,
* credit-style backpressure: a flit advances only if the downstream
  link accepts it (the links are
  :class:`~repro.link.behavioral.TokenLink` instances whose rate and
  capacity come from the link implementation under study).

The switch is cycle-driven: the network calls :meth:`arbitrate_and_send`
once per clock after link deliveries have been drained into the input
FIFOs.  At most one flit crosses each physical output per cycle —
virtual channels share the wire, they do not widen it.

Arbitration is decision-identical to the straightforward seed
implementation (kept verbatim in :mod:`repro.noc.reference` and pinned
by ``tests/test_kernel_equivalence.py``) but organised for speed: the
lane list and the lane→index map are precomputed once, empty switches
return before touching any lane, and the round-robin update is a dict
lookup instead of a linear ``list.index`` scan.  The per-output rescan
of the lanes is deliberate — with adaptive routing a lane's desired
output may change *within* a cycle as earlier outputs send (occupancies
shift and queue heads advance), so caching desired outputs across
output ports would change arbitration decisions.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .flit import Flit
from .topology import Coord, Port

#: signature of the routing function: (current, dest) -> output port
RouteFn = Callable[[Coord, Coord], Port]

#: an input lane: (input port, virtual channel)
Lane = Tuple[Port, int]


class InputQueue:
    """One input lane's FIFO with its wormhole route state."""

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ValueError(f"FIFO depth must be >= 1, got {depth}")
        self.depth = depth
        self.fifo: Deque[Flit] = deque()
        #: output port currently locked by an in-progress packet
        self.locked_output: Optional[Port] = None

    @property
    def full(self) -> bool:
        return len(self.fifo) >= self.depth

    @property
    def empty(self) -> bool:
        return not self.fifo

    def push(self, flit: Flit) -> None:
        if self.full:
            raise RuntimeError("push into full input queue")
        self.fifo.append(flit)

    def head(self) -> Flit:
        return self.fifo[0]

    def pop(self) -> Flit:
        return self.fifo.popleft()


class Switch:
    """A 5-port synchronous wormhole switch with optional VCs."""

    def __init__(
        self,
        position: Coord,
        route_fn: RouteFn,
        fifo_depth: int = 4,
        n_vcs: int = 1,
        name: Optional[str] = None,
    ) -> None:
        if n_vcs < 1:
            raise ValueError(f"need at least one virtual channel, got {n_vcs}")
        self.position = position
        self.route_fn = route_fn
        self.name = name or f"sw{position}"
        self.n_vcs = n_vcs
        #: input FIFOs indexed by port, then VC
        self.inputs: Dict[Port, List[InputQueue]] = {
            port: [InputQueue(fifo_depth) for _ in range(n_vcs)]
            for port in Port
        }
        #: which input lane owns each (output port, VC) wormhole lane
        self.output_owner: Dict[Tuple[Port, int], Optional[Lane]] = {
            (port, vc): None for port in Port for vc in range(n_vcs)
        }
        #: round-robin pointer per output port (over lanes)
        self._rr: Dict[Port, int] = {port: 0 for port in Port}
        #: outgoing links, attached by the network
        self.out_links: Dict[Port, object] = {}
        # precomputed arbitration structures (hot path)
        lanes = [(port, vc) for port in Port for vc in range(n_vcs)]
        self._lane_index: Dict[Lane, int] = {
            lane: i for i, lane in enumerate(lanes)
        }
        self._lane_pairs: Tuple[Tuple[Lane, InputQueue], ...] = tuple(
            (lane, self.inputs[lane[0]][lane[1]]) for lane in lanes
        )
        self._n_lanes = len(lanes)
        #: flits currently buffered across all lanes (maintained by
        #: :meth:`accept` and the arbitration pops; lets both the switch
        #: and the network skip empty switches without scanning FIFOs)
        self._buffered = 0
        # statistics
        self.flits_routed = 0
        self.arbitration_conflicts = 0
        #: outputs won uncontested (single candidate — no round-robin)
        self.arbitration_fast = 0

    # ------------------------------------------------------------------
    def queue(self, port: Port, vc: int = 0) -> InputQueue:
        """The input FIFO of one lane."""
        return self.inputs[port][vc]

    def can_accept(self, port: Port, vc: int = 0) -> bool:
        """Space available on the given input lane?"""
        return not self.inputs[port][vc].full

    def accept(self, port: Port, flit: Flit) -> None:
        """Push an arriving flit into its lane's FIFO (lane = flit.vc)."""
        vc = flit.vc
        if not (0 <= vc < self.n_vcs):
            raise ValueError(
                f"{self.name}: flit carries VC {vc} but switch has "
                f"{self.n_vcs} VC(s)"
            )
        self.inputs[port][vc].push(flit)
        self._buffered += 1

    # ------------------------------------------------------------------
    def arbitrate_and_send(
        self,
        now_cycle: int,
        eject: Callable[[Flit], None],
    ) -> int:
        """One cycle of switching: returns the number of flits moved.

        ``eject`` consumes flits whose output is LOCAL.  At most one
        flit advances per *physical* output port per cycle; round-robin
        over the input lanes resolves conflicts; the wormhole lock is
        per (output, VC) so different VCs interleave.
        """
        if self._buffered == 0:
            return 0
        moved = 0
        route_fn = self.route_fn
        position = self.position
        output_owner = self.output_owner
        lane_pairs = self._lane_pairs
        lane_index = self._lane_index
        n_lanes = self._n_lanes
        rr = self._rr
        for out_port in Port:
            candidates: List[Tuple[Lane, InputQueue]] = []
            for lane, queue in lane_pairs:
                fifo = queue.fifo
                if not fifo:
                    continue
                flit = fifo[0]
                if flit.kind.opens_route:
                    if route_fn(position, flit.dest) is not out_port:
                        continue
                    owner = output_owner[(out_port, flit.vc)]
                    if owner is not None and owner != lane:
                        continue  # VC lane locked by another packet
                elif queue.locked_output is not out_port:
                    # body/tail follow the locked route
                    continue
                candidates.append((lane, queue))

            if not candidates:
                continue
            if len(candidates) == 1:
                self.arbitration_fast += 1
                pick, queue = candidates[0]
            else:
                self.arbitration_conflicts += 1
                # round-robin: the first candidate at or after the pointer
                start = rr[out_port]
                pick, queue = min(
                    candidates,
                    key=lambda cand: (lane_index[cand[0]] - start) % n_lanes,
                )

            if out_port is Port.LOCAL:
                flit = queue.pop()
                self._buffered -= 1
                self._finish_flit(queue, pick, out_port, flit)
                eject(flit)
                moved += 1
                rr[out_port] = (lane_index[pick] + 1) % n_lanes
                continue

            link = self.out_links.get(out_port)
            if link is None:
                raise RuntimeError(
                    f"{self.name}: no link attached on {out_port}"
                )
            if link.try_send(queue.fifo[0], now_cycle):
                flit = queue.pop()
                self._buffered -= 1
                self._finish_flit(queue, pick, out_port, flit)
                moved += 1
                rr[out_port] = (lane_index[pick] + 1) % n_lanes
        self.flits_routed += moved
        return moved

    def _finish_flit(self, queue: InputQueue, lane: Lane,
                     out_port: Port, flit: Flit) -> None:
        """Update wormhole locks after a flit advances."""
        kind = flit.kind
        if kind.opens_route:
            self.output_owner[(out_port, flit.vc)] = lane
            queue.locked_output = out_port
        if kind.closes_route:
            self.output_owner[(out_port, flit.vc)] = None
            queue.locked_output = None

    # ------------------------------------------------------------------
    @property
    def buffered_flits(self) -> int:
        return sum(
            len(q.fifo) for queues in self.inputs.values() for q in queues
        )
