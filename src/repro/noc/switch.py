"""Synchronous wormhole switch (the paper's NoC context).

The paper's links connect "switches of synchronous NoC"; this module
provides that substrate: a 5-port input-buffered wormhole switch with

* XY (dimension-ordered) routing — deadlock-free on a mesh,
* per-output round-robin arbitration,
* wormhole route locking: a head flit claims an output lane; body flits
  follow; the tail flit releases it,
* optional **virtual channels**: with ``n_vcs > 1`` each input port has
  one FIFO per VC and each output port one wormhole lock per VC, so
  packets on different VCs interleave flit-by-flit over the same
  physical link — the classic cure for head-of-line blocking.  VCs are
  assigned statically at injection (``flit.vc``) and kept end to end,
* credit-style backpressure: a flit advances only if the downstream
  link accepts it (the links are
  :class:`~repro.link.behavioral.TokenLink` instances whose rate and
  capacity come from the link implementation under study).

The switch is cycle-driven: the network calls :meth:`arbitrate_and_send`
once per clock after link deliveries have been drained into the input
FIFOs.  At most one flit crosses each physical output per cycle —
virtual channels share the wire, they do not widen it.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .flit import Flit
from .topology import Coord, Port

#: signature of the routing function: (current, dest) -> output port
RouteFn = Callable[[Coord, Coord], Port]

#: an input lane: (input port, virtual channel)
Lane = Tuple[Port, int]


class InputQueue:
    """One input lane's FIFO with its wormhole route state."""

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ValueError(f"FIFO depth must be >= 1, got {depth}")
        self.depth = depth
        self.fifo: Deque[Flit] = deque()
        #: output port currently locked by an in-progress packet
        self.locked_output: Optional[Port] = None

    @property
    def full(self) -> bool:
        return len(self.fifo) >= self.depth

    @property
    def empty(self) -> bool:
        return not self.fifo

    def push(self, flit: Flit) -> None:
        if self.full:
            raise RuntimeError("push into full input queue")
        self.fifo.append(flit)

    def head(self) -> Flit:
        return self.fifo[0]

    def pop(self) -> Flit:
        return self.fifo.popleft()


class Switch:
    """A 5-port synchronous wormhole switch with optional VCs."""

    def __init__(
        self,
        position: Coord,
        route_fn: RouteFn,
        fifo_depth: int = 4,
        n_vcs: int = 1,
        name: Optional[str] = None,
    ) -> None:
        if n_vcs < 1:
            raise ValueError(f"need at least one virtual channel, got {n_vcs}")
        self.position = position
        self.route_fn = route_fn
        self.name = name or f"sw{position}"
        self.n_vcs = n_vcs
        #: input FIFOs indexed by port, then VC
        self.inputs: Dict[Port, List[InputQueue]] = {
            port: [InputQueue(fifo_depth) for _ in range(n_vcs)]
            for port in Port
        }
        #: which input lane owns each (output port, VC) wormhole lane
        self.output_owner: Dict[Tuple[Port, int], Optional[Lane]] = {
            (port, vc): None for port in Port for vc in range(n_vcs)
        }
        #: round-robin pointer per output port (over lanes)
        self._rr: Dict[Port, int] = {port: 0 for port in Port}
        #: outgoing links, attached by the network
        self.out_links: Dict[Port, object] = {}
        # statistics
        self.flits_routed = 0
        self.arbitration_conflicts = 0

    # ------------------------------------------------------------------
    def queue(self, port: Port, vc: int = 0) -> InputQueue:
        """The input FIFO of one lane."""
        return self.inputs[port][vc]

    def can_accept(self, port: Port, vc: int = 0) -> bool:
        """Space available on the given input lane?"""
        return not self.inputs[port][vc].full

    def accept(self, port: Port, flit: Flit) -> None:
        """Push an arriving flit into its lane's FIFO (lane = flit.vc)."""
        vc = getattr(flit, "vc", 0)
        if not (0 <= vc < self.n_vcs):
            raise ValueError(
                f"{self.name}: flit carries VC {vc} but switch has "
                f"{self.n_vcs} VC(s)"
            )
        self.inputs[port][vc].push(flit)

    # ------------------------------------------------------------------
    def _lanes(self) -> List[Lane]:
        return [(port, vc) for port in Port for vc in range(self.n_vcs)]

    def _desired_output(self, lane: Lane) -> Optional[Port]:
        """Output the head flit of ``lane`` wants, honouring locks."""
        queue = self.inputs[lane[0]][lane[1]]
        if queue.empty:
            return None
        flit = queue.head()
        if flit.kind.opens_route:
            return self.route_fn(self.position, flit.dest)
        # body/tail follow the locked route
        return queue.locked_output

    def arbitrate_and_send(
        self,
        now_cycle: int,
        eject: Callable[[Flit], None],
    ) -> int:
        """One cycle of switching: returns the number of flits moved.

        ``eject`` consumes flits whose output is LOCAL.  At most one
        flit advances per *physical* output port per cycle; round-robin
        over the input lanes resolves conflicts; the wormhole lock is
        per (output, VC) so different VCs interleave.
        """
        moved = 0
        lanes = self._lanes()
        for out_port in Port:
            candidates: List[Lane] = []
            for lane in lanes:
                desired = self._desired_output(lane)
                if desired != out_port:
                    continue
                queue = self.inputs[lane[0]][lane[1]]
                flit = queue.head()
                vc = getattr(flit, "vc", 0)
                if flit.kind.opens_route:
                    owner = self.output_owner[(out_port, vc)]
                    if owner is not None and owner != lane:
                        continue  # VC lane locked by another packet
                elif queue.locked_output != out_port:
                    continue
                candidates.append(lane)

            if not candidates:
                continue
            if len(candidates) > 1:
                self.arbitration_conflicts += 1

            # round-robin pick over the lane list
            start = self._rr[out_port]
            pick: Optional[Lane] = None
            for offset in range(len(lanes)):
                lane = lanes[(start + offset) % len(lanes)]
                if lane in candidates:
                    pick = lane
                    break
            assert pick is not None
            queue = self.inputs[pick[0]][pick[1]]
            flit = queue.head()

            if out_port == Port.LOCAL:
                queue.pop()
                self._finish_flit(queue, pick, out_port, flit)
                eject(flit)
                moved += 1
                self._rr[out_port] = (lanes.index(pick) + 1) % len(lanes)
                continue

            link = self.out_links.get(out_port)
            if link is None:
                raise RuntimeError(
                    f"{self.name}: no link attached on {out_port}"
                )
            if link.try_send(flit, now_cycle):
                queue.pop()
                self._finish_flit(queue, pick, out_port, flit)
                moved += 1
                self._rr[out_port] = (lanes.index(pick) + 1) % len(lanes)
        self.flits_routed += moved
        return moved

    def _finish_flit(self, queue: InputQueue, lane: Lane,
                     out_port: Port, flit: Flit) -> None:
        """Update wormhole locks after a flit advances."""
        vc = getattr(flit, "vc", 0)
        if flit.kind.opens_route:
            self.output_owner[(out_port, vc)] = lane
            queue.locked_output = out_port
        if flit.kind.closes_route:
            self.output_owner[(out_port, vc)] = None
            queue.locked_output = None

    # ------------------------------------------------------------------
    @property
    def buffered_flits(self) -> int:
        return sum(
            len(q.fifo) for queues in self.inputs.values() for q in queues
        )
