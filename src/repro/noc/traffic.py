"""Traffic generators for the NoC experiments.

Standard synthetic patterns driving the mesh experiments:

* uniform random — every node sends to a uniformly random other node;
* transpose — (x, y) sends to (y, x);
* bit-complement — (x, y) sends to (cols-1-x, rows-1-y);
* hotspot — a fraction of traffic converges on one node;
* neighbour — each node sends to its east neighbour (minimal-distance
  background load).

Injection is Bernoulli per node per cycle at ``injection_rate`` flits
per node per cycle (packets of ``packet_length`` flits are injected as
a whole; the rate counts flits).  Generators are deterministic given a
seed — the property tests rely on that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from .flit import Packet
from .topology import Coord, Topology


@dataclass
class TrafficConfig:
    """Parameters of a synthetic traffic run."""

    pattern: str = "uniform"
    injection_rate: float = 0.1  # flits / node / cycle
    packet_length: int = 4  # flits per packet
    hotspot: Optional[Coord] = None
    hotspot_fraction: float = 0.5
    seed: int = 2008  # the paper's year, for determinism
    #: virtual channels: packets are spread round-robin over [0, n_vcs)
    n_vcs: int = 1

    def __post_init__(self) -> None:
        if not (0.0 <= self.injection_rate <= 1.0):
            raise ValueError(
                f"injection rate must be in [0, 1], got {self.injection_rate}"
            )
        if self.packet_length < 1:
            raise ValueError("packets need at least one flit")
        if not (0.0 <= self.hotspot_fraction <= 1.0):
            raise ValueError("hotspot fraction must be in [0, 1]")
        if self.n_vcs < 1:
            raise ValueError("n_vcs must be >= 1")


class TrafficGenerator:
    """Produces packets for every node, cycle by cycle."""

    PATTERNS = ("uniform", "transpose", "bit_complement", "hotspot",
                "neighbor")

    def __init__(self, topology: Topology, config: TrafficConfig) -> None:
        if config.pattern not in self.PATTERNS:
            raise ValueError(
                f"unknown pattern {config.pattern!r}; "
                f"expected one of {self.PATTERNS}"
            )
        if config.pattern == "hotspot" and config.hotspot is None:
            raise ValueError("hotspot pattern needs a hotspot coordinate")
        self.topology = topology
        self.config = config
        self._rng = random.Random(config.seed)
        self.packets_generated = 0

    # ------------------------------------------------------------------
    def _destination(self, src: Coord) -> Optional[Coord]:
        cfg = self.config
        topo = self.topology
        if cfg.pattern == "uniform":
            others = [n for n in topo.nodes() if n != src]
            return self._rng.choice(others) if others else None
        if cfg.pattern == "transpose":
            dest = (src[1], src[0])
            if not topo.in_bounds(dest):
                return None
            return dest if dest != src else None
        if cfg.pattern == "bit_complement":
            dest = (topo.cols - 1 - src[0], topo.rows - 1 - src[1])
            return dest if dest != src else None
        if cfg.pattern == "hotspot":
            assert cfg.hotspot is not None
            if src != cfg.hotspot and self._rng.random() < cfg.hotspot_fraction:
                return cfg.hotspot
            others = [n for n in topo.nodes() if n != src]
            return self._rng.choice(others) if others else None
        if cfg.pattern == "neighbor":
            dest = ((src[0] + 1) % topo.cols, src[1])
            return dest if dest != src else None
        raise AssertionError("unreachable")

    def packets_for_cycle(self, cycle: int) -> List[Packet]:
        """Packets injected network-wide during ``cycle``."""
        cfg = self.config
        packet_probability = cfg.injection_rate / cfg.packet_length
        packets = []
        for src in self.topology.nodes():
            if self._rng.random() >= packet_probability:
                continue
            dest = self._destination(src)
            if dest is None:
                continue
            packet = Packet(
                src=src,
                dest=dest,
                length_flits=cfg.packet_length,
                created_cycle=cycle,
                payload_base=self._rng.getrandbits(16),
                vc=self.packets_generated % cfg.n_vcs,
            )
            packets.append(packet)
            self.packets_generated += 1
        return packets


def message_sequence(
    topology: Topology,
    pairs: List[tuple[Coord, Coord]],
    packet_length: int = 4,
) -> Iterator[Packet]:
    """Explicit packet list for directed tests (src, dest) pairs."""
    for src, dest in pairs:
        if not topology.in_bounds(src) or not topology.in_bounds(dest):
            raise ValueError(f"pair out of bounds: {src} -> {dest}")
        yield Packet(src=src, dest=dest, length_flits=packet_length)
