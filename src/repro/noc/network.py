"""The network simulator: switches + links + traffic, cycle by cycle.

A :class:`Network` instantiates one :class:`~repro.noc.switch.Switch`
per mesh node and one :class:`~repro.link.behavioral.TokenLink` per
directed inter-switch connection, all sharing the behavioural parameters
of the link implementation under study (I1 / I2 / I3).  This is the
system-level payoff of the paper: a mesh wired with 8-wire serialized
asynchronous links instead of 32-wire synchronous ones, at matching
network performance.

Each cycle:

1. links accrue rate credit and deliver matured flits into downstream
   input FIFOs (respecting FIFO space — backpressure);
2. the traffic generator injects new packets into per-node source
   queues; one flit per node per cycle may enter the LOCAL input;
3. every switch arbitrates and forwards at most one flit per output.

The cycle kernel is **activity-driven**: instead of polling every link
twice and sorting every switch each cycle (the seed kernel, preserved
verbatim in :mod:`repro.noc.reference`), :meth:`Network.step` maintains

* ``_active_links`` — links with flits in flight (delivery is a single
  integer comparison against the head flit's ready cycle);
* ``_active_switches`` — switches with buffered flits (empty switches
  are never visited; the sorted node order is hoisted to ``__init__``
  and reused whenever every switch is active);
* ``_pending_sources`` — nodes whose source queues hold flits waiting
  to enter the network (``drain`` no longer rescans every queue).

Rate credit accrues lazily and in batch (see
:meth:`~repro.link.behavioral.TokenLink.accrue_to`), only for links
that might send this cycle.  All of this is decision-identical to the
seed kernel — ``tests/test_kernel_equivalence.py`` pins bit-identical
statistics, link counters and traced routes across routing modes, VC
counts, traffic patterns and mesh sizes; ``python -m repro bench``
measures the resulting speedup.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterable, Optional, Tuple

from ..link.behavioral import BehavioralLinkParams, TokenLink
from ..obs.metrics import REGISTRY as _OBS
from .flit import Flit, Packet
from .stats import NetworkStats
from .switch import Switch
from .topology import (
    Coord,
    Port,
    Topology,
    compile_next_hop,
    west_first_permitted,
)
from .traffic import TrafficConfig, TrafficGenerator


class Network:
    """A mesh NoC with uniform or per-link parameters.

    ``link_params`` sets the default for every directed link;
    ``link_params_for(src, port, dst)`` (if given) may return a
    different :class:`BehavioralLinkParams` for specific links — e.g.
    serialized asynchronous links only on the long cross-die rows, a
    GALS mesh mixing clock domains (the ``gals-mesh`` scenario), or a
    fault-injection campaign degrading chosen links (the
    ``fault-injection`` scenario).  Returning None keeps the default.
    """

    def __init__(
        self,
        topology: Topology,
        link_params: BehavioralLinkParams,
        fifo_depth: int = 4,
        link_params_for: Optional[
            Callable[[Coord, Port, Coord], Optional[BehavioralLinkParams]]
        ] = None,
        n_vcs: int = 1,
        routing: str = "xy",
    ) -> None:
        if routing not in ("xy", "west_first"):
            raise ValueError(
                f"unknown routing {routing!r}; expected 'xy' or 'west_first'"
            )
        self.topology = topology
        self.link_params = link_params
        self.n_vcs = n_vcs
        self.routing = routing
        self.stats = NetworkStats()
        self.cycle = 0

        if routing == "xy":
            # dimension-ordered; the compiled closure skips the
            # full-route construction of topology.next_hop
            route = compile_next_hop(topology)
        else:
            # west-first adaptive: among the permitted productive ports,
            # steer towards the least-occupied outgoing link
            def route(current: Coord, dest: Coord) -> Port:
                ports = west_first_permitted(current, dest, topology)
                if len(ports) == 1:
                    return ports[0]
                return min(
                    ports,
                    key=lambda p: (
                        self.links[(current, p)].occupancy,
                        p.value,  # deterministic tie-break
                    ),
                )

        self.switches: Dict[Coord, Switch] = {
            node: Switch(node, route, fifo_depth, n_vcs)
            for node in topology.nodes()
        }
        #: directed links keyed by (src_node, src_port)
        self.links: Dict[Tuple[Coord, Port], TokenLink] = {}
        self._link_dst: Dict[Tuple[Coord, Port], Tuple[Coord, Port]] = {}
        for src, port, dst in topology.links():
            key = (src, port)
            params = link_params
            if link_params_for is not None:
                override = link_params_for(src, port, dst)
                if override is not None:
                    params = override
            link = TokenLink(params, name=f"link{src}{port.value}")
            self.links[key] = link
            self._link_dst[key] = (dst, port.opposite)
            self.switches[src].out_links[port] = link

        #: per-node source queues of flits waiting to enter the network
        self.source_queues: Dict[Coord, Deque[Flit]] = {
            node: deque() for node in topology.nodes()
        }
        self._packet_meta: Dict[int, Tuple[int, int]] = {}
        #: when True, every head flit records the switches it visits in
        #: ``self.routes[packet_id]`` (debug/observability aid)
        self.trace_routes: bool = False
        self.routes: Dict[int, list[Coord]] = {}

        # ------------------------------------------------------------------
        # activity-driven kernel state
        # ------------------------------------------------------------------
        #: arbitration order, hoisted out of the cycle loop
        self._node_order: Tuple[Coord, ...] = tuple(sorted(self.switches))
        self._n_switches = len(self.switches)
        #: nodes whose switches hold buffered flits
        self._active_switches: set = set()
        #: links with flits in flight, mapped to their precomputed
        #: delivery target (dst switch object, dst node, dst port)
        self._active_links: Dict[TokenLink, Tuple[Switch, Coord, Port]] = {}
        #: nodes with non-empty source queues
        self._pending_sources: set = set()
        # per-switch (link, delivery-target) tuples so phase 3 can
        # accrue credit and (re)activate links without dict lookups
        self._switch_links: Dict[
            Coord, Tuple[Tuple[TokenLink, Tuple[Switch, Coord, Port]], ...]
        ] = {}
        for node, switch in self.switches.items():
            entries = []
            for port, link in switch.out_links.items():
                dst, dport = self._link_dst[(node, port)]
                entries.append((link, (self.switches[dst], dst, dport)))
            self._switch_links[node] = tuple(entries)

    # ------------------------------------------------------------------
    def offer_packet(self, packet: Packet) -> None:
        """Queue a packet for injection at its source node."""
        if packet.src not in self.source_queues:
            raise ValueError(f"unknown source node {packet.src}")
        self._packet_meta[packet.packet_id] = (
            packet.length_flits,
            packet.created_cycle,
        )
        self.source_queues[packet.src].extend(packet.flits())
        self._pending_sources.add(packet.src)

    # ------------------------------------------------------------------
    def step(self, traffic: Optional[TrafficGenerator] = None) -> None:
        """Advance the network by one clock cycle."""
        now = self.cycle
        active_switches = self._active_switches

        # 1. link transport — only links with flits in flight; delivery
        # of a matured head flit is one integer comparison
        active_links = self._active_links
        if active_links:
            for link in list(active_links):
                in_flight = link._in_flight
                ready, flit = in_flight[0]
                if ready > now:
                    continue
                switch, dst_node, dst_port = active_links[link]
                queue = switch.inputs[dst_port][flit.vc]
                if len(queue.fifo) >= queue.depth:
                    continue  # backpressure: retry next cycle
                del in_flight[0]
                link.flits_delivered += 1
                queue.fifo.append(flit)
                switch._buffered += 1
                active_switches.add(dst_node)
                if not in_flight:
                    del active_links[link]

        # 2. traffic injection — only nodes with queued flits
        if traffic is not None:
            for packet in traffic.packets_for_cycle(now):
                self.offer_packet(packet)
        pending = self._pending_sources
        if pending:
            stats = self.stats
            packet_meta = self._packet_meta
            for node in list(pending):
                queue = self.source_queues[node]
                switch = self.switches[node]
                flit = queue[0]
                if switch.can_accept(Port.LOCAL, flit.vc):
                    queue.popleft()
                    length, created = packet_meta[flit.packet_id]
                    stats.record_injection(flit, now, length, created)
                    switch.accept(Port.LOCAL, flit)
                    active_switches.add(node)
                    if not queue:
                        pending.discard(node)

        # 3. switching — only switches with buffered flits, in the same
        # sorted node order the seed kernel used (hoisted to __init__)
        if active_switches:
            if len(active_switches) == self._n_switches:
                order: Iterable[Coord] = self._node_order
            else:
                order = sorted(active_switches)
            switches = self.switches
            switch_links = self._switch_links
            eject = self._eject
            trace = self.trace_routes
            target_accruals = now + 1
            for node in order:
                switch = switches[node]
                links = switch_links[node]
                for link, _info in links:
                    link.accrue_to(target_accruals)
                if trace:
                    self._record_heads(node, switch)
                switch.arbitrate_and_send(now, eject)
                for link, info in links:
                    if link._in_flight:
                        active_links[link] = info
                if switch._buffered == 0:
                    active_switches.discard(node)

        self.cycle = now + 1
        self.stats.cycles = self.cycle

    def _eject(self, flit: Flit) -> None:
        self.stats.record_ejection(flit, self.cycle)

    def _record_heads(self, node: Coord, switch: Switch) -> None:
        """Append ``node`` to the route of every head flit waiting here."""
        for queues in switch.inputs.values():
            for queue in queues:
                if queue.empty:
                    continue
                flit = queue.head()
                if not flit.kind.opens_route:
                    continue
                route = self.routes.setdefault(flit.packet_id, [])
                if not route or route[-1] != node:
                    route.append(node)

    # ------------------------------------------------------------------
    def run(
        self,
        cycles: int,
        traffic: Optional[TrafficGenerator] = None,
    ) -> NetworkStats:
        """Run ``cycles`` cycles of simulation."""
        obs_base = self._obs_totals() if _OBS.enabled else None
        for _ in range(cycles):
            self.step(traffic)
        if obs_base is not None and _OBS.enabled:
            self._obs_publish(obs_base, cycles)
        return self.stats

    def drain(self, max_cycles: int = 100_000) -> NetworkStats:
        """Run without new traffic until every in-flight flit ejects.

        The loop condition reuses the pending-source set instead of
        rescanning every source queue with ``any(...)`` each cycle.
        """
        obs_base = self._obs_totals() if _OBS.enabled else None
        waited = 0
        stats = self.stats
        while stats.in_flight_flits > 0 or self._pending_sources:
            self.step(None)
            waited += 1
            if waited > max_cycles:
                raise TimeoutError(
                    f"network failed to drain within {max_cycles} cycles "
                    f"({stats.in_flight_flits} flits stuck)"
                )
        if obs_base is not None and _OBS.enabled:
            self._obs_publish(obs_base, waited)
        return stats

    # ------------------------------------------------------------------
    # observability: plain-int counters summed at the coarse run/drain
    # boundaries only — the cycle loop never touches the registry
    # ------------------------------------------------------------------
    _OBS_COUNTERS = (
        "noc.arbitration_fast",
        "noc.arbitration_conflicts",
        "noc.flits_routed",
        "noc.credit_accruals",
        "noc.accrual_batches",
        "noc.flits_delivered",
    )

    def _obs_totals(self) -> Tuple[int, ...]:
        """Current sums of the kernel's plain-int counters, in
        :data:`_OBS_COUNTERS` order."""
        arb_fast = arb_conflicts = routed = 0
        for switch in self.switches.values():
            arb_fast += switch.arbitration_fast
            arb_conflicts += switch.arbitration_conflicts
            routed += switch.flits_routed
        accruals = batches = delivered = 0
        for link in self.links.values():
            accruals += link._accruals
            batches += link._accrual_batches
            delivered += link.flits_delivered
        return (arb_fast, arb_conflicts, routed, accruals, batches,
                delivered)

    def _obs_publish(self, base: Tuple[int, ...], cycles: int) -> None:
        """Hand this run's counter deltas and activity levels to the
        registry in one bulk update."""
        for name, before, after in zip(
            self._OBS_COUNTERS, base, self._obs_totals()
        ):
            _OBS.counter(name).inc(after - before)
        _OBS.counter("noc.cycles").inc(cycles)
        for name, value in self.active_component_counts.items():
            _OBS.gauge(f"noc.{name}").set(value)

    # ------------------------------------------------------------------
    @property
    def total_wires(self) -> int:
        """Physical wires across all inter-switch links (cost metric)."""
        return sum(link.params.wire_count for link in self.links.values())

    @property
    def active_component_counts(self) -> Dict[str, int]:
        """Live sizes of the kernel's activity sets (observability)."""
        return {
            "links_in_flight": len(self._active_links),
            "switches_buffered": len(self._active_switches),
            "sources_pending": len(self._pending_sources),
        }

    def link_utilization(self) -> Dict[Tuple[Coord, Port], float]:
        """Flits carried per cycle for every directed link (load map).

        One pass over the link table; ``flits_delivered`` is maintained
        incrementally by the active-link delivery fast path, so this is
        a pure read — no per-link polling.  (Division stays per-link:
        multiplying by a hoisted reciprocal changes the last ulp and
        would break bit-identity with the seed kernel.)
        """
        cycles = self.cycle
        if cycles == 0:
            return {key: 0.0 for key in self.links}
        return {
            key: link.flits_delivered / cycles
            for key, link in self.links.items()
        }


def run_mesh_point(
    topology: Topology,
    link_params: BehavioralLinkParams,
    injection_rate: float,
    pattern: str = "uniform",
    packet_length: int = 4,
    cycles: int = 2000,
    seed: int = 2008,
    drain_max_cycles: int = 300_000,
    fifo_depth: int = 4,
    routing: str = "xy",
    hotspot: Optional[Coord] = None,
    hotspot_fraction: float = 0.5,
    n_vcs: int = 1,
    link_params_for: Optional[
        Callable[[Coord, Port, Coord], Optional[BehavioralLinkParams]]
    ] = None,
) -> Dict[str, float]:
    """One fully-drained traffic run at a single operating point.

    The common mesh/link setup that the examples, the design-space
    benches and the ``mesh-design-space`` scenario all share: build a
    fresh :class:`Network`, drive seeded synthetic traffic for
    ``cycles`` cycles, drain every in-flight flit, and report the
    steady metrics.  Packet ids are reset first so repeated calls are
    bit-for-bit reproducible within one process.  ``n_vcs`` and
    ``link_params_for`` thread through to :class:`Network` (and the
    traffic generator) so the VC, GALS and fault-injection scenarios
    can reuse this entry point.
    """
    from .flit import reset_packet_ids

    reset_packet_ids()
    if pattern == "hotspot" and hotspot is None:
        # centre of the mesh: the worst-case convergence point
        hotspot = (topology.cols // 2, topology.rows // 2)
    network = Network(
        topology, link_params, fifo_depth=fifo_depth, routing=routing,
        n_vcs=n_vcs, link_params_for=link_params_for,
    )
    traffic = TrafficGenerator(
        topology,
        TrafficConfig(
            pattern=pattern,
            injection_rate=injection_rate,
            packet_length=packet_length,
            seed=seed,
            hotspot=hotspot,
            hotspot_fraction=hotspot_fraction,
            n_vcs=n_vcs,
        ),
    )
    network.run(cycles, traffic)
    network.drain(max_cycles=drain_max_cycles)
    stats = network.stats
    return {
        "offered_rate": injection_rate,
        "throughput": stats.throughput_flits_per_node_cycle(
            topology.n_nodes
        ),
        "mean_latency": stats.mean_packet_latency,
        "p99_latency": stats.p99_packet_latency,
        "flits_injected": stats.flits_injected,
        "flits_ejected": stats.flits_ejected,
        "packets_ejected": stats.packets_ejected,
        "total_wires": network.total_wires,
    }


def latency_vs_load(
    topology: Topology,
    link_params: BehavioralLinkParams,
    injection_rates: Iterable[float],
    pattern: str = "uniform",
    packet_length: int = 4,
    warmup_cycles: int = 500,
    measure_cycles: int = 2000,
    seed: int = 2008,
) -> list[dict[str, float]]:
    """Mean packet latency and accepted throughput per offered load.

    The standard NoC load-latency sweep; the mesh example and the
    design-space benches build on it.
    """
    results = []
    for rate in injection_rates:
        network = Network(topology, link_params)
        config = TrafficConfig(
            pattern=pattern,
            injection_rate=rate,
            packet_length=packet_length,
            seed=seed,
        )
        traffic = TrafficGenerator(topology, config)
        network.run(warmup_cycles + measure_cycles, traffic)
        stats = network.stats
        results.append(
            {
                "offered_rate": rate,
                "throughput": stats.throughput_flits_per_node_cycle(
                    topology.n_nodes
                ),
                "mean_latency": stats.mean_packet_latency,
                "p99_latency": stats.p99_packet_latency,
                "packets": float(stats.packets_ejected),
            }
        )
    return results
