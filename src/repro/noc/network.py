"""The network simulator: switches + links + traffic, cycle by cycle.

A :class:`Network` instantiates one :class:`~repro.noc.switch.Switch`
per mesh node and one :class:`~repro.link.behavioral.TokenLink` per
directed inter-switch connection, all sharing the behavioural parameters
of the link implementation under study (I1 / I2 / I3).  This is the
system-level payoff of the paper: a mesh wired with 8-wire serialized
asynchronous links instead of 32-wire synchronous ones, at matching
network performance.

Each cycle:

1. links accrue rate credit and deliver matured flits into downstream
   input FIFOs (respecting FIFO space — backpressure);
2. the traffic generator injects new packets into per-node source
   queues; one flit per node per cycle may enter the LOCAL input;
3. every switch arbitrates and forwards at most one flit per output.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterable, Optional, Tuple

from ..link.behavioral import BehavioralLinkParams, TokenLink
from .flit import Flit, Packet
from .stats import NetworkStats
from .switch import Switch
from .topology import Coord, Port, Topology, next_hop, west_first_permitted
from .traffic import TrafficConfig, TrafficGenerator


class Network:
    """A mesh NoC with uniform or per-link parameters.

    ``link_params`` sets the default for every directed link;
    ``link_params_for(src, port, dst)`` (if given) may return a
    different :class:`BehavioralLinkParams` for specific links — e.g.
    serialized asynchronous links only on the long cross-die rows, or a
    GALS mesh mixing clock domains.  Returning None keeps the default.
    """

    def __init__(
        self,
        topology: Topology,
        link_params: BehavioralLinkParams,
        fifo_depth: int = 4,
        link_params_for: Optional[
            Callable[[Coord, Port, Coord], Optional[BehavioralLinkParams]]
        ] = None,
        n_vcs: int = 1,
        routing: str = "xy",
    ) -> None:
        if routing not in ("xy", "west_first"):
            raise ValueError(
                f"unknown routing {routing!r}; expected 'xy' or 'west_first'"
            )
        self.topology = topology
        self.link_params = link_params
        self.n_vcs = n_vcs
        self.routing = routing
        self.stats = NetworkStats()
        self.cycle = 0

        if routing == "xy":

            def route(current: Coord, dest: Coord) -> Port:
                return next_hop(current, dest, topology)

        else:
            # west-first adaptive: among the permitted productive ports,
            # steer towards the least-occupied outgoing link
            def route(current: Coord, dest: Coord) -> Port:
                ports = west_first_permitted(current, dest, topology)
                if len(ports) == 1:
                    return ports[0]
                return min(
                    ports,
                    key=lambda p: (
                        self.links[(current, p)].occupancy,
                        p.value,  # deterministic tie-break
                    ),
                )

        self.switches: Dict[Coord, Switch] = {
            node: Switch(node, route, fifo_depth, n_vcs)
            for node in topology.nodes()
        }
        #: directed links keyed by (src_node, src_port)
        self.links: Dict[Tuple[Coord, Port], TokenLink] = {}
        self._link_dst: Dict[Tuple[Coord, Port], Tuple[Coord, Port]] = {}
        for src, port, dst in topology.links():
            key = (src, port)
            params = link_params
            if link_params_for is not None:
                override = link_params_for(src, port, dst)
                if override is not None:
                    params = override
            link = TokenLink(params, name=f"link{src}{port.value}")
            self.links[key] = link
            self._link_dst[key] = (dst, port.opposite)
            self.switches[src].out_links[port] = link

        #: per-node source queues of flits waiting to enter the network
        self.source_queues: Dict[Coord, Deque[Flit]] = {
            node: deque() for node in topology.nodes()
        }
        self._packet_meta: Dict[int, Tuple[int, int]] = {}
        #: when True, every head flit records the switches it visits in
        #: ``self.routes[packet_id]`` (debug/observability aid)
        self.trace_routes: bool = False
        self.routes: Dict[int, list[Coord]] = {}

    # ------------------------------------------------------------------
    def offer_packet(self, packet: Packet) -> None:
        """Queue a packet for injection at its source node."""
        if packet.src not in self.source_queues:
            raise ValueError(f"unknown source node {packet.src}")
        self._packet_meta[packet.packet_id] = (
            packet.length_flits,
            packet.created_cycle,
        )
        self.source_queues[packet.src].extend(packet.flits())

    # ------------------------------------------------------------------
    def step(self, traffic: Optional[TrafficGenerator] = None) -> None:
        """Advance the network by one clock cycle."""
        now = self.cycle

        # 1. link transport
        for key, link in self.links.items():
            link.begin_cycle()
        for key, link in self.links.items():
            if not link.deliverable(now):
                continue
            dst_node, dst_port = self._link_dst[key]
            switch = self.switches[dst_node]
            flit = link.peek()
            if switch.can_accept(dst_port, getattr(flit, "vc", 0)):
                switch.accept(dst_port, link.pop(now))

        # 2. traffic injection
        if traffic is not None:
            for packet in traffic.packets_for_cycle(now):
                self.offer_packet(packet)
        for node, queue in self.source_queues.items():
            if not queue:
                continue
            switch = self.switches[node]
            if switch.can_accept(Port.LOCAL, getattr(queue[0], "vc", 0)):
                flit = queue.popleft()
                length, created = self._packet_meta[flit.packet_id]
                self.stats.record_injection(flit, now, length, created)
                switch.accept(Port.LOCAL, flit)

        # 3. switching
        for node in sorted(self.switches):
            switch = self.switches[node]
            if self.trace_routes:
                self._record_heads(node, switch)
            switch.arbitrate_and_send(now, self._eject)

        self.cycle += 1
        self.stats.cycles = self.cycle

    def _eject(self, flit: Flit) -> None:
        self.stats.record_ejection(flit, self.cycle)

    def _record_heads(self, node: Coord, switch: Switch) -> None:
        """Append ``node`` to the route of every head flit waiting here."""
        for queues in switch.inputs.values():
            for queue in queues:
                if queue.empty:
                    continue
                flit = queue.head()
                if not flit.kind.opens_route:
                    continue
                route = self.routes.setdefault(flit.packet_id, [])
                if not route or route[-1] != node:
                    route.append(node)

    # ------------------------------------------------------------------
    def run(
        self,
        cycles: int,
        traffic: Optional[TrafficGenerator] = None,
    ) -> NetworkStats:
        """Run ``cycles`` cycles of simulation."""
        for _ in range(cycles):
            self.step(traffic)
        return self.stats

    def drain(self, max_cycles: int = 100_000) -> NetworkStats:
        """Run without new traffic until every in-flight flit ejects."""
        waited = 0
        while self.stats.in_flight_flits > 0 or any(
            q for q in self.source_queues.values()
        ):
            self.step(None)
            waited += 1
            if waited > max_cycles:
                raise TimeoutError(
                    f"network failed to drain within {max_cycles} cycles "
                    f"({self.stats.in_flight_flits} flits stuck)"
                )
        return self.stats

    # ------------------------------------------------------------------
    @property
    def total_wires(self) -> int:
        """Physical wires across all inter-switch links (cost metric)."""
        return sum(link.params.wire_count for link in self.links.values())

    def link_utilization(self) -> Dict[Tuple[Coord, Port], float]:
        """Flits carried per cycle for every directed link (load map)."""
        if self.cycle == 0:
            return {key: 0.0 for key in self.links}
        return {
            key: link.flits_delivered / self.cycle
            for key, link in self.links.items()
        }


def run_mesh_point(
    topology: Topology,
    link_params: BehavioralLinkParams,
    injection_rate: float,
    pattern: str = "uniform",
    packet_length: int = 4,
    cycles: int = 2000,
    seed: int = 2008,
    drain_max_cycles: int = 300_000,
    fifo_depth: int = 4,
    routing: str = "xy",
    hotspot: Optional[Coord] = None,
    hotspot_fraction: float = 0.5,
) -> Dict[str, float]:
    """One fully-drained traffic run at a single operating point.

    The common mesh/link setup that the examples, the design-space
    benches and the ``mesh-design-space`` scenario all share: build a
    fresh :class:`Network`, drive seeded synthetic traffic for
    ``cycles`` cycles, drain every in-flight flit, and report the
    steady metrics.  Packet ids are reset first so repeated calls are
    bit-for-bit reproducible within one process.
    """
    from .flit import reset_packet_ids

    reset_packet_ids()
    if pattern == "hotspot" and hotspot is None:
        # centre of the mesh: the worst-case convergence point
        hotspot = (topology.cols // 2, topology.rows // 2)
    network = Network(
        topology, link_params, fifo_depth=fifo_depth, routing=routing
    )
    traffic = TrafficGenerator(
        topology,
        TrafficConfig(
            pattern=pattern,
            injection_rate=injection_rate,
            packet_length=packet_length,
            seed=seed,
            hotspot=hotspot,
            hotspot_fraction=hotspot_fraction,
        ),
    )
    network.run(cycles, traffic)
    network.drain(max_cycles=drain_max_cycles)
    stats = network.stats
    return {
        "offered_rate": injection_rate,
        "throughput": stats.throughput_flits_per_node_cycle(
            topology.n_nodes
        ),
        "mean_latency": stats.mean_packet_latency,
        "p99_latency": stats.p99_packet_latency,
        "flits_injected": stats.flits_injected,
        "flits_ejected": stats.flits_ejected,
        "packets_ejected": stats.packets_ejected,
        "total_wires": network.total_wires,
    }


def latency_vs_load(
    topology: Topology,
    link_params: BehavioralLinkParams,
    injection_rates: Iterable[float],
    pattern: str = "uniform",
    packet_length: int = 4,
    warmup_cycles: int = 500,
    measure_cycles: int = 2000,
    seed: int = 2008,
) -> list[dict[str, float]]:
    """Mean packet latency and accepted throughput per offered load.

    The standard NoC load-latency sweep; the mesh example and the
    design-space benches build on it.
    """
    results = []
    for rate in injection_rates:
        network = Network(topology, link_params)
        config = TrafficConfig(
            pattern=pattern,
            injection_rate=rate,
            packet_length=packet_length,
            seed=seed,
        )
        traffic = TrafficGenerator(topology, config)
        network.run(warmup_cycles + measure_cycles, traffic)
        stats = network.stats
        results.append(
            {
                "offered_rate": rate,
                "throughput": stats.throughput_flits_per_node_cycle(
                    topology.n_nodes
                ),
                "mean_latency": stats.mean_packet_latency,
                "p99_latency": stats.p99_packet_latency,
                "packets": float(stats.packets_ejected),
            }
        )
    return results
