"""Flits and packets — the data units of the NoC substrate.

The paper's links carry 32-bit flits between switches; packets are
sequences of flits (head / body / tail) routed by wormhole switching.
Timestamps ride on each flit so the statistics module can compute
injection-to-ejection latency without global bookkeeping.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Optional, Tuple

Coord = Tuple[int, int]

_packet_ids = itertools.count()


class FlitKind(Enum):
    """Position of a flit within its packet.

    ``opens_route`` / ``closes_route`` are plain member attributes
    (assigned right after the class body) rather than properties: the
    switch arbitration loop reads them once per lane per output port
    per cycle, and a concrete bool avoids a descriptor call plus tuple
    construction on that hot path.
    """

    HEAD = "head"
    BODY = "body"
    TAIL = "tail"
    #: single-flit packet: simultaneously head and tail
    HEAD_TAIL = "head_tail"


FlitKind.HEAD.opens_route = True
FlitKind.BODY.opens_route = False
FlitKind.TAIL.opens_route = False
FlitKind.HEAD_TAIL.opens_route = True

FlitKind.HEAD.closes_route = False
FlitKind.BODY.closes_route = False
FlitKind.TAIL.closes_route = True
FlitKind.HEAD_TAIL.closes_route = True


@dataclass
class Flit:
    """One 32-bit unit travelling the network."""

    packet_id: int
    kind: FlitKind
    src: Coord
    dest: Coord
    seq: int = 0
    payload: int = 0
    #: virtual channel, assigned at injection and kept end to end
    vc: int = 0
    injected_cycle: int = -1
    ejected_cycle: int = -1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Flit(p{self.packet_id}.{self.seq} {self.kind.value} "
            f"{self.src}->{self.dest})"
        )


@dataclass
class Packet:
    """A multi-flit message."""

    src: Coord
    dest: Coord
    length_flits: int
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    created_cycle: int = 0
    payload_base: int = 0
    #: virtual channel all of this packet's flits travel on
    vc: int = 0

    def __post_init__(self) -> None:
        if self.length_flits < 1:
            raise ValueError(
                f"packet needs at least one flit, got {self.length_flits}"
            )

    def flits(self) -> Iterator[Flit]:
        """Generate the packet's flits in wire order."""
        n = self.length_flits
        for seq in range(n):
            if n == 1:
                kind = FlitKind.HEAD_TAIL
            elif seq == 0:
                kind = FlitKind.HEAD
            elif seq == n - 1:
                kind = FlitKind.TAIL
            else:
                kind = FlitKind.BODY
            yield Flit(
                packet_id=self.packet_id,
                kind=kind,
                src=self.src,
                dest=self.dest,
                seq=seq,
                payload=(self.payload_base + seq) & 0xFFFFFFFF,
                vc=self.vc,
            )


def reset_packet_ids(start: int = 0) -> None:
    """Reset the global packet-id counter (test isolation)."""
    global _packet_ids
    _packet_ids = itertools.count(start)
