"""Synchronous NoC substrate: flits, switches, topologies, traffic.

The paper's links live between the switches of a synchronous NoC; this
package provides that context so the links can be evaluated inside full
networks (mesh latency/throughput under synthetic traffic), not just on
an isolated point-to-point testbench.
"""

from .flit import Coord, Flit, FlitKind, Packet, reset_packet_ids
from .topology import Port, Topology, next_hop, west_first_permitted, xy_route
from .switch import InputQueue, Switch
from .traffic import TrafficConfig, TrafficGenerator, message_sequence
from .network import Network, latency_vs_load, run_mesh_point
from .stats import NetworkStats

__all__ = [
    "Coord",
    "Flit",
    "FlitKind",
    "Packet",
    "reset_packet_ids",
    "Port",
    "Topology",
    "next_hop",
    "west_first_permitted",
    "xy_route",
    "InputQueue",
    "Switch",
    "TrafficConfig",
    "TrafficGenerator",
    "message_sequence",
    "Network",
    "latency_vs_load",
    "run_mesh_point",
    "NetworkStats",
]
