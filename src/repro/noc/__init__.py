"""Synchronous NoC substrate: flits, switches, topologies, traffic.

The paper's links live between the switches of a synchronous NoC; this
package provides that context so the links can be evaluated inside full
networks (mesh latency/throughput under synthetic traffic), not just on
an isolated point-to-point testbench.

Flits carry a concrete ``vc`` field (virtual channel, assigned at
injection, default 0) — the cycle kernel reads ``flit.vc`` directly on
its hot path, so anything offering flits to a :class:`Network` or
:class:`Switch` must provide real :class:`Flit` instances rather than
duck-typed stand-ins without ``vc``.

The cycle kernel itself is activity-driven (see
:mod:`repro.noc.network`); the original full-scan kernel is preserved
in :mod:`repro.noc.reference` as the differential-testing oracle and
the baseline that ``python -m repro bench`` measures speedups against.
"""

from .flit import Coord, Flit, FlitKind, Packet, reset_packet_ids
from .topology import (
    Port,
    Topology,
    compile_next_hop,
    next_hop,
    west_first_permitted,
    xy_route,
)
from .switch import InputQueue, Switch
from .traffic import TrafficConfig, TrafficGenerator, message_sequence
from .network import Network, latency_vs_load, run_mesh_point
from .stats import NetworkStats

__all__ = [
    "Coord",
    "Flit",
    "FlitKind",
    "Packet",
    "reset_packet_ids",
    "Port",
    "Topology",
    "compile_next_hop",
    "next_hop",
    "west_first_permitted",
    "xy_route",
    "InputQueue",
    "Switch",
    "TrafficConfig",
    "TrafficGenerator",
    "message_sequence",
    "Network",
    "latency_vs_load",
    "run_mesh_point",
    "NetworkStats",
]
