"""Frozen seed-semantics NoC cycle kernel (differential-testing oracle).

The optimized kernel in :mod:`repro.noc.network`, :mod:`repro.noc.switch`
and :mod:`repro.link.behavioral` is *activity-driven*: it only touches
links with flits in flight, switches with buffered flits, and source
queues with pending injections.  This module preserves the original
straightforward kernel — every link polled twice per cycle, every switch
sorted and arbitrated per cycle, linear round-robin scans — exactly as
the seed implemented it.

It exists for two reasons:

* **equivalence gating** — ``tests/test_kernel_equivalence.py`` runs
  both kernels over a grid of routing modes × VC counts × traffic
  patterns × mesh sizes and asserts bit-identical statistics, per-link
  counters and traced routes.  Any divergence is a kernel bug.
* **speedup measurement** — ``python -m repro bench`` times both
  kernels on the same workload and reports cycles/sec and the ratio;
  the committed ``benchmarks/baseline_bench.json`` pins that ratio so
  CI catches performance regressions without depending on absolute
  machine speed.

Do not optimize this module; its value is that it stays simple and
obviously equal to the seed semantics.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..link.behavioral import BehavioralLinkParams
from .flit import Flit, Packet
from .topology import Coord, Port, Topology, next_hop, west_first_permitted
from .traffic import TrafficConfig, TrafficGenerator

#: an input lane: (input port, virtual channel)
Lane = Tuple[Port, int]


class ReferenceNetworkStats:
    """Seed :class:`~repro.noc.stats.NetworkStats` recorders, verbatim.

    The optimized kernel's stats recorders were rewritten on the hot
    path; the oracle keeps its own frozen copy so a recorder bug cannot
    hide by being shared between both kernels.
    """

    def __init__(self) -> None:
        self.cycles = 0
        self.flits_injected = 0
        self.flits_ejected = 0
        self.packets_ejected = 0
        self.packet_latencies: List[int] = []
        self._packet_progress: Dict[int, int] = {}
        self._packet_lengths: Dict[int, int] = {}
        self._packet_created: Dict[int, int] = {}

    def record_injection(self, flit: Flit, cycle: int,
                         packet_length: int, created_cycle: int) -> None:
        flit.injected_cycle = cycle
        self.flits_injected += 1
        self._packet_lengths.setdefault(flit.packet_id, packet_length)
        self._packet_created.setdefault(flit.packet_id, created_cycle)

    def record_ejection(self, flit: Flit, cycle: int) -> None:
        flit.ejected_cycle = cycle
        self.flits_ejected += 1
        pid = flit.packet_id
        seen = self._packet_progress.get(pid, 0) + 1
        self._packet_progress[pid] = seen
        if seen == self._packet_lengths.get(pid, -1):
            self.packets_ejected += 1
            created = self._packet_created.get(pid, flit.injected_cycle)
            self.packet_latencies.append(cycle - created)
            del self._packet_progress[pid]
            del self._packet_lengths[pid]
            del self._packet_created[pid]

    @property
    def mean_packet_latency(self) -> float:
        if not self.packet_latencies:
            return math.nan
        return sum(self.packet_latencies) / len(self.packet_latencies)

    @property
    def p99_packet_latency(self) -> float:
        if not self.packet_latencies:
            return math.nan
        ordered = sorted(self.packet_latencies)
        idx = min(len(ordered) - 1, int(0.99 * len(ordered)))
        return float(ordered[idx])

    def throughput_flits_per_node_cycle(self, n_nodes: int) -> float:
        if self.cycles == 0 or n_nodes == 0:
            return 0.0
        return self.flits_ejected / (self.cycles * n_nodes)

    @property
    def in_flight_flits(self) -> int:
        return self.flits_injected - self.flits_ejected

    def summary(self) -> Dict[str, float]:
        return {
            "cycles": float(self.cycles),
            "flits_injected": float(self.flits_injected),
            "flits_ejected": float(self.flits_ejected),
            "packets_ejected": float(self.packets_ejected),
            "mean_packet_latency": self.mean_packet_latency,
            "p99_packet_latency": self.p99_packet_latency,
        }


class ReferenceTokenLink:
    """Seed :class:`~repro.link.behavioral.TokenLink` semantics."""

    def __init__(self, params: BehavioralLinkParams,
                 name: str = "link") -> None:
        self.params = params
        self.name = name
        self._in_flight: list[tuple[int, object]] = []
        self._rate_credit = 0.0
        self.flits_sent = 0
        self.flits_delivered = 0

    def begin_cycle(self) -> None:
        self._rate_credit = min(
            self._rate_credit + self.params.rate_flits_per_cycle,
            1.0 + self.params.rate_flits_per_cycle,
        )

    def can_send(self) -> bool:
        return (
            self._rate_credit >= 1.0
            and len(self._in_flight) < self.params.capacity_flits
        )

    def try_send(self, flit: object, now_cycle: int) -> bool:
        if not self.can_send():
            return False
        self._rate_credit -= 1.0
        self._in_flight.append(
            (now_cycle + self.params.latency_cycles, flit)
        )
        self.flits_sent += 1
        return True

    def deliverable(self, now_cycle: int) -> bool:
        return bool(self._in_flight) and self._in_flight[0][0] <= now_cycle

    def peek(self) -> object:
        return self._in_flight[0][1]

    def pop(self, now_cycle: int) -> object:
        if not self.deliverable(now_cycle):
            raise RuntimeError(f"{self.name}: no deliverable flit")
        _ready, flit = self._in_flight.pop(0)
        self.flits_delivered += 1
        return flit

    @property
    def occupancy(self) -> int:
        return len(self._in_flight)


class _ReferenceInputQueue:
    """Seed input-lane FIFO with wormhole route state."""

    def __init__(self, depth: int) -> None:
        self.depth = depth
        self.fifo: Deque[Flit] = deque()
        self.locked_output: Optional[Port] = None

    @property
    def full(self) -> bool:
        return len(self.fifo) >= self.depth

    @property
    def empty(self) -> bool:
        return not self.fifo

    def push(self, flit: Flit) -> None:
        if self.full:
            raise RuntimeError("push into full input queue")
        self.fifo.append(flit)

    def head(self) -> Flit:
        return self.fifo[0]

    def pop(self) -> Flit:
        return self.fifo.popleft()


class ReferenceSwitch:
    """Seed :class:`~repro.noc.switch.Switch` arbitration, verbatim.

    Rebuilds the lane list per call, rescans every lane for every
    output port, and updates the round-robin pointer with a linear
    ``list.index`` — exactly the costs the optimized switch removes.
    """

    def __init__(
        self,
        position: Coord,
        route_fn: Callable[[Coord, Coord], Port],
        fifo_depth: int = 4,
        n_vcs: int = 1,
        name: Optional[str] = None,
    ) -> None:
        self.position = position
        self.route_fn = route_fn
        self.name = name or f"refsw{position}"
        self.n_vcs = n_vcs
        self.inputs: Dict[Port, List[_ReferenceInputQueue]] = {
            port: [_ReferenceInputQueue(fifo_depth) for _ in range(n_vcs)]
            for port in Port
        }
        self.output_owner: Dict[Tuple[Port, int], Optional[Lane]] = {
            (port, vc): None for port in Port for vc in range(n_vcs)
        }
        self._rr: Dict[Port, int] = {port: 0 for port in Port}
        self.out_links: Dict[Port, object] = {}
        self.flits_routed = 0
        self.arbitration_conflicts = 0

    def queue(self, port: Port, vc: int = 0) -> _ReferenceInputQueue:
        return self.inputs[port][vc]

    def can_accept(self, port: Port, vc: int = 0) -> bool:
        return not self.inputs[port][vc].full

    def accept(self, port: Port, flit: Flit) -> None:
        vc = getattr(flit, "vc", 0)
        if not (0 <= vc < self.n_vcs):
            raise ValueError(
                f"{self.name}: flit carries VC {vc} but switch has "
                f"{self.n_vcs} VC(s)"
            )
        self.inputs[port][vc].push(flit)

    def _lanes(self) -> List[Lane]:
        return [(port, vc) for port in Port for vc in range(self.n_vcs)]

    def _desired_output(self, lane: Lane) -> Optional[Port]:
        queue = self.inputs[lane[0]][lane[1]]
        if queue.empty:
            return None
        flit = queue.head()
        if flit.kind.opens_route:
            return self.route_fn(self.position, flit.dest)
        return queue.locked_output

    def arbitrate_and_send(
        self,
        now_cycle: int,
        eject: Callable[[Flit], None],
    ) -> int:
        moved = 0
        lanes = self._lanes()
        for out_port in Port:
            candidates: List[Lane] = []
            for lane in lanes:
                desired = self._desired_output(lane)
                if desired != out_port:
                    continue
                queue = self.inputs[lane[0]][lane[1]]
                flit = queue.head()
                vc = getattr(flit, "vc", 0)
                if flit.kind.opens_route:
                    owner = self.output_owner[(out_port, vc)]
                    if owner is not None and owner != lane:
                        continue
                elif queue.locked_output != out_port:
                    continue
                candidates.append(lane)

            if not candidates:
                continue
            if len(candidates) > 1:
                self.arbitration_conflicts += 1

            start = self._rr[out_port]
            pick: Optional[Lane] = None
            for offset in range(len(lanes)):
                lane = lanes[(start + offset) % len(lanes)]
                if lane in candidates:
                    pick = lane
                    break
            assert pick is not None
            queue = self.inputs[pick[0]][pick[1]]
            flit = queue.head()

            if out_port == Port.LOCAL:
                queue.pop()
                self._finish_flit(queue, pick, out_port, flit)
                eject(flit)
                moved += 1
                self._rr[out_port] = (lanes.index(pick) + 1) % len(lanes)
                continue

            link = self.out_links.get(out_port)
            if link is None:
                raise RuntimeError(
                    f"{self.name}: no link attached on {out_port}"
                )
            if link.try_send(flit, now_cycle):
                queue.pop()
                self._finish_flit(queue, pick, out_port, flit)
                moved += 1
                self._rr[out_port] = (lanes.index(pick) + 1) % len(lanes)
        self.flits_routed += moved
        return moved

    def _finish_flit(self, queue: _ReferenceInputQueue, lane: Lane,
                     out_port: Port, flit: Flit) -> None:
        vc = getattr(flit, "vc", 0)
        if flit.kind.opens_route:
            self.output_owner[(out_port, vc)] = lane
            queue.locked_output = out_port
        if flit.kind.closes_route:
            self.output_owner[(out_port, vc)] = None
            queue.locked_output = None

    @property
    def buffered_flits(self) -> int:
        return sum(
            len(q.fifo) for queues in self.inputs.values() for q in queues
        )


class ReferenceNetwork:
    """Seed :class:`~repro.noc.network.Network` cycle loop, verbatim.

    Every cycle iterates every link twice (credit accrual, then
    delivery polling), scans every source queue, and ``sorted()``-s the
    full switch dict before arbitration — the full-mesh work the
    optimized kernel replaces with active sets.
    """

    def __init__(
        self,
        topology: Topology,
        link_params: BehavioralLinkParams,
        fifo_depth: int = 4,
        link_params_for: Optional[
            Callable[[Coord, Port, Coord], Optional[BehavioralLinkParams]]
        ] = None,
        n_vcs: int = 1,
        routing: str = "xy",
    ) -> None:
        if routing not in ("xy", "west_first"):
            raise ValueError(
                f"unknown routing {routing!r}; expected 'xy' or 'west_first'"
            )
        self.topology = topology
        self.link_params = link_params
        self.n_vcs = n_vcs
        self.routing = routing
        self.stats = ReferenceNetworkStats()
        self.cycle = 0

        if routing == "xy":

            def route(current: Coord, dest: Coord) -> Port:
                return next_hop(current, dest, topology)

        else:

            def route(current: Coord, dest: Coord) -> Port:
                ports = west_first_permitted(current, dest, topology)
                if len(ports) == 1:
                    return ports[0]
                return min(
                    ports,
                    key=lambda p: (
                        self.links[(current, p)].occupancy,
                        p.value,
                    ),
                )

        self.switches: Dict[Coord, ReferenceSwitch] = {
            node: ReferenceSwitch(node, route, fifo_depth, n_vcs)
            for node in topology.nodes()
        }
        self.links: Dict[Tuple[Coord, Port], ReferenceTokenLink] = {}
        self._link_dst: Dict[Tuple[Coord, Port], Tuple[Coord, Port]] = {}
        for src, port, dst in topology.links():
            key = (src, port)
            params = link_params
            if link_params_for is not None:
                override = link_params_for(src, port, dst)
                if override is not None:
                    params = override
            link = ReferenceTokenLink(params, name=f"link{src}{port.value}")
            self.links[key] = link
            self._link_dst[key] = (dst, port.opposite)
            self.switches[src].out_links[port] = link

        self.source_queues: Dict[Coord, Deque[Flit]] = {
            node: deque() for node in topology.nodes()
        }
        self._packet_meta: Dict[int, Tuple[int, int]] = {}
        self.trace_routes: bool = False
        self.routes: Dict[int, list[Coord]] = {}

    # ------------------------------------------------------------------
    def offer_packet(self, packet: Packet) -> None:
        if packet.src not in self.source_queues:
            raise ValueError(f"unknown source node {packet.src}")
        self._packet_meta[packet.packet_id] = (
            packet.length_flits,
            packet.created_cycle,
        )
        self.source_queues[packet.src].extend(packet.flits())

    # ------------------------------------------------------------------
    def step(self, traffic: Optional[TrafficGenerator] = None) -> None:
        now = self.cycle

        # 1. link transport
        for key, link in self.links.items():
            link.begin_cycle()
        for key, link in self.links.items():
            if not link.deliverable(now):
                continue
            dst_node, dst_port = self._link_dst[key]
            switch = self.switches[dst_node]
            flit = link.peek()
            if switch.can_accept(dst_port, getattr(flit, "vc", 0)):
                switch.accept(dst_port, link.pop(now))

        # 2. traffic injection
        if traffic is not None:
            for packet in traffic.packets_for_cycle(now):
                self.offer_packet(packet)
        for node, queue in self.source_queues.items():
            if not queue:
                continue
            switch = self.switches[node]
            if switch.can_accept(Port.LOCAL, getattr(queue[0], "vc", 0)):
                flit = queue.popleft()
                length, created = self._packet_meta[flit.packet_id]
                self.stats.record_injection(flit, now, length, created)
                switch.accept(Port.LOCAL, flit)

        # 3. switching
        for node in sorted(self.switches):
            switch = self.switches[node]
            if self.trace_routes:
                self._record_heads(node, switch)
            switch.arbitrate_and_send(now, self._eject)

        self.cycle += 1
        self.stats.cycles = self.cycle

    def _eject(self, flit: Flit) -> None:
        self.stats.record_ejection(flit, self.cycle)

    def _record_heads(self, node: Coord, switch: ReferenceSwitch) -> None:
        for queues in switch.inputs.values():
            for queue in queues:
                if queue.empty:
                    continue
                flit = queue.head()
                if not flit.kind.opens_route:
                    continue
                route = self.routes.setdefault(flit.packet_id, [])
                if not route or route[-1] != node:
                    route.append(node)

    # ------------------------------------------------------------------
    def run(
        self,
        cycles: int,
        traffic: Optional[TrafficGenerator] = None,
    ) -> ReferenceNetworkStats:
        for _ in range(cycles):
            self.step(traffic)
        return self.stats

    def drain(self, max_cycles: int = 100_000) -> ReferenceNetworkStats:
        waited = 0
        while self.stats.in_flight_flits > 0 or any(
            q for q in self.source_queues.values()
        ):
            self.step(None)
            waited += 1
            if waited > max_cycles:
                raise TimeoutError(
                    f"network failed to drain within {max_cycles} cycles "
                    f"({self.stats.in_flight_flits} flits stuck)"
                )
        return self.stats

    # ------------------------------------------------------------------
    @property
    def total_wires(self) -> int:
        return sum(link.params.wire_count for link in self.links.values())

    def link_utilization(self) -> Dict[Tuple[Coord, Port], float]:
        if self.cycle == 0:
            return {key: 0.0 for key in self.links}
        return {
            key: link.flits_delivered / self.cycle
            for key, link in self.links.items()
        }


def reference_mesh_point(
    topology: Topology,
    link_params: BehavioralLinkParams,
    injection_rate: float,
    pattern: str = "uniform",
    packet_length: int = 4,
    cycles: int = 2000,
    seed: int = 2008,
    drain_max_cycles: int = 300_000,
    fifo_depth: int = 4,
    routing: str = "xy",
    hotspot: Optional[Coord] = None,
    hotspot_fraction: float = 0.5,
    n_vcs: int = 1,
    link_params_for: Optional[
        Callable[[Coord, Port, Coord], Optional[BehavioralLinkParams]]
    ] = None,
) -> Dict[str, float]:
    """Seed-semantics twin of :func:`repro.noc.network.run_mesh_point`."""
    from .flit import reset_packet_ids

    reset_packet_ids()
    if pattern == "hotspot" and hotspot is None:
        hotspot = (topology.cols // 2, topology.rows // 2)
    network = ReferenceNetwork(
        topology, link_params, fifo_depth=fifo_depth, routing=routing,
        n_vcs=n_vcs, link_params_for=link_params_for,
    )
    traffic = TrafficGenerator(
        topology,
        TrafficConfig(
            pattern=pattern,
            injection_rate=injection_rate,
            packet_length=packet_length,
            seed=seed,
            hotspot=hotspot,
            hotspot_fraction=hotspot_fraction,
            n_vcs=n_vcs,
        ),
    )
    network.run(cycles, traffic)
    network.drain(max_cycles=drain_max_cycles)
    stats = network.stats
    return {
        "offered_rate": injection_rate,
        "throughput": stats.throughput_flits_per_node_cycle(
            topology.n_nodes
        ),
        "mean_latency": stats.mean_packet_latency,
        "p99_latency": stats.p99_packet_latency,
        "flits_injected": stats.flits_injected,
        "flits_ejected": stats.flits_ejected,
        "packets_ejected": stats.packets_ejected,
        "total_wires": network.total_wires,
    }
