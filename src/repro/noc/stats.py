"""Latency/throughput statistics for NoC runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import math

from .flit import Flit


@dataclass
class NetworkStats:
    """Accumulated over one simulation run."""

    cycles: int = 0
    flits_injected: int = 0
    flits_ejected: int = 0
    packets_ejected: int = 0
    packet_latencies: List[int] = field(default_factory=list)
    #: per-packet bookkeeping: flits seen so far
    _packet_progress: Dict[int, int] = field(default_factory=dict)
    _packet_lengths: Dict[int, int] = field(default_factory=dict)
    _packet_created: Dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Both recorders run once per flit on the network's cycle hot path;
    # they are written as straight-line dict operations (no method
    # dispatch, one lookup per dict) so recording stays cheap even at
    # saturation.
    def record_injection(self, flit: Flit, cycle: int,
                         packet_length: int, created_cycle: int) -> None:
        flit.injected_cycle = cycle
        self.flits_injected += 1
        pid = flit.packet_id
        if pid not in self._packet_lengths:
            self._packet_lengths[pid] = packet_length
            self._packet_created[pid] = created_cycle

    def record_ejection(self, flit: Flit, cycle: int) -> None:
        flit.ejected_cycle = cycle
        self.flits_ejected += 1
        pid = flit.packet_id
        progress = self._packet_progress
        seen = progress.get(pid, 0) + 1
        if seen != self._packet_lengths.get(pid, -1):
            progress[pid] = seen
            return
        self.packets_ejected += 1
        created = self._packet_created.get(pid, flit.injected_cycle)
        self.packet_latencies.append(cycle - created)
        # free the bookkeeping
        progress.pop(pid, None)
        del self._packet_lengths[pid]
        del self._packet_created[pid]

    # ------------------------------------------------------------------
    @property
    def mean_packet_latency(self) -> float:
        """Mean creation-to-ejection latency, cycles."""
        if not self.packet_latencies:
            return math.nan
        return sum(self.packet_latencies) / len(self.packet_latencies)

    @property
    def p99_packet_latency(self) -> float:
        if not self.packet_latencies:
            return math.nan
        ordered = sorted(self.packet_latencies)
        idx = min(len(ordered) - 1, int(0.99 * len(ordered)))
        return float(ordered[idx])

    def throughput_flits_per_node_cycle(self, n_nodes: int) -> float:
        """Accepted traffic: ejected flits per node per cycle."""
        if self.cycles == 0 or n_nodes == 0:
            return 0.0
        return self.flits_ejected / (self.cycles * n_nodes)

    @property
    def in_flight_flits(self) -> int:
        """Flits injected but not yet ejected."""
        return self.flits_injected - self.flits_ejected

    def summary(self) -> Dict[str, float]:
        return {
            "cycles": float(self.cycles),
            "flits_injected": float(self.flits_injected),
            "flits_ejected": float(self.flits_ejected),
            "packets_ejected": float(self.packets_ejected),
            "mean_packet_latency": self.mean_packet_latency,
            "p99_packet_latency": self.p99_packet_latency,
        }
