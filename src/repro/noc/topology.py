"""Mesh/torus topologies for the NoC substrate.

Switch positions are (x, y) coordinates; ports are compass directions
plus LOCAL for the attached core.  A topology is a description object —
:class:`~repro.noc.network.Network` instantiates switches and links from
it.  ``networkx`` views are provided for analysis (path lengths,
bisection cuts) and the design-space examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, List, Tuple

import networkx as nx

Coord = Tuple[int, int]


class Port(Enum):
    """Switch ports: four neighbours plus the local core."""

    NORTH = "N"
    SOUTH = "S"
    EAST = "E"
    WEST = "W"
    LOCAL = "L"

    @property
    def opposite(self) -> "Port":
        return {
            Port.NORTH: Port.SOUTH,
            Port.SOUTH: Port.NORTH,
            Port.EAST: Port.WEST,
            Port.WEST: Port.EAST,
            Port.LOCAL: Port.LOCAL,
        }[self]


_DELTAS: Dict[Port, Tuple[int, int]] = {
    Port.NORTH: (0, 1),
    Port.SOUTH: (0, -1),
    Port.EAST: (1, 0),
    Port.WEST: (-1, 0),
}


@dataclass(frozen=True)
class Topology:
    """A rectangular mesh (optionally wrapped into a torus)."""

    cols: int
    rows: int
    torus: bool = False

    def __post_init__(self) -> None:
        if self.cols < 1 or self.rows < 1:
            raise ValueError(
                f"mesh must be at least 1x1, got {self.cols}x{self.rows}"
            )

    @property
    def n_nodes(self) -> int:
        return self.cols * self.rows

    def nodes(self) -> Iterator[Coord]:
        for y in range(self.rows):
            for x in range(self.cols):
                yield (x, y)

    def in_bounds(self, node: Coord) -> bool:
        x, y = node
        return 0 <= x < self.cols and 0 <= y < self.rows

    def neighbor(self, node: Coord, port: Port) -> Coord | None:
        """Neighbouring node through ``port``, or None at a mesh edge."""
        if port == Port.LOCAL:
            return None
        dx, dy = _DELTAS[port]
        x, y = node[0] + dx, node[1] + dy
        if self.torus:
            return (x % self.cols, y % self.rows)
        if 0 <= x < self.cols and 0 <= y < self.rows:
            return (x, y)
        return None

    def links(self) -> Iterator[Tuple[Coord, Port, Coord]]:
        """All directed switch-to-switch links (src, src_port, dst)."""
        for node in self.nodes():
            for port in (Port.NORTH, Port.SOUTH, Port.EAST, Port.WEST):
                dst = self.neighbor(node, port)
                if dst is not None:
                    yield (node, port, dst)

    @property
    def n_directed_links(self) -> int:
        return sum(1 for _ in self.links())

    def to_networkx(self) -> "nx.DiGraph":
        """Directed graph view of the topology."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self.nodes())
        for src, port, dst in self.links():
            graph.add_edge(src, dst, port=port.value)
        return graph

    def average_hop_count(self) -> float:
        """Mean shortest-path hops over all src≠dst pairs."""
        graph = self.to_networkx()
        lengths = dict(nx.all_pairs_shortest_path_length(graph))
        total, pairs = 0, 0
        for src, dsts in lengths.items():
            for dst, hops in dsts.items():
                if src != dst:
                    total += hops
                    pairs += 1
        return total / pairs if pairs else 0.0


def xy_route(src: Coord, dest: Coord, topology: Topology) -> List[Port]:
    """Dimension-ordered (X then Y) route — deadlock-free on a mesh."""
    if not topology.in_bounds(src) or not topology.in_bounds(dest):
        raise ValueError(f"route endpoints out of bounds: {src} -> {dest}")
    route: List[Port] = []
    x, y = src
    dx, dy = dest[0] - x, dest[1] - y
    if topology.torus:
        # shortest wrap-aware direction
        if abs(dx) > topology.cols // 2:
            dx = dx - topology.cols if dx > 0 else dx + topology.cols
        if abs(dy) > topology.rows // 2:
            dy = dy - topology.rows if dy > 0 else dy + topology.rows
    route.extend([Port.EAST if dx > 0 else Port.WEST] * abs(dx))
    route.extend([Port.NORTH if dy > 0 else Port.SOUTH] * abs(dy))
    return route


def next_hop(current: Coord, dest: Coord, topology: Topology) -> Port:
    """The next output port on the XY route from ``current`` to ``dest``."""
    if current == dest:
        return Port.LOCAL
    route = xy_route(current, dest, topology)
    return route[0]


def compile_next_hop(topology: Topology):
    """A fast ``(current, dest) -> Port`` closure for one topology.

    Decision-identical to :func:`next_hop` (see the equivalence test in
    ``tests/test_noc_topology.py``) but skips the bounds validation and
    the full-route list that :func:`xy_route` builds — the network cycle
    kernel calls this once per buffered head flit per output port per
    cycle, where materialising the whole remaining path is pure waste.
    """
    east, west = Port.EAST, Port.WEST
    north, south = Port.NORTH, Port.SOUTH
    local = Port.LOCAL

    if not topology.torus:

        def fast_next_hop(current: Coord, dest: Coord) -> Port:
            dx = dest[0] - current[0]
            if dx > 0:
                return east
            if dx < 0:
                return west
            dy = dest[1] - current[1]
            if dy > 0:
                return north
            if dy < 0:
                return south
            return local

        return fast_next_hop

    cols, rows = topology.cols, topology.rows
    half_cols, half_rows = cols // 2, rows // 2

    def fast_next_hop_torus(current: Coord, dest: Coord) -> Port:
        dx = dest[0] - current[0]
        if dx > half_cols:
            dx -= cols
        elif -dx > half_cols:
            dx += cols
        if dx > 0:
            return east
        if dx < 0:
            return west
        dy = dest[1] - current[1]
        if dy > half_rows:
            dy -= rows
        elif -dy > half_rows:
            dy += rows
        if dy > 0:
            return north
        if dy < 0:
            return south
        return local

    return fast_next_hop_torus


def west_first_permitted(
    current: Coord, dest: Coord, topology: Topology
) -> List[Port]:
    """Output ports the *west-first* turn model permits (Glass/Ni).

    The rule: all westward hops must be taken first (while moving west
    no turns to other directions are allowed); once the destination is
    not to the west, the packet may route adaptively among the
    productive E/N/S directions.  Prohibiting the {N,S,E}→W turns makes
    the resulting channel-dependency graph acyclic, so wormhole routing
    is deadlock-free with a single virtual channel — while still leaving
    room to steer around congestion.

    Returns the list of permitted *productive* ports (LOCAL when the
    packet has arrived).  Only defined for meshes (no wraparound).
    """
    if topology.torus:
        raise ValueError("west-first turn model requires a mesh, not a torus")
    if not topology.in_bounds(current) or not topology.in_bounds(dest):
        raise ValueError(f"route endpoints out of bounds: {current}->{dest}")
    if current == dest:
        return [Port.LOCAL]
    dx = dest[0] - current[0]
    dy = dest[1] - current[1]
    if dx < 0:
        return [Port.WEST]
    ports: List[Port] = []
    if dx > 0:
        ports.append(Port.EAST)
    if dy > 0:
        ports.append(Port.NORTH)
    elif dy < 0:
        ports.append(Port.SOUTH)
    return ports
