"""Static design verification: rule-based lint over Component trees.

Validate the *model* without running it (VOODB's argument, see
PAPERS.md): walk a scenario's design tree — and, where the design is
elaborated and compilable, its relaxed-mode extracted netlist — and
report structural problems as :class:`~repro.lint.findings.Finding`
records long before any simulator or sweep fabric is constructed.

Entry points:

* :func:`~repro.lint.engine.lint_design` — findings for one design;
* :func:`~repro.lint.engine.lint_registry` — every registered
  scenario plus the waiver audit (the ``repro lint --all`` payload);
* :func:`~repro.lint.engine.gate` — the ``--fail-on`` decision shared
  by the CLI and the ``sweep --lint`` pre-flight.
"""

from .engine import (  # noqa: F401
    WAIVER_AUDIT,
    LintReport,
    gate,
    lint_design,
    lint_registry,
    lint_scenario,
)
from .findings import (  # noqa: F401
    SEVERITIES,
    Finding,
    severity_rank,
    worst_severity,
)
from .output import format_json, format_sarif, format_text  # noqa: F401
from .rules import (  # noqa: F401
    LintContext,
    Rule,
    default_rules,
    rule_table,
)
from .waivers import (  # noqa: F401
    Waiver,
    WaiverError,
    apply_waivers,
    load_waivers,
    parse_waivers,
    unused_waiver_findings,
)
