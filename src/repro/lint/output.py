"""Render lint reports as text, JSON, or SARIF 2.1.0.

SARIF results use *logical* locations (the dotted design path) — there
is no source file to point at; the design is an object tree.  Waived
findings are emitted with a ``suppressions`` entry carrying the
waiver's justification, which is how SARIF viewers grey them out
without losing the record.
"""

from __future__ import annotations

import json
from typing import List, Sequence

from .engine import LintReport
from .rules import rule_table

_SARIF_LEVEL = {"info": "note", "warning": "warning", "error": "error"}


def format_text(reports: Sequence[LintReport]) -> str:
    lines: List[str] = []
    total = {"error": 0, "warning": 0, "info": 0, "waived": 0}
    for report in reports:
        if report.skipped:
            lines.append(f"{report.scenario}: skipped ({report.skipped})")
            continue
        counts = report.counts()
        for key in total:
            total[key] += counts.get(key, 0)
        if not report.findings:
            lines.append(f"{report.scenario}: clean")
            continue
        summary = ", ".join(
            f"{n} {key}" for key, n in sorted(counts.items())
        )
        lines.append(f"{report.scenario}: {summary}")
        for finding in report.findings:
            lines.append(f"  {finding.render()}")
    lines.append(
        "total: "
        + ", ".join(f"{n} {key}" for key, n in sorted(total.items()))
    )
    return "\n".join(lines)


def format_json(reports: Sequence[LintReport]) -> str:
    doc = {
        "reports": [
            {
                "scenario": report.scenario,
                **({"skipped": report.skipped} if report.skipped else {}),
                "findings": [f.to_dict() for f in report.findings],
            }
            for report in reports
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def format_sarif(reports: Sequence[LintReport]) -> str:
    results = []
    for report in reports:
        for finding in report.findings:
            result = {
                "ruleId": finding.rule_id,
                "level": _SARIF_LEVEL[finding.severity],
                "message": {"text": finding.message},
                "locations": [{
                    "logicalLocations": [{
                        "fullyQualifiedName": finding.path,
                        "kind": "member",
                    }],
                }],
                "properties": {"scenario": report.scenario},
            }
            if finding.span:
                result["relatedLocations"] = [
                    {
                        "logicalLocations": [
                            {"fullyQualifiedName": p, "kind": "member"}
                        ],
                        "message": {"text": "involved"},
                    }
                    for p in finding.span
                ]
            if finding.waived:
                result["suppressions"] = [{
                    "kind": "external",
                    "justification": finding.waiver_reason,
                }]
            results.append(result)
    doc = {
        "version": "2.1.0",
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://example.invalid/repro-lint",
                    "rules": [
                        {
                            "id": rule_id,
                            "shortDescription": {"text": description},
                            "defaultConfiguration": {
                                "level": _SARIF_LEVEL[severity],
                            },
                        }
                        for rule_id, severity, description
                        in rule_table()
                    ],
                },
            },
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
