"""Waiver files: intentional constructs the lint gate must not flag.

Format is a TOML subset parsed here directly (``tomllib`` only exists
on Python 3.11+ and the CI matrix runs 3.10; the subset keeps the file
readable by any TOML tool)::

    # lint-waivers.toml
    [[waiver]]
    rule = "dangling-output"        # fnmatch glob over rule ids
    path = "bench.osc.*"            # fnmatch glob over finding paths
    scenario = "*"                  # optional, default "*"
    reason = "scope taps are observe-only"   # REQUIRED, non-empty

Semantics: a finding is waived (kept in the report, excluded from
``--fail-on`` severity accounting) when any waiver matches its rule id,
its path and the scenario being linted.  A waiver that matches nothing
across the whole run is itself reported as an ``unused-waiver``
warning — stale waivers are how real regressions sneak past a gate.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Iterable, List

from .findings import Finding
from .rules import UNUSED_WAIVER_RULE_ID


class WaiverError(ValueError):
    """Malformed waiver file; the message names file and line."""


_TABLE_RE = re.compile(r"^\[\[\s*waiver\s*\]\]$")
_KEY_RE = re.compile(r'^(rule|path|scenario|reason)\s*=\s*"((?:[^"\\]|\\.)*)"$')
_KEYS = ("rule", "path", "scenario", "reason")


@dataclass
class Waiver:
    """One waiver entry; ``used`` is set by :func:`apply_waivers`."""

    rule: str
    path: str
    reason: str
    scenario: str = "*"
    source: str = ""
    used: bool = field(default=False, compare=False)

    def matches(self, finding: Finding, scenario: str) -> bool:
        return (
            fnmatchcase(finding.rule_id, self.rule)
            and fnmatchcase(finding.path, self.path)
            and fnmatchcase(scenario, self.scenario)
        )

    def describe(self) -> str:
        scope = "" if self.scenario == "*" else f" [{self.scenario}]"
        return f"{self.rule} @ {self.path}{scope}"


def _unescape(raw: str) -> str:
    return raw.replace('\\"', '"').replace("\\\\", "\\")


def parse_waivers(text: str, source: str = "<waivers>") -> List[Waiver]:
    """Parse waiver-file text into :class:`Waiver` entries."""
    waivers: List[Waiver] = []
    current: dict = {}
    current_line = 0

    def close(line_no: int) -> None:
        if not current and not waivers and line_no == 0:
            return
        if current_line == 0:
            return
        missing = [k for k in ("rule", "path") if k not in current]
        if missing:
            raise WaiverError(
                f"{source}:{current_line}: waiver is missing "
                f"{', '.join(missing)}"
            )
        if not current.get("reason", "").strip():
            raise WaiverError(
                f"{source}:{current_line}: waiver for "
                f"{current['rule']!r} @ {current['path']!r} has no "
                f"reason; every waiver must say why the construct is "
                f"intentional"
            )
        waivers.append(Waiver(
            rule=current["rule"],
            path=current["path"],
            reason=current["reason"].strip(),
            scenario=current.get("scenario", "*"),
            source=f"{source}:{current_line}",
        ))

    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if _TABLE_RE.match(line):
            close(line_no)
            current = {}
            current_line = line_no
            continue
        match = _KEY_RE.match(line)
        if match is None:
            raise WaiverError(
                f"{source}:{line_no}: cannot parse {line!r}; expected "
                f"[[waiver]] or one of "
                + ", ".join(f'{k} = "..."' for k in _KEYS)
            )
        if current_line == 0:
            raise WaiverError(
                f"{source}:{line_no}: {match.group(1)!r} appears "
                f"before any [[waiver]] table"
            )
        key, value = match.group(1), _unescape(match.group(2))
        if key in current:
            raise WaiverError(
                f"{source}:{line_no}: duplicate key {key!r} in one "
                f"waiver"
            )
        current[key] = value
    close(len(text.splitlines()) + 1)
    return waivers


def load_waivers(path) -> List[Waiver]:
    """Read and parse a waiver file from disk."""
    p = Path(path)
    try:
        text = p.read_text()
    except OSError as exc:
        raise WaiverError(f"cannot read waiver file {p}: {exc}") from exc
    return parse_waivers(text, source=str(p))


def apply_waivers(findings: Iterable[Finding], waivers: List[Waiver],
                  scenario: str = "") -> List[Finding]:
    """Mark waived findings in place; returns the same findings.

    Waiver ``used`` flags accumulate across calls, so one waiver list
    can be applied scenario by scenario and audited once at the end
    with :func:`unused_waiver_findings`.
    """
    out: List[Finding] = []
    for finding in findings:
        for waiver in waivers:
            if waiver.matches(finding, scenario):
                waiver.used = True
                finding.waived = True
                finding.waiver_reason = waiver.reason
                break
        out.append(finding)
    return out


def unused_waiver_findings(waivers: List[Waiver]) -> List[Finding]:
    """One warning finding per waiver that never matched anything."""
    return [
        Finding(
            rule_id=UNUSED_WAIVER_RULE_ID,
            severity="warning",
            path=waiver.path,
            message=(
                f"waiver {waiver.describe()} ({waiver.source or 'inline'}) "
                f"matched no finding; remove it or fix the glob"
            ),
        )
        for waiver in waivers
        if not waiver.used
    ]
