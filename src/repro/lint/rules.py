"""The rule framework and the built-in rule pack.

A rule is a small object with an ``id``, a default ``severity``, a
``description`` and a ``check(ctx)`` generator yielding
:class:`~repro.lint.findings.Finding` objects.  The shared
:class:`LintContext` is built once per design and carries every view a
rule might want:

* the instance **tree** (always available — even a structural, never
  elaborated design like the GALS mesh has one);
* the **mesh** view when the root is a
  :class:`~repro.design.mesh.MeshDesign` (clock domains, links);
* the relaxed-mode **netlist** when the design is elaborated — the
  compiled extractor runs with a ``problems`` collector, so constructs
  the backend rejects become lint records instead of hard errors and
  the rest of the circuit is still analyzable.

No rule ever constructs a simulator or advances time: everything here
is static, which is what makes ``repro lint --all`` cheap enough to be
a pre-flight gate for million-point sweeps.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..design.component import Component
from ..design.design import Design
from ..design.mesh import MeshDesign
from ..graphutil import feedback_cycles, topological_levels
from .findings import Finding

#: span entries beyond this are elided (keeps findings readable and
#: SARIF payloads bounded on pathological designs)
_SPAN_CAP = 12


def _cap(paths: Iterable[str]) -> Tuple[str, ...]:
    out = tuple(paths)
    if len(out) <= _SPAN_CAP:
        return out
    return out[:_SPAN_CAP] + (f"... {len(out) - _SPAN_CAP} more",)


class LintContext:
    """Everything the rule pack may inspect, built once per design."""

    def __init__(self, root: Component,
                 design: Optional[Design] = None,
                 scenario: str = "") -> None:
        self.root = root
        self.design = design
        self.scenario = scenario
        self.mesh: Optional[MeshDesign] = (
            root if isinstance(root, MeshDesign) else None
        )
        self.elaborated = bool(
            design.is_elaborated if design is not None
            else root._elaborated
        )
        self.watched: Tuple[str, ...] = tuple(
            getattr(design, "watched", ()) or ()
        )
        self.netlist = None
        self.problems: List[Dict[str, object]] = []
        if self.elaborated and self.mesh is None:
            from ..compiled.netlist import extract

            try:
                self.netlist = extract(root, problems=self.problems)
            except Exception as exc:  # defensive: never block linting
                self.netlist = None
                self.problems.append({
                    "kind": "extract-failed", "path": root.path,
                    "message": f"netlist extraction failed: {exc}",
                })

    # ------------------------------------------------------------------
    @classmethod
    def for_design(cls, obj, scenario: str = "") -> "LintContext":
        """Build a context from a :class:`Design` or a bare tree root."""
        if isinstance(obj, Design):
            return cls(obj.top, design=obj, scenario=scenario)
        if isinstance(obj, Component):
            return cls(obj, scenario=scenario)
        raise TypeError(
            f"lint needs a Design or Component, got {type(obj).__name__}"
        )

    @property
    def partial_netlist(self) -> bool:
        """True when extraction skipped subtrees (observability rules
        would report false positives on the holes)."""
        return any(
            p["kind"] in ("unsupported", "extract-failed")
            for p in self.problems
        )

    def net_readers(self) -> Dict[int, List[str]]:
        """Net index → paths of every element reading it."""
        readers: Dict[int, List[str]] = {}
        netlist = self.netlist
        for element in [*netlist.gates, *netlist.states]:
            for sig in element.reads():
                readers.setdefault(netlist.idx(sig), []).append(
                    element.path
                )
        return readers


class Rule:
    """One static check; subclasses set the class attributes."""

    id: str = ""
    severity: str = "warning"
    description: str = ""

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, path: str, message: str,
                span: Iterable[str] = (),
                severity: Optional[str] = None) -> Finding:
        return Finding(
            rule_id=self.id,
            severity=severity or self.severity,
            path=path,
            message=message,
            span=_cap(span),
        )


# ----------------------------------------------------------------------
# tree rules (work on any design, elaborated or structural)
# ----------------------------------------------------------------------
def _declared_groups(root: Component):
    """Distinct declarative net groups: (group, ports-in-walk-order)."""
    groups: Dict[int, Tuple[object, List]] = {}
    for _path, comp in root.walk():
        for port in comp._ports.values():
            if port.group is None:
                continue  # eager port, net built by construction
            group = port.group.root()
            entry = groups.get(id(group))
            if entry is None:
                groups[id(group)] = (group, [port])
            else:
                entry[1].append(port)
    return groups.values()


class UndrivenInputRule(Rule):
    id = "undriven-input"
    severity = "error"
    description = (
        "a declarative input port resolves to a net with no driver, "
        "no feeding input above it and no bound net — the component "
        "reads a floating wire"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for path, comp in ctx.root.walk():
            if comp is ctx.root:
                continue  # the root's 'in' ports are external pins
            for port in comp._ports.values():
                if port.direction != "in" or port.group is None:
                    continue
                group = port.group.root()
                if (group.driver is None and group.feed is None
                        and group.bound is None):
                    yield self.finding(
                        port.path,
                        f"input port of {path!r} is undriven: nothing "
                        f"connects into it and no net is bound",
                    )


class DanglingOutputRule(Rule):
    id = "dangling-output"
    severity = "warning"
    description = (
        "a declarative output port is connected to nothing — the value "
        "it drives is computed and then dropped"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for path, comp in ctx.root.walk():
            if comp is ctx.root:
                continue  # the root's 'out' ports are external pins
            for port in comp._ports.values():
                if port.direction != "out" or port.group is None:
                    continue
                group = port.group.root()
                if len(group.ports) == 1 and group.bound is None:
                    yield self.finding(
                        port.path,
                        f"output port of {path!r} drives no sink",
                    )


class WidthMismatchRule(Rule):
    id = "width-mismatch"
    severity = "error"
    description = (
        "ports sharing one net disagree on bus width (connect() checks "
        "pairs at wiring time; this re-checks whole net groups and "
        "bound nets, catching merges that bypassed connect())"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for group, ports in _declared_groups(ctx.root):
            widths = {port.width for port in ports}
            anchor = group.driver or ports[0]
            if len(widths) > 1:
                yield self.finding(
                    anchor.path,
                    f"net group mixes port widths "
                    f"{sorted(widths)}: "
                    + "; ".join(p.describe() for p in ports[:4]),
                    span=[p.path for p in ports],
                )
                continue
            bound = group.bound
            if bound is not None:
                net_width = len(getattr(bound, "signals", ())) or 1
                if net_width != anchor.width:
                    yield self.finding(
                        anchor.path,
                        f"bound net "
                        f"{getattr(bound, 'name', bound)!r} has width "
                        f"{net_width} but the port group expects "
                        f"{anchor.width}",
                        span=[p.path for p in ports],
                    )


# ----------------------------------------------------------------------
# netlist rules (elaborated, non-mesh designs)
# ----------------------------------------------------------------------
class MultiDriverRule(Rule):
    id = "multi-driver"
    severity = "error"
    description = (
        "one net has two structural drivers in the extracted netlist "
        "(last writer wins in event simulation — electrically it is "
        "contention)"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for problem in ctx.problems:
            if problem["kind"] != "multi-driver":
                continue
            yield self.finding(
                str(problem["path"]),
                str(problem["message"]),
                span=[str(d) for d in problem.get("drivers", ())],
            )


class CombLoopRule(Rule):
    id = "comb-loop"
    severity = "error"
    description = (
        "combinational feedback not broken by a state element; event "
        "kernels resolve it by physical delay, the compiled backend "
        "rejects it — every independent loop is reported"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.netlist is None or not ctx.netlist.gates:
            return
        from ..compiled.levelize import _gate_deps

        deps = _gate_deps(ctx.netlist)
        _levels, leftover = topological_levels(deps)
        if not leftover:
            return
        for cycle in feedback_cycles(deps, leftover):
            paths = [ctx.netlist.gates[gi].path for gi in cycle]
            loop = " -> ".join(paths + [paths[0]])
            yield self.finding(
                paths[0],
                f"combinational loop ({len(paths)} gates): {loop}; "
                f"break the feedback with a state element",
                span=paths,
            )


class DeadConeRule(Rule):
    id = "dead-cone"
    severity = "warning"
    description = (
        "logic whose output reaches no watched net and no output port "
        "of the design root — simulated work nothing can observe"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        netlist = ctx.netlist
        if netlist is None or ctx.partial_netlist:
            # holes in the netlist (rejected subtrees) would make
            # everything feeding them look dead; stay silent instead
            return
        roots: Set[int] = set()
        for name in ctx.watched:
            idx = netlist.names.get(name)
            if idx is not None:
                roots.add(idx)
        for port in ctx.root._ports.values():
            if port.direction == "in":
                continue
            try:
                net = port.net
            except Exception:
                continue
            for sig in getattr(net, "signals", None) or (net,):
                idx = netlist.index.get(id(sig))
                if idx is not None:
                    roots.add(idx)
        if not roots:
            return  # no observability anchor: nothing to judge against
        by_path = {
            e.path: e for e in [*netlist.gates, *netlist.states]
        }
        live: Set[str] = set()
        frontier = list(roots)
        seen_nets = set(frontier)
        while frontier:
            idx = frontier.pop()
            path = netlist.driver_of.get(idx)
            element = by_path.get(path) if path is not None else None
            if element is None or element.path in live:
                continue
            live.add(element.path)
            for sig in element.reads():
                sidx = netlist.idx(sig)
                if sidx not in seen_nets:
                    seen_nets.add(sidx)
                    frontier.append(sidx)
        dead = [
            e for e in [*netlist.gates, *netlist.states]
            if e.path not in live
        ]
        if not dead:
            return
        dead_paths = {e.path for e in dead}
        read_by_dead: Set[int] = set()
        for element in dead:
            for sig in element.reads():
                read_by_dead.add(netlist.idx(sig))
        for element in dead:
            drives_dead = any(
                netlist.idx(sig) in read_by_dead
                for sig in element.drives()
            )
            if drives_dead:
                continue  # interior of the cone; report its heads only
            upstream = len(dead_paths) - 1
            extra = (
                f" (plus {upstream} element(s) feeding only dead logic)"
                if upstream else ""
            )
            yield self.finding(
                element.path,
                f"output reaches no watched net or root output port"
                f"{extra}",
                span=sorted(dead_paths),
            )


class HighFanoutRule(Rule):
    id = "high-fanout"
    severity = "warning"
    description = (
        "a net read by more elements than the threshold (default 16); "
        "in an async implementation such a net needs buffering that "
        "the behavioural model does not charge for"
    )

    def __init__(self, threshold: int = 16) -> None:
        self.threshold = threshold

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.netlist is None:
            return
        for idx, readers in sorted(ctx.net_readers().items()):
            if len(readers) <= self.threshold:
                continue
            name = ctx.netlist.nets[idx].name
            yield self.finding(
                name,
                f"net is read by {len(readers)} elements "
                f"(threshold {self.threshold})",
                span=readers,
            )


class LatchFeedbackRule(Rule):
    id = "latch-feedback"
    severity = "warning"
    description = (
        "a level-sensitive element's output feeds back to its own "
        "inputs through combinational logic only; the event kernels "
        "settle this by delay, the compiled backend's two-phase update "
        "may disagree with them cycle-for-cycle"
    )

    #: state kinds that are transparent while enabled (edge-triggered
    #: kinds — dff/regbus/flagsync — and the self-timed ringosc break
    #: feedback by construction)
    LEVEL_SENSITIVE = frozenset(
        {"dlatch", "celement", "davidcell", "onehotmux"}
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        netlist = ctx.netlist
        if netlist is None:
            return
        gates_reading: Dict[int, List[int]] = {}
        for gi, gate in enumerate(netlist.gates):
            for sig in gate.inputs:
                gates_reading.setdefault(
                    netlist.idx(sig), []
                ).append(gi)
        for state in netlist.states:
            if state.kind not in self.LEVEL_SENSITIVE:
                continue
            targets = {netlist.idx(sig) for sig in state.reads()}
            frontier = [netlist.idx(sig) for sig in state.drives()]
            seen: Set[int] = set(frontier)
            via: List[str] = []
            hit = None
            while frontier and hit is None:
                idx = frontier.pop()
                if idx in targets:
                    hit = netlist.nets[idx].name
                    break
                for gi in gates_reading.get(idx, ()):
                    out_idx = netlist.idx(netlist.gates[gi].output)
                    if out_idx not in seen:
                        seen.add(out_idx)
                        via.append(netlist.gates[gi].path)
                        frontier.append(out_idx)
            if hit is not None:
                yield self.finding(
                    state.path,
                    f"{state.kind} output feeds back to its own input "
                    f"net {hit!r} through combinational logic only",
                    span=via,
                )


class CompileRejectedRule(Rule):
    id = "compile-rejected"
    severity = "info"
    description = (
        "constructs only the event kernels can simulate (serializer "
        "processes, callback-driven registers, …) — fine for event "
        "simulation, invisible to the bit-parallel compiled backend; "
        "malformed gates (wrong arity) escalate to error"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for problem in ctx.problems:
            kind = problem["kind"]
            if kind == "multi-driver":
                continue  # the multi-driver rule owns those
            severity = "error" if kind == "bad-arity" else "info"
            yield self.finding(
                str(problem["path"]),
                str(problem["message"]),
                severity=severity,
            )


# ----------------------------------------------------------------------
# mesh rules (structural NoC designs)
# ----------------------------------------------------------------------
class CdcRule(Rule):
    id = "cdc-unsync"
    severity = "error"
    description = (
        "a mesh link crosses clock domains with no synchronizing link "
        "parameters attached — both kernels would simulate a "
        "metastability-free fiction"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.mesh is None:
            return
        for link in ctx.mesh.cross_domain_links():
            if link.params is not None:
                continue
            src_dom = ctx.mesh.node_at(link.src).domain
            dst_dom = ctx.mesh.node_at(link.dst).domain
            yield self.finding(
                link.path,
                f"link crosses clock domains "
                f"({src_dom!r} -> {dst_dom!r}) without synchronizer "
                f"link parameters; attach params via degrade()/"
                f"link.params or keep both endpoints in one domain",
            )


#: rule id reserved by the waiver layer (documented with the pack)
UNUSED_WAIVER_RULE_ID = "unused-waiver"


def default_rules() -> List[Rule]:
    """A fresh instance of every built-in rule, in evaluation order."""
    return [
        UndrivenInputRule(),
        DanglingOutputRule(),
        WidthMismatchRule(),
        MultiDriverRule(),
        CombLoopRule(),
        CdcRule(),
        DeadConeRule(),
        HighFanoutRule(),
        LatchFeedbackRule(),
        CompileRejectedRule(),
    ]


def rule_table() -> List[Tuple[str, str, str]]:
    """(id, default severity, description) for docs and SARIF."""
    rows = [
        (rule.id, rule.severity, rule.description)
        for rule in default_rules()
    ]
    rows.append((
        UNUSED_WAIVER_RULE_ID, "warning",
        "a waiver in the waiver file matched no finding in this run — "
        "stale waivers hide future regressions",
    ))
    return rows
