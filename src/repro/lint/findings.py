"""Lint findings: the one record every rule, formatter and gate shares.

A :class:`Finding` is deliberately tiny and serializable — ``rule_id``
names the rule that fired, ``severity`` is one of :data:`SEVERITIES`,
``path`` is the dotted design path the finding anchors to (the same
path :meth:`repro.design.Design.find` accepts, so a finding can be
pasted straight into ``force``/``inspect``), ``message`` explains, and
``span`` lists every other path involved (the members of a loop, the
two drivers of a contested net, …).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

#: recognised severities, mildest first (rank = index)
SEVERITIES: Tuple[str, ...] = ("info", "warning", "error")


def severity_rank(severity: str) -> int:
    """Numeric rank of a severity (higher = worse); unknown raises."""
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        raise ValueError(
            f"unknown severity {severity!r}; expected one of "
            f"{', '.join(SEVERITIES)}"
        ) from None


@dataclass
class Finding:
    """One diagnostic emitted by a lint rule."""

    rule_id: str
    severity: str
    path: str
    message: str
    #: related design paths (loop members, conflicting drivers, …)
    span: Tuple[str, ...] = ()
    #: set by the waiver layer, never by rules
    waived: bool = False
    waiver_reason: str = ""

    def __post_init__(self) -> None:
        severity_rank(self.severity)  # validate eagerly
        self.span = tuple(self.span)

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "message": self.message,
        }
        if self.span:
            doc["span"] = list(self.span)
        if self.waived:
            doc["waived"] = True
            doc["waiver_reason"] = self.waiver_reason
        return doc

    def render(self) -> str:
        tag = "waived " if self.waived else ""
        line = (
            f"[{tag}{self.severity}] {self.rule_id}: "
            f"{self.path}: {self.message}"
        )
        if self.waived and self.waiver_reason:
            line += f"  (waiver: {self.waiver_reason})"
        return line


def worst_severity(findings, include_waived: bool = False) -> str:
    """The highest severity present (``""`` when nothing counts)."""
    worst = ""
    worst_rank = -1
    for finding in findings:
        if finding.waived and not include_waived:
            continue
        rank = severity_rank(finding.severity)
        if rank > worst_rank:
            worst, worst_rank = finding.severity, rank
    return worst
