"""Run the rule pack over designs, scenarios, or the whole registry.

The engine owns ordering, waiver application and metrics accounting so
every entry point (CLI ``lint``, ``sweep --lint`` pre-flight,
``inspect`` surfacing, tests) reports identically:

* findings are sorted worst-severity first, then by rule id and path;
* waivers are applied per scenario but audited once per run — a waiver
  used by *any* linted design is not "unused";
* when the metrics registry is enabled, ``lint.designs`` and
  ``lint.findings.<severity>`` / ``lint.waived`` counters accumulate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..obs.metrics import REGISTRY as _OBS
from ..runner import registry
from .findings import Finding, severity_rank, worst_severity
from .rules import LintContext, Rule, default_rules
from .waivers import Waiver, apply_waivers, unused_waiver_findings

#: synthetic "scenario" carrying the end-of-run waiver audit
WAIVER_AUDIT = "(waiver audit)"


@dataclass
class LintReport:
    """Findings for one linted design (or one skipped scenario)."""

    scenario: str
    findings: List[Finding] = field(default_factory=list)
    #: non-empty when the scenario could not be linted (no design hook)
    skipped: str = ""

    @property
    def worst(self) -> str:
        return worst_severity(self.findings)

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            key = "waived" if finding.waived else finding.severity
            counts[key] = counts.get(key, 0) + 1
        return counts


def _sort(findings: List[Finding]) -> List[Finding]:
    findings.sort(
        key=lambda f: (-severity_rank(f.severity), f.rule_id, f.path)
    )
    return findings


def _count(findings: Sequence[Finding]) -> None:
    if not _OBS.enabled:
        return
    _OBS.counter("lint.designs").inc()
    for finding in findings:
        if finding.waived:
            _OBS.counter("lint.waived").inc()
        else:
            _OBS.counter(f"lint.findings.{finding.severity}").inc()


def lint_design(design, scenario: str = "",
                rules: Optional[Sequence[Rule]] = None,
                waivers: Optional[List[Waiver]] = None) -> List[Finding]:
    """Lint one design; returns sorted findings (waived ones marked)."""
    ctx = LintContext.for_design(design, scenario=scenario)
    findings: List[Finding] = []
    for rule in (rules if rules is not None else default_rules()):
        findings.extend(rule.check(ctx))
    if waivers:
        apply_waivers(findings, waivers, scenario)
    _sort(findings)
    _count(findings)
    return findings


def lint_scenario(sc, overrides: Optional[Dict[str, object]] = None,
                  fast: bool = True, tech=None,
                  rules: Optional[Sequence[Rule]] = None,
                  waivers: Optional[List[Waiver]] = None) -> LintReport:
    """Lint one registered scenario's design tree."""
    if not sc.has_design:
        return LintReport(
            sc.id, skipped="scenario exposes no design tree"
        )
    design = sc.design_for(tech=tech, overrides=overrides, fast=fast)
    return LintReport(
        sc.id,
        findings=lint_design(
            design, scenario=sc.id, rules=rules, waivers=waivers
        ),
    )


def lint_registry(ids: Optional[Sequence[str]] = None,
                  overrides: Optional[Dict[str, object]] = None,
                  fast: bool = True, tech=None,
                  rules: Optional[Sequence[Rule]] = None,
                  waivers: Optional[List[Waiver]] = None
                  ) -> List[LintReport]:
    """Lint every selected scenario plus one waiver-audit report.

    ``ids=None`` lints every registered scenario (those without a
    design hook appear as skipped reports, so ``--all`` output names
    what was *not* checked).  Parameter ``overrides`` only apply to
    scenarios that declare every overridden name.
    """
    registry.load_builtin()
    scenarios = (
        [registry.get(i) for i in ids] if ids is not None
        else registry.all_scenarios()
    )
    reports: List[LintReport] = []
    for sc in scenarios:
        usable = overrides or {}
        if usable:
            declared = {spec.name for spec in sc.params}
            usable = {k: v for k, v in usable.items() if k in declared}
        reports.append(lint_scenario(
            sc, overrides=usable or None, fast=fast, tech=tech,
            rules=rules, waivers=waivers,
        ))
    if waivers and ids is None:
        # staleness is only judgeable against the whole registry — a
        # subset lint must not flag other scenarios' waivers as unused
        audit = unused_waiver_findings(waivers)
        if audit:
            _sort(audit)
            reports.append(LintReport(WAIVER_AUDIT, findings=audit))
    return reports


def gate(reports: Sequence[LintReport], fail_on: str = "error") -> bool:
    """True when some unwaived finding meets the ``fail_on`` bar."""
    bar = severity_rank(fail_on)
    return any(
        severity_rank(f.severity) >= bar
        for report in reports
        for f in report.findings
        if not f.waived
    )
