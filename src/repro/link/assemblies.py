"""Complete link assemblies: I1, I2 and I3 (Fig 9 of the paper).

Each builder returns a :class:`LinkInstance` with a uniform switch-facing
port set, an :class:`~repro.sim.trace.ActivityMonitor` with the signals
grouped per component (the Fig 14 power-breakdown categories), and the
physical wire count between the two switch boundaries (the Fig 10 /
Fig 11 quantity).

* :func:`build_i1` — synchronous pipeline, ``width`` wires.
* :func:`build_i2` — synch/asynch interface → per-transfer serializer →
  latching wire-buffer chain → de-serializer → asynch/synch interface;
  ``slice_width + 2`` wires (data + req + ack).
* :func:`build_i3` — as I2 but word-level: ring-oscillator burst
  serializer, inverter-repeated wires, shift-register de-serializer,
  single word acknowledge; ``slice_width + 2`` wires (data + valid + ack).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..design.component import Component
from ..sim.kernel import Simulator
from ..sim.signal import Bus, Signal
from ..sim.trace import ActivityMonitor
from ..tech.technology import Technology
from ..tech.st012 import st012
from .async_sync import AsyncToSyncInterface
from .serializer import Deserializer, Serializer
from .sync_async import SyncToAsyncInterface
from .sync_link import SyncPipelineLink
from .word_level import EarlyAckDeserializer, WordDeserializer, WordSerializer
from .wiring import AsyncWireBufferChain, RepeatedWireBus, RepeatedWire, wire, wire_bus


@dataclass
class LinkConfig:
    """Parameters shared by all three implementations.

    Defaults follow the paper's experimental setup: 32-bit flits,
    8-bit serial slices, 4 buffers, 4-deep interface FIFOs.
    """

    width: int = 32
    slice_width: int = 8
    n_buffers: int = 4
    fifo_depth: int = 4
    #: inverters per I3 repeater station (even; the paper uses pairs)
    inverters_per_station: int = 2
    #: early-ack extension: 0 = paper behaviour, >0 = ack that many
    #: slices before the end of the burst (future-work feature)
    early_ack_by: int = 0

    def __post_init__(self) -> None:
        if self.width % self.slice_width:
            raise ValueError(
                f"slice width {self.slice_width} must divide width {self.width}"
            )
        if self.n_buffers < 1:
            raise ValueError("n_buffers must be >= 1")


class LinkInstance(Component):
    """A built link with the uniform switch-facing port set."""

    def __init__(
        self,
        sim: Simulator,
        kind: str,
        config: LinkConfig,
        monitor: ActivityMonitor,
        wire_count: int,
        name: Optional[str] = None,
    ) -> None:
        Component.__init__(self, name or kind.lower())
        self.sim = sim
        self.kind = kind
        self.config = config
        self.monitor = monitor
        self.wire_count = wire_count
        # transmit-side ports (bound by the builders)
        self.flit_in: Bus
        self.valid_in: Signal
        self.stall_out: Signal
        # receive-side ports
        self.flit_out: Bus
        self.valid_out: Signal
        self.stall_in: Signal

    def flits_accepted(self) -> int:
        """Flits taken from the transmitting switch so far."""
        raise NotImplementedError

    def flits_delivered(self) -> int:
        """Flits handed to the receiving switch so far."""
        raise NotImplementedError


class _I1Link(LinkInstance):
    def __init__(self, sim: Simulator, config: LinkConfig,
                 pipeline: SyncPipelineLink, monitor: ActivityMonitor) -> None:
        super().__init__(sim, "I1", config, monitor, pipeline.wire_count,
                         name=pipeline.name)
        self.pipeline = pipeline
        # the pipeline *is* the I1 link; its nets carry the link's own
        # name prefix, so it hangs in the tree under a synthetic leaf
        self.adopt(pipeline, leaf="pipe")
        self.flit_in = pipeline.flit_in
        self.valid_in = pipeline.valid_in
        self.stall_out = pipeline.stall_out
        self.flit_out = pipeline.flit_out
        self.valid_out = pipeline.valid_out
        self.stall_in = pipeline.stall_in

    def flits_accepted(self) -> int:
        return self.pipeline.flits_written

    def flits_delivered(self) -> int:
        return self.pipeline.flits_delivered


class _AsyncLink(LinkInstance):
    """Common wrapper for I2/I3: interface FIFOs at both ends."""

    def __init__(self, sim: Simulator, kind: str, config: LinkConfig,
                 s2a: SyncToAsyncInterface, a2s: AsyncToSyncInterface,
                 monitor: ActivityMonitor, wire_count: int,
                 name: Optional[str] = None) -> None:
        super().__init__(sim, kind, config, monitor, wire_count, name=name)
        self.s2a = s2a
        self.a2s = a2s
        self.adopt(s2a)
        self.adopt(a2s)
        self.flit_in = s2a.flit_in
        self.valid_in = s2a.valid
        self.stall_out = s2a.stall
        self.flit_out = a2s.flit_out
        self.valid_out = a2s.valid
        self.stall_in = a2s.stall

    def flits_accepted(self) -> int:
        return self.s2a.flits_written

    def flits_delivered(self) -> int:
        return self.a2s.flits_read


def build_i1(
    sim: Simulator,
    clk: Signal,
    config: Optional[LinkConfig] = None,
    tech: Optional[Technology] = None,
    name: str = "i1",
) -> LinkInstance:
    """The synchronous baseline link (Fig 9, top row)."""
    config = config or LinkConfig()
    tech = tech or st012()
    pipeline = SyncPipelineLink(
        sim, clk, config.width, config.n_buffers, tech.gates, name
    )
    monitor = ActivityMonitor()
    for i, (data, valid) in enumerate(
        zip(pipeline.stage_data, pipeline.stage_valid)
    ):
        monitor.add("buffers", data, valid)
    monitor.add("buffers", pipeline.flit_out, pipeline.valid_out)
    link = _I1Link(sim, config, pipeline, monitor)
    _expose_switch_ports(link)
    return link


def build_i2(
    sim: Simulator,
    clk: Signal,
    config: Optional[LinkConfig] = None,
    tech: Optional[Technology] = None,
    name: str = "i2",
    rx_clk: Optional[Signal] = None,
) -> LinkInstance:
    """The per-transfer-acknowledge asynchronous link (Fig 9, middle).

    ``rx_clk`` lets the receiving switch run from a *different* clock
    than the transmitting one (GALS operation) — nothing on the wire is
    clocked, so the link tolerates arbitrary frequency/phase relations
    between the two domains.  Defaults to the shared clock, the paper's
    configuration.
    """
    config = config or LinkConfig()
    tech = tech or st012()
    gates = tech.gates
    t_p = tech.handshake.t_p_per_segment
    rx_clk = rx_clk if rx_clk is not None else clk

    s2a = SyncToAsyncInterface(
        sim, clk, config.width, config.fifo_depth, gates, f"{name}.s2a"
    )
    ser = Serializer(sim, s2a.out_ch, config.slice_width, gates, f"{name}.ser")
    chain = AsyncWireBufferChain(
        sim,
        ser.out_ch.data,
        ser.out_ch.req,
        config.n_buffers,
        t_p,
        gates,
        tech.handshake.t_wire_buffer_ctl,
        f"{name}.chain",
    )
    wire(chain.ack_out, ser.out_ch.ack, t_p)

    des_in = _channel_from(sim, chain.data_out, chain.req_out, chain.ack_in,
                           f"{name}.desin")
    des = Deserializer(sim, des_in, config.width, gates, f"{name}.des")

    a2s = AsyncToSyncInterface(
        sim, rx_clk, config.width, config.fifo_depth, gates, f"{name}.a2s"
    )
    _connect_channels(des.out_ch, a2s.in_ch)

    monitor = ActivityMonitor()
    monitor.add("sync_to_async", s2a.out_ch.data, s2a.out_ch.req,
                s2a.out_ch.ack, *s2a.wr_en, *s2a.clear)
    monitor.add("sync_to_async", *(f.flag_a for f in s2a.flags))
    monitor.add("serializer", ser.out_ch.data, ser.out_ch.req)
    if ser.sequencer is not None:
        monitor.add("serializer", *ser.sequencer.sel)
    for stage in chain.stages:
        monitor.add("buffers", stage.data_out, stage.controller.ctl,
                    stage.controller.latch_enable)
    monitor.add("deserializer", *des.stores)
    if des.le_sequencer is not None:
        monitor.add("deserializer", *des.le_sequencer.sel)
    monitor.add("async_to_sync", a2s.in_ch.data, a2s.in_ch.req,
                a2s.in_ch.ack, *a2s.registers, *a2s.flag_a)

    link = _AsyncLink(
        sim, "I2", config, s2a, a2s, monitor,
        wire_count=config.slice_width + 2, name=name,
    )
    link.serializer = ser
    link.chain = chain
    link.deserializer = des
    link.adopt(ser)
    link.adopt(chain)
    link.adopt(des_in)
    link.adopt(des)
    _expose_switch_ports(link)
    return link


def build_i3(
    sim: Simulator,
    clk: Signal,
    config: Optional[LinkConfig] = None,
    tech: Optional[Technology] = None,
    name: str = "i3",
    rx_clk: Optional[Signal] = None,
) -> LinkInstance:
    """The per-word-acknowledge asynchronous link (Fig 9, bottom).

    ``rx_clk`` enables GALS operation (independent receive-side clock);
    see :func:`build_i2`.
    """
    config = config or LinkConfig()
    tech = tech or st012()
    gates = tech.gates
    timings = tech.handshake
    t_p = timings.t_p_per_segment
    rx_clk = rx_clk if rx_clk is not None else clk

    s2a = SyncToAsyncInterface(
        sim, clk, config.width, config.fifo_depth, gates, f"{name}.s2a"
    )
    wser = WordSerializer(
        sim, s2a.out_ch, config.slice_width, gates, timings,
        name=f"{name}.wser",
    )

    # forward path: n_buffers repeater stations, n_buffers+1 Tp segments
    data_src = wser.out_ch.data
    valid_src = wser.out_ch.valid
    stations_d: list[RepeatedWireBus] = []
    stations_v: list[RepeatedWire] = []
    for i in range(config.n_buffers):
        seg_d = sim.bus(config.slice_width, f"{name}.seg{i}.d")
        seg_v = sim.signal(f"{name}.seg{i}.v")
        wire_bus(data_src, seg_d, t_p)
        wire(valid_src, seg_v, t_p)
        st_d = RepeatedWireBus(sim, seg_d, config.inverters_per_station,
                               gates.inv, f"{name}.rep{i}.d")
        st_v = RepeatedWire(sim, seg_v, config.inverters_per_station,
                            gates.inv, f"{name}.rep{i}.v")
        stations_d.append(st_d)
        stations_v.append(st_v)
        data_src, valid_src = st_d.out, st_v.out
    rx_data = sim.bus(config.slice_width, f"{name}.rx.d")
    rx_valid = sim.signal(f"{name}.rx.v")
    wire_bus(data_src, rx_data, t_p)
    wire(valid_src, rx_valid, t_p)

    des_in = _valid_channel_from(sim, rx_data, rx_valid, f"{name}.desin")
    if config.early_ack_by:
        wdes: WordDeserializer = EarlyAckDeserializer(
            sim, des_in, config.width, gates, timings,
            name=f"{name}.wdes", early_by=config.early_ack_by,
        )
    else:
        wdes = WordDeserializer(
            sim, des_in, config.width, gates, timings, f"{name}.wdes"
        )

    # word-level acknowledge return path: n_buffers+1 plain Tp segments
    ack_src: Signal = wdes.ack_to_tx
    for i in range(config.n_buffers):
        seg = sim.signal(f"{name}.ackseg{i}")
        wire(ack_src, seg, t_p)
        ack_src = seg
    wire(ack_src, wser.out_ch.ack, t_p)

    a2s = AsyncToSyncInterface(
        sim, rx_clk, config.width, config.fifo_depth, gates, f"{name}.a2s"
    )
    _connect_channels(wdes.out_ch, a2s.in_ch)

    monitor = ActivityMonitor()
    monitor.add("sync_to_async", s2a.out_ch.data, s2a.out_ch.req,
                s2a.out_ch.ack, *s2a.wr_en, *s2a.clear)
    monitor.add("sync_to_async", *(f.flag_a for f in s2a.flags))
    monitor.add("serializer", wser.out_ch.data, wser.out_ch.valid,
                wser.osc.out)
    for st_d, st_v in zip(stations_d, stations_v):
        monitor.add("buffers", st_d.out, st_v.out)
    monitor.add("deserializer", *wdes.slices.stages, wdes.pulses.done,
                wdes.ack_to_tx)
    monitor.add("async_to_sync", a2s.in_ch.data, a2s.in_ch.req,
                a2s.in_ch.ack, *a2s.registers, *a2s.flag_a)

    link = _AsyncLink(
        sim, "I3", config, s2a, a2s, monitor,
        wire_count=config.slice_width + 2, name=name,
    )
    link.serializer = wser
    link.deserializer = wdes
    link.adopt(wser)
    for i, (st_d, st_v) in enumerate(zip(stations_d, stations_v)):
        station = Component(f"{name}.rep{i}")
        station.adopt(st_d)
        station.adopt(st_v)
        link.adopt(station)
    link.adopt(des_in)
    link.adopt(wdes)
    _expose_switch_ports(link)
    return link


def _expose_switch_ports(link: LinkInstance) -> None:
    """Register the uniform switch-facing port set on the link node."""
    link.expose("flit_in", link.flit_in, "in")
    link.expose("valid_in", link.valid_in, "in")
    link.expose("stall_out", link.stall_out, "out")
    link.expose("flit_out", link.flit_out, "out")
    link.expose("valid_out", link.valid_out, "out")
    link.expose("stall_in", link.stall_in, "in")


# ----------------------------------------------------------------------
# wiring helpers
# ----------------------------------------------------------------------
def _channel_from(sim: Simulator, data: Bus, req: Signal, ack: Signal,
                  name: str):
    """Wrap existing nets as a Channel-like object (zero-delay aliasing)."""
    from .channel import Channel

    ch = Channel(sim, data.width, name)
    wire_bus(data, ch.data, 0)
    wire(req, ch.req, 0)
    wire(ch.ack, ack, 0)
    return ch


def _valid_channel_from(sim: Simulator, data: Bus, valid: Signal, name: str):
    from .channel import ValidChannel

    ch = ValidChannel(sim, data.width, name)
    wire_bus(data, ch.data, 0)
    wire(valid, ch.valid, 0)
    return ch


def _connect_channels(src, dst) -> None:
    """Connect an output Channel to an input Channel (req/data →, ack ←)."""
    wire_bus(src.data, dst.data, 0)
    wire(src.req, dst.req, 0)
    wire(dst.ack, src.ack, 0)


def build_link(
    sim: Simulator,
    clk: Signal,
    kind: str,
    config: Optional[LinkConfig] = None,
    tech: Optional[Technology] = None,
) -> LinkInstance:
    """Build a link by implementation id ('I1', 'I2' or 'I3')."""
    builders = {"I1": build_i1, "I2": build_i2, "I3": build_i3}
    key = kind.upper()
    if key not in builders:
        raise ValueError(f"unknown link kind {kind!r}; expected I1/I2/I3")
    return builders[key](sim, clk, config, tech, name=key.lower())
