"""Link testbench: drive flits through a link and measure it.

The testbench reproduces the paper's measurement setup (Section V):

* the transmitting switch offers a flit stream (the paper's worst-case
  pattern alternates 0xA5A5A5A5 / 0x5A5A5A5A so every data wire toggles
  on every flit);
* the receiving switch consumes flits, optionally with backpressure;
* throughput is measured as delivered flits over the active window,
  *link usage* as the fraction of time at least one buffer holds a flit
  (the paper's definition of "in use"), and per-flit latency from
  acceptance to delivery.

The source/sink processes speak the synchronous port protocol shared by
all three link builds: data+valid held until the link's accepted counter
advances; valid flits sampled on rising clock edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional, Sequence

from ..design.component import Component
from ..sim.clock import Clock
from ..sim.kernel import Simulator
from ..sim.process import Delay, RisingEdge, spawn
from .assemblies import LinkInstance

#: the paper's worst-case data-activity pattern
WORST_CASE_PATTERN = (0xA5A5A5A5, 0x5A5A5A5A, 0xA5A5A5A5, 0x5A5A5A5A)


@dataclass
class LinkMeasurement:
    """Results of one testbench run."""

    flits_sent: int = 0
    flits_received: int = 0
    received_values: list[int] = field(default_factory=list)
    #: time the first flit was accepted by the link, ps
    first_accept_ps: int = 0
    #: time the last flit was delivered, ps
    last_delivery_ps: int = 0
    #: per-flit delivery timestamps, ps
    delivery_times_ps: list[int] = field(default_factory=list)
    #: per-flit acceptance timestamps, ps
    accept_times_ps: list[int] = field(default_factory=list)

    @property
    def throughput_mflits(self) -> float:
        """Delivered flits per second, in MFlit/s.

        Measured steady-state: the window opens at the *first delivery*
        (not first acceptance) so pipeline fill latency does not dilute
        the rate, and covers the remaining ``n-1`` inter-flit intervals.
        """
        if self.flits_received < 2:
            return 0.0
        window_ps = self.delivery_times_ps[-1] - self.delivery_times_ps[0]
        if window_ps <= 0:
            return 0.0
        return (self.flits_received - 1) / window_ps * 1e6

    @property
    def mean_latency_ns(self) -> float:
        """Mean acceptance-to-delivery latency per flit, ns."""
        n = min(len(self.accept_times_ps), len(self.delivery_times_ps))
        if n == 0:
            return 0.0
        total = sum(
            self.delivery_times_ps[i] - self.accept_times_ps[i]
            for i in range(n)
        )
        return total / n / 1000.0


class LinkTestbench(Component):
    """Attach a source and sink to a built link and run measurements.

    ``rx_clock`` supports GALS links whose receiving switch runs from a
    different clock: the sink then samples on that clock while the
    source keeps pacing itself from ``clock``.

    The bench roots the link's instance tree (when the link is not
    already part of one), so path probing works from the measurement
    harness: ``Design(bench).find("i3.s2a.stall")``.
    """

    def __init__(
        self,
        sim: Simulator,
        clock: Clock,
        link: LinkInstance,
        rx_clock: Optional[Clock] = None,
        name: str = "tb",
    ) -> None:
        Component.__init__(self, name)
        if link.parent is None:
            self.adopt(link, leaf=link.name)
        self.sim = sim
        self.clock = clock
        self.rx_clock = rx_clock if rx_clock is not None else clock
        self.link = link
        self.measurement = LinkMeasurement()
        self._done = False

    # ------------------------------------------------------------------
    def _source(self, flits: Sequence[int]) -> Generator:
        link = self.link
        m = self.measurement
        for value in flits:
            link.flit_in.set(value)
            link.valid_in.set(1)
            accepted_before = link.flits_accepted()
            while link.flits_accepted() == accepted_before:
                yield RisingEdge(self.clock.signal)
                yield Delay(1)  # let same-edge bookkeeping settle
            m.accept_times_ps.append(self.sim.now)
            if m.flits_sent == 0:
                m.first_accept_ps = self.sim.now
            m.flits_sent += 1
        link.valid_in.set(0)

    def _sink(self, expected: int, stall_pattern: Optional[Sequence[int]] = None
              ) -> Generator:
        link = self.link
        m = self.measurement
        cycle = 0
        # sample after the output registers' clock-to-Q has settled but
        # comfortably before the next edge
        sample_delay = max(2, min(120, self.rx_clock.half_period - 1))
        while m.flits_received < expected:
            yield RisingEdge(self.rx_clock.signal)
            if stall_pattern is not None:
                stall = stall_pattern[cycle % len(stall_pattern)]
                link.stall_in.set(stall)
            cycle += 1
            yield Delay(sample_delay)
            delivered = link.flits_delivered()
            while m.flits_received < delivered:
                m.flits_received += 1
                m.delivery_times_ps.append(self.sim.now)
                m.received_values.append(link.flit_out.value)
                m.last_delivery_ps = self.sim.now
        link.stall_in.set(0)
        self._done = True

    # ------------------------------------------------------------------
    def run(
        self,
        flits: Sequence[int],
        timeout_ns: float = 100_000.0,
        stall_pattern: Optional[Sequence[int]] = None,
        max_events: int = 20_000_000,
    ) -> LinkMeasurement:
        """Send ``flits`` through the link; return the measurement.

        Raises ``TimeoutError`` if the sink has not seen every flit by
        ``timeout_ns`` — a deadlocked handshake fails loudly.
        """
        spawn(self.sim, self._source(flits), "tb.source")
        spawn(self.sim, self._sink(len(flits), stall_pattern), "tb.sink")
        horizon = self.sim.now + round(timeout_ns * 1000)
        while not self._done and self.sim.now < horizon:
            self.sim.run(
                until=min(horizon, self.sim.now + 1_000_000),
                max_events=max_events,
            )
        if not self._done:
            raise TimeoutError(
                f"link {self.link.kind}: sink saw "
                f"{self.measurement.flits_received}/{len(flits)} flits "
                f"after {timeout_ns} ns"
            )
        return self.measurement


def measure_throughput(
    sim: Simulator,
    clock: Clock,
    link: LinkInstance,
    n_flits: int = 32,
    pattern: Sequence[int] = WORST_CASE_PATTERN,
    timeout_ns: float = 1_000_000.0,
) -> LinkMeasurement:
    """Convenience wrapper: stream ``n_flits`` of ``pattern`` and measure."""
    flits = [pattern[i % len(pattern)] for i in range(n_flits)]
    bench = LinkTestbench(sim, clock, link)
    return bench.run(flits, timeout_ns=timeout_ns)
